//! Shared harness utilities for the benchmark binaries that regenerate
//! the paper's tables and figures.
//!
//! Each binary in `src/bin/` reproduces one artifact of the paper's
//! evaluation section:
//!
//! | Binary             | Paper artifact |
//! |--------------------|----------------|
//! | `table2`           | Table 2 — dataset statistics |
//! | `table3`           | Table 3 — baseline vs. RAFT-style runtimes |
//! | `figure1`          | Figure 1 — degree-distribution CDFs |
//! | `memory_footprint` | §4.3 — csrgemm vs. hybrid memory accounting |
//! | `speedup`          | §4.2 — GPU-vs-CPU speedup summary |
//!
//! Criterion microbenches (strategy and shared-memory ablations) live in
//! `benches/`.

#![deny(missing_docs)]

pub mod report;
pub mod runner;
pub mod suite;

pub use report::{
    validate_chrome_trace, validate_latency_percentiles, validate_metrics, validate_report,
    BenchReport, Json, MetricRow,
};
// Re-exported so sibling tooling (xtask's diag.v1 writer) escapes JSON
// strings with the exact same rules as the bench.v1 writers.
pub use gpu_sim::json_escape;
pub use runner::{parse_path, parse_scale, parse_u64, try_parse_u64, BenchRow, Timed};
