//! Machine-readable benchmark output: the `bench.v1` JSON schema, a
//! self-validating writer, and a dependency-free JSON reader used by the
//! validator (and by `xtask check_bench_json` in CI).
//!
//! Every harness binary accepts `--json <path>` and emits one document:
//!
//! ```json
//! {
//!   "schema": "bench.v1",
//!   "name": "counters_report",
//!   "rows": [
//!     {
//!       "labels": {"dataset": "sec-edgar", "strategy": "hybrid"},
//!       "values": {"effective_issues": 1234.0, "sim_seconds": 0.0021}
//!     }
//!   ]
//! }
//! ```
//!
//! The shape is deliberately flat — a list of rows, each a string→string
//! label map plus a string→number value map — so the same schema covers
//! counter tables, capacity tables, and per-range profiles without
//! per-binary variants. [`BenchReport::write`] re-parses and validates
//! its own rendering before touching the filesystem, so a document that
//! reaches disk round-trips by construction.

use gpu_sim::{json_escape, Counters, LaunchProfile, LaunchStats};
use std::fmt::Write as _;

/// Schema tag carried by every document this module writes.
pub const SCHEMA: &str = "bench.v1";

/// One row of a report: labels identify the measurement, values carry it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricRow {
    /// Identifying labels, e.g. `("dataset", "sec-edgar")`.
    pub labels: Vec<(String, String)>,
    /// Measured values, e.g. `("sim_seconds", 0.0021)`.
    pub values: Vec<(String, f64)>,
}

impl MetricRow {
    /// Starts an empty row.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an identifying label.
    pub fn label(mut self, key: &str, value: &str) -> Self {
        self.labels.push((key.to_string(), value.to_string()));
        self
    }

    /// Appends a measured value.
    pub fn value(mut self, key: &str, value: f64) -> Self {
        self.values.push((key.to_string(), value));
        self
    }

    /// Appends the full counter set (the eleven raw fields plus the
    /// derived effective-issue count) under their canonical names.
    pub fn counters(mut self, c: &Counters) -> Self {
        let pairs: [(&str, f64); 12] = [
            ("issues", c.issues as f64),
            ("divergence_extra", c.divergence_extra as f64),
            ("effective_issues", c.effective_issues() as f64),
            ("global_transactions", c.global_transactions as f64),
            ("global_bytes", c.global_bytes as f64),
            ("global_bytes_requested", c.global_bytes_requested as f64),
            ("global_bytes_unique", c.global_bytes_unique as f64),
            ("smem_accesses", c.smem_accesses as f64),
            ("bank_conflict_extra", c.bank_conflict_extra as f64),
            ("atomics", c.atomics as f64),
            ("atomic_conflict_extra", c.atomic_conflict_extra as f64),
            ("barriers", c.barriers as f64),
        ];
        for (k, v) in pairs {
            self.values.push((k.to_string(), v));
        }
        self
    }
}

/// A complete `bench.v1` document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    /// Report name (conventionally the producing binary's name).
    pub name: String,
    /// The measurement rows.
    pub rows: Vec<MetricRow>,
}

impl BenchReport {
    /// Starts an empty report.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: MetricRow) {
        self.rows.push(row);
    }

    /// Appends one row per launch (kernel name, counters, roofline
    /// seconds) and, when a launch carries a profile, one row per range.
    ///
    /// `base` is deliberately built once as a plain local and cloned for
    /// the profile rows. An earlier version used a row-building closure
    /// called twice per launch; under `opt-level >= 2` that shape
    /// double-dropped the row's label strings (heap corruption, observed
    /// as a segfault in `counters_report --json`). Keep this straight-line
    /// form.
    pub fn push_launches(&mut self, context: &[(&str, &str)], launches: &[LaunchStats]) {
        for (li, stats) in launches.iter().enumerate() {
            let mut base = MetricRow::new();
            for (k, v) in context {
                base = base.label(k, v);
            }
            base = base
                .label("kernel", &stats.name)
                .label("launch", &li.to_string());
            let row = base
                .clone()
                .counters(&stats.counters)
                .value("sim_seconds", stats.cost.total_seconds)
                .value("compute_seconds", stats.cost.compute_seconds)
                .value("memory_seconds", stats.cost.memory_seconds);
            self.push(row);
            if let Some(profile) = &stats.profile {
                self.push_profile(&base, profile);
            }
        }
    }

    /// Appends one row per profiled range, labelled with the range path.
    pub fn push_profile(&mut self, base: &MetricRow, profile: &LaunchProfile) {
        for r in &profile.ranges {
            self.push(
                base.clone()
                    .label("range", &r.path)
                    .value("calls", r.calls as f64)
                    .value("effective_issues", r.exclusive.effective_issues() as f64)
                    .value("global_bytes", r.exclusive.global_bytes as f64)
                    .value("est_seconds", r.est_seconds),
            );
        }
    }

    /// Renders the document as `bench.v1` JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"{}\",\"name\":\"{}\",\"rows\":[",
            SCHEMA,
            json_escape(&self.name)
        );
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  {\"labels\":{");
            for (j, (k, v)) in row.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
            }
            out.push_str("},\"values\":{");
            for (j, (k, v)) in row.values.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", json_escape(k), fmt_number(*v));
            }
            out.push_str("}}");
        }
        out.push_str("\n]}\n");
        out
    }

    /// Renders, re-parses, validates, and only then writes the document.
    ///
    /// # Panics
    ///
    /// Panics when the rendering fails its own schema validation (a bug
    /// in the producing binary — e.g. a NaN value) or the file cannot be
    /// written; a benchmark must not exit zero after emitting a document
    /// its consumers will reject.
    pub fn write(&self, path: &str) {
        let text = self.to_json();
        if let Err(e) = validate_report(&text) {
            panic!("bench report {path:?} failed self-validation: {e}");
        }
        if let Err(e) = std::fs::write(path, &text) {
            panic!("cannot write bench report {path:?}: {e}");
        }
    }
}

/// Formats an `f64` as a JSON number.
///
/// # Panics
///
/// Panics on non-finite values — JSON has no representation for them,
/// and a NaN in a benchmark report means the harness is broken.
fn fmt_number(v: f64) -> String {
    assert!(v.is_finite(), "non-finite value {v} in bench report");
    let s = format!("{v:?}");
    debug_assert!(s.parse::<f64>().is_ok());
    s
}

// ---------------------------------------------------------------------
// Minimal JSON reader (no dependencies; used by the validators below).
// ---------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogates decode to the replacement char;
                            // bench documents never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    // ASCII fast path — decoding the tail per character
                    // would make parsing quadratic in document size.
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 scalar (at most 4 bytes).
                    let end = (self.pos + 4).min(self.bytes.len());
                    let head = &self.bytes[self.pos..end];
                    let ch = match std::str::from_utf8(head) {
                        Ok(s) => s.chars().next().ok_or("empty string tail")?,
                        // A char straddling `end` leaves a trailing error;
                        // the valid prefix still holds the next scalar.
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&head[..e.valid_up_to()])
                                .expect("validated prefix")
                                .chars()
                                .next()
                                .ok_or("empty string tail")?
                        }
                        Err(e) => return Err(e.to_string()),
                    };
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Validators.
// ---------------------------------------------------------------------

/// Validates a `bench.v1` document: schema tag, non-empty name, and for
/// every row a string→string `labels` object and a string→finite-number
/// `values` object.
pub fn validate_report(text: &str) -> Result<(), String> {
    let doc = Json::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
    }
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or("missing \"name\"")?;
    if name.is_empty() {
        return Err("empty \"name\"".to_string());
    }
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("missing \"rows\" array")?;
    for (i, row) in rows.iter().enumerate() {
        let labels = row
            .get("labels")
            .and_then(Json::as_obj)
            .ok_or(format!("row {i}: missing \"labels\" object"))?;
        for (k, v) in labels {
            if v.as_str().is_none() {
                return Err(format!("row {i}: label {k:?} is not a string"));
            }
        }
        let values = row
            .get("values")
            .and_then(Json::as_obj)
            .ok_or(format!("row {i}: missing \"values\" object"))?;
        for (k, v) in values {
            match v.as_f64() {
                Some(n) if n.is_finite() => {}
                _ => return Err(format!("row {i}: value {k:?} is not a finite number")),
            }
        }
    }
    Ok(())
}

/// Validates latency-percentile pairs in a `bench.v1` document: every
/// row carrying a `p<N>_latency_s` value must keep its percentiles
/// non-negative and monotone (`p50 <= p99`, and in general any lower
/// percentile must not exceed a higher one). Returns how many rows
/// carried percentiles. Runs after [`validate_report`], so values are
/// already known to be finite numbers.
pub fn validate_latency_percentiles(text: &str) -> Result<usize, String> {
    let doc = Json::parse(text)?;
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("missing \"rows\" array")?;
    let mut carrying = 0usize;
    for (i, row) in rows.iter().enumerate() {
        let values = row
            .get("values")
            .and_then(Json::as_obj)
            .ok_or(format!("row {i}: missing \"values\" object"))?;
        // (percentile, value) pairs parsed out of p<N>_latency_s keys.
        let mut pcts: Vec<(f64, f64)> = Vec::new();
        for (k, v) in values {
            let Some(rest) = k.strip_prefix('p') else {
                continue;
            };
            let Some(num) = rest.strip_suffix("_latency_s") else {
                continue;
            };
            let p: f64 = num
                .parse()
                .map_err(|_| format!("row {i}: malformed percentile key {k:?}"))?;
            let lat = v.as_f64().ok_or(format!("row {i}: {k:?} not a number"))?;
            if lat < 0.0 {
                return Err(format!("row {i}: {k:?} is negative ({lat})"));
            }
            pcts.push((p, lat));
        }
        if pcts.is_empty() {
            continue;
        }
        carrying += 1;
        pcts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite percentile"));
        for pair in pcts.windows(2) {
            let ((lo_p, lo), (hi_p, hi)) = (pair[0], pair[1]);
            if lo > hi {
                return Err(format!(
                    "row {i}: p{lo_p} latency {lo} exceeds p{hi_p} latency {hi}"
                ));
            }
        }
    }
    Ok(carrying)
}

/// Validates the shape of a chrome://tracing document as produced by
/// [`gpu_sim::chrome_trace`]: a `traceEvents` array whose `"X"` events
/// carry `name`/`pid`/`tid`/`ts`/`dur` (with `ts`/`dur` finite and
/// non-negative) and whose `"M"` events carry `name`/`pid`.
pub fn validate_chrome_trace(text: &str) -> Result<(), String> {
    let doc = Json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing \"traceEvents\" array")?;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing \"ph\""))?;
        if ev.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("event {i}: missing \"name\""));
        }
        if ev.get("pid").and_then(Json::as_f64).is_none() {
            return Err(format!("event {i}: missing \"pid\""));
        }
        if ph == "X" {
            if ev.get("tid").and_then(Json::as_f64).is_none() {
                return Err(format!("event {i}: missing \"tid\""));
            }
            for key in ["ts", "dur"] {
                match ev.get(key).and_then(Json::as_f64) {
                    Some(n) if n.is_finite() && n >= 0.0 => {}
                    _ => {
                        return Err(format!(
                            "event {i}: {key:?} is not a finite non-negative number"
                        ))
                    }
                }
            }
        }
    }
    Ok(())
}

/// Cross-counter invariants for serving-layer `metrics.v1` documents
/// (DESIGN §14). The engine and fleet counters are not independent:
/// every arrival is either served or typed-shed, the typed shed
/// reasons partition the rejected total, and only served requests can
/// be degraded. Each check only fires when the counters involved are
/// all present, so non-serving registries validate unchanged.
fn validate_serving_counters(counts: &std::collections::BTreeMap<&str, u64>) -> Result<(), String> {
    let conservation = [
        // (arrived, served, rejected) triples for the engine and fleet.
        (
            "serve.requests_arrived_total",
            "serve.requests_served_total",
            "serve.requests_rejected_total",
        ),
        (
            "serve.fleet.requests_arrived_total",
            "serve.fleet.requests_served_total",
            "serve.fleet.requests_shed_total",
        ),
        // WAL ingest (DESIGN §16): every appended record is either
        // applied or typed-rejected, and the applied records partition
        // into inserts and deletes.
        (
            "wal.records_appended_total",
            "wal.records_applied_total",
            "wal.records_rejected_total",
        ),
        (
            "wal.records_applied_total",
            "wal.inserts_total",
            "wal.deletes_total",
        ),
    ];
    for (arrived, served, rejected) in conservation {
        if let (Some(&a), Some(&s), Some(&r)) = (
            counts.get(arrived),
            counts.get(served),
            counts.get(rejected),
        ) {
            if a != s + r {
                return Err(format!(
                    "counter {arrived:?} is {a} but {served:?} + {rejected:?} is {}",
                    s + r
                ));
            }
        }
    }
    if let Some(&rejected) = counts.get("serve.requests_rejected_total") {
        let shed: u64 = counts
            .iter()
            .filter(|(k, _)| k.starts_with("serve.shed_") && k.ends_with("_total"))
            .map(|(_, &v)| v)
            .sum();
        if shed != rejected {
            return Err(format!(
                "serve.shed_*_total counters sum to {shed}, \
                 \"serve.requests_rejected_total\" says {rejected}"
            ));
        }
    }
    let degrade_caps = [
        (
            "serve.degraded_requests_total",
            "serve.requests_served_total",
        ),
        (
            "serve.fleet.degraded_requests_total",
            "serve.fleet.requests_served_total",
        ),
        (
            "serve.fleet.chaos_windows_total",
            "serve.fleet.windows_total",
        ),
        // Compaction (DESIGN §16): a compaction lands at most once per
        // start, starts only on a WAL write, and the fresh segment is
        // scanned at most once per served batch.
        ("compact.completed_total", "compact.started_total"),
        ("compact.started_total", "wal.records_appended_total"),
        ("wal.fresh_scans_total", "serve.batches_total"),
    ];
    for (part, whole) in degrade_caps {
        if let (Some(&p), Some(&w)) = (counts.get(part), counts.get(whole)) {
            if p > w {
                return Err(format!("counter {part:?} ({p}) exceeds {whole:?} ({w})"));
            }
        }
    }
    // Fleet per-window cumulative shed series:
    // `serve.fleet.run<RRR>.w<WWWW>.shed_<reason>_total`. Each
    // (run, reason) series must be monotone non-decreasing in window
    // order — a cumulative counter that ever decreased would mean a
    // window un-shed a request — and the final window's cumulative
    // values, summed across runs and reasons, must reconcile with the
    // all-runs `serve.fleet.requests_shed_total`.
    let mut series: std::collections::BTreeMap<(&str, &str), Vec<(&str, u64)>> =
        std::collections::BTreeMap::new();
    for (k, &v) in counts {
        let Some(rest) = k.strip_prefix("serve.fleet.run") else {
            continue;
        };
        let Some((run, rest)) = rest.split_once(".w") else {
            continue;
        };
        let Some((window, rest)) = rest.split_once(".shed_") else {
            continue;
        };
        let Some(reason) = rest.strip_suffix("_total") else {
            continue;
        };
        // BTreeMap iteration is sorted and window tags are zero-padded,
        // so each series arrives in window order.
        series.entry((run, reason)).or_default().push((window, v));
    }
    for ((run, reason), points) in &series {
        for pair in points.windows(2) {
            let ((w0, v0), (w1, v1)) = (pair[0], pair[1]);
            if v1 < v0 {
                return Err(format!(
                    "fleet shed series run{run} {reason:?} is not monotone: \
                     w{w0} has {v0}, w{w1} has {v1}"
                ));
            }
        }
    }
    if !series.is_empty() {
        if let Some(&total) = counts.get("serve.fleet.requests_shed_total") {
            let last_sum: u64 = series
                .values()
                .map(|points| points.last().map_or(0, |&(_, v)| v))
                .sum();
            if last_sum != total {
                return Err(format!(
                    "fleet shed series final cumulative values sum to {last_sum}, \
                     \"serve.fleet.requests_shed_total\" says {total}"
                ));
            }
        }
    }
    Ok(())
}

/// Validates a `metrics.v1` document as produced by the serving
/// layer's `MetricsSnapshot::to_json`: schema tag, non-empty name, a
/// `counters` object of non-negative integers, a `gauges` object of
/// finite numbers, and a `histograms` array where every entry carries
/// `name`/`count`/`sum`/`overflow`/`p50`/`p99` plus a `buckets` array
/// of `{i, le, count}` objects with strictly increasing indices and
/// edges whose counts (plus overflow) sum to `count`. Both object key
/// sets and the histogram names must be strictly sorted — the writer
/// is canonical, and canonical order is what makes snapshots
/// byte-comparable.
///
/// On top of the per-field shape checks, serving-layer counters are
/// held to their cross-counter invariants (see
/// [`validate_serving_counters`]): arrivals are conserved across
/// served + shed, typed shed reasons partition the rejected total, and
/// degraded/chaos counters never exceed the totals they are part of.
pub fn validate_metrics(text: &str) -> Result<(), String> {
    let doc = Json::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != "metrics.v1" {
        return Err(format!("schema {schema:?}, expected \"metrics.v1\""));
    }
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or("missing \"name\"")?;
    if name.is_empty() {
        return Err("empty \"name\"".to_string());
    }
    let counters = doc
        .get("counters")
        .and_then(Json::as_obj)
        .ok_or("missing \"counters\" object")?;
    let mut prev: Option<&str> = None;
    let mut counts: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for (k, v) in counters {
        if prev.is_some_and(|p| p >= k.as_str()) {
            return Err(format!("counters not strictly sorted at {k:?}"));
        }
        prev = Some(k);
        match v.as_f64() {
            Some(n) if n.is_finite() && n >= 0.0 && n.fract() == 0.0 => {
                counts.insert(k.as_str(), n as u64);
            }
            _ => return Err(format!("counter {k:?} is not a non-negative integer")),
        }
    }
    validate_serving_counters(&counts)?;
    let gauges = doc
        .get("gauges")
        .and_then(Json::as_obj)
        .ok_or("missing \"gauges\" object")?;
    let mut prev: Option<&str> = None;
    for (k, v) in gauges {
        if prev.is_some_and(|p| p >= k.as_str()) {
            return Err(format!("gauges not strictly sorted at {k:?}"));
        }
        prev = Some(k);
        match v.as_f64() {
            Some(n) if n.is_finite() => {}
            _ => return Err(format!("gauge {k:?} is not a finite number")),
        }
    }
    let hists = doc
        .get("histograms")
        .and_then(Json::as_arr)
        .ok_or("missing \"histograms\" array")?;
    let mut prev_name: Option<String> = None;
    for (i, h) in hists.iter().enumerate() {
        let hname = h
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("histogram {i}: missing \"name\""))?;
        if prev_name.as_deref().is_some_and(|p| p >= hname) {
            return Err(format!("histograms not strictly sorted at {hname:?}"));
        }
        prev_name = Some(hname.to_string());
        let int_field = |key: &str| -> Result<u64, String> {
            match h.get(key).and_then(Json::as_f64) {
                Some(n) if n.is_finite() && n >= 0.0 && n.fract() == 0.0 => Ok(n as u64),
                _ => Err(format!(
                    "histogram {hname:?}: {key:?} is not a non-negative integer"
                )),
            }
        };
        let count = int_field("count")?;
        let overflow = int_field("overflow")?;
        for key in ["sum", "p50", "p99"] {
            match h.get(key).and_then(Json::as_f64) {
                Some(n) if n.is_finite() => {}
                _ => {
                    return Err(format!(
                        "histogram {hname:?}: {key:?} is not a finite number"
                    ))
                }
            }
        }
        let (p50, p99) = (
            h.get("p50").and_then(Json::as_f64).unwrap_or(0.0),
            h.get("p99").and_then(Json::as_f64).unwrap_or(0.0),
        );
        if p50 > p99 {
            return Err(format!("histogram {hname:?}: p50 {p50} exceeds p99 {p99}"));
        }
        let buckets = h
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or(format!("histogram {hname:?}: missing \"buckets\" array"))?;
        let mut total = overflow;
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_i = -1i64;
        for (j, b) in buckets.iter().enumerate() {
            let idx = b
                .get("i")
                .and_then(Json::as_f64)
                .ok_or(format!("histogram {hname:?}: bucket {j} missing \"i\""))?;
            if (idx as i64) <= prev_i {
                return Err(format!(
                    "histogram {hname:?}: bucket indices not increasing at {j}"
                ));
            }
            prev_i = idx as i64;
            let le = b
                .get("le")
                .and_then(Json::as_f64)
                .ok_or(format!("histogram {hname:?}: bucket {j} missing \"le\""))?;
            if !le.is_finite() || le <= prev_le {
                return Err(format!(
                    "histogram {hname:?}: bucket edges not increasing at {j}"
                ));
            }
            prev_le = le;
            match b.get("count").and_then(Json::as_f64) {
                Some(n) if n.is_finite() && n >= 1.0 && n.fract() == 0.0 => total += n as u64,
                _ => {
                    return Err(format!(
                        "histogram {hname:?}: bucket {j} count is not a positive integer"
                    ))
                }
            }
        }
        if total != count {
            return Err(format!(
                "histogram {hname:?}: bucket counts sum to {total}, count says {count}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut rep = BenchReport::new("unit_test");
        rep.push(
            MetricRow::new()
                .label("dataset", "toy")
                .label("strategy", "hybrid")
                .value("sim_seconds", 0.25)
                .value("effective_issues", 1234.0),
        );
        rep.push(MetricRow::new().label("note", "empty-values"));
        rep
    }

    #[test]
    fn report_round_trips_through_the_validator() {
        let text = sample().to_json();
        validate_report(&text).expect("valid");
        let doc = Json::parse(&text).expect("parses");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let rows = doc.get("rows").and_then(Json::as_arr).expect("rows");
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0]
                .get("values")
                .and_then(|v| v.get("sim_seconds"))
                .and_then(Json::as_f64),
            Some(0.25)
        );
    }

    #[test]
    fn counters_rows_carry_every_field() {
        let c = Counters {
            issues: 10,
            barriers: 3,
            global_bytes_unique: 7,
            ..Default::default()
        };
        let row = MetricRow::new().counters(&c);
        let keys: Vec<&str> = row.values.iter().map(|(k, _)| k.as_str()).collect();
        for want in [
            "issues",
            "effective_issues",
            "global_bytes_unique",
            "barriers",
            "atomic_conflict_extra",
        ] {
            assert!(keys.contains(&want), "missing {want}");
        }
        assert_eq!(row.values.len(), 12);
    }

    #[test]
    fn strings_with_specials_survive_the_round_trip() {
        let mut rep = BenchReport::new("quote\"and\\slash");
        rep.push(MetricRow::new().label("k\n", "v\t").value("x", -1.5e-3));
        let text = rep.to_json();
        validate_report(&text).expect("valid");
        let doc = Json::parse(&text).expect("parses");
        assert_eq!(
            doc.get("name").and_then(Json::as_str),
            Some("quote\"and\\slash")
        );
        let row = &doc.get("rows").and_then(Json::as_arr).expect("rows")[0];
        assert_eq!(
            row.get("labels")
                .and_then(|l| l.get("k\n"))
                .and_then(Json::as_str),
            Some("v\t")
        );
        assert_eq!(
            row.get("values")
                .and_then(|v| v.get("x"))
                .and_then(Json::as_f64),
            Some(-1.5e-3)
        );
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_report("{}").is_err());
        assert!(validate_report("{\"schema\":\"bench.v2\",\"name\":\"x\",\"rows\":[]}").is_err());
        assert!(validate_report("{\"schema\":\"bench.v1\",\"name\":\"\",\"rows\":[]}").is_err());
        assert!(validate_report(
            "{\"schema\":\"bench.v1\",\"name\":\"x\",\"rows\":[{\"labels\":{},\"values\":{\"a\":\"nan\"}}]}"
        )
        .is_err());
        assert!(validate_report("{\"schema\":\"bench.v1\",\"name\":\"x\",\"rows\":[]}").is_ok());
    }

    #[test]
    fn parser_rejects_trailing_garbage_and_bad_tokens() {
        assert!(Json::parse("{} {}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("truthy").is_err());
        assert_eq!(
            Json::parse("[1, 2.5, -3e2, null, true]").expect("parses"),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.5),
                Json::Num(-300.0),
                Json::Null,
                Json::Bool(true),
            ])
        );
    }

    #[test]
    fn unicode_escapes_decode() {
        let doc = Json::parse("\"caf\\u00e9 \\u2603\"").expect("parses");
        assert_eq!(doc.as_str(), Some("café ☃"));
    }

    #[test]
    fn latency_percentile_validator_enforces_order_and_sign() {
        let mk = |p50: f64, p99: f64| {
            let mut rep = BenchReport::new("serve");
            rep.push(
                MetricRow::new()
                    .label("mode", "cached")
                    .value("p50_latency_s", p50)
                    .value("p99_latency_s", p99)
                    .value("qps", 1000.0),
            );
            rep.push(
                MetricRow::new()
                    .label("mode", "speedup")
                    .value("qps_speedup", 2.0),
            );
            rep.to_json()
        };
        assert_eq!(validate_latency_percentiles(&mk(1e-5, 4e-5)), Ok(1));
        assert_eq!(validate_latency_percentiles(&mk(1e-5, 1e-5)), Ok(1));
        assert!(validate_latency_percentiles(&mk(4e-5, 1e-5))
            .unwrap_err()
            .contains("exceeds"));
        assert!(validate_latency_percentiles(&mk(-1e-5, 1e-5))
            .unwrap_err()
            .contains("negative"));
        // Rows without percentile keys are not counted and not checked.
        let plain = sample().to_json();
        assert_eq!(validate_latency_percentiles(&plain), Ok(0));
    }

    #[test]
    fn chrome_trace_validator_checks_event_shape() {
        let good = "{\"traceEvents\":[\
            {\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"k\"}},\
            {\"ph\":\"X\",\"pid\":0,\"tid\":1,\"name\":\"scan\",\"ts\":0.0,\"dur\":2.5}\
        ],\"displayTimeUnit\":\"ms\"}";
        validate_chrome_trace(good).expect("valid");
        let missing_dur = "{\"traceEvents\":[\
            {\"ph\":\"X\",\"pid\":0,\"tid\":1,\"name\":\"scan\",\"ts\":0.0}]}";
        assert!(validate_chrome_trace(missing_dur).is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":{}}").is_err());
    }

    #[test]
    fn write_is_self_validating() {
        let dir = std::env::temp_dir().join("bench_report_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("out.json");
        sample().write(path.to_str().expect("utf8"));
        let text = std::fs::read_to_string(&path).expect("written");
        validate_report(&text).expect("valid on disk");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_values_panic_instead_of_corrupting() {
        let mut rep = BenchReport::new("bad");
        rep.push(MetricRow::new().value("x", f64::NAN));
        let _ = rep.to_json();
    }

    #[test]
    fn metrics_validator_accepts_canonical_documents() {
        let good = "{\"schema\":\"metrics.v1\",\"name\":\"unit\",\
            \"counters\":{\"a_total\":2,\"b_total\":0},\
            \"gauges\":{\"qps\":12.5},\
            \"histograms\":[{\"name\":\"lat\",\"count\":3,\"sum\":0.5,\
            \"overflow\":1,\"p50\":1e-7,\"p99\":2e-7,\
            \"buckets\":[{\"i\":0,\"le\":1e-7,\"count\":1},\
            {\"i\":4,\"le\":2e-7,\"count\":1}]}]}";
        validate_metrics(good).expect("valid");
    }

    #[test]
    fn metrics_validator_enforces_serving_counter_invariants() {
        // Conservation: arrived != served + rejected.
        let unbalanced = "{\"schema\":\"metrics.v1\",\"name\":\"x\",\
            \"counters\":{\"serve.requests_arrived_total\":10,\
            \"serve.requests_rejected_total\":1,\
            \"serve.requests_served_total\":8},\
            \"gauges\":{},\"histograms\":[]}";
        assert!(validate_metrics(unbalanced)
            .unwrap_err()
            .contains("serve.requests_arrived_total"));
        // Typed shed reasons must partition the rejected total.
        let shed_mismatch = "{\"schema\":\"metrics.v1\",\"name\":\"x\",\
            \"counters\":{\"serve.requests_arrived_total\":10,\
            \"serve.requests_rejected_total\":3,\
            \"serve.requests_served_total\":7,\
            \"serve.shed_queue_full_total\":1,\
            \"serve.shed_rate_limit_total\":1},\
            \"gauges\":{},\"histograms\":[]}";
        assert!(validate_metrics(shed_mismatch)
            .unwrap_err()
            .contains("shed"));
        // Only served requests can be degraded.
        let over_degraded = "{\"schema\":\"metrics.v1\",\"name\":\"x\",\
            \"counters\":{\"serve.degraded_requests_total\":9,\
            \"serve.requests_served_total\":7},\
            \"gauges\":{},\"histograms\":[]}";
        assert!(validate_metrics(over_degraded)
            .unwrap_err()
            .contains("serve.degraded_requests_total"));
        // Fleet: chaos windows are a subset of all windows.
        let chaos_overflow = "{\"schema\":\"metrics.v1\",\"name\":\"x\",\
            \"counters\":{\"serve.fleet.chaos_windows_total\":5,\
            \"serve.fleet.windows_total\":4},\
            \"gauges\":{},\"histograms\":[]}";
        assert!(validate_metrics(chaos_overflow)
            .unwrap_err()
            .contains("serve.fleet.chaos_windows_total"));
        // A consistent serving document still validates.
        let consistent = "{\"schema\":\"metrics.v1\",\"name\":\"x\",\
            \"counters\":{\"serve.degraded_requests_total\":2,\
            \"serve.fleet.chaos_windows_total\":2,\
            \"serve.fleet.windows_total\":4,\
            \"serve.requests_arrived_total\":10,\
            \"serve.requests_rejected_total\":3,\
            \"serve.requests_served_total\":7,\
            \"serve.shed_queue_full_total\":1,\
            \"serve.shed_rate_limit_total\":2},\
            \"gauges\":{},\"histograms\":[]}";
        validate_metrics(consistent).expect("consistent serving counters");
    }

    #[test]
    fn metrics_validator_enforces_wal_and_compaction_invariants() {
        // Appended records must partition into applied + rejected.
        let leaky_log = "{\"schema\":\"metrics.v1\",\"name\":\"x\",\
            \"counters\":{\"wal.records_appended_total\":10,\
            \"wal.records_applied_total\":8,\
            \"wal.records_rejected_total\":1},\
            \"gauges\":{},\"histograms\":[]}";
        assert!(validate_metrics(leaky_log)
            .unwrap_err()
            .contains("wal.records_appended_total"));
        // Applied records must partition into inserts + deletes.
        let phantom_op = "{\"schema\":\"metrics.v1\",\"name\":\"x\",\
            \"counters\":{\"wal.deletes_total\":2,\
            \"wal.inserts_total\":5,\
            \"wal.records_applied_total\":8},\
            \"gauges\":{},\"histograms\":[]}";
        assert!(validate_metrics(phantom_op)
            .unwrap_err()
            .contains("wal.records_applied_total"));
        // A compaction cannot land more often than it started.
        let ghost_compaction = "{\"schema\":\"metrics.v1\",\"name\":\"x\",\
            \"counters\":{\"compact.completed_total\":3,\
            \"compact.started_total\":2},\
            \"gauges\":{},\"histograms\":[]}";
        assert!(validate_metrics(ghost_compaction)
            .unwrap_err()
            .contains("compact.completed_total"));
        // Compactions start on writes; fresh scans happen per batch.
        let eager_compactor = "{\"schema\":\"metrics.v1\",\"name\":\"x\",\
            \"counters\":{\"compact.started_total\":5,\
            \"wal.records_appended_total\":4},\
            \"gauges\":{},\"histograms\":[]}";
        assert!(validate_metrics(eager_compactor)
            .unwrap_err()
            .contains("compact.started_total"));
        let over_scanned = "{\"schema\":\"metrics.v1\",\"name\":\"x\",\
            \"counters\":{\"serve.batches_total\":3,\
            \"wal.fresh_scans_total\":4},\
            \"gauges\":{},\"histograms\":[]}";
        assert!(validate_metrics(over_scanned)
            .unwrap_err()
            .contains("wal.fresh_scans_total"));
        // A consistent ingest document still validates.
        let consistent = "{\"schema\":\"metrics.v1\",\"name\":\"x\",\
            \"counters\":{\"compact.completed_total\":1,\
            \"compact.started_total\":2,\
            \"serve.batches_total\":6,\
            \"wal.deletes_total\":3,\
            \"wal.fresh_scans_total\":5,\
            \"wal.inserts_total\":6,\
            \"wal.records_appended_total\":10,\
            \"wal.records_applied_total\":9,\
            \"wal.records_rejected_total\":1},\
            \"gauges\":{},\"histograms\":[]}";
        validate_metrics(consistent).expect("consistent ingest counters");
    }

    #[test]
    fn metrics_validator_enforces_fleet_shed_series_invariants() {
        // A cumulative per-window series that ever decreases is broken.
        let non_monotone = "{\"schema\":\"metrics.v1\",\"name\":\"x\",\
            \"counters\":{\
            \"serve.fleet.requests_shed_total\":2,\
            \"serve.fleet.run000.w0000.shed_queue_full_total\":3,\
            \"serve.fleet.run000.w0001.shed_queue_full_total\":2},\
            \"gauges\":{},\"histograms\":[]}";
        assert!(validate_metrics(non_monotone)
            .unwrap_err()
            .contains("not monotone"));
        // Final cumulative values must reconcile with the shed total.
        let unreconciled = "{\"schema\":\"metrics.v1\",\"name\":\"x\",\
            \"counters\":{\
            \"serve.fleet.requests_shed_total\":3,\
            \"serve.fleet.run000.w0000.shed_queue_full_total\":1,\
            \"serve.fleet.run000.w0001.shed_queue_full_total\":4},\
            \"gauges\":{},\"histograms\":[]}";
        assert!(validate_metrics(unreconciled)
            .unwrap_err()
            .contains("requests_shed_total"));
        // Monotone series summing (across runs and reasons) to the
        // total validate; runs with different window counts coexist.
        let consistent = "{\"schema\":\"metrics.v1\",\"name\":\"x\",\
            \"counters\":{\
            \"serve.fleet.requests_shed_total\":7,\
            \"serve.fleet.run000.w0000.shed_queue_full_total\":1,\
            \"serve.fleet.run000.w0000.shed_rate_limit_total\":0,\
            \"serve.fleet.run000.w0001.shed_queue_full_total\":2,\
            \"serve.fleet.run000.w0001.shed_rate_limit_total\":2,\
            \"serve.fleet.run001.w0000.shed_queue_full_total\":3},\
            \"gauges\":{},\"histograms\":[]}";
        validate_metrics(consistent).expect("consistent fleet shed series");
    }

    #[test]
    fn metrics_validator_rejects_structural_breakage() {
        let wrong_schema = "{\"schema\":\"bench.v1\",\"name\":\"x\",\
            \"counters\":{},\"gauges\":{},\"histograms\":[]}";
        assert!(validate_metrics(wrong_schema)
            .unwrap_err()
            .contains("schema"));
        let unsorted = "{\"schema\":\"metrics.v1\",\"name\":\"x\",\
            \"counters\":{\"b\":1,\"a\":1},\"gauges\":{},\"histograms\":[]}";
        assert!(validate_metrics(unsorted).unwrap_err().contains("sorted"));
        let fractional = "{\"schema\":\"metrics.v1\",\"name\":\"x\",\
            \"counters\":{\"a\":1.5},\"gauges\":{},\"histograms\":[]}";
        assert!(validate_metrics(fractional)
            .unwrap_err()
            .contains("integer"));
        let bad_sum = "{\"schema\":\"metrics.v1\",\"name\":\"x\",\
            \"counters\":{},\"gauges\":{},\
            \"histograms\":[{\"name\":\"h\",\"count\":5,\"sum\":0.0,\
            \"overflow\":0,\"p50\":0.0,\"p99\":0.0,\
            \"buckets\":[{\"i\":0,\"le\":1e-7,\"count\":2}]}]}";
        assert!(validate_metrics(bad_sum).unwrap_err().contains("sum to"));
        let bad_edges = "{\"schema\":\"metrics.v1\",\"name\":\"x\",\
            \"counters\":{},\"gauges\":{},\
            \"histograms\":[{\"name\":\"h\",\"count\":2,\"sum\":0.0,\
            \"overflow\":0,\"p50\":0.0,\"p99\":0.0,\
            \"buckets\":[{\"i\":0,\"le\":2e-7,\"count\":1},\
            {\"i\":1,\"le\":1e-7,\"count\":1}]}]}";
        assert!(validate_metrics(bad_edges).unwrap_err().contains("edges"));
        let p_inverted = "{\"schema\":\"metrics.v1\",\"name\":\"x\",\
            \"counters\":{},\"gauges\":{},\
            \"histograms\":[{\"name\":\"h\",\"count\":1,\"sum\":0.0,\
            \"overflow\":0,\"p50\":2.0,\"p99\":1.0,\
            \"buckets\":[{\"i\":0,\"le\":1e-7,\"count\":1}]}]}";
        assert!(validate_metrics(p_inverted)
            .unwrap_err()
            .contains("exceeds"));
    }
}
