//! Small helpers shared by the harness binaries.

use std::time::Instant;

/// Wall-clock measurement of a closure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timed<R> {
    /// The closure's return value.
    pub value: R,
    /// Host wall-clock seconds spent.
    pub host_seconds: f64,
}

impl<R> Timed<R> {
    /// Runs `f` and records its wall-clock duration.
    pub fn run(f: impl FnOnce() -> R) -> Self {
        let t0 = Instant::now();
        let value = f();
        Self {
            value,
            host_seconds: t0.elapsed().as_secs_f64(),
        }
    }
}

/// One row of a benchmark report.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Dataset name.
    pub dataset: String,
    /// Distance name.
    pub distance: String,
    /// Method label ("Baseline" / "RAFT" / "CPU").
    pub method: String,
    /// Simulated GPU seconds (0 for CPU rows).
    pub sim_seconds: f64,
    /// Host wall-clock seconds spent producing the result.
    pub host_seconds: f64,
}

/// Parses a `--scale <f>` / `--seed <n>` style flag from argv, returning
/// the default when absent or malformed.
pub fn parse_scale(args: &[String], flag: &str, default: f64) -> f64 {
    args.windows(2)
        .find(|w| w[0] == flag)
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_elapsed() {
        let t = Timed::run(|| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            42
        });
        assert_eq!(t.value, 42);
        assert!(t.host_seconds >= 0.009);
    }

    #[test]
    fn parse_scale_reads_flag_or_default() {
        let args: Vec<String> = ["prog", "--scale", "0.02"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_scale(&args, "--scale", 0.01), 0.02);
        assert_eq!(parse_scale(&args, "--seed", 7.0), 7.0);
        let bad: Vec<String> = ["prog", "--scale", "abc"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_scale(&bad, "--scale", 0.01), 0.01);
    }
}
