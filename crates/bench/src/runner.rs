//! Small helpers shared by the harness binaries.

use std::time::Instant;

/// Wall-clock measurement of a closure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timed<R> {
    /// The closure's return value.
    pub value: R,
    /// Host wall-clock seconds spent.
    pub host_seconds: f64,
}

impl<R> Timed<R> {
    /// Runs `f` and records its wall-clock duration.
    pub fn run(f: impl FnOnce() -> R) -> Self {
        let t0 = Instant::now();
        let value = f();
        Self {
            value,
            host_seconds: t0.elapsed().as_secs_f64(),
        }
    }
}

/// One row of a benchmark report.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Dataset name.
    pub dataset: String,
    /// Distance name.
    pub distance: String,
    /// Method label ("Baseline" / "RAFT" / "CPU").
    pub method: String,
    /// Simulated GPU seconds (0 for CPU rows).
    pub sim_seconds: f64,
    /// Host wall-clock seconds spent producing the result.
    pub host_seconds: f64,
}

/// Parses a `--scale <f>` style flag from argv, returning the default
/// when absent or malformed.
pub fn parse_scale(args: &[String], flag: &str, default: f64) -> f64 {
    args.windows(2)
        .find(|w| w[0] == flag)
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

/// Parses a `--seed <n>` style unsigned-integer flag from argv.
///
/// Returns the default when the flag is absent. A present-but-malformed
/// value (`--seed 1.7`, `--seed abc`) terminates the process with exit
/// code 2 instead of silently truncating or falling back, so a typo in a
/// benchmark invocation cannot masquerade as a differently-seeded run.
pub fn parse_u64(args: &[String], flag: &str, default: u64) -> u64 {
    match try_parse_u64(args, flag) {
        Ok(v) => v.unwrap_or(default),
        Err(raw) => {
            eprintln!("error: {flag} expects an unsigned integer, got {raw:?}");
            std::process::exit(2);
        }
    }
}

/// Non-exiting form of [`parse_u64`]: `Ok(None)` when the flag is
/// absent, `Err(raw_value)` when present but not a valid `u64`.
pub fn try_parse_u64(args: &[String], flag: &str) -> Result<Option<u64>, String> {
    match args.windows(2).find(|w| w[0] == flag) {
        None => Ok(None),
        Some(w) => w[1].parse::<u64>().map(Some).map_err(|_| w[1].clone()),
    }
}

/// Parses a `--json <path>` style flag taking a string operand,
/// returning `None` when absent.
pub fn parse_path(args: &[String], flag: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_elapsed() {
        let t = Timed::run(|| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            42
        });
        assert_eq!(t.value, 42);
        assert!(t.host_seconds >= 0.009);
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_u64_reads_flag_or_default() {
        assert_eq!(parse_u64(&argv(&["prog", "--seed", "42"]), "--seed", 7), 42);
        assert_eq!(parse_u64(&argv(&["prog"]), "--seed", 7), 7);
    }

    #[test]
    fn try_parse_u64_rejects_non_integers() {
        assert_eq!(
            try_parse_u64(&argv(&["prog", "--seed", "1.7"]), "--seed"),
            Err("1.7".to_string())
        );
        assert_eq!(
            try_parse_u64(&argv(&["prog", "--seed", "-3"]), "--seed"),
            Err("-3".to_string())
        );
        assert_eq!(try_parse_u64(&argv(&["prog"]), "--seed"), Ok(None));
        assert_eq!(
            try_parse_u64(&argv(&["prog", "--seed", "9"]), "--seed"),
            Ok(Some(9))
        );
    }

    #[test]
    fn parse_path_reads_operand() {
        assert_eq!(
            parse_path(&argv(&["prog", "--json", "out.json"]), "--json"),
            Some("out.json".to_string())
        );
        assert_eq!(parse_path(&argv(&["prog"]), "--json"), None);
    }

    #[test]
    fn parse_scale_reads_flag_or_default() {
        let args: Vec<String> = ["prog", "--scale", "0.02"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_scale(&args, "--scale", 0.01), 0.02);
        assert_eq!(parse_scale(&args, "--seed", 7.0), 7.0);
        let bad: Vec<String> = ["prog", "--scale", "abc"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_scale(&bad, "--scale", 0.01), 0.01);
    }
}
