//! Shared benchmark-suite configuration: which datasets, at which scales,
//! with which distance groups — one place so every harness binary agrees
//! with the others and with EXPERIMENTS.md.

use datasets::DatasetProfile;
use semiring::Distance;
use sparse::CsrMatrix;

/// Query rows per k-NN benchmark (the paper queries the full dataset; we
/// subsample queries so the simulator finishes in minutes — ratios are
/// unaffected since both methods see the same queries).
pub const QUERY_ROWS: usize = 256;

/// Neighbors per query, matching a typical `k` for the paper's
/// brute-force `NearestNeighbors` runs.
pub const KNN_K: usize = 10;

/// Default dimension down-scale factor per dataset, tuned so each
/// benchmark run takes seconds on the simulator.
pub fn default_scale(name: &str) -> f64 {
    match name {
        "MovieLens" => 0.02,
        "SEC Edgar" => 0.01,
        "scRNA" => 0.01,
        "NY Times BoW" => 0.01,
        _ => 0.01,
    }
}

/// Default *degree* scale per dataset. Degrees shrink less than
/// dimensions (or not at all) because the kernels' comparative behaviour
/// — merge-loop divergence in Alg 2, hash-table load in Alg 3 — is
/// driven by absolute row degrees, which uniform scaling would crush to
/// 1-2 nonzeros. SEC Edgar's real degrees are already tiny (max 51), so
/// they are kept verbatim; the cost is a density higher than Table 2's,
/// which is recorded in EXPERIMENTS.md.
pub fn default_degree_scale(name: &str) -> f64 {
    match name {
        "MovieLens" => 0.10,
        "SEC Edgar" => 1.0,
        "scRNA" => 0.02,
        "NY Times BoW" => 0.10,
        _ => 0.10,
    }
}

/// The benchmark datasets. With an explicit `scale`, dimensions shrink by
/// `scale` and degrees by `sqrt(scale)`; otherwise the per-dataset
/// defaults apply.
pub fn bench_profiles(scale: Option<f64>) -> Vec<DatasetProfile> {
    datasets::all_profiles()
        .into_iter()
        .map(|p| match scale {
            Some(s) => p.scaled_with(s, s.sqrt().min(1.0)),
            None => p.scaled_with(default_scale(p.name), default_degree_scale(p.name)),
        })
        .collect()
}

/// Slices the first [`QUERY_ROWS`] rows as the query set.
pub fn query_slab(index: &CsrMatrix<f32>) -> CsrMatrix<f32> {
    index.slice_rows(0..QUERY_ROWS.min(index.rows()))
}

/// Table 3's "Dot Product Based" distance group, in paper order.
pub fn dot_based_distances() -> Vec<Distance> {
    vec![
        Distance::Correlation,
        Distance::Cosine,
        Distance::DiceSorensen,
        Distance::Euclidean,
        Distance::Hellinger,
        Distance::Jaccard,
        Distance::RusselRao,
    ]
}

/// Table 3's "Non-Trivial Metrics" group, in paper order.
pub fn non_trivial_distances() -> Vec<Distance> {
    vec![
        Distance::Canberra,
        Distance::Chebyshev,
        Distance::Hamming,
        Distance::JensenShannon,
        Distance::KlDivergence,
        Distance::Manhattan,
        Distance::Minkowski,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_cover_table3s_fourteen_rows() {
        assert_eq!(dot_based_distances().len(), 7);
        assert_eq!(non_trivial_distances().len(), 7);
        for d in dot_based_distances() {
            assert!(
                baseline::cusparse::baseline_supports(d),
                "{d} must be csrgemm-supported"
            );
        }
        for d in non_trivial_distances() {
            assert!(
                !baseline::cusparse::baseline_supports(d),
                "{d} must fall back to the naive baseline"
            );
        }
    }

    #[test]
    fn bench_profiles_apply_scales() {
        let ps = bench_profiles(Some(0.001));
        assert_eq!(ps.len(), 4);
        assert!(ps.iter().all(|p| p.rows < 1000));
        let defaults = bench_profiles(None);
        assert!(defaults[0].rows > ps[0].rows);
    }

    #[test]
    fn query_slab_caps_rows() {
        let m = CsrMatrix::<f32>::zeros(10, 4);
        assert_eq!(query_slab(&m).rows(), 10);
        let m = CsrMatrix::<f32>::zeros(1000, 4);
        assert_eq!(query_slab(&m).rows(), QUERY_ROWS);
    }
}
