//! Resilience under injected faults: exercises the retry + fallback
//! cascade of the pairwise primitive against every `sim-fault` class and
//! reports what the policy engine absorbed.
//!
//! Each scenario arms one fault class on the device (seeded,
//! deterministic — see `gpu_sim::FaultPlan`), runs the hybrid kernel
//! with the standard [`kernels::ResiliencePolicy`], and checks the
//! distances against a fault-free reference run. The `bench.v1` rows
//! carry the `ResilienceReport` fields (`attempts`, `faults_absorbed`,
//! `downgraded`, simulated backoff) plus the final plan as labels, so CI
//! can track both the absorption behavior and its overhead over time.
//!
//! Usage: `cargo run --release -p bench --bin resilience_report \
//!   [-- --seed 1 --scale 0.004] [--json out.json]`

use bench::report::{BenchReport, MetricRow};
use datasets::DatasetProfile;
use gpu_sim::{Device, FaultPlan};
use kernels::{pairwise_distances, PairwiseOptions, ResiliencePolicy, SmemMode, Strategy};
use semiring::{Distance, DistanceParams};

struct Scenario {
    name: &'static str,
    plan: FaultPlan,
    strategy: Strategy,
    smem_mode: SmemMode,
}

fn scenarios(seed: u64) -> Vec<Scenario> {
    vec![
        Scenario {
            name: "clean",
            plan: FaultPlan::none(),
            strategy: Strategy::HybridCooSpmv,
            smem_mode: SmemMode::Hash,
        },
        Scenario {
            name: "transient-launch",
            plan: FaultPlan::seeded(seed).with_transient_launch_failures(100),
            strategy: Strategy::HybridCooSpmv,
            smem_mode: SmemMode::Hash,
        },
        Scenario {
            name: "ecc-bit-flip",
            plan: FaultPlan::seeded(seed).with_bit_flips("csr.values", 100),
            strategy: Strategy::HybridCooSpmv,
            smem_mode: SmemMode::Hash,
        },
        Scenario {
            name: "hash-overflow",
            plan: FaultPlan::seeded(seed).with_hash_overflows(1000),
            strategy: Strategy::HybridCooSpmv,
            smem_mode: SmemMode::Hash,
        },
        Scenario {
            name: "smem-alloc-failure",
            plan: FaultPlan::seeded(seed).with_smem_alloc_failures(1000),
            strategy: Strategy::HybridCooSpmv,
            smem_mode: SmemMode::Hash,
        },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = bench::parse_u64(&args, "--seed", 1);
    let scale = args
        .windows(2)
        .find(|w| w[0] == "--scale")
        .and_then(|w| w[1].parse::<f64>().ok())
        .unwrap_or(0.004);
    let json_path = bench::parse_path(&args, "--json");
    let mut report = BenchReport::new("resilience_report");

    let index = DatasetProfile::movielens().scaled(scale).generate(seed);
    let queries = index.slice_rows(0..index.rows().min(48));
    let distance = Distance::Cosine;
    let params = DistanceParams::default();

    // Fault-free reference the resilient runs must reproduce exactly.
    let reference = pairwise_distances(
        &Device::volta(),
        &queries,
        &index,
        distance,
        &params,
        &PairwiseOptions {
            strategy: Strategy::HybridCooSpmv,
            smem_mode: SmemMode::Hash,
            resilience: None,
        },
    )
    .expect("reference run");

    println!(
        "resilience report: {} queries x {} index rows, {} (seed {seed})",
        queries.rows(),
        index.rows(),
        distance.name(),
    );
    println!(
        "{:<20} {:>8} {:>9} {:>11} {:>13}  final plan",
        "scenario", "attempts", "absorbed", "downgraded", "backoff(us)"
    );

    for sc in scenarios(seed) {
        let dev = Device::volta().with_fault_plan(sc.plan.clone());
        let opts = PairwiseOptions {
            strategy: sc.strategy,
            smem_mode: sc.smem_mode,
            resilience: Some(ResiliencePolicy::with_retries(30)),
        };
        let r = pairwise_distances(&dev, &queries, &index, distance, &params, &opts)
            .expect("policy absorbs every injected fault class");
        let rep = r.resilience.as_ref().expect("policy produces a report");

        let diff = r.distances.max_abs_diff(&reference.distances);
        assert!(
            diff == 0.0,
            "{}: resilient distances drifted from the fault-free reference by {diff}",
            sc.name
        );

        println!(
            "{:<20} {:>8} {:>9} {:>11} {:>13.1}  {}/{:?}",
            sc.name,
            rep.attempts,
            rep.faults_absorbed.len(),
            rep.downgraded,
            rep.backoff_seconds * 1e6,
            rep.final_strategy.name(),
            rep.final_smem,
        );
        for fault in &rep.faults_absorbed {
            println!("    absorbed: {fault}");
        }

        report.push(
            MetricRow::new()
                .label("scenario", sc.name)
                .label("requested_strategy", sc.strategy.name())
                .label("final_strategy", rep.final_strategy.name())
                .label("final_smem", &format!("{:?}", rep.final_smem))
                .value("attempts", f64::from(rep.attempts))
                .value("faults_absorbed", rep.faults_absorbed.len() as f64)
                .value("downgraded", f64::from(u8::from(rep.downgraded)))
                .value("backoff_seconds", rep.backoff_seconds)
                .value("sim_seconds", r.sim_seconds())
                .value("max_abs_diff_vs_clean", diff),
        );
    }

    if let Some(path) = json_path {
        report.write(&path);
        println!("wrote {path}");
    }
}
