//! Regenerates **Table 3** — "Benchmark Results for all datasets under
//! consideration" — baseline vs. our hybrid kernel for all fourteen
//! benchmark distances on all four (synthetic, scaled) datasets.
//!
//! Method mapping, exactly as §4.2 describes:
//!
//! * **Baseline**, dot-product group → cuSPARSE-style `csrgemm()`
//!   pipeline (explicit `Bᵀ`, sparse output, densification).
//! * **Baseline**, non-trivial group → the naive full-union CSR kernel
//!   (Alg 2), "for the distances which cuSPARSE does not support".
//! * **RAFT (ours)** → the load-balanced hybrid CSR+COO kernel with the
//!   hash-table shared-memory strategy, the configuration §4.2
//!   benchmarks.
//!
//! Each cell performs an end-to-end k-NN query (`k = 10`) of 256 query
//! rows against the full index. Times are *simulated GPU seconds* from
//! the shared roofline cost model; the paper's absolute numbers are not
//! reproducible without the authors' V100, but the winner and rough
//! factor per cell are the reproduction targets (see EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p bench --bin table3 \
//!   [-- --scale 0.01 --seed 1] [--json out.json]`

use baseline::cusparse::{baseline_supports, csrgemm_pairwise};
use bench::report::{BenchReport, MetricRow};
use bench::runner::Timed;
use bench::suite::{bench_profiles, dot_based_distances, non_trivial_distances, query_slab, KNN_K};
use gpu_sim::Device;
use kernels::{pairwise_distances, PairwiseOptions, SmemMode, Strategy};
use neighbors::top_k_smallest;
use semiring::{Distance, DistanceParams};
use sparse::CsrMatrix;

struct Cell {
    baseline_sim: f64,
    raft_sim: f64,
    host_seconds: f64,
}

fn run_cell(
    dev: &Device,
    queries: &CsrMatrix<f32>,
    index: &CsrMatrix<f32>,
    distance: Distance,
    params: &DistanceParams,
) -> Cell {
    let timed = Timed::run(|| {
        // --- Baseline ------------------------------------------------
        let baseline_sim = if baseline_supports(distance) {
            let r = csrgemm_pairwise(dev, queries, index, distance, params);
            for i in 0..queries.rows() {
                let _ = top_k_smallest(r.distances.row(i), KNN_K);
            }
            r.report.sim_seconds
        } else {
            let opts = PairwiseOptions {
                strategy: Strategy::NaiveCsr,
                smem_mode: SmemMode::Auto,
                resilience: None,
            };
            let r = pairwise_distances(dev, queries, index, distance, params, &opts)
                .expect("naive baseline runs");
            for i in 0..queries.rows() {
                let _ = top_k_smallest(r.distances.row(i), KNN_K);
            }
            r.sim_seconds()
        };

        // --- RAFT-style hybrid (hash strategy, §4.2) ------------------
        let opts = PairwiseOptions {
            strategy: Strategy::HybridCooSpmv,
            smem_mode: SmemMode::Hash,
            resilience: None,
        };
        let r =
            pairwise_distances(dev, queries, index, distance, params, &opts).expect("hybrid runs");
        for i in 0..queries.rows() {
            let _ = top_k_smallest(r.distances.row(i), KNN_K);
        }
        (baseline_sim, r.sim_seconds())
    });
    Cell {
        baseline_sim: timed.value.0,
        raft_sim: timed.value.1,
        host_seconds: timed.host_seconds,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .windows(2)
        .find(|w| w[0] == "--scale")
        .and_then(|w| w[1].parse::<f64>().ok());
    let seed = bench::parse_u64(&args, "--seed", 1);
    let json_path = bench::parse_path(&args, "--json");
    let mut report = BenchReport::new("table3");
    let dev = Device::volta();
    let params = DistanceParams { minkowski_p: 3.0 };

    println!(
        "Table 3: baseline vs RAFT-style hybrid (simulated GPU seconds, k-NN k={KNN_K}, 256 queries)"
    );
    for profile in bench_profiles(scale) {
        let index = profile.generate(seed);
        let queries = query_slab(&index);
        println!(
            "\n== {} ({}x{}, nnz {}, density {:.4}%) ==",
            profile.name,
            index.rows(),
            index.cols(),
            index.nnz(),
            index.density() * 100.0
        );
        println!(
            "{:<16} {:>14} {:>14} {:>9}  {:>9}",
            "Distance", "Baseline(s)", "RAFT(s)", "Speedup", "host(s)"
        );

        println!("-- Dot Product Based ------------------------------------------------");
        let mut group_speedups = Vec::new();
        for d in dot_based_distances() {
            let c = run_cell(&dev, &queries, &index, d, &params);
            let speedup = c.baseline_sim / c.raft_sim.max(1e-12);
            group_speedups.push(speedup);
            println!(
                "{:<16} {:>14.6} {:>14.6} {:>8.2}x  {:>9.2}",
                d.name(),
                c.baseline_sim,
                c.raft_sim,
                speedup,
                c.host_seconds
            );
            report.push(cell_row(profile.name, "dot-product", d.name(), &c, speedup));
        }
        let gm = geometric_mean(&group_speedups);
        println!("{:<16} {:>38} {:>8.2}x", "(geo-mean)", "", gm);

        println!("-- Non-Trivial Metrics ----------------------------------------------");
        let mut group_speedups = Vec::new();
        for d in non_trivial_distances() {
            let c = run_cell(&dev, &queries, &index, d, &params);
            let speedup = c.baseline_sim / c.raft_sim.max(1e-12);
            group_speedups.push(speedup);
            println!(
                "{:<16} {:>14.6} {:>14.6} {:>8.2}x  {:>9.2}",
                d.name(),
                c.baseline_sim,
                c.raft_sim,
                speedup,
                c.host_seconds
            );
            report.push(cell_row(profile.name, "non-trivial", d.name(), &c, speedup));
        }
        let gm = geometric_mean(&group_speedups);
        println!("{:<16} {:>38} {:>8.2}x", "(geo-mean)", "", gm);
    }
    println!(
        "\npaper shape targets: RAFT dominates every Non-Trivial cell (4-30x);\n\
         the Dot Product group is competitive (RAFT wins 2 of 4 datasets)."
    );
    if let Some(path) = json_path {
        report.write(&path);
        println!("wrote {path}");
    }
}

fn cell_row(dataset: &str, group: &str, distance: &str, c: &Cell, speedup: f64) -> MetricRow {
    MetricRow::new()
        .label("dataset", dataset)
        .label("group", group)
        .label("distance", distance)
        .value("baseline_sim_seconds", c.baseline_sim)
        .value("raft_sim_seconds", c.raft_sim)
        .value("speedup", speedup)
        .value("host_seconds", c.host_seconds)
}

fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}
