//! Regenerates **Table 2** — "Datasets used in experiments": size,
//! density, min degree and max degree per dataset — from the synthetic
//! replicas, next to the paper's published values.
//!
//! Usage: `cargo run --release -p bench --bin table2 \
//!   [-- --scale 0.01 --seed 1] [--json out.json]`

use bench::report::{BenchReport, MetricRow};
use bench::suite::default_scale;
use sparse::DegreeStats;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .windows(2)
        .find(|w| w[0] == "--scale")
        .and_then(|w| w[1].parse::<f64>().ok());
    let seed = bench::parse_u64(&args, "--seed", 1);
    let json_path = bench::parse_path(&args, "--json");
    let mut report = BenchReport::new("table2");

    println!("Table 2: Datasets used in experiments (synthetic replicas)");
    println!("{}", "-".repeat(100));
    println!(
        "{:<14} {:>18} {:>9} {:>8} {:>8} | {:>18} {:>9} {:>8} {:>8}",
        "Dataset",
        "Size",
        "Density",
        "MinDeg",
        "MaxDeg",
        "paper: Size",
        "Density",
        "MinDeg",
        "MaxDeg"
    );
    println!("{}", "-".repeat(100));
    // Uniform scaling: Table 2 reports the datasets' shape statistics,
    // which uniform scaling preserves (density exactly, degrees
    // proportionally).
    for profile in datasets::all_profiles() {
        let s = scale.unwrap_or_else(|| default_scale(profile.name));
        let profile = profile.scaled(s);
        let m = profile.generate(seed);
        let s = DegreeStats::of(&m);
        let paper = profile.paper;
        println!(
            "{:<14} {:>18} {:>8.4}% {:>8} {:>8} | {:>18} {:>8.4}% {:>8} {:>8}",
            profile.name,
            format!("({}, {})", s.rows, s.cols),
            s.density * 100.0,
            s.min_degree,
            s.max_degree,
            format!("({}K, {}K)", paper.size.0 / 1000, paper.size.1 / 1000),
            paper.density * 100.0,
            paper.min_degree,
            paper.max_degree,
        );
        report.push(
            MetricRow::new()
                .label("dataset", profile.name)
                .value("rows", s.rows as f64)
                .value("cols", s.cols as f64)
                .value("density", s.density)
                .value("min_degree", s.min_degree as f64)
                .value("max_degree", s.max_degree as f64)
                .value("paper_density", paper.density)
                .value("paper_min_degree", paper.min_degree as f64)
                .value("paper_max_degree", paper.max_degree as f64),
        );
    }
    println!("{}", "-".repeat(100));
    println!(
        "note: replicas are scaled down (default per-dataset scales); density is\n\
         preserved under scaling while min/max degree scale with the factor."
    );
    if let Some(path) = json_path {
        report.write(&path);
        println!("wrote {path}");
    }
}
