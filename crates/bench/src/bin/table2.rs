//! Regenerates **Table 2** — "Datasets used in experiments": size,
//! density, min degree and max degree per dataset — from the synthetic
//! replicas, next to the paper's published values.
//!
//! Usage: `cargo run --release -p bench --bin table2 [-- --scale 0.01 --seed 1]`

use bench::parse_scale;
use bench::suite::default_scale;
use sparse::DegreeStats;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .windows(2)
        .find(|w| w[0] == "--scale")
        .and_then(|w| w[1].parse::<f64>().ok());
    let seed = parse_scale(&args, "--seed", 1.0) as u64;

    println!("Table 2: Datasets used in experiments (synthetic replicas)");
    println!("{}", "-".repeat(100));
    println!(
        "{:<14} {:>18} {:>9} {:>8} {:>8} | {:>18} {:>9} {:>8} {:>8}",
        "Dataset",
        "Size",
        "Density",
        "MinDeg",
        "MaxDeg",
        "paper: Size",
        "Density",
        "MinDeg",
        "MaxDeg"
    );
    println!("{}", "-".repeat(100));
    // Uniform scaling: Table 2 reports the datasets' shape statistics,
    // which uniform scaling preserves (density exactly, degrees
    // proportionally).
    for profile in datasets::all_profiles() {
        let s = scale.unwrap_or_else(|| default_scale(profile.name));
        let profile = profile.scaled(s);
        let m = profile.generate(seed);
        let s = DegreeStats::of(&m);
        let paper = profile.paper;
        println!(
            "{:<14} {:>18} {:>8.4}% {:>8} {:>8} | {:>18} {:>8.4}% {:>8} {:>8}",
            profile.name,
            format!("({}, {})", s.rows, s.cols),
            s.density * 100.0,
            s.min_degree,
            s.max_degree,
            format!("({}K, {}K)", paper.size.0 / 1000, paper.size.1 / 1000),
            paper.density * 100.0,
            paper.min_degree,
            paper.max_degree,
        );
    }
    println!("{}", "-".repeat(100));
    println!(
        "note: replicas are scaled down (default per-dataset scales); density is\n\
         preserved under scaling while min/max degree scale with the factor."
    );
}
