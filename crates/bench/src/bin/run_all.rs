//! Runs every evaluation harness in sequence and tees each one's output
//! into `experiments_output/` — the single command that regenerates the
//! full evaluation section. Each harness also writes its machine-readable
//! `bench.v1` document to `experiments_output/BENCH_<name>.json`, which
//! `xtask check_bench_json` validates in CI.
//!
//! Usage: `cargo run --release -p bench --bin run_all [-- --seed 1]`
//!
//! (Each harness is invoked as a subprocess of the same build, so their
//! `--scale`/`--seed` defaults and flags apply unchanged.)

use std::fs;
use std::path::Path;
use std::process::Command;

const HARNESSES: [&str; 13] = [
    "table2",
    "figure1",
    "table3",
    "memory_footprint",
    "speedup",
    "counters_report",
    "arch_compare",
    "resilience_report",
    "shard_scaling",
    "ann_recall",
    "serve_throughput",
    "serve_fleet",
    "serve_ingest",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = Path::new("experiments_output");
    fs::create_dir_all(out_dir).expect("can create experiments_output/");

    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();

    let mut failures = 0;
    for name in HARNESSES {
        println!("=== {name} ===");
        let bin = exe_dir.join(name);
        let json_path = out_dir.join(format!("BENCH_{name}.json"));
        let output = Command::new(&bin)
            .args(&args)
            .arg("--json")
            .arg(&json_path)
            .output()
            .unwrap_or_else(|e| panic!("cannot run {}: {e}", bin.display()));
        let mut text = String::from_utf8_lossy(&output.stdout).into_owned();
        if !output.stderr.is_empty() {
            text.push_str("\n--- stderr ---\n");
            text.push_str(&String::from_utf8_lossy(&output.stderr));
        }
        let path = out_dir.join(format!("{name}.txt"));
        fs::write(&path, &text).expect("can write harness output");
        if output.status.success() {
            println!("ok -> {}", path.display());
        } else {
            failures += 1;
            println!("FAILED (see {})", path.display());
        }
    }
    println!(
        "\n{} of {} harnesses succeeded; outputs in {}/",
        HARNESSES.len() - failures,
        HARNESSES.len(),
        out_dir.display()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
