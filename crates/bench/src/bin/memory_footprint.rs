//! Regenerates **§4.3 (Memory Footprint)**: the density of the cuSPARSE
//! `csrgemm()` dot-product output per dataset, its explicit-transpose and
//! internal-workspace allocations, and the comparison against the hybrid
//! kernel's `nnz(B)` workspace.
//!
//! Paper observations being reproduced:
//! * output density ≥ 57 % on MovieLens, ~98 % on NY Times, 100 % on
//!   scRNA, low and variable on SEC Edgar;
//! * the sparse CSR output costs 2× a dense matrix at 100 % density and
//!   still requires a separate dense allocation;
//! * cuSPARSE needs hundreds of MB of internal workspace while "our dot
//!   product semiring required a workspace buffer of size nnz(B) per
//!   batch".
//!
//! Usage: `cargo run --release -p bench --bin memory_footprint \
//!   [-- --scale 0.01 --seed 1] [--json out.json]`

use baseline::cusparse::csrgemm_pairwise;
use bench::report::{BenchReport, MetricRow};
use bench::suite::{default_scale, query_slab};
use gpu_sim::Device;
use kernels::{pairwise_distances, PairwiseOptions, SmemMode, Strategy};
use semiring::{Distance, DistanceParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .windows(2)
        .find(|w| w[0] == "--scale")
        .and_then(|w| w[1].parse::<f64>().ok());
    let seed = bench::parse_u64(&args, "--seed", 1);
    let json_path = bench::parse_path(&args, "--json");
    let mut report = BenchReport::new("memory_footprint");
    let dev = Device::volta();
    let params = DistanceParams::default();

    println!("Section 4.3: memory footprint per query batch (256 queries x full index)");
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "Dataset", "out dens", "dense KiB", "csr out KiB", "B^T KiB", "work KiB", "ours work KiB"
    );
    // Output density is governed by absolute degree mass, which uniform
    // scaling destroys; scale degrees by sqrt(factor) instead so the
    // intersection structure survives the shrink (see DESIGN.md).
    for profile in datasets::all_profiles() {
        let s = scale.unwrap_or_else(|| default_scale(profile.name));
        let profile = profile.scaled_with(s, s.sqrt());
        let index = profile.generate(seed);
        let queries = query_slab(&index);

        // cuSPARSE-style pipeline on the dot product.
        let r = csrgemm_pairwise(&dev, &queries, &index, Distance::Cosine, &params);

        // Hybrid pipeline on the same distance: workspace = nnz(B) COO
        // row array (+ norm vectors).
        let opts = PairwiseOptions {
            strategy: Strategy::HybridCooSpmv,
            smem_mode: SmemMode::Hash,
            resilience: None,
        };
        let ours = pairwise_distances(&dev, &queries, &index, Distance::Cosine, &params, &opts)
            .expect("hybrid runs");

        println!(
            "{:<14} {:>9.1}% {:>10} {:>12} {:>12} {:>12} {:>12}",
            profile.name,
            r.report.output_density * 100.0,
            r.report.densified_bytes / 1024,
            r.report.output_csr_bytes / 1024,
            r.report.transpose_bytes / 1024,
            r.report.workspace_bytes / 1024,
            ours.memory.workspace_bytes / 1024,
        );
        report.push(
            MetricRow::new()
                .label("dataset", profile.name)
                .label("section", "footprint")
                .value("output_density", r.report.output_density)
                .value("densified_bytes", r.report.densified_bytes as f64)
                .value("output_csr_bytes", r.report.output_csr_bytes as f64)
                .value("transpose_bytes", r.report.transpose_bytes as f64)
                .value("workspace_bytes", r.report.workspace_bytes as f64)
                .value("ours_workspace_bytes", ours.memory.workspace_bytes as f64),
        );
    }
    println!(
        "\npaper shape targets: scRNA fully dense output; NY Times ~98%;\n\
         MovieLens >= 57%; SEC Edgar low/variable. csrgemm's workspace and\n\
         transpose dwarf the hybrid kernel's nnz(B) buffer on every dataset."
    );

    // §4.3's batch-to-batch variance claim, per n-gram size: "The SEC
    // Edgar datasets had the highest variance in density from
    // batch-to-batch and were significantly different between n-gram
    // sizes. The unigram and bigram dataset ranged from 5% to 25% output
    // density ... while trigrams ranged from 24% to 43%."
    println!("\nSEC Edgar output density per query batch, by n-gram size:");
    println!(
        "{:<18} {:>10} {:>10} {:>10}",
        "variant", "min dens", "max dens", "spread"
    );
    for n in [1usize, 2, 3] {
        let mut profile = datasets::DatasetProfile::sec_edgar_ngram(n).scaled_with(0.004, 1.0);
        if n < 3 {
            // Uni/bigram vocabularies are intrinsically small; scaling
            // them down with the row count would break the tokenization
            // semantics.
            profile.cols = datasets::DatasetProfile::sec_edgar_ngram(n).cols;
        }
        let index = profile.generate(seed + n as u64);
        let batch_rows = 64;
        let mut densities = Vec::new();
        let mut off = 0;
        while off < index.rows().min(batch_rows * 8) {
            let end = (off + batch_rows).min(index.rows());
            let queries = index.slice_rows(off..end);
            let r = csrgemm_pairwise(&dev, &queries, &index, Distance::Cosine, &params);
            densities.push(r.report.output_density);
            off = end;
        }
        let min = densities.iter().copied().fold(f64::INFINITY, f64::min);
        let max = densities.iter().copied().fold(0.0f64, f64::max);
        println!(
            "{:<18} {:>9.1}% {:>9.1}% {:>9.1}pp",
            profile.name,
            min * 100.0,
            max * 100.0,
            (max - min) * 100.0
        );
        report.push(
            MetricRow::new()
                .label("dataset", profile.name)
                .label("section", "batch_density")
                .value("ngram", n as f64)
                .value("min_density", min)
                .value("max_density", max),
        );
    }
    println!(
        "paper: unigram/bigram batches ranged 5-25% dense, trigrams 24-43%\n\
         ('significantly different between n-gram sizes', 'highest variance\n\
         ... from batch-to-batch'). Reproduced: large density differences\n\
         between n-gram sizes and visible batch-to-batch spread. Deviation:\n\
         our synthetic unigrams are the densest (collisions in a tiny\n\
         vocabulary), whereas the paper's real trigram corpus was — see\n\
         EXPERIMENTS.md."
    );
    if let Some(path) = json_path {
        report.write(&path);
        println!("wrote {path}");
    }
}
