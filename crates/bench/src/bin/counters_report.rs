//! Hardware-counter evidence report for §3's design narrative.
//!
//! §3.2 motivates the hybrid kernel with qualitative post-mortems of the
//! naive designs: "large thread divergences within warps, highly
//! uncoalesced global memory accesses, and resource requirements which
//! are unrealistic", and "the sorting step dominated the performance" of
//! expand-sort-contract. This binary turns each of those claims into a
//! measured row: per strategy and per dataset, the divergence
//! serialization ratio, the coalescing overhead (bytes moved per byte
//! requested), the L2-level reread factor, shared-memory pressure,
//! atomic contention, and barrier count.
//!
//! Usage: `cargo run --release -p bench --bin counters_report \
//!   [-- --scale 0.004 --seed 1] [--json out.json]`
//!
//! With `--json`, the same rows (plus a per-range profile of every
//! launch) are written as a `bench.v1` document.

use bench::report::{BenchReport, MetricRow};
use bench::suite::query_slab;
use datasets::DatasetProfile;
use gpu_sim::{Counters, Device};
use kernels::{pairwise_distances, PairwiseOptions, SmemMode, Strategy};
use semiring::{Distance, DistanceParams};

fn merged(launches: &[gpu_sim::LaunchStats]) -> Counters {
    let mut c = Counters::new();
    for l in launches {
        c.merge(&l.counters);
    }
    c
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = bench::parse_u64(&args, "--seed", 1);
    let scale = bench::parse_scale(&args, "--scale", 0.004);
    let json_path = bench::parse_path(&args, "--json");
    let mut dev = Device::volta();
    if json_path.is_some() {
        // The JSON document carries per-range rows, so profile every
        // launch when one was requested.
        dev = dev.with_profiler(true);
    }
    let params = DistanceParams::default();
    let mut report = BenchReport::new("counters_report");

    println!("Section 3 design-claim evidence (Manhattan over two dataset shapes)");
    println!(
        "{:<22} {:<14} {:>8} {:>10} {:>9} {:>10} {:>10} {:>12} {:>9}",
        "strategy",
        "dataset",
        "div %",
        "coal ovh",
        "reread",
        "smem ops",
        "bank xtr",
        "atomic xtr",
        "barriers"
    );
    for (profile, degs) in [
        (DatasetProfile::movielens(), 0.04), // skewed degrees
        (DatasetProfile::scrna(), 0.01),     // regular degrees
    ] {
        let index = profile.scaled_with(scale, degs).generate(seed);
        let queries = query_slab(&index);
        for strategy in [
            Strategy::HybridCooSpmv,
            Strategy::NaiveCsr,
            Strategy::NaiveCsrShared,
            Strategy::ExpandSortContract,
        ] {
            let opts = PairwiseOptions {
                strategy,
                smem_mode: SmemMode::Hash,
                resilience: None,
            };
            let r = pairwise_distances(&dev, &queries, &index, Distance::Manhattan, &params, &opts)
                .expect("strategy runs");
            let c = merged(&r.launches);
            println!(
                "{:<22} {:<14} {:>7.1}% {:>9.2}x {:>8.2}x {:>10} {:>10} {:>12} {:>9}",
                strategy.name(),
                profile.name,
                c.divergence_ratio() * 100.0,
                c.coalescing_overhead(),
                c.reread_ratio(),
                c.smem_accesses,
                c.bank_conflict_extra,
                c.atomic_conflict_extra,
                c.barriers,
            );
            report.push(
                MetricRow::new()
                    .label("dataset", profile.name)
                    .label("strategy", strategy.name())
                    .label("distance", "Manhattan")
                    .counters(&c)
                    .value("divergence_ratio", c.divergence_ratio())
                    .value("coalescing_overhead", c.coalescing_overhead())
                    .value("reread_ratio", c.reread_ratio()),
            );
            report.push_launches(
                &[("dataset", profile.name), ("strategy", strategy.name())],
                &r.launches,
            );
        }
    }
    println!(
        "\nreading: the naive kernel's divergence ratio and coalescing\n\
         overhead dwarf the hybrid's (§3.2.2's 'large thread divergences\n\
         ... uncoalesced global memory accesses'); the shared-memory\n\
         naive variant trims global traffic but keeps the divergence\n\
         ('marginal gains'); expand-sort-contract shows the shared-memory\n\
         traffic of its in-block sort (§3.2.1)."
    );
    if let Some(path) = json_path {
        report.write(&path);
        println!("wrote {path}");
    }
}
