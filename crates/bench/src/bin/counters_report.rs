//! Hardware-counter evidence report for §3's design narrative.
//!
//! §3.2 motivates the hybrid kernel with qualitative post-mortems of the
//! naive designs: "large thread divergences within warps, highly
//! uncoalesced global memory accesses, and resource requirements which
//! are unrealistic", and "the sorting step dominated the performance" of
//! expand-sort-contract. This binary turns each of those claims into a
//! measured row: per strategy and per dataset, the divergence
//! serialization ratio, the coalescing overhead (bytes moved per byte
//! requested), shared-memory pressure, and atomic contention.
//!
//! Usage: `cargo run --release -p bench --bin counters_report [-- --seed 1]`

use bench::suite::query_slab;
use datasets::DatasetProfile;
use gpu_sim::{Counters, Device};
use kernels::{pairwise_distances, PairwiseOptions, SmemMode, Strategy};
use semiring::{Distance, DistanceParams};

fn merged(launches: &[gpu_sim::LaunchStats]) -> Counters {
    let mut c = Counters::new();
    for l in launches {
        c.merge(&l.counters);
    }
    c
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = bench::parse_scale(&args, "--seed", 1.0) as u64;
    let dev = Device::volta();
    let params = DistanceParams::default();

    println!("Section 3 design-claim evidence (Manhattan over two dataset shapes)");
    println!(
        "{:<22} {:<14} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "strategy", "dataset", "div %", "coal ovh", "smem ops", "bank xtr", "atomic xtr"
    );
    for (profile, dims, degs) in [
        (DatasetProfile::movielens(), 0.004, 0.04), // skewed degrees
        (DatasetProfile::scrna(), 0.004, 0.01),     // regular degrees
    ] {
        let index = profile.scaled_with(dims, degs).generate(seed);
        let queries = query_slab(&index);
        for strategy in [
            Strategy::HybridCooSpmv,
            Strategy::NaiveCsr,
            Strategy::NaiveCsrShared,
            Strategy::ExpandSortContract,
        ] {
            let opts = PairwiseOptions {
                strategy,
                smem_mode: SmemMode::Hash,
            };
            let r = pairwise_distances(&dev, &queries, &index, Distance::Manhattan, &params, &opts)
                .expect("strategy runs");
            let c = merged(&r.launches);
            println!(
                "{:<22} {:<14} {:>7.1}% {:>9.2}x {:>10} {:>10} {:>12}",
                strategy.name(),
                profile.name,
                c.divergence_ratio() * 100.0,
                c.coalescing_overhead(),
                c.smem_accesses,
                c.bank_conflict_extra,
                c.atomic_conflict_extra,
            );
        }
    }
    println!(
        "\nreading: the naive kernel's divergence ratio and coalescing\n\
         overhead dwarf the hybrid's (§3.2.2's 'large thread divergences\n\
         ... uncoalesced global memory accesses'); the shared-memory\n\
         naive variant trims global traffic but keeps the divergence\n\
         ('marginal gains'); expand-sort-contract shows the shared-memory\n\
         traffic of its in-block sort (§3.2.1)."
    );
}
