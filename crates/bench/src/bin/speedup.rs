//! Regenerates the **§4.2 speedup summary**: "Compared to the CPU, we
//! observed an average of 28.78× speedup for the dot-product-based
//! distances and 29.17× speedup for the distances which require the
//! non-annihilating product monoid."
//!
//! The CPU side is this machine's real multithreaded brute-force baseline
//! (scikit-learn analog, wall-clock); the GPU side is the simulated V100
//! time of the hybrid kernel. Absolute ratios therefore depend on the
//! host CPU, but the paper's qualitative result — order-of-magnitude GPU
//! advantage, *similar* for both distance families — is the target.
//!
//! Usage: `cargo run --release -p bench --bin speedup \
//!   [-- --scale 0.005 --seed 1] [--json out.json]`

use baseline::CpuBruteForce;
use bench::report::{BenchReport, MetricRow};
use bench::runner::Timed;
use bench::suite::{dot_based_distances, non_trivial_distances, query_slab, KNN_K};
use gpu_sim::Device;
use kernels::{pairwise_distances, PairwiseOptions, SmemMode, Strategy};
use neighbors::top_k_smallest;
use semiring::DistanceParams;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .windows(2)
        .find(|w| w[0] == "--scale")
        .and_then(|w| w[1].parse::<f64>().ok())
        .unwrap_or(0.005);
    let seed = bench::parse_u64(&args, "--seed", 1);
    let json_path = bench::parse_path(&args, "--json");
    let mut report = BenchReport::new("speedup");
    let dev = Device::volta();
    let params = DistanceParams { minkowski_p: 3.0 };
    let cpu = CpuBruteForce::default();

    println!(
        "Section 4.2 speedup: CPU wall-clock ({} threads) vs simulated V100 (scale {scale})",
        cpu.threads()
    );
    let mut group_ratios: Vec<(String, Vec<f64>)> = Vec::new();
    for (group, distances) in [
        ("Dot Product Based", dot_based_distances()),
        ("Non-Trivial (NAMM)", non_trivial_distances()),
    ] {
        println!("\n-- {group} --");
        println!(
            "{:<16} {:>12} {:>14} {:>10}",
            "Distance", "CPU(s)", "GPU sim(s)", "Speedup"
        );
        let mut ratios = Vec::new();
        for profile in bench::suite::bench_profiles(Some(scale)) {
            let index = profile.generate(seed);
            let queries = query_slab(&index);
            for &d in &distances {
                let cpu_t = Timed::run(|| {
                    let dm = cpu.pairwise(&queries, &index, d, &params);
                    for i in 0..queries.rows() {
                        let _ = top_k_smallest(dm.row(i), KNN_K);
                    }
                });
                let opts = PairwiseOptions {
                    strategy: Strategy::HybridCooSpmv,
                    smem_mode: SmemMode::Hash,
                    resilience: None,
                };
                let gpu = pairwise_distances(&dev, &queries, &index, d, &params, &opts)
                    .expect("hybrid runs");
                let ratio = cpu_t.host_seconds / gpu.sim_seconds().max(1e-12);
                ratios.push(ratio);
                println!(
                    "{:<16} {:>12.4} {:>14.6} {:>9.1}x   [{}]",
                    d.name(),
                    cpu_t.host_seconds,
                    gpu.sim_seconds(),
                    ratio,
                    profile.name
                );
                report.push(
                    MetricRow::new()
                        .label("dataset", profile.name)
                        .label("group", group)
                        .label("distance", d.name())
                        .value("cpu_seconds", cpu_t.host_seconds)
                        .value("gpu_sim_seconds", gpu.sim_seconds())
                        .value("speedup", ratio),
                );
            }
        }
        group_ratios.push((group.to_string(), ratios));
    }

    println!("\nsummary (geometric mean speedup per group):");
    for (group, ratios) in &group_ratios {
        let gm = (ratios.iter().map(|r| r.max(1e-12).ln()).sum::<f64>()
            / ratios.len().max(1) as f64)
            .exp();
        println!("  {group:<20} {gm:8.1}x over {} cells", ratios.len());
    }
    println!(
        "\npaper reference: 28.78x (dot-based) and 29.17x (NAMM) — similar\n\
         magnitudes across both families is the reproduction target."
    );
    if let Some(path) = json_path {
        report.write(&path);
        println!("wrote {path}");
    }
}
