//! Regenerates **Figure 1** — "CDFs of Degree Distributions for the
//! datasets used in our benchmark on the interval 0-99%" — as a
//! per-percentile series plus an ASCII sketch, and checks the paper's
//! qualitative claims about each curve.
//!
//! Usage: `cargo run --release -p bench --bin figure1 \
//!   [-- --scale 0.01 --seed 1] [--json out.json]`

use bench::report::{BenchReport, MetricRow};
use bench::suite::default_scale;
use sparse::degree_cdf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .windows(2)
        .find(|w| w[0] == "--scale")
        .and_then(|w| w[1].parse::<f64>().ok());
    let seed = bench::parse_u64(&args, "--seed", 1);
    let json_path = bench::parse_path(&args, "--json");
    let mut report = BenchReport::new("figure1");

    println!("Figure 1: degree-distribution CDFs (percentile -> degree)");
    // Uniform scaling here: Figure 1 is *about* the degree CDF, and
    // uniform scaling is the transformation that preserves its shape.
    let mut curves = Vec::new();
    for profile in datasets::all_profiles() {
        let s = scale.unwrap_or_else(|| default_scale(profile.name));
        let m = profile.scaled(s).generate(seed);
        let cdf = degree_cdf(&m);
        curves.push((profile.name, s, cdf));
    }

    // Tabular series, every 10th percentile (the regenerable "figure").
    print!("{:>11}", "percentile");
    for (name, _, _) in &curves {
        print!(" {name:>14}");
    }
    println!();
    for p in (0..100).step_by(10).chain([99]) {
        print!("{p:>10}%");
        for (_, _, cdf) in &curves {
            print!(" {:>14}", cdf[p]);
        }
        println!();
    }

    // ASCII sketch: degree (log-ish buckets) vs percentile, one row per
    // dataset.
    println!("\nsketch (each column = 5 percentiles, height ∝ log2(degree+1)):");
    for (name, _, cdf) in &curves {
        let bars: String = (0..100)
            .step_by(5)
            .map(|p| {
                let h = (cdf[p] as f64 + 1.0).log2().round() as usize;
                char::from_u32(0x2581 + h.min(7) as u32).unwrap_or('█')
            })
            .collect();
        println!("  {name:<14} {bars}");
    }

    // The paper's qualitative checkpoints, rescaled to the generated
    // matrices: degrees scale with the factor, so thresholds do too.
    println!("\nqualitative checkpoints vs the paper (thresholds scaled by factor):");
    for (name, s, cdf) in &curves {
        let (pct, paper_threshold, claim): (usize, f64, &str) = match *name {
            "SEC Edgar" => (99, 10.0, "99% of degrees < 10"),
            "MovieLens" => (88, 200.0, "88% of degrees < 200"),
            "scRNA" => (98, 5000.0, "98% of rows have degree <= 5k"),
            "NY Times BoW" => (99, 1000.0, "99% of rows have degree < 1k"),
            _ => continue,
        };
        let scaled = (paper_threshold * s).max(1.0);
        let got = cdf[pct] as f64;
        let ok = got <= scaled * 1.5; // generous band: shape, not decimals
        println!(
            "  {:<14} {:<32} p{}={:<8} scaled threshold {:<8.1} {}",
            name,
            claim,
            pct,
            got,
            scaled,
            if ok { "OK" } else { "MISS" }
        );
    }
    if let Some(path) = json_path {
        for (name, s, cdf) in &curves {
            for p in (0..100).step_by(10).chain([99]) {
                report.push(
                    MetricRow::new()
                        .label("dataset", name)
                        .label("series", "degree_cdf")
                        .value("percentile", p as f64)
                        .value("degree", cdf[p] as f64)
                        .value("scale", *s),
                );
            }
        }
        report.write(&path);
        println!("wrote {path}");
    }
}
