//! Streaming-ingest serving study: what background compaction buys
//! over letting the brute-force fresh segment grow without bound.
//!
//! DESIGN §16's mutable tier serves every query as a two-arm scan:
//! the prepared base generation plus an exact brute-force pass over
//! the WAL-fed fresh segment. Without compaction the fresh arm grows
//! linearly with the write stream and every query pays for it; with a
//! compaction threshold the engine periodically folds base + fresh
//! into a new generation off the serving lane. This harness replays
//! the same interleaved write/query stream through [`ServeEngine`] in
//! two modes:
//!
//! * `no_compact` — `compact_threshold = 0`: the fresh segment and
//!   tombstone set only ever grow.
//! * `compacted` — a threshold sized to fire a few times mid-stream,
//!   so queries near the end scan a small fresh arm against a freshly
//!   prepared base.
//!
//! Both modes pin `Strategy::NaiveCsr`: it is the per-pair-pure
//! strategy (DESIGN §15), so a (query, row) score depends only on the
//! two rows' bytes and the served answers are byte-identical across
//! modes — the latency delta is pure segment engineering, not a
//! quality trade.
//!
//! Usage: `cargo run --release -p bench --bin serve_ingest \
//!   [-- --scale 0.004 --seed 1 --k 10 --devices 2] [--json out.json]`

use bench::report::{BenchReport, MetricRow};
use bench::suite::query_slab;
use datasets::DatasetProfile;
use gpu_sim::Device;
use neighbors::{MultiDevice, NearestNeighbors};
use semiring::Distance;
use sparse_dist::{
    replay_rows, IndexMode, IngestReport, MetricsRegistry, MutableDataset, PairwiseOptions,
    ServeConfig, ServeEngine, SloBudget, Strategy, TimedRecord, Wal,
};

/// Simulated gap between WAL record arrivals. Queries are offset by
/// half a gap so each one lands between two writes and the fresh
/// segment is scanned at many different sizes.
const WRITE_GAP_S: f64 = 5e-6;

/// Every 4th streamed operation deletes a live row (same cadence as
/// `spdist wal`), so tombstone masking and clearing are both on the
/// measured path.
const DELETE_EVERY: usize = 4;

/// The p99 latency SLO both modes are assessed against.
const SLO_TARGET_P99_S: f64 = 500e-6;

/// The per-pair-pure options (DESIGN §15): the hybrid default folds
/// stream-side terms at chunk boundaries measured from the slab's
/// global nnz offset, so its bits shift when compaction re-packs the
/// matrix. Naive-CSR scores each pair from the two rows alone, which
/// is what makes the cross-mode byte-compare below exact.
fn pure_opts() -> PairwiseOptions {
    PairwiseOptions {
        strategy: Strategy::NaiveCsr,
        ..PairwiseOptions::default()
    }
}

/// Splits the generated matrix into a base (first half) plus a WAL
/// stream over the remaining rows, deleting a live row every
/// [`DELETE_EVERY`]th op — the same derivation `spdist wal` uses.
fn split_stream(
    m: &sparse_dist::sparse::CsrMatrix<f32>,
) -> (sparse_dist::sparse::CsrMatrix<f32>, Wal<f32>) {
    let base_rows = (m.rows() / 2).max(1);
    let base = m.slice_rows(0..base_rows);
    let mut wal = Wal::new(m.cols());
    let mut live: Vec<u64> = (0..base_rows as u64).collect();
    for (i, r) in (base_rows..m.rows()).enumerate() {
        if i % DELETE_EVERY == DELETE_EVERY - 1 && !live.is_empty() {
            let victim = live.remove((i * 7 + 3) % live.len());
            wal.append_delete(victim);
        }
        wal.append_insert(m.row_indices(r), m.row_values(r));
        // Deletes never consume logical ids, so the i-th streamed
        // insert is always id base_rows + i.
        live.push((base_rows + i) as u64);
    }
    (base, wal)
}

fn describe(mode: &str, r: &IngestReport<f32>) -> String {
    format!(
        "{:<10} {:>7} {:>7} {:>9} {:>10.1} {:>10.1} {:>8} {:>4}",
        mode,
        r.wal.applied,
        r.serve.responses.len(),
        format!("{:.0}", r.serve.qps()),
        r.serve.latency_percentile(50.0) * 1e6,
        r.serve.latency_percentile(99.0) * 1e6,
        r.compactions.len(),
        r.final_generation,
    )
}

fn push_row(
    report: &mut BenchReport,
    dataset: &str,
    mode: &str,
    devices: usize,
    r: &IngestReport<f32>,
    m: &MetricsRegistry,
) {
    // WAL and compaction values come from the engine's deterministic
    // metrics registry, so these rows and a `--metrics` snapshot of
    // the same replay can never disagree — and the conservation laws
    // `validate_metrics` enforces hold for the row values too.
    report.push(
        MetricRow::new()
            .label("dataset", dataset)
            .label("mode", mode)
            .label("devices", &devices.to_string())
            .value("qps", r.serve.qps())
            .value("p50_latency_s", r.serve.latency_percentile(50.0))
            .value("p99_latency_s", r.serve.latency_percentile(99.0))
            .value("makespan_s", r.serve.makespan_s)
            .value("busy_seconds", r.serve.busy_seconds)
            .value("batches", r.serve.batches as f64)
            .value("served", r.serve.responses.len() as f64)
            .value(
                "wal_appended",
                m.counter("wal.records_appended_total") as f64,
            )
            .value("wal_applied", m.counter("wal.records_applied_total") as f64)
            .value(
                "wal_rejected",
                m.counter("wal.records_rejected_total") as f64,
            )
            .value("wal_inserts", m.counter("wal.inserts_total") as f64)
            .value("wal_deletes", m.counter("wal.deletes_total") as f64)
            .value("fresh_scans", m.counter("wal.fresh_scans_total") as f64)
            .value(
                "compactions_started",
                m.counter("compact.started_total") as f64,
            )
            .value(
                "compactions_completed",
                m.counter("compact.completed_total") as f64,
            )
            .value(
                "tombstones_cleared",
                m.counter("compact.tombstones_cleared_total") as f64,
            )
            .value("generation", m.gauge("compact.generation").unwrap_or(0.0))
            .value("live_rows", m.gauge("wal.live_rows").unwrap_or(0.0))
            .value("fresh_rows", m.gauge("wal.fresh_rows").unwrap_or(0.0))
            .value("tombstones", m.gauge("wal.tombstones").unwrap_or(0.0)),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = bench::parse_u64(&args, "--seed", 1);
    let scale = bench::parse_scale(&args, "--scale", 0.004);
    let k = bench::parse_u64(&args, "--k", 10) as usize;
    let devices = bench::parse_u64(&args, "--devices", 2) as usize;
    let json_path = bench::parse_path(&args, "--json");
    let mut report = BenchReport::new("serve_ingest");

    println!("Streaming ingest (Euclidean, k={k}, {devices} device(s), naive-CSR)");
    println!(
        "{:<14} {:<10} {:>7} {:>7} {:>9} {:>10} {:>10} {:>8} {:>4}",
        "dataset", "mode", "applied", "served", "qps", "p50 us", "p99 us", "compacts", "gen"
    );
    for (profile, degs) in [
        (DatasetProfile::movielens(), 0.04),
        (DatasetProfile::scrna(), 0.01),
    ] {
        let matrix = profile.scaled_with(scale, degs).generate(seed);
        let (base, wal) = split_stream(&matrix);
        let writes: Vec<TimedRecord<f32>> = wal
            .records()
            .iter()
            .enumerate()
            .map(|(i, rec)| TimedRecord {
                at_s: i as f64 * WRITE_GAP_S,
                record: rec.clone(),
            })
            .collect();
        let queries = query_slab(&matrix);
        // Offset queries half a write gap so request i observes
        // exactly the writes that landed before it — the same prefix
        // in both modes, which is what makes the byte-compare fair.
        let mut requests = replay_rows(&queries, WRITE_GAP_S);
        for r in &mut requests {
            r.arrival_s += WRITE_GAP_S / 2.0;
        }
        let proto =
            NearestNeighbors::new(Device::volta(), Distance::Euclidean).with_options(pure_opts());
        let multi = MultiDevice::replicate(&Device::volta(), devices);
        let max_queue = requests.len() + 1;
        // Fire a handful of compactions across the stream regardless
        // of `--scale`: a fixed threshold would either never trigger
        // at tiny CI scales or trigger every batch at full scale.
        let threshold = (writes.len() / 4).max(8);

        let mut reports: Vec<IngestReport<f32>> = Vec::new();
        for (mode, compact_threshold) in [("no_compact", 0), ("compacted", threshold)] {
            let mut dataset = MutableDataset::new(base.clone());
            let mut engine = ServeEngine::new(
                multi.clone(),
                ServeConfig {
                    k,
                    max_batch: 8,
                    max_wait_s: 20e-6,
                    max_queue,
                    per_query_prepare: false,
                    admission: None,
                    index: IndexMode::Exact,
                },
            )
            .with_slo(0, SloBudget::p99(SLO_TARGET_P99_S));
            let r = engine
                .replay_ingest(&proto, &mut dataset, &writes, &requests, compact_threshold)
                .expect("ingest replay runs");
            println!("{:<14} {}", profile.name, describe(mode, &r));
            push_row(
                &mut report,
                profile.name,
                mode,
                devices,
                &r,
                engine.metrics(),
            );
            assert_eq!(
                r.wal.appended as usize,
                wal.records().len(),
                "every WAL record is presented"
            );
            assert_eq!(
                r.wal.rejected, 0,
                "the derived stream has no poison records"
            );
            reports.push(r);
        }
        let (no_compact, compacted) = (&reports[0], &reports[1]);
        assert!(
            !compacted.compactions.is_empty(),
            "threshold {threshold} never fired over {} writes",
            writes.len()
        );
        assert_eq!(
            no_compact.final_generation, 0,
            "threshold 0 must disable compaction"
        );

        // The determinism contract (DESIGN §16): compaction moves rows
        // between arms but never changes served bytes, because the
        // pinned naive-CSR strategy is per-pair pure and merged
        // indices are in live-rank coordinates on both sides.
        fn by_id(r: &IngestReport<f32>) -> Vec<(u64, &sparse_dist::Response<f32>)> {
            let mut v: Vec<_> = r.responses().iter().map(|x| (x.id, x)).collect();
            v.sort_by_key(|(id, _)| *id);
            v
        }
        for ((ia, a), (ib, b)) in by_id(no_compact).into_iter().zip(by_id(compacted)) {
            assert_eq!(ia, ib, "both modes serve the same ids");
            assert_eq!(a.indices, b.indices, "indices diverge at id {ia}");
            assert_eq!(
                a.distances.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                b.distances.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                "distances diverge at id {ia}"
            );
        }

        let tail_speedup = if compacted.serve.latency_percentile(99.0) > 0.0 {
            no_compact.serve.latency_percentile(99.0) / compacted.serve.latency_percentile(99.0)
        } else {
            0.0
        };
        report.push(
            MetricRow::new()
                .label("dataset", profile.name)
                .label("mode", "speedup")
                .label("devices", &devices.to_string())
                .value("p99_speedup", tail_speedup),
        );
    }
    println!(
        "\nreading: no_compact scans an ever-growing fresh segment and\n\
         masks an ever-growing tombstone set on every query; compacted\n\
         folds them into a new prepared generation off the serving\n\
         lane. Answers are byte-identical across modes, so any latency\n\
         delta is segment engineering, not a quality trade."
    );
    if let Some(path) = json_path {
        report.write(&path);
        println!("wrote {path}");
    }
}
