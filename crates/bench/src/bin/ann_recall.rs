//! Recall-vs-throughput study for the IVF approximate tier (DESIGN §15).
//!
//! For each dataset × distance family, an [`neighbors::IvfIndex`] is
//! fitted at a fixed seed and probed across an `nprobe` sweep; every
//! operating point reports **recall@k against the exact oracle** (the
//! same `NearestNeighbors` the IVF tier reranks with) and the
//! **simulated QPS** of the batch — the curve the paper's approximate
//! competitors are usually judged on, reproduced here with exact rerank
//! so distances are never approximated, only coverage.
//!
//! Two invariants are asserted, not just measured (the CI recall gate
//! replays them from the emitted `bench.v1` document):
//!
//! * `nprobe == nlist` is byte-identical to the exact oracle, so that
//!   sweep point must report recall exactly 1.0;
//! * recall@k is monotone non-decreasing in `nprobe` (probing more
//!   posting lists can only grow each query's candidate pool).
//!
//! Usage: `cargo run --release -p bench --bin ann_recall \
//!   [-- --scale 0.004 --seed 1 --k 10] [--json out.json]`

use bench::report::{BenchReport, MetricRow};
use bench::suite::query_slab;
use datasets::DatasetProfile;
use gpu_sim::Device;
use neighbors::{IvfIndex, IvfParams, KnnResult, NearestNeighbors};
use semiring::Distance;

/// The distance families the recall gate tracks (≥3 per the issue):
/// a dot-product-based metric with norms (Euclidean), an angular one
/// (Cosine), and a pure expanded-form one (Manhattan).
const FAMILIES: [Distance; 3] = [Distance::Euclidean, Distance::Cosine, Distance::Manhattan];

/// Mean fraction of each query's exact top-k recovered by the IVF
/// answer (rows already carry only real neighbor ids — sentinel
/// entries are filtered by the selection kernel).
fn recall_at_k(ivf: &KnnResult<f32>, exact: &KnnResult<f32>) -> f64 {
    let mut total = 0.0;
    for (got, want) in ivf.indices.iter().zip(&exact.indices) {
        if want.is_empty() {
            continue;
        }
        let hit = got.iter().filter(|i| want.contains(i)).count();
        total += hit as f64 / want.len() as f64;
    }
    total / ivf.indices.len() as f64
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = bench::parse_u64(&args, "--seed", 1);
    let scale = bench::parse_scale(&args, "--scale", 0.004);
    let k = bench::parse_u64(&args, "--k", 10) as usize;
    let json_path = bench::parse_path(&args, "--json");
    let mut report = BenchReport::new("ann_recall");

    println!("IVF recall@{k} vs simulated throughput (exact rerank)");
    println!(
        "{:<14} {:<11} {:>6} {:>7} {:>10} {:>12} {:>12}",
        "dataset", "distance", "nlist", "nprobe", "recall", "sim qps", "shortlist"
    );
    for (profile, degs) in [
        (DatasetProfile::movielens(), 0.04),
        (DatasetProfile::scrna(), 0.01),
    ] {
        let index = profile.scaled_with(scale, degs).generate(seed);
        let queries = query_slab(&index);
        let nlist = (index.rows() as f64).sqrt().ceil() as usize;
        for distance in FAMILIES {
            let nn = NearestNeighbors::new(Device::volta(), distance).fit(index.clone());
            let exact = nn.kneighbors(&queries, k).expect("exact oracle runs");
            let ivf = IvfIndex::fit(
                &nn,
                IvfParams {
                    nlist,
                    ..IvfParams::default()
                },
            )
            .expect("ivf fit runs");
            // Sweep from a single probed list up to the full index.
            let mut sweep = vec![1usize, 2, 4, 8, 16];
            sweep.retain(|&p| p < ivf.nlist());
            sweep.push(ivf.nlist());
            let mut last_recall = 0.0f64;
            for nprobe in sweep {
                let ans = ivf
                    .search_with_nprobe(&queries, k, nprobe)
                    .expect("ivf query runs");
                let recall = recall_at_k(&ans.knn, &exact);
                assert!(
                    recall + 1e-12 >= last_recall,
                    "{} {distance:?}: recall fell {last_recall} -> {recall} at nprobe {nprobe}",
                    profile.name,
                );
                last_recall = recall;
                if nprobe == ivf.nlist() {
                    let same = ans.knn.indices == exact.indices
                        && ans
                            .knn
                            .distances
                            .iter()
                            .zip(&exact.distances)
                            .all(|(a, b)| a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
                    assert!(
                        same,
                        "{} {distance:?}: nprobe == nlist must be byte-identical to exact",
                        profile.name,
                    );
                    assert!(
                        (recall - 1.0).abs() < 1e-12,
                        "{} {distance:?}: full probe recall {recall} != 1.0",
                        profile.name,
                    );
                }
                let qps = if ans.knn.sim_seconds > 0.0 {
                    queries.rows() as f64 / ans.knn.sim_seconds
                } else {
                    0.0
                };
                println!(
                    "{:<14} {:<11} {:>6} {:>7} {:>10.4} {:>12.0} {:>12}",
                    profile.name,
                    format!("{distance:?}"),
                    ivf.nlist(),
                    nprobe,
                    recall,
                    qps,
                    ans.stats.shortlist_rows,
                );
                report.push(
                    MetricRow::new()
                        .label("dataset", profile.name)
                        .label("distance", &format!("{distance:?}"))
                        .label("nprobe", &nprobe.to_string())
                        .value("nlist", ivf.nlist() as f64)
                        .value("recall_at_k", recall)
                        .value("k", k as f64)
                        .value("sim_qps", qps)
                        .value("sim_seconds", ans.knn.sim_seconds)
                        .value("shortlist_rows", ans.stats.shortlist_rows as f64)
                        .value("probes", ans.stats.probes as f64)
                        .value("fit_sim_seconds", ivf.fit_sim_seconds()),
                );
            }
        }
    }
    println!(
        "\nreading: recall climbs monotonically with nprobe and reaches\n\
         exactly 1.0 at nprobe = nlist (the exact path, byte for byte);\n\
         qps falls as the reranked shortlist grows — the knee of each\n\
         curve is the tier's useful operating range."
    );
    if let Some(path) = json_path {
        report.write(&path);
        println!("wrote {path}");
    }
}
