//! Multi-device shard-scaling study for the batched k-NN benchmark.
//!
//! The paper's evaluation is throughput-bound on a single V100; related
//! SpGEMM-on-semirings work scales past one device by sharding. This
//! harness measures how simulated k-NN time falls as index slabs are
//! sharded round-robin across 1, 2, 4 and 8 simulated devices
//! ([`neighbors::MultiDevice`]): per-device simulated seconds, the
//! concurrent-makespan total (max over devices), and the speedup over
//! one device. Results are identical across device counts by
//! construction, so the speedup column is pure load-balance geometry.
//!
//! Usage: `cargo run --release -p bench --bin shard_scaling \
//!   [-- --scale 0.004 --seed 1 --k 8] [--json out.json]`

use bench::report::{BenchReport, MetricRow};
use bench::suite::query_slab;
use datasets::DatasetProfile;
use gpu_sim::{Counters, Device};
use neighbors::{MultiDevice, NearestNeighbors};
use semiring::Distance;

fn merged(launches: &[gpu_sim::LaunchStats]) -> Counters {
    let mut c = Counters::new();
    for l in launches {
        c.merge(&l.counters);
    }
    c
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = bench::parse_u64(&args, "--seed", 1);
    let scale = bench::parse_scale(&args, "--scale", 0.004);
    let k = bench::parse_u64(&args, "--k", 8) as usize;
    let json_path = bench::parse_path(&args, "--json");
    let mut report = BenchReport::new("shard_scaling");

    println!("Sharded k-NN scaling (Euclidean, k={k})");
    println!(
        "{:<14} {:>8} {:>7} {:>14} {:>14} {:>9}",
        "dataset", "devices", "tiles", "makespan ms", "busy-sum ms", "speedup"
    );
    for (profile, degs) in [
        (DatasetProfile::movielens(), 0.04),
        (DatasetProfile::scrna(), 0.01),
    ] {
        let index = profile.scaled_with(scale, degs).generate(seed);
        let queries = query_slab(&index);
        let mut baseline_seconds = None;
        for devices in [1usize, 2, 4, 8] {
            let multi = MultiDevice::replicate(&Device::volta(), devices);
            let r = NearestNeighbors::new(Device::volta(), Distance::Euclidean)
                .fit(index.clone())
                .kneighbors_sharded(&multi, &queries, k)
                .expect("sharded query runs");
            let busy_sum: f64 = r.per_device_seconds.iter().sum();
            let base = *baseline_seconds.get_or_insert(r.sim_seconds);
            let speedup = if r.sim_seconds > 0.0 {
                base / r.sim_seconds
            } else {
                1.0
            };
            println!(
                "{:<14} {:>8} {:>7} {:>14.4} {:>14.4} {:>8.2}x",
                profile.name,
                devices,
                r.batches,
                r.sim_seconds * 1e3,
                busy_sum * 1e3,
                speedup,
            );
            let c = merged(&r.launches);
            report.push(
                MetricRow::new()
                    .label("dataset", profile.name)
                    .label("devices", &devices.to_string())
                    .label("distance", "Euclidean")
                    .counters(&c)
                    .value("sim_seconds", r.sim_seconds)
                    .value("busy_sum_seconds", busy_sum)
                    .value("tiles", r.batches as f64)
                    .value("speedup", speedup),
            );
        }
    }
    println!(
        "\nreading: makespan is the max over concurrently-simulated\n\
         devices; the gap between ideal and measured speedup is the\n\
         load imbalance of round-robin contiguous slabs (a skewed\n\
         dataset's heavy rows cluster in one slab)."
    );
    if let Some(path) = json_path {
        report.write(&path);
        println!("wrote {path}");
    }
}
