//! Serving-layer throughput study: what the prepared-index cache and
//! micro-batching buy over a naive per-query serving loop.
//!
//! The paper's evaluation is batch-oriented — one huge query matrix per
//! kernel launch. A serving deployment sees the opposite shape: single
//! query rows trickling in, each a 1-row grid that strands most of the
//! simulated SMs (the roofline model's tail effect) and, naively, each
//! re-uploading and re-norming the index. This harness replays the same
//! query stream through the [`ServeEngine`] in two modes:
//!
//! * `per_query` — `max_batch = 1`, no cache: every request re-prepares
//!   the index (uploads + norm kernels) and runs alone.
//! * `cached` — prepared shards come from the LRU cache (one miss, then
//!   hits) and requests coalesce into micro-batches of up to 32 with a
//!   short 20 µs flush deadline for the trailing partial batch.
//!
//! Served answers are byte-identical across modes (DESIGN §11), so the
//! QPS ratio is pure serving-layer engineering, not a quality trade.
//!
//! Usage: `cargo run --release -p bench --bin serve_throughput \
//!   [-- --scale 0.004 --seed 1 --k 10 --devices 2] [--json out.json]`

use bench::report::{BenchReport, MetricRow};
use bench::suite::query_slab;
use datasets::DatasetProfile;
use gpu_sim::Device;
use neighbors::{MultiDevice, NearestNeighbors};
use semiring::Distance;
use sparse_dist::{
    replay_rows, IndexMode, MetricsRegistry, ServeConfig, ServeEngine, ServeReport, SloBudget,
};

/// Simulated gap between request arrivals. Zero means a burst
/// (closed-load) replay: every request is queued at t=0, the device
/// never idles waiting for arrivals, and QPS measures execution
/// throughput rather than arrival spacing.
const ARRIVAL_GAP_S: f64 = 0.0;

/// The p99 latency SLO both modes are assessed against (burst replays
/// queue everything at t=0, so per-query mode burns its budget hard —
/// exactly the signal ROADMAP item 4's admission control will read).
const SLO_TARGET_P99_S: f64 = 500e-6;

fn describe(mode: &str, r: &ServeReport<f32>) -> String {
    format!(
        "{:<11} {:>7} {:>8} {:>10.0} {:>10.1} {:>10.1} {:>11.3}",
        mode,
        r.batches,
        r.responses.len(),
        r.qps(),
        r.latency_percentile(50.0) * 1e6,
        r.latency_percentile(99.0) * 1e6,
        r.busy_seconds * 1e3,
    )
}

fn push_row(
    report: &mut BenchReport,
    dataset: &str,
    mode: &str,
    devices: usize,
    r: &ServeReport<f32>,
    m: &MetricsRegistry,
) {
    // Cache and occupancy values come from the engine's deterministic
    // metrics registry (not recomputed here), so the bench.v1 rows and
    // a `--metrics` snapshot of the same replay can never disagree.
    report.push(
        MetricRow::new()
            .label("dataset", dataset)
            .label("mode", mode)
            .label("devices", &devices.to_string())
            .value("qps", r.qps())
            .value("p50_latency_s", r.latency_percentile(50.0))
            .value("p99_latency_s", r.latency_percentile(99.0))
            .value("makespan_s", r.makespan_s)
            .value("busy_seconds", r.busy_seconds)
            .value("batches", r.batches as f64)
            .value("served", r.responses.len() as f64)
            .value("rejected", r.rejected.len() as f64)
            .value("cache_hits", m.counter("serve.cache_hits_total") as f64)
            .value("cache_misses", m.counter("serve.cache_misses_total") as f64)
            .value(
                "cache_evictions",
                m.counter("serve.cache_evictions_total") as f64,
            )
            .value(
                "batch_occupancy",
                m.gauge("serve.batch_occupancy").unwrap_or(0.0),
            )
            .value(
                "slo_breaches",
                m.counter("serve.d0.slo_breaches_total") as f64,
            )
            .value(
                "slo_budget_burn",
                m.gauge("serve.d0.slo_budget_burn").unwrap_or(0.0),
            ),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = bench::parse_u64(&args, "--seed", 1);
    let scale = bench::parse_scale(&args, "--scale", 0.004);
    let k = bench::parse_u64(&args, "--k", 10) as usize;
    let devices = bench::parse_u64(&args, "--devices", 2) as usize;
    let json_path = bench::parse_path(&args, "--json");
    let mut report = BenchReport::new("serve_throughput");

    println!("Serving throughput (Euclidean, k={k}, {devices} device(s))");
    println!(
        "{:<14} {:<11} {:>7} {:>8} {:>10} {:>10} {:>10} {:>11}",
        "dataset", "mode", "batches", "served", "qps", "p50 us", "p99 us", "busy ms"
    );
    for (profile, degs) in [
        (DatasetProfile::movielens(), 0.04),
        (DatasetProfile::scrna(), 0.01),
    ] {
        let index = profile.scaled_with(scale, degs).generate(seed);
        let queries = query_slab(&index);
        let requests = replay_rows(&queries, ARRIVAL_GAP_S);
        let multi = MultiDevice::replicate(&Device::volta(), devices);
        let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(index.clone());
        // Admit everything: this harness measures throughput, not
        // backpressure, so the queue must outsize the stream.
        let max_queue = requests.len() + 1;

        let mut per_query_engine = ServeEngine::new(
            multi.clone(),
            ServeConfig {
                k,
                max_batch: 1,
                max_wait_s: 0.0,
                max_queue,
                per_query_prepare: true,
                admission: None,
                index: IndexMode::Exact,
            },
        )
        .with_slo(0, SloBudget::p99(SLO_TARGET_P99_S));
        let per_query = per_query_engine
            .replay(std::slice::from_ref(&nn), &requests)
            .expect("per-query replay runs");
        println!("{:<14} {}", profile.name, describe("per_query", &per_query));
        push_row(
            &mut report,
            profile.name,
            "per_query",
            devices,
            &per_query,
            per_query_engine.metrics(),
        );

        let mut cached_engine = ServeEngine::new(
            multi.clone(),
            ServeConfig {
                k,
                max_batch: 32,
                max_wait_s: 20e-6,
                max_queue,
                per_query_prepare: false,
                admission: None,
                index: IndexMode::Exact,
            },
        )
        .with_slo(0, SloBudget::p99(SLO_TARGET_P99_S));
        let cached = cached_engine
            .replay(std::slice::from_ref(&nn), &requests)
            .expect("cached replay runs");
        println!("{:<14} {}", profile.name, describe("cached", &cached));
        push_row(
            &mut report,
            profile.name,
            "cached",
            devices,
            &cached,
            cached_engine.metrics(),
        );

        // The registry's histogram percentiles must agree with the
        // exact sort-based percentiles to within one log-bucket width.
        for (engine, r) in [(&per_query_engine, &per_query), (&cached_engine, &cached)] {
            let hist = engine
                .metrics()
                .histogram("serve.latency_s")
                .expect("latency histogram recorded");
            for p in [50.0, 99.0] {
                let exact = r.latency_percentile(p);
                let bucketed = hist.percentile(p);
                let limit = (exact * sparse_dist::HIST_GROWTH).max(sparse_dist::HIST_MIN);
                assert!(
                    exact <= bucketed && bucketed <= limit,
                    "histogram p{p} {bucketed} disagrees with exact {exact}"
                );
            }
        }

        let speedup = if per_query.qps() > 0.0 {
            cached.qps() / per_query.qps()
        } else {
            0.0
        };
        println!("{:<14} cache+batching QPS speedup: {speedup:.1}x", "");
        report.push(
            MetricRow::new()
                .label("dataset", profile.name)
                .label("mode", "speedup")
                .label("devices", &devices.to_string())
                .value("qps_speedup", speedup),
        );

        // Cross-check the determinism contract while we are here: the
        // two modes must serve byte-identical answers per request id.
        fn by_id(r: &ServeReport<f32>) -> Vec<(u64, &sparse_dist::Response<f32>)> {
            let mut v: Vec<_> = r.responses.iter().map(|x| (x.id, x)).collect();
            v.sort_by_key(|(id, _)| *id);
            v
        }
        for ((ia, a), (ib, b)) in by_id(&per_query).into_iter().zip(by_id(&cached)) {
            assert_eq!(ia, ib, "both modes serve the same ids");
            assert_eq!(a.indices, b.indices, "indices diverge at id {ia}");
            assert_eq!(
                a.distances.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                b.distances.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                "distances diverge at id {ia}"
            );
        }
    }
    println!(
        "\nreading: per_query pays index upload + norm kernels on every\n\
         request and launches 1-row grids that strand most SMs; cached\n\
         prepares once (one miss, then hits) and coalesces requests into\n\
         micro-batches, so the speedup column is tail-effect amortization\n\
         plus upload/norm reuse."
    );
    if let Some(path) = json_path {
        report.write(&path);
        println!("wrote {path}");
    }
}
