//! Volta vs Ampere comparison (§3.3.2's architecture-dependent limits).
//!
//! The paper sizes its shared-memory strategy against both generations:
//! dense rows fit "a max dimensionality of 23K with single-precision
//! [Volta] and ... 40K [Ampere]" per block, "actually 12K and 20K" at
//! full occupancy, and the hash table "allows for a max degree of 3K on
//! Volta architectures and 5K on Ampere". This harness prints those
//! derived limits from the device models, then runs the same k-NN
//! workload on both simulated devices.
//!
//! Usage: `cargo run --release -p bench --bin arch_compare \
//!   [-- --seed 1] [--json out.json]`

use bench::report::{BenchReport, MetricRow};
use bench::suite::{query_slab, KNN_K};
use datasets::DatasetProfile;
use gpu_sim::{Device, SmemHashTable};
use kernels::hybrid::{resolve_config, smem_budget};
use kernels::{pairwise_distances, PairwiseOptions, SmemMode, Strategy};
use neighbors::top_k_smallest;
use semiring::{Distance, DistanceParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = bench::parse_u64(&args, "--seed", 1);
    let json_path = bench::parse_path(&args, "--json");
    let mut report = BenchReport::new("arch_compare");
    let devices = [Device::volta(), Device::ampere()];

    println!("Section 3.3.2 capacity limits, derived from the device models:");
    println!(
        "{:<8} {:>14} {:>16} {:>16} {:>14}",
        "arch", "smem/block", "dense k (block)", "dense k (occup)", "hash max deg"
    );
    for dev in &devices {
        let spec = dev.spec();
        let budget = smem_budget(dev);
        let dense_block = spec.max_dense_smem_elems();
        let dense_occ = budget / 4;
        let hash_cap = budget / SmemHashTable::<f32>::smem_bytes(1);
        println!(
            "{:<8} {:>11} KiB {:>16} {:>16} {:>14}",
            spec.name,
            spec.shared_mem_per_block / 1024,
            dense_block,
            dense_occ,
            hash_cap / 2,
        );
        report.push(
            MetricRow::new()
                .label("arch", spec.name)
                .label("section", "capacity")
                .value("smem_per_block_bytes", spec.shared_mem_per_block as f64)
                .value("dense_k_block", dense_block as f64)
                .value("dense_k_occupancy", dense_occ as f64)
                .value("hash_max_degree", (hash_cap / 2) as f64),
        );
    }
    println!(
        "paper: ~23K/40K dense per block, 12K/20K at full occupancy,\n\
         3K/5K max hash-mode degree.\n"
    );

    // Mode selection flips with the architecture: a 15K-dimensional
    // input is hash-mode on Volta but dense-mode on Ampere.
    let k15 = 15_000;
    for dev in &devices {
        let cfg = resolve_config::<f32>(dev, k15, None).expect("config ok");
        println!(
            "k = {k15}: {} auto-selects {:?} ({} KiB/block)",
            dev.spec().name,
            cfg.kind,
            cfg.smem_per_block / 1024
        );
    }

    // Same workload on both devices.
    let profile = DatasetProfile::nytimes_bow().scaled_with(0.01, 0.1);
    let index = profile.generate(seed);
    let queries = query_slab(&index);
    let params = DistanceParams::default();
    println!(
        "\nworkload: {} queries x {} index rows ({}), simulated seconds:",
        queries.rows(),
        index.rows(),
        profile.name
    );
    println!(
        "{:<8} {:>14} {:>14} {:>10}",
        "arch", "Cosine", "Manhattan", "speedup*"
    );
    let mut volta_total = 0.0;
    for dev in &devices {
        let mut times = Vec::new();
        for d in [Distance::Cosine, Distance::Manhattan] {
            let opts = PairwiseOptions {
                strategy: Strategy::HybridCooSpmv,
                smem_mode: SmemMode::Hash,
                resilience: None,
            };
            let r = pairwise_distances(dev, &queries, &index, d, &params, &opts).expect("runs");
            for i in 0..queries.rows() {
                let _ = top_k_smallest(r.distances.row(i), KNN_K);
            }
            times.push(r.sim_seconds());
        }
        let total: f64 = times.iter().sum();
        if dev.spec().name == "V100" {
            volta_total = total;
        }
        println!(
            "{:<8} {:>14.6} {:>14.6} {:>9.2}x",
            dev.spec().name,
            times[0],
            times[1],
            volta_total / total
        );
        report.push(
            MetricRow::new()
                .label("arch", dev.spec().name)
                .label("section", "workload")
                .label("dataset", profile.name)
                .value("cosine_sim_seconds", times[0])
                .value("manhattan_sim_seconds", times[1])
                .value("speedup_vs_v100", volta_total / total),
        );
    }
    println!("* vs V100 total; A100's gain tracks its SM count and bandwidth.");
    if let Some(path) = json_path {
        report.write(&path);
        println!("wrote {path}");
    }
}
