//! Serving-fleet overload study: graceful degradation at 10–100× the
//! load `serve_throughput` measures, plus a chaos drill.
//!
//! `serve_throughput` shows what caching and micro-batching buy at a
//! load the engine can absorb. This harness asks the robustness
//! question behind ROADMAP item 4: what happens when traffic is 10×
//! (or 100×) past that point? A fixed-capacity queue either collapses
//! (unbounded latency) or cliffs (rejects everything past a depth);
//! the admission controller instead sheds a bounded fraction with a
//! typed reason, degrades batches to the low-footprint kernel configs
//! (byte-identical answers), and the fleet autoscaler adds replicas
//! while SLO error budget burns.
//!
//! For each load multiplier the workload generator produces the same
//! seeded Zipf/diurnal arrival process at `mult × base` QPS, served
//! through a [`Fleet`] with admission control armed. Inline asserts
//! enforce the acceptance criteria:
//!
//! * no queue collapse: every arrival is either served or typed-shed,
//!   and the p99 latency of *admitted* requests stays within the SLO
//!   envelope at every multiplier;
//! * graceful shedding: the shed fraction is reported per multiplier
//!   (0 at 1×, bounded below 1 at overload);
//! * chaos drill: a mid-run fault plan changes no served byte, and the
//!   fleet re-enters the SLO burn envelope within bounded windows.
//!
//! Usage: `cargo run --release -p bench --bin serve_fleet \
//!   [-- --scale 0.004 --seed 1 --k 10] [--json out.json]`

use bench::report::{BenchReport, MetricRow};
use bench::suite::query_slab;
use datasets::DatasetProfile;
use gpu_sim::{Device, FaultPlan};
use kernels::{PairwiseOptions, ResiliencePolicy};
use neighbors::NearestNeighbors;
use semiring::Distance;
use sparse_dist::{
    chaos_drill, AdmissionConfig, ChaosPlan, Fleet, FleetConfig, FleetReport, IndexMode, Selection,
    ServeConfig, SloBudget, Workload,
};

/// The p99 latency SLO the fleet autoscales against. Tighter than
/// `serve_throughput`'s 500 us target: overload must actually burn
/// error budget for the autoscaler to have a signal.
const SLO_TARGET_P99_S: f64 = 100e-6;

/// Admitted-latency envelope the inline assert enforces. The shed
/// watermark caps backlog at 256 requests (16 batches), so admitted
/// p99 is watermark-bounded regardless of arrival rate — 500 us is
/// that bound with margin, not a tuned number.
const P99_ENVELOPE_S: f64 = 500e-6;

/// Simulated duration of every generated workload.
const DURATION_S: f64 = 4e-3;

/// Base arrival rate (requests/s) the multipliers scale. ~600 requests
/// over 4 ms is comfortably within one replica's capacity, so 1× is
/// the shed-free baseline.
const BASE_QPS: f64 = 150_000.0;

/// Overload multipliers. 10× is the acceptance floor; 100× shows the
/// controller holding its envelope two decades past capacity.
const MULTIPLIERS: [f64; 3] = [1.0, 10.0, 100.0];

fn fleet_config(k: usize) -> FleetConfig {
    FleetConfig {
        min_replicas: 1,
        max_replicas: 4,
        window_s: 0.5e-3,
        serve: ServeConfig {
            k,
            max_batch: 16,
            max_wait_s: 20e-6,
            max_queue: 4096,
            per_query_prepare: false,
            // Degrade past 4 waiting batches, shed past 16 batches
            // of backlog: queue depth — and with it admitted latency —
            // stays bounded no matter the arrival rate, while leaving
            // enough queueing for sustained overload to breach the SLO
            // and feed the autoscaler.
            admission: Some(AdmissionConfig::default().with_watermarks(64, 256)),
            index: IndexMode::Exact,
        },
        ..FleetConfig::default()
    }
}

fn describe(mult: f64, r: &FleetReport<f32>, arrived: usize) -> String {
    format!(
        "{:>5.0}x {:>8} {:>8} {:>8} {:>9.3} {:>10.1} {:>10.1} {:>9} {:>7} {:>10.2}",
        mult,
        arrived,
        r.responses.len(),
        r.rejected.len(),
        r.shed_fraction(),
        r.latency_percentile(50.0) * 1e6,
        r.latency_percentile(99.0) * 1e6,
        r.replicas_final,
        r.scale_events.iter().filter(|e| e.to > e.from).count(),
        r.worst_burn(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = bench::parse_u64(&args, "--seed", 1);
    let scale = bench::parse_scale(&args, "--scale", 0.004);
    let k = bench::parse_u64(&args, "--k", 10) as usize;
    let json_path = bench::parse_path(&args, "--json");
    let mut report = BenchReport::new("serve_fleet");

    let profile = DatasetProfile::movielens();
    let index = profile.scaled_with(scale, 0.04).generate(seed);
    let queries = query_slab(&index);
    // Host-side selection + retries: the chaos drill's injected faults
    // are only absorbable through the retry policy, which does not
    // cover the device top-k kernel. Both the overload sweep and the
    // drill use the same estimator, so all rows share one code path.
    let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean)
        .with_selection(Selection::Host)
        .with_options(PairwiseOptions {
            resilience: Some(ResiliencePolicy::with_retries(8)),
            ..PairwiseOptions::default()
        })
        .fit(index.clone());

    println!(
        "Fleet overload sweep ({}, k={k}, SLO p99 {:.0} us, {} ms windows)",
        profile.name,
        SLO_TARGET_P99_S * 1e6,
        fleet_config(k).window_s * 1e3
    );
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>9} {:>10} {:>10} {:>9} {:>7} {:>10}",
        "load",
        "arrived",
        "served",
        "shed",
        "shedfrac",
        "p50 us",
        "p99 us",
        "replicas",
        "ups",
        "burn"
    );

    for mult in MULTIPLIERS {
        let workload = Workload::steady(seed, BASE_QPS * mult, DURATION_S)
            .with_zipf(1.1)
            .with_diurnal(0.3, DURATION_S / 2.0)
            .with_bursts(DURATION_S / 3.0, 32);
        let requests = workload.generate(std::slice::from_ref(&queries));
        let mut fleet = Fleet::new(Device::volta(), fleet_config(k))
            .with_slo(0, SloBudget::p99(SLO_TARGET_P99_S));
        let r = fleet
            .run(std::slice::from_ref(&nn), &requests)
            .expect("fleet replay runs");
        println!("{}", describe(mult, &r, requests.len()));

        // Acceptance: no queue collapse — every arrival is accounted
        // for, and the admitted tail holds the envelope even at 100×.
        assert_eq!(
            r.responses.len() + r.rejected.len(),
            requests.len(),
            "lost requests at {mult}x"
        );
        let p99 = r.latency_percentile(99.0);
        assert!(
            p99 <= P99_ENVELOPE_S,
            "admitted p99 {:.1} us blew the {:.1} us envelope at {mult}x",
            p99 * 1e6,
            P99_ENVELOPE_S * 1e6
        );
        assert!(
            r.shed_fraction() < 1.0,
            "controller shed everything at {mult}x"
        );
        if mult == 1.0 {
            assert_eq!(r.shed_fraction(), 0.0, "1x load must be shed-free");
        }

        let m = fleet.metrics();
        report.push(
            MetricRow::new()
                .label("dataset", profile.name)
                .label("mode", "overload")
                .label("load", &format!("{mult:.0}x"))
                .value("arrived", requests.len() as f64)
                .value("served", r.responses.len() as f64)
                .value("shed", r.rejected.len() as f64)
                .value("shed_fraction", r.shed_fraction())
                .value("p50_latency_s", r.latency_percentile(50.0))
                .value("p99_latency_s", p99)
                .value("replicas_final", r.replicas_final as f64)
                .value("scale_ups", m.counter("serve.fleet.scale_ups_total") as f64)
                .value(
                    "scale_downs",
                    m.counter("serve.fleet.scale_downs_total") as f64,
                )
                .value(
                    "degraded_requests",
                    m.counter("serve.fleet.degraded_requests_total") as f64,
                )
                .value("windows", r.windows.len() as f64)
                .value("worst_burn", r.worst_burn()),
        );
        bench::validate_metrics(&m.snapshot("serve_fleet").to_json())
            .expect("fleet metrics snapshot validates");
    }

    // Chaos drill at 10×: a mid-run burst of transient launch faults.
    // The drill byte-compares the surviving set against a fault-free
    // run and finds the first post-chaos window back inside the burn
    // envelope.
    let workload = Workload::steady(seed, BASE_QPS * 10.0, DURATION_S)
        .with_zipf(1.1)
        .with_diurnal(0.3, DURATION_S / 2.0)
        .with_bursts(DURATION_S / 3.0, 32);
    let requests = workload.generate(std::slice::from_ref(&queries));
    let chaos = ChaosPlan {
        start_s: DURATION_S * 0.25,
        end_s: DURATION_S * 0.5,
        fault: FaultPlan::seeded(seed).with_transient_launch_failures(100),
    };
    let outcome = chaos_drill(
        &Device::volta(),
        fleet_config(k),
        &[(0, SloBudget::p99(SLO_TARGET_P99_S))],
        std::slice::from_ref(&nn),
        &requests,
        chaos,
        1.0,
    )
    .expect("chaos drill runs");
    assert_eq!(
        outcome.divergent, 0,
        "chaos changed a served byte on {} of {} surviving requests",
        outcome.divergent, outcome.common
    );
    assert!(outcome.common > 0, "drill runs share no served requests");
    let recovery = outcome.recovery_window.expect("fleet recovers post-chaos");
    let windows_past_chaos = outcome
        .chaos
        .windows
        .iter()
        .take(recovery)
        .filter(|w| w.start_s >= DURATION_S * 0.5)
        .count();
    println!(
        "\nchaos drill at 10x: {} common, 0 divergent, recovered in window {} \
         ({} window(s) past fault end)",
        outcome.common, recovery, windows_past_chaos
    );
    report.push(
        MetricRow::new()
            .label("dataset", profile.name)
            .label("mode", "chaos_drill")
            .label("load", "10x")
            .value("common", outcome.common as f64)
            .value("divergent", outcome.divergent as f64)
            .value("recovery_window", recovery as f64)
            .value("windows_past_chaos", windows_past_chaos as f64)
            .value("chaos_shed_fraction", outcome.chaos.shed_fraction())
            .value("baseline_shed_fraction", outcome.baseline.shed_fraction()),
    );

    println!(
        "\nreading: past 1x the token-bucket watermarks cap queue depth, so\n\
         p99 of admitted requests stays inside the SLO envelope while the\n\
         shed fraction (not latency) absorbs the overload; the autoscaler\n\
         converts sustained burn into replicas; chaos faults cost retries\n\
         and windows, never bytes."
    );
    if let Some(path) = json_path {
        report.write(&path);
        println!("wrote {path}");
    }
}
