//! Ablation: dense vs hash-table vs bloom-filter shared-memory modes of
//! the hybrid kernel (§3.3.2's design discussion).
//!
//! The paper: dense has "the highest throughput rate and least amount of
//! thread divergence" but couples shared memory to dimensionality; the
//! hash table couples it to row degree at the price of probe chains; the
//! bloom filter trades smem for global binary searches and was only
//! "marginally better" on one compute-bound distance.
//!
//! Run with: `cargo bench -p bench --bench smem_ablation`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::DatasetProfile;
use gpu_sim::Device;
use kernels::{pairwise_distances, PairwiseOptions, SmemMode, Strategy};
use semiring::{Distance, DistanceParams};
use sparse::CsrMatrix;

fn workload() -> (CsrMatrix<f32>, CsrMatrix<f32>) {
    // MovieLens-ish: skewed degrees that stress hash probing.
    let index = DatasetProfile::movielens()
        .scaled_with(0.004, 0.04)
        .generate(7);
    let queries = index.slice_rows(0..index.rows().min(48));
    (queries, index)
}

fn bench_smem_modes(c: &mut Criterion) {
    let dev = Device::volta();
    let params = DistanceParams::default();
    let (queries, index) = workload();

    let mut group = c.benchmark_group("smem_mode");
    println!(
        "\nworkload: {} queries x {} index rows (k={}), nnz {}",
        queries.rows(),
        index.rows(),
        index.cols(),
        index.nnz()
    );
    println!(
        "{:<8} {:<14} {:>12} {:>12} {:>12} {:>12}",
        "mode", "distance", "sim(us)", "smem acc", "bank extra", "txns"
    );
    for distance in [Distance::Cosine, Distance::JensenShannon] {
        for mode in [SmemMode::Dense, SmemMode::Hash, SmemMode::Bloom] {
            let opts = PairwiseOptions {
                strategy: Strategy::HybridCooSpmv,
                smem_mode: mode,
                resilience: None,
            };
            let r = pairwise_distances(&dev, &queries, &index, distance, &params, &opts)
                .expect("mode runs");
            let smem: u64 = r.launches.iter().map(|l| l.counters.smem_accesses).sum();
            let bank: u64 = r
                .launches
                .iter()
                .map(|l| l.counters.bank_conflict_extra)
                .sum();
            let txns: u64 = r
                .launches
                .iter()
                .map(|l| l.counters.global_transactions)
                .sum();
            println!(
                "{:<8} {:<14} {:>12.2} {:>12} {:>12} {:>12}",
                format!("{mode:?}"),
                distance.name(),
                r.sim_seconds() * 1e6,
                smem,
                bank,
                txns
            );

            group.bench_with_input(
                BenchmarkId::new(format!("{mode:?}"), distance.name()),
                &opts,
                |b, opts| {
                    b.iter(|| {
                        pairwise_distances(&dev, &queries, &index, distance, &params, opts)
                            .expect("mode runs")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_smem_modes
}
criterion_main!(benches);
