//! Ablation: host-side vs device-side k-selection in the k-NN pipeline.
//!
//! cuML performs the k-smallest selection on the GPU so the dense
//! distance tile never crosses PCIe; the host path exists here as the
//! validation oracle. This bench measures both pipelines end-to-end and
//! prints the simulated-time split (distance kernels vs selection).
//!
//! Run with: `cargo bench -p bench --bench selection_ablation`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::DatasetProfile;
use gpu_sim::Device;
use neighbors::{NearestNeighbors, Selection};
use semiring::Distance;
use sparse::CsrMatrix;

fn workload() -> CsrMatrix<f32> {
    DatasetProfile::nytimes_bow()
        .scaled_with(0.002, 0.05)
        .generate(3)
}

fn to_f32(m: CsrMatrix<f32>) -> CsrMatrix<f32> {
    m
}

fn bench_selection(c: &mut Criterion) {
    let index = to_f32(workload());
    let queries = index.slice_rows(0..index.rows().min(64));
    let mut group = c.benchmark_group("selection");
    println!(
        "\nworkload: {} queries x {} index rows, k = 10",
        queries.rows(),
        index.rows()
    );
    for (label, selection, fused) in [
        ("device-select", Selection::Device, false),
        ("host-select", Selection::Host, false),
        ("fused", Selection::Device, true),
    ] {
        let nn = NearestNeighbors::new(Device::volta(), Distance::Cosine)
            .with_selection(selection)
            .with_fused(fused)
            .fit(index.clone());
        let r = nn.kneighbors(&queries, 10).expect("query ok");
        println!(
            "{label}: {:.3} ms simulated total, peak output {} KiB",
            r.sim_seconds * 1e3,
            r.peak_memory.output_bytes / 1024
        );
        group.bench_function(BenchmarkId::new("kneighbors", label), |b| {
            let nn = NearestNeighbors::new(Device::volta(), Distance::Cosine)
                .with_selection(selection)
                .with_fused(fused)
                .fit(index.clone());
            b.iter(|| nn.kneighbors(&queries, 10).expect("query ok"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_selection
}
criterion_main!(benches);
