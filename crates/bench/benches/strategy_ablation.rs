//! Ablation: the three §3 execution strategies on the same workload.
//!
//! Regenerates the design-space comparison behind the paper's §3
//! narrative — expand-sort-contract is sort-dominated, the naive CSR
//! kernel diverges, and the hybrid CSR+COO kernel wins — as a Criterion
//! benchmark over host execution time of the simulated kernels, plus a
//! printed table of *simulated* times and the counters that explain them.
//!
//! Run with: `cargo bench -p bench --bench strategy_ablation`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::DatasetProfile;
use gpu_sim::Device;
use kernels::{pairwise_distances, PairwiseOptions, SmemMode, Strategy};
use semiring::{Distance, DistanceParams};
use sparse::CsrMatrix;

fn workload() -> (CsrMatrix<f32>, CsrMatrix<f32>) {
    let index = DatasetProfile::nytimes_bow()
        .scaled_with(0.002, 0.05)
        .generate(42);
    let queries = index.slice_rows(0..index.rows().min(48));
    (queries, index)
}

fn bench_strategies(c: &mut Criterion) {
    let dev = Device::volta();
    let params = DistanceParams::default();
    let (queries, index) = workload();

    let mut group = c.benchmark_group("strategy");
    println!(
        "\nworkload: {} queries x {} index rows, nnz {}",
        queries.rows(),
        index.rows(),
        index.nnz()
    );
    println!(
        "{:<24} {:<12} {:>12} {:>12} {:>12} {:>10}",
        "strategy", "distance", "sim(us)", "issues", "txns", "div%"
    );
    for distance in [Distance::Cosine, Distance::Manhattan] {
        for strategy in [
            Strategy::HybridCooSpmv,
            Strategy::NaiveCsr,
            Strategy::ExpandSortContract,
        ] {
            let opts = PairwiseOptions {
                strategy,
                smem_mode: SmemMode::Auto,
                resilience: None,
            };
            // Print the simulated-time ablation once.
            let r = pairwise_distances(&dev, &queries, &index, distance, &params, &opts)
                .expect("strategy runs");
            let issues: u64 = r.launches.iter().map(|l| l.counters.issues).sum();
            let txns: u64 = r
                .launches
                .iter()
                .map(|l| l.counters.global_transactions)
                .sum();
            let div: f64 = r
                .launches
                .iter()
                .map(|l| l.counters.divergence_ratio())
                .fold(0.0, f64::max);
            println!(
                "{:<24} {:<12} {:>12.2} {:>12} {:>12} {:>9.1}%",
                strategy.name(),
                distance.name(),
                r.sim_seconds() * 1e6,
                issues,
                txns,
                div * 100.0
            );

            group.bench_with_input(
                BenchmarkId::new(strategy.name(), distance.name()),
                &opts,
                |b, opts| {
                    b.iter(|| {
                        pairwise_distances(&dev, &queries, &index, distance, &params, opts)
                            .expect("strategy runs")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_strategies
}
criterion_main!(benches);
