//! The paper's sparse pairwise-distance kernel strategies, implemented on
//! the `gpu-sim` SIMT simulator.
//!
//! Three execution strategies are provided, mirroring §3 of the paper:
//!
//! * [`Strategy::ExpandSortContract`] (§3.2.1, Alg 1) — per-pair blocks
//!   concatenate both rows in shared memory, bitonic-sort by column, and
//!   contract duplicates. Sort-dominated; shared-memory-bounded.
//! * [`Strategy::NaiveCsr`] (§3.2.2, Alg 2) — one thread per `(i, j)`
//!   output cell runs a two-pointer merge over the sorted rows straight
//!   out of global memory. Divergent and uncoalesced by construction.
//! * [`Strategy::HybridCooSpmv`] (§3.3, Alg 3) — the paper's
//!   contribution: rows of `A` cached in shared memory (dense, hash
//!   table, or bloom filter form, [`SmemMode`]), `B` streamed through a
//!   COO row index for load balance, warp-level segmented reduction, and
//!   a second commuted pass for NAMM distances.
//!
//! The top-level entry point is [`pairwise_distances`], which runs the
//! semiring passes, the row-norm kernel, and the expansion /
//! finalization kernel, and returns the distances together with the
//! launch statistics and simulated time.
//!
//! # Example
//!
//! ```
//! use gpu_sim::Device;
//! use kernels::{pairwise_distances, PairwiseOptions};
//! use semiring::{Distance, DistanceParams};
//! use sparse::CsrMatrix;
//!
//! let a = CsrMatrix::<f32>::from_dense(2, 3, &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
//! let dev = Device::volta();
//! let out = pairwise_distances(
//!     &dev,
//!     &a,
//!     &a,
//!     Distance::Manhattan,
//!     &DistanceParams::default(),
//!     &PairwiseOptions::default(),
//! )?;
//! assert_eq!(out.distances.get(0, 0), 0.0);
//! assert_eq!(out.distances.get(0, 1), 6.0);
//! # Ok::<(), kernels::KernelError>(())
//! ```

#![deny(missing_docs)]
// `!(v < threshold)` is the NaN-correct admission guard the selection
// kernels rely on; rewriting via partial_cmp would change semantics.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Kernel entry points mirror CUDA launch signatures: one parameter per
// device operand, not a bundled struct.
#![allow(clippy::too_many_arguments)]
// Branch arms that produce the same value are kept separate where each
// arm documents a distinct semiring case (annihilator vs. miss, etc.).
#![allow(clippy::if_same_then_else)]

pub mod device_fmt;
pub mod error;
pub mod esc;
pub mod expansion;
pub mod filter;
pub mod fused_knn;
pub mod hybrid;
pub mod naive;
pub mod naive_shared;
pub mod norms;
pub mod resilience;
pub mod select;
pub mod strategy;

pub use device_fmt::{DeviceCoo, DeviceCsr};
pub use error::KernelError;
pub use filter::{radius_filter_kernel, RadiusFilterOutput};
pub use fused_knn::{fused_knn, FusedKnn};
pub use resilience::{FallbackCascade, ResiliencePolicy, ResilienceReport};
pub use select::top_k_kernel;
pub use strategy::{
    pairwise_distances, pairwise_distances_device, pairwise_distances_prepared, DevicePairwise,
    MemoryFootprint, PairwiseOptions, PairwiseResult, PreparedIndex, SmemMode, Strategy,
};
