//! Device-side top-k selection.
//!
//! The paper's end-to-end benchmark is a brute-force k-NN query through
//! cuML's `NearestNeighbors`, which performs the k-smallest selection on
//! the GPU (a faiss-style warp/block-select) rather than copying the
//! dense distance tile back to the host. This kernel reproduces that
//! stage: one block per query row, a shared-memory candidate list of the
//! current k best, and a threshold test so that only improving
//! candidates pay the serialized insertion — the expected number of
//! insertions over a random row is `k·ln(n/k)`, so the scan is
//! bandwidth-bound and the divergence counters show only the rare
//! insertion bursts.

use crate::error::KernelError;
use gpu_sim::{lanes_from_fn, Device, GlobalBuffer, LaunchConfig, LaunchStats, WARP_SIZE};
use sparse::Real;

/// Threads per block (one warp is enough: the scan is memory-bound).
const BLOCK_THREADS: usize = 32;

/// Selects, for every row of the `rows × cols` matrix `dists`, the `k`
/// smallest entries (ascending, ties to the lower column index).
///
/// Returns `(indices, values, stats)` where `indices`/`values` are
/// `rows × k` row-major device buffers. When `k > cols`, the tail is
/// filled with `u32::MAX` / `T::INFINITY`.
///
/// # Errors
///
/// Returns [`KernelError::Launch`] when the simulator rejects the launch
/// (sanitizer findings, injected faults, or a watchdog timeout).
pub fn top_k_kernel<T: Real>(
    dev: &Device,
    dists: &GlobalBuffer<T>,
    rows: usize,
    cols: usize,
    k: usize,
) -> Result<(GlobalBuffer<u32>, GlobalBuffer<T>, LaunchStats), KernelError> {
    assert_eq!(dists.len(), rows * cols, "distance tile shape mismatch");
    let out_idx = GlobalBuffer::from_vec(vec![u32::MAX; rows * k]);
    let out_val = GlobalBuffer::from_vec(vec![T::INFINITY; rows * k]);
    let smem = k.max(1) * (std::mem::size_of::<u32>() + std::mem::size_of::<T>());

    let stats = dev.try_launch(
        "top_k_select",
        LaunchConfig::new(rows.max(1), BLOCK_THREADS, smem),
        |block| {
            let row = block.block_id;
            if row >= rows || k == 0 {
                return;
            }
            // Candidate list: `len` entries sorted ascending by value.
            let cand_idx = block.alloc_shared::<u32>(k);
            let cand_val = block.alloc_shared::<T>(k);
            block.run_warps(|w| {
                let mut len = 0usize;
                let mut threshold = T::INFINITY;
                let mut base = 0usize;
                w.range("scan", |w| {
                    while base < cols {
                        let idx = lanes_from_fn(|l| {
                            let c = base + l;
                            (c < cols).then(|| row * cols + c)
                        });
                        let vals = w.global_gather(dists, &idx);
                        // Threshold test: one compare issue for the warp.
                        w.issue(1);
                        let passing =
                            lanes_from_fn(|l| idx[l].is_some() && (len < k || vals[l] < threshold));
                        if passing.iter().any(|&p| p) {
                            // Divergent insertion burst: passing lanes
                            // serialize their shared-memory insertions.
                            w.branch(&passing);
                            w.range("insert", |w| {
                                for l in 0..WARP_SIZE {
                                    if !passing[l] {
                                        continue;
                                    }
                                    let col = (base + l) as u32;
                                    let v = vals[l];
                                    if len == k && !(v < threshold) {
                                        continue; // threshold moved this burst
                                    }
                                    // Binary insertion position (ties → lower col
                                    // wins, i.e. existing equal entries stay put).
                                    // smem-lint: begin-allow(serialized-emulation): host-side emulation of one lane's insertion sort; the burst is costed in aggregate by the smem_gather probe + issue at the end of the loop body
                                    let mut pos = len;
                                    while pos > 0 && v < cand_val.read(pos - 1) {
                                        pos -= 1;
                                    }
                                    if len == k {
                                        // Shift out the current worst.
                                        for s in ((pos + 1)..k).rev() {
                                            cand_idx.write(s, cand_idx.read(s - 1));
                                            cand_val.write(s, cand_val.read(s - 1));
                                        }
                                    } else {
                                        for s in ((pos + 1)..=len).rev() {
                                            cand_idx.write(s, cand_idx.read(s - 1));
                                            cand_val.write(s, cand_val.read(s - 1));
                                        }
                                        len += 1;
                                    }
                                    cand_idx.write(pos, col);
                                    cand_val.write(pos, v);
                                    threshold = cand_val.read(len - 1);
                                    // Cost of one serialized insertion: a probe
                                    // plus the shifted stores.
                                    let sidx = lanes_from_fn(|sl| (sl < len).then_some(sl));
                                    w.smem_gather(&cand_val, &sidx);
                                    w.issue(1);
                                    // smem-lint: end-allow
                                }
                            });
                        }
                        base += WARP_SIZE;
                    }
                });
                // Write out the k results (coalesced).
                w.range("emit", |w| {
                    // smem-lint: begin-allow(serialized-emulation): candidate list staged into registers for the coalesced emission; smem traffic was charged by the insertion-burst probes above
                    let oidx = lanes_from_fn(|l| (l < k).then(|| row * k + l));
                    let ovals = lanes_from_fn(|l| {
                        if l < len {
                            cand_val.read(l)
                        } else {
                            T::INFINITY
                        }
                    });
                    let oidxs =
                        lanes_from_fn(|l| if l < len { cand_idx.read(l) } else { u32::MAX });
                    if k <= WARP_SIZE {
                        w.global_scatter(&out_val, &oidx, &ovals);
                        w.global_scatter(&out_idx, &oidx, &oidxs);
                    } else {
                        // k beyond one warp's width: chunked writes.
                        let mut written = 0;
                        while written < k {
                            let widx = lanes_from_fn(|l| {
                                let t = written + l;
                                (t < k).then(|| row * k + t)
                            });
                            let wvals = lanes_from_fn(|l| {
                                let t = written + l;
                                if t < len {
                                    cand_val.read(t)
                                } else {
                                    T::INFINITY
                                }
                            });
                            let widxs = lanes_from_fn(|l| {
                                let t = written + l;
                                if t < len {
                                    cand_idx.read(t)
                                } else {
                                    u32::MAX
                                }
                            });
                            w.global_scatter(&out_val, &widx, &wvals);
                            w.global_scatter(&out_idx, &widx, &widxs);
                            written += WARP_SIZE;
                        }
                    }
                    // smem-lint: end-allow
                });
            });
        },
    )?;
    Ok((out_idx, out_val, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host_topk(row: &[f32], k: usize) -> Vec<(u32, f32)> {
        let mut v: Vec<(u32, f32)> = row
            .iter()
            .copied()
            .enumerate()
            .map(|(i, x)| (i as u32, x))
            .collect();
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN").then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    #[test]
    fn selects_k_smallest_sorted() {
        let dev = Device::volta();
        let rows = 5;
        let cols = 97;
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 2654435761usize) % 1000) as f32 / 10.0)
            .collect();
        let buf = dev.buffer_from_slice(&data);
        let k = 7;
        let (idx, val, _) = top_k_kernel(&dev, &buf, rows, cols, k).expect("launch");
        let idx = idx.to_vec();
        let val = val.to_vec();
        for r in 0..rows {
            let want = host_topk(&data[r * cols..(r + 1) * cols], k);
            for s in 0..k {
                assert_eq!(idx[r * k + s], want[s].0, "row {r} slot {s}");
                assert_eq!(val[r * k + s], want[s].1, "row {r} slot {s}");
            }
        }
    }

    #[test]
    fn k_larger_than_cols_pads_with_sentinels() {
        let dev = Device::volta();
        let data = [3.0f32, 1.0, 2.0];
        let buf = dev.buffer_from_slice(&data);
        let (idx, val, _) = top_k_kernel(&dev, &buf, 1, 3, 5).expect("launch");
        assert_eq!(idx.to_vec()[..3], [1, 2, 0]);
        assert_eq!(idx.host_get(3), u32::MAX);
        assert_eq!(val.host_get(4), f32::INFINITY);
    }

    #[test]
    fn k_zero_is_a_noop() {
        let dev = Device::volta();
        let buf = dev.buffer_from_slice(&[1.0f32, 2.0]);
        let (idx, val, _) = top_k_kernel(&dev, &buf, 1, 2, 0).expect("launch");
        assert!(idx.is_empty());
        assert!(val.is_empty());
    }

    #[test]
    fn ties_resolve_to_lower_column() {
        let dev = Device::volta();
        let data = [5.0f32, 1.0, 1.0, 1.0];
        let buf = dev.buffer_from_slice(&data);
        let (idx, _, _) = top_k_kernel(&dev, &buf, 1, 4, 2).expect("launch");
        assert_eq!(idx.to_vec(), vec![1, 2]);
    }

    #[test]
    fn descending_input_is_the_insertion_worst_case() {
        // Ascending input: after the first k, nothing beats the
        // threshold. Descending input: every element does → maximal
        // serialized insertion work.
        let dev = Device::volta();
        let n = 512;
        let asc: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let desc: Vec<f32> = (0..n).map(|i| (n - i) as f32).collect();
        let buf_a = dev.buffer_from_slice(&asc);
        let buf_d = dev.buffer_from_slice(&desc);
        let (_, _, sa) = top_k_kernel(&dev, &buf_a, 1, n, 8).expect("launch");
        let (_, _, sd) = top_k_kernel(&dev, &buf_d, 1, n, 8).expect("launch");
        assert!(
            sa.counters.effective_issues() < sd.counters.effective_issues(),
            "ascending {} vs descending {}",
            sa.counters.effective_issues(),
            sd.counters.effective_issues()
        );
    }

    #[test]
    fn wide_k_uses_chunked_writes() {
        let dev = Device::volta();
        let n = 200;
        let data: Vec<f32> = (0..n).map(|i| ((i * 37) % n) as f32).collect();
        let buf = dev.buffer_from_slice(&data);
        let k = 50; // > WARP_SIZE
        let (idx, val, _) = top_k_kernel(&dev, &buf, 1, n, k).expect("launch");
        let want = host_topk(&data, k);
        let idx = idx.to_vec();
        let val = val.to_vec();
        for s in 0..k {
            assert_eq!(idx[s], want[s].0, "slot {s}");
            assert_eq!(val[s], want[s].1, "slot {s}");
        }
    }
}
