//! Kernel-layer errors.

use gpu_sim::SimError;
use std::error::Error;
use std::fmt;

/// Error launching a distance kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// The operands do not share a dimensionality.
    ShapeMismatch {
        /// Columns of the query matrix.
        a_cols: usize,
        /// Columns of the index matrix.
        b_cols: usize,
    },
    /// The chosen strategy cannot satisfy its shared-memory requirement
    /// on the target device (e.g. expand-sort-contract with rows whose
    /// combined degree exceeds the block budget, §3.2.1).
    SharedMemoryExceeded {
        /// Strategy that was being planned.
        strategy: &'static str,
        /// Bytes the launch would need per block.
        required: usize,
        /// Bytes the device allows per block.
        available: usize,
    },
    /// The requested shared-memory mode cannot represent the input (e.g.
    /// dense mode with a dimensionality beyond the §3.3.2 limit).
    UnsupportedSmemMode(String),
    /// The simulator rejected a launch: invalid geometry, a shared-memory
    /// allocation over the block budget that slipped past pre-launch
    /// planning, or sanitizer findings under
    /// [`gpu_sim::SanitizerMode::Fail`]. Pre-launch capacity checks
    /// ([`KernelError::SharedMemoryExceeded`]) and launch-time budget
    /// faults thus share one error path.
    Launch(SimError),
}

impl From<SimError> for KernelError {
    fn from(e: SimError) -> Self {
        KernelError::Launch(e)
    }
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::ShapeMismatch { a_cols, b_cols } => write!(
                f,
                "operands must share dimensionality, got {a_cols} and {b_cols} columns"
            ),
            KernelError::SharedMemoryExceeded {
                strategy,
                required,
                available,
            } => write!(
                f,
                "{strategy} needs {required} bytes of shared memory per block but the device allows {available}"
            ),
            KernelError::UnsupportedSmemMode(msg) => {
                write!(f, "unsupported shared-memory mode: {msg}")
            }
            KernelError::Launch(e) => write!(f, "launch failed: {e}"),
        }
    }
}

impl Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = KernelError::SharedMemoryExceeded {
            strategy: "expand-sort-contract",
            required: 200_000,
            available: 98_304,
        };
        let msg = e.to_string();
        assert!(msg.contains("expand-sort-contract"));
        assert!(msg.contains("200000"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<KernelError>();
    }
}
