//! Naive full-union CSR kernel (§3.2.2, Algorithm 2).
//!
//! One thread per `(i, j)` output cell runs a two-pointer merge over the
//! sorted nonzeros of `A_i` and `B_j`, applying `⊗` across the full
//! column union. This design "will guarantee the ⊗ monoid is computed on
//! the full union of nonzero columns" but, as the paper observes, "the
//! differing distributions of nonzeros within each row decreased the
//! potential for coalesced global memory accesses and created large
//! thread divergences" — both of which the simulator's counters expose.
//!
//! This kernel doubles as the paper's *baseline* for NAMM distances in
//! Table 3 ("the naive CSR full-union semiring implementation as
//! described in section 3.2.2 for the distances which cuSPARSE does not
//! support").

use crate::device_fmt::DeviceCsr;
use crate::error::KernelError;
use gpu_sim::{lanes_from_fn, Device, GlobalBuffer, LaunchConfig, LaunchStats, WARP_SIZE};
use semiring::Semiring;
use sparse::Real;

/// Threads per block (8 warps) for the pair-per-thread kernel.
const BLOCK_THREADS: usize = 256;

/// Computes the `m × n` inner-term matrix (`⊕`-reduction of `⊗` over the
/// nonzero-column union of every row pair) into a new device buffer.
///
/// The caller applies the expansion or finalization pass afterwards.
///
/// # Errors
///
/// Returns [`KernelError::Launch`] when the simulator rejects the launch
/// (sanitizer findings, injected faults, or a watchdog timeout).
pub fn naive_csr_kernel<T: Real>(
    dev: &Device,
    a: &DeviceCsr<T>,
    b: &DeviceCsr<T>,
    sr: &Semiring<T>,
) -> Result<(GlobalBuffer<T>, LaunchStats), KernelError> {
    let (m, n) = (a.rows, b.rows);
    let total = m * n;
    let out = dev.buffer::<T>(total);
    let blocks = total.div_ceil(BLOCK_THREADS).max(1);
    let sr = *sr;
    let annihilating = sr.is_annihilating();

    let stats = dev.try_launch(
        "naive_csr",
        LaunchConfig::new(blocks, BLOCK_THREADS, 0),
        |block| {
            block.run_warps(|w| {
                // Per-lane pair assignment.
                let pair = lanes_from_fn(|l| {
                    let p = w.global_thread_id(l);
                    (p < total).then_some(p)
                });
                if pair.iter().all(Option::is_none) {
                    return;
                }
                // Row extents; four coalesced-ish indptr gathers.
                let ai = lanes_from_fn(|l| pair[l].map(|p| p / n));
                let bj = lanes_from_fn(|l| pair[l].map(|p| p % n));
                let (a_start, a_end, b_start, b_end) = w.range("pair_setup", |w| {
                    let a_start = w.global_gather(&a.indptr, &ai);
                    let a_end =
                        w.global_gather(&a.indptr, &lanes_from_fn(|l| ai[l].map(|i| i + 1)));
                    let b_start = w.global_gather(&b.indptr, &bj);
                    let b_end =
                        w.global_gather(&b.indptr, &lanes_from_fn(|l| bj[l].map(|j| j + 1)));
                    (a_start, a_end, b_start, b_end)
                });

                let mut ia = lanes_from_fn(|l| a_start[l] as usize);
                let mut ib = lanes_from_fn(|l| b_start[l] as usize);
                let mut acc = [sr.reduce_identity(); WARP_SIZE];

                // Lockstep merge: iterate while any lane still has work.
                w.range("merge_loop", |w| loop {
                    let live = lanes_from_fn(|l| {
                        pair[l].is_some()
                            && (ia[l] < a_end[l] as usize || ib[l] < b_end[l] as usize)
                    });
                    if !live.iter().any(|&x| x) {
                        break;
                    }
                    // Column loads are data-dependent gathers — the
                    // uncoalesced pattern the paper describes.
                    let col_a = w.global_gather(
                        &a.indices,
                        &lanes_from_fn(|l| (live[l] && ia[l] < a_end[l] as usize).then_some(ia[l])),
                    );
                    let col_b = w.global_gather(
                        &b.indices,
                        &lanes_from_fn(|l| (live[l] && ib[l] < b_end[l] as usize).then_some(ib[l])),
                    );
                    let eff_a = lanes_from_fn(|l| {
                        if live[l] && ia[l] < a_end[l] as usize {
                            col_a[l]
                        } else {
                            u32::MAX
                        }
                    });
                    let eff_b = lanes_from_fn(|l| {
                        if live[l] && ib[l] < b_end[l] as usize {
                            col_b[l]
                        } else {
                            u32::MAX
                        }
                    });
                    // Two data-dependent branches (advance A? advance B?).
                    let take_a = lanes_from_fn(|l| live[l] && eff_a[l] <= eff_b[l]);
                    let take_b = lanes_from_fn(|l| live[l] && eff_b[l] <= eff_a[l]);
                    w.branch(&take_a);
                    w.branch(&take_b);
                    let val_a =
                        w.global_gather(&a.values, &lanes_from_fn(|l| take_a[l].then_some(ia[l])));
                    let val_b =
                        w.global_gather(&b.values, &lanes_from_fn(|l| take_b[l].then_some(ib[l])));
                    w.issue(2); // product + reduce
                    for l in 0..WARP_SIZE {
                        if !live[l] {
                            continue;
                        }
                        let both = take_a[l] && take_b[l];
                        if both || !annihilating {
                            let va = if take_a[l] { val_a[l] } else { T::ZERO };
                            let vb = if take_b[l] { val_b[l] } else { T::ZERO };
                            acc[l] = sr.reduce(acc[l], sr.product(va, vb));
                        }
                        if take_a[l] {
                            ia[l] += 1;
                        }
                        if take_b[l] {
                            ib[l] += 1;
                        }
                    }
                });
                w.range("writeback", |w| w.global_scatter(&out, &pair, &acc));
            });
        },
    )?;
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::{apply_semiring_union, Distance, DistanceParams};
    use sparse::CsrMatrix;

    fn row_pairs(m: &CsrMatrix<f64>, i: usize) -> Vec<(u32, f64)> {
        m.row(i).collect()
    }

    fn check_against_reference(a: &CsrMatrix<f64>, b: &CsrMatrix<f64>, d: Distance) {
        let dev = Device::volta();
        let params = DistanceParams::default();
        let sr = d.semiring::<f64>(&params);
        let da = DeviceCsr::upload(&dev, a);
        let db = DeviceCsr::upload(&dev, b);
        let (out, _) = naive_csr_kernel(&dev, &da, &db, &sr).expect("launch");
        let got = out.to_vec();
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let expect = apply_semiring_union(&row_pairs(a, i), &row_pairs(b, j), &sr);
                let g = got[i * b.rows() + j];
                assert!(
                    (g - expect).abs() < 1e-9,
                    "{d} cell ({i},{j}): kernel {g}, reference {expect}"
                );
            }
        }
    }

    fn sample_pair() -> (CsrMatrix<f64>, CsrMatrix<f64>) {
        let a = CsrMatrix::from_dense(
            3,
            6,
            &[
                1.0, 0.0, 2.0, 0.0, 0.5, 0.0, //
                0.0, 0.0, 0.0, 0.0, 0.0, 0.0, //
                3.0, 1.0, 0.0, 4.0, 0.0, 2.0,
            ],
        );
        let b = CsrMatrix::from_dense(
            4,
            6,
            &[
                0.0, 1.0, 2.0, 0.0, 0.0, 1.0, //
                1.0, 0.0, 2.0, 0.0, 0.5, 0.0, //
                0.0, 0.0, 0.0, 0.0, 0.0, 7.0, //
                2.0, 2.0, 2.0, 2.0, 2.0, 2.0,
            ],
        );
        (a, b)
    }

    #[test]
    fn matches_union_reference_for_manhattan() {
        let (a, b) = sample_pair();
        check_against_reference(&a, &b, Distance::Manhattan);
    }

    #[test]
    fn matches_union_reference_for_chebyshev_max_reduction() {
        let (a, b) = sample_pair();
        check_against_reference(&a, &b, Distance::Chebyshev);
    }

    #[test]
    fn matches_intersection_reference_for_dot() {
        let (a, b) = sample_pair();
        check_against_reference(&a, &b, Distance::DotProduct);
    }

    #[test]
    fn empty_rows_produce_identity() {
        let (a, b) = sample_pair();
        let dev = Device::volta();
        let sr = Distance::Manhattan.semiring::<f64>(&DistanceParams::default());
        let da = DeviceCsr::upload(&dev, &a);
        let db = DeviceCsr::upload(&dev, &b);
        let (out, _) = naive_csr_kernel(&dev, &da, &db, &sr).expect("launch");
        // a row 1 is empty, b row 2 = {5: 7.0}: union = |0-7| = 7.
        assert_eq!(out.host_get(4 + 2), 7.0);
    }

    #[test]
    fn skewed_rows_create_divergence() {
        // One long row next to short rows → lanes idle while one works.
        let mut trips: Vec<(u32, u32, f64)> = (0..200).map(|c| (0, c, 1.0)).collect();
        for r in 1..32u32 {
            trips.push((r, 0, 1.0));
        }
        let a = CsrMatrix::from_triplets(32, 200, &trips).expect("valid");
        let dev = Device::volta();
        let sr = Distance::Manhattan.semiring::<f64>(&DistanceParams::default());
        let da = DeviceCsr::upload(&dev, &a);
        let (_, stats) = naive_csr_kernel(&dev, &da, &da, &sr).expect("launch");
        assert!(
            stats.counters.divergence_extra > 0,
            "skewed degree distribution must show divergence"
        );
        assert!(stats.counters.coalescing_overhead() > 2.0);
    }
}
