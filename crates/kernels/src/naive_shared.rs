//! Naive CSR kernel with the A-row staged in shared memory — the §3.2.2
//! refinement.
//!
//! "We found marginal gains in performance by coalescing the reads of
//! the vectors from A into shared memory and sharing it across all
//! threads of each thread-block." One block per `A` row: the row is
//! loaded once with coalesced reads, then every thread merges it against
//! one `B` row at a time, reading the `A` side from shared memory. The
//! `B`-side gathers stay data-dependent and divergent — which is why the
//! gains were only marginal and the paper moved on to the hybrid design.

use crate::device_fmt::DeviceCsr;
use crate::error::KernelError;
use gpu_sim::{lanes_from_fn, Device, GlobalBuffer, LaunchConfig, LaunchStats, WARP_SIZE};
use semiring::Semiring;
use sparse::Real;

/// Threads per block (8 warps; each thread owns one `B` row at a time).
const BLOCK_THREADS: usize = 256;

/// Computes the `m × n` inner-term matrix with one block per `A` row and
/// the row staged in shared memory.
///
/// # Errors
///
/// Returns [`KernelError::SharedMemoryExceeded`] when the widest `A` row
/// cannot fit the per-block shared memory.
pub fn naive_shared_kernel<T: Real>(
    dev: &Device,
    a: &DeviceCsr<T>,
    b: &DeviceCsr<T>,
    a_max_degree: usize,
    sr: &Semiring<T>,
) -> Result<(GlobalBuffer<T>, LaunchStats), KernelError> {
    let (m, n) = (a.rows, b.rows);
    let smem = a_max_degree * (std::mem::size_of::<u32>() + std::mem::size_of::<T>());
    let available = dev.spec().shared_mem_per_block;
    if smem > available {
        return Err(KernelError::SharedMemoryExceeded {
            strategy: "naive-csr-shared",
            required: smem,
            available,
        });
    }
    let out = GlobalBuffer::from_vec(vec![sr.reduce_identity(); m * n]);
    let sr = *sr;
    let annihilating = sr.is_annihilating();

    let stats = dev.try_launch(
        "naive_csr_shared",
        LaunchConfig::new(m.max(1), BLOCK_THREADS, smem),
        |block| {
            let i = block.block_id;
            if i >= m {
                return;
            }
            let (a_start, a_end) = a.row_extent(i);
            let da = a_end - a_start;
            let s_cols = block.alloc_shared::<u32>(da.max(1));
            let s_vals = block.alloc_shared::<T>(da.max(1));

            // Stage A_i: coalesced loads, unit-stride smem stores.
            let (sc, sv) = (s_cols.clone(), s_vals.clone());
            block.run_warps(|w| {
                w.range("row_cache", |w| {
                    let wpb = BLOCK_THREADS / WARP_SIZE;
                    let mut base = w.warp_id * WARP_SIZE;
                    while base < da {
                        let gidx = lanes_from_fn(|l| {
                            let t = base + l;
                            (t < da).then(|| a_start + t)
                        });
                        let cols = w.global_gather(&a.indices, &gidx);
                        let vals = w.global_gather(&a.values, &gidx);
                        let sidx = lanes_from_fn(|l| {
                            let t = base + l;
                            (t < da).then_some(t)
                        });
                        w.smem_scatter(&sc, &sidx, &cols);
                        w.smem_scatter(&sv, &sidx, &vals);
                        base += wpb * WARP_SIZE;
                    }
                });
            });
            block.sync();

            // Each lane merges A_i (shared) against one B row (global).
            block.run_warps(|w| {
                let wpb = BLOCK_THREADS / WARP_SIZE;
                let mut jbase = w.warp_id * WARP_SIZE;
                while jbase < n {
                    let j = lanes_from_fn(|l| {
                        let t = jbase + l;
                        (t < n).then_some(t)
                    });
                    let (b_start, b_end) = w.range("pair_setup", |w| {
                        let b_start = w.global_gather(&b.indptr, &j);
                        let b_end =
                            w.global_gather(&b.indptr, &lanes_from_fn(|l| j[l].map(|x| x + 1)));
                        (b_start, b_end)
                    });
                    let mut ia = [0usize; WARP_SIZE]; // offset into smem row
                    let mut ib = lanes_from_fn(|l| b_start[l] as usize);
                    let mut acc = [sr.reduce_identity(); WARP_SIZE];
                    w.range("merge_loop", |w| loop {
                        let live = lanes_from_fn(|l| {
                            j[l].is_some() && (ia[l] < da || ib[l] < b_end[l] as usize)
                        });
                        if !live.iter().any(|&x| x) {
                            break;
                        }
                        // A side from shared memory (bank conflicts
                        // possible — lanes sit at different offsets).
                        let col_a_raw = w.smem_gather(
                            &s_cols,
                            &lanes_from_fn(|l| (live[l] && ia[l] < da).then_some(ia[l])),
                        );
                        let col_b_raw = w.global_gather(
                            &b.indices,
                            &lanes_from_fn(|l| {
                                (live[l] && ib[l] < b_end[l] as usize).then_some(ib[l])
                            }),
                        );
                        let eff_a = lanes_from_fn(|l| {
                            if live[l] && ia[l] < da {
                                col_a_raw[l]
                            } else {
                                u32::MAX
                            }
                        });
                        let eff_b = lanes_from_fn(|l| {
                            if live[l] && ib[l] < b_end[l] as usize {
                                col_b_raw[l]
                            } else {
                                u32::MAX
                            }
                        });
                        let take_a = lanes_from_fn(|l| live[l] && eff_a[l] <= eff_b[l]);
                        let take_b = lanes_from_fn(|l| live[l] && eff_b[l] <= eff_a[l]);
                        w.branch(&take_a);
                        w.branch(&take_b);
                        let val_a =
                            w.smem_gather(&s_vals, &lanes_from_fn(|l| take_a[l].then_some(ia[l])));
                        let val_b = w.global_gather(
                            &b.values,
                            &lanes_from_fn(|l| take_b[l].then_some(ib[l])),
                        );
                        w.issue(2);
                        for l in 0..WARP_SIZE {
                            if !live[l] {
                                continue;
                            }
                            let both = take_a[l] && take_b[l];
                            if both || !annihilating {
                                let va = if take_a[l] { val_a[l] } else { T::ZERO };
                                let vb = if take_b[l] { val_b[l] } else { T::ZERO };
                                acc[l] = sr.reduce(acc[l], sr.product(va, vb));
                            }
                            if take_a[l] {
                                ia[l] += 1;
                            }
                            if take_b[l] {
                                ib[l] += 1;
                            }
                        }
                    });
                    let oidx = lanes_from_fn(|l| j[l].map(|x| i * n + x));
                    w.range("writeback", |w| w.global_scatter(&out, &oidx, &acc));
                    jbase += wpb * WARP_SIZE;
                }
            });
        },
    )?;
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_csr_kernel;
    use semiring::{apply_semiring_union, Distance, DistanceParams};
    use sparse::CsrMatrix;

    fn sample_pair() -> (CsrMatrix<f64>, CsrMatrix<f64>) {
        let a = CsrMatrix::from_dense(
            3,
            6,
            &[
                1.0, 0.0, 2.0, 0.0, 0.5, 0.0, //
                0.0, 0.0, 0.0, 0.0, 0.0, 0.0, //
                3.0, 1.0, 0.0, 4.0, 0.0, 2.0,
            ],
        );
        let b = CsrMatrix::from_dense(
            4,
            6,
            &[
                0.0, 1.0, 2.0, 0.0, 0.0, 1.0, //
                1.0, 0.0, 2.0, 0.0, 0.5, 0.0, //
                0.0, 0.0, 0.0, 0.0, 0.0, 7.0, //
                2.0, 2.0, 2.0, 2.0, 2.0, 2.0,
            ],
        );
        (a, b)
    }

    #[test]
    fn matches_union_reference() {
        let (a, b) = sample_pair();
        let dev = Device::volta();
        let params = DistanceParams::default();
        for d in [
            Distance::Manhattan,
            Distance::Chebyshev,
            Distance::DotProduct,
        ] {
            let sr = d.semiring::<f64>(&params);
            let da = DeviceCsr::upload(&dev, &a);
            let db = DeviceCsr::upload(&dev, &b);
            let (got, _) = naive_shared_kernel(&dev, &da, &db, a.max_degree(), &sr).expect("fits");
            let got = got.to_vec();
            for i in 0..a.rows() {
                for jj in 0..b.rows() {
                    let av: Vec<_> = a.row(i).collect();
                    let bv: Vec<_> = b.row(jj).collect();
                    let want = apply_semiring_union(&av, &bv, &sr);
                    let g = got[i * b.rows() + jj];
                    assert!((g - want).abs() < 1e-9, "{d} cell ({i},{jj})");
                }
            }
        }
    }

    #[test]
    fn improves_a_side_coalescing_over_plain_naive() {
        // The §3.2.2 claim: staging A coalesces its reads, removing the
        // A-side's data-dependent gathers from global memory entirely.
        // The shared variant must therefore move fewer global bytes in
        // total than the plain kernel on the same input.
        let trips: Vec<(u32, u32, f64)> = (0..32u32)
            .flat_map(|r| (0..40u32).map(move |c| (r, (c * 7 + r) % 300, 1.0)))
            .collect();
        let a = CsrMatrix::from_triplets(32, 300, &trips).expect("valid");
        let dev = Device::volta();
        let sr = Distance::Manhattan.semiring::<f64>(&DistanceParams::default());
        let da = DeviceCsr::upload(&dev, &a);
        let (_, plain) = naive_csr_kernel(&dev, &da, &da, &sr).expect("launch");
        let (_, shared) = naive_shared_kernel(&dev, &da, &da, a.max_degree(), &sr).expect("fits");
        assert!(
            shared.counters.global_bytes < plain.counters.global_bytes,
            "shared {} vs plain {} global bytes",
            shared.counters.global_bytes,
            plain.counters.global_bytes
        );
        assert!(
            shared.counters.global_transactions < plain.counters.global_transactions,
            "shared {} vs plain {} transactions",
            shared.counters.global_transactions,
            plain.counters.global_transactions
        );
    }

    #[test]
    fn oversized_rows_are_rejected() {
        let dev = Device::volta();
        let a = CsrMatrix::<f32>::zeros(1, 100_000);
        let da = DeviceCsr::upload(&dev, &a);
        let sr = Distance::Manhattan.semiring::<f32>(&DistanceParams::default());
        let err = naive_shared_kernel(&dev, &da, &da, 90_000, &sr);
        assert!(matches!(err, Err(KernelError::SharedMemoryExceeded { .. })));
    }
}
