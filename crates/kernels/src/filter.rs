//! Device-side radius filtering (stream compaction).
//!
//! The ε-neighborhood counterpart of the top-k selection kernel: for
//! every row of a distance tile, compact the `(index, distance)` pairs
//! within `radius` into a dense output list. Each warp evaluates the
//! predicate over 32 columns, learns its output slots with a warp
//! exclusive scan, and scatters the survivors — the classic compaction
//! idiom, with its costs (scan issues, scattered writes) visible in the
//! counters.

use crate::error::KernelError;
use gpu_sim::{lanes_from_fn, Device, GlobalBuffer, LaunchConfig, LaunchStats, WARP_SIZE};
use sparse::Real;

/// Threads per block: one warp, matching the selection kernel.
const BLOCK_THREADS: usize = 32;

/// Output of [`radius_filter_kernel`]: per-row compacted neighbor lists.
#[derive(Debug)]
pub struct RadiusFilterOutput<T> {
    /// Per-row neighbor counts (`rows` entries).
    pub counts: GlobalBuffer<u32>,
    /// Column indices of survivors, row-major with stride `cols`
    /// (positions beyond `counts[r]` are `u32::MAX`).
    pub indices: GlobalBuffer<u32>,
    /// Matching distances (positions beyond `counts[r]` are `+∞`).
    pub values: GlobalBuffer<T>,
    /// Launch statistics.
    pub stats: LaunchStats,
}

/// Compacts, for every row of the `rows × cols` tile `dists`, the
/// entries with distance ≤ `radius` (NaNs excluded), preserving column
/// order within each row.
///
/// # Errors
///
/// Returns [`KernelError::Launch`] when the simulator rejects the launch
/// (sanitizer findings, injected faults, or a watchdog timeout).
pub fn radius_filter_kernel<T: Real>(
    dev: &Device,
    dists: &GlobalBuffer<T>,
    rows: usize,
    cols: usize,
    radius: T,
) -> Result<RadiusFilterOutput<T>, KernelError> {
    assert_eq!(dists.len(), rows * cols, "distance tile shape mismatch");
    let counts = dev.buffer::<u32>(rows);
    let indices = GlobalBuffer::from_vec(vec![u32::MAX; rows * cols]);
    let values = GlobalBuffer::from_vec(vec![T::INFINITY; rows * cols]);

    let stats = dev.try_launch(
        "radius_filter",
        LaunchConfig::new(rows.max(1), BLOCK_THREADS, 0),
        |block| {
            let row = block.block_id;
            if row >= rows {
                return;
            }
            block.run_warps(|w| {
                let mut written = 0u32;
                let mut base = 0usize;
                while base < cols {
                    let idx = lanes_from_fn(|l| {
                        let c = base + l;
                        (c < cols).then(|| row * cols + c)
                    });
                    let (vals, keep) = w.range("predicate", |w| {
                        let vals = w.global_gather(dists, &idx);
                        w.issue(1); // the predicate
                        let keep = lanes_from_fn(|l| {
                            idx[l].is_some() && !vals[l].is_nan() && !(vals[l] > radius)
                        });
                        (vals, keep)
                    });
                    let (offsets, total) = w.range("scan", |w| {
                        let flags = lanes_from_fn(|l| keep[l] as u32);
                        w.warp_exclusive_scan(&flags, &keep)
                    });
                    w.range("compact", |w| {
                        if total > 0 {
                            let oidx = lanes_from_fn(|l| {
                                keep[l].then(|| row * cols + (written + offsets[l]) as usize)
                            });
                            let ocols = lanes_from_fn(|l| (base + l) as u32);
                            w.global_scatter(&indices, &oidx, &ocols);
                            w.global_scatter(&values, &oidx, &vals);
                        }
                    });
                    written += total;
                    base += WARP_SIZE;
                }
                let cidx = lanes_from_fn(|l| (l == 0).then_some(row));
                w.global_scatter(&counts, &cidx, &lanes_from_fn(|_| written));
            });
        },
    )?;
    Ok(RadiusFilterOutput {
        counts,
        indices,
        values,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compacts_survivors_in_column_order() {
        let dev = Device::volta();
        let rows = 3;
        let cols = 70;
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 31) % 100) as f32 / 10.0)
            .collect();
        let buf = dev.buffer_from_slice(&data);
        let radius = 3.0f32;
        let out = radius_filter_kernel(&dev, &buf, rows, cols, radius).expect("launch");
        let counts = out.counts.to_vec();
        let idx = out.indices.to_vec();
        let val = out.values.to_vec();
        for r in 0..rows {
            let want: Vec<(u32, f32)> = (0..cols)
                .filter(|&c| data[r * cols + c] <= radius)
                .map(|c| (c as u32, data[r * cols + c]))
                .collect();
            assert_eq!(counts[r] as usize, want.len(), "row {r}");
            for (s, &(wc, wv)) in want.iter().enumerate() {
                assert_eq!(idx[r * cols + s], wc, "row {r} slot {s}");
                assert_eq!(val[r * cols + s], wv, "row {r} slot {s}");
            }
            // Tail is sentinel-filled.
            if want.len() < cols {
                assert_eq!(idx[r * cols + want.len()], u32::MAX);
            }
        }
    }

    #[test]
    fn empty_result_and_full_result_edges() {
        let dev = Device::volta();
        let buf = dev.buffer_from_slice(&[5.0f64, 6.0, 7.0]);
        let none = radius_filter_kernel(&dev, &buf, 1, 3, 1.0).expect("launch");
        assert_eq!(none.counts.to_vec(), vec![0]);
        let all = radius_filter_kernel(&dev, &buf, 1, 3, 100.0).expect("launch");
        assert_eq!(all.counts.to_vec(), vec![3]);
        assert_eq!(all.indices.to_vec(), vec![0, 1, 2]);
    }

    #[test]
    fn nan_distances_are_excluded() {
        let dev = Device::volta();
        let buf = dev.buffer_from_slice(&[0.5f32, f32::NAN, 0.2]);
        let out = radius_filter_kernel(&dev, &buf, 1, 3, 1.0).expect("launch");
        assert_eq!(out.counts.to_vec(), vec![2]);
        assert_eq!(&out.indices.to_vec()[..2], &[0, 2]);
    }

    #[test]
    fn selective_filter_writes_less_than_permissive_one() {
        let dev = Device::volta();
        let n = 512;
        let data: Vec<f32> = (0..n).map(|i| (i % 100) as f32).collect();
        let buf = dev.buffer_from_slice(&data);
        let tight = radius_filter_kernel(&dev, &buf, 1, n, 1.0).expect("launch");
        let loose = radius_filter_kernel(&dev, &buf, 1, n, 99.0).expect("launch");
        assert!(
            tight.stats.counters.global_transactions < loose.stats.counters.global_transactions
        );
    }
}
