//! Row-norm kernel (§3.4): "Row norms can be computed over CSR matrices
//! using a row-wise reduction on the GPU as each row can be mapped to a
//! single block or warp and the norm computed by a warp-level collective
//! reduction."

use crate::device_fmt::DeviceCsr;
use crate::error::KernelError;
use gpu_sim::{lanes_from_fn, Device, GlobalBuffer, LaunchConfig, LaunchStats, WARP_SIZE};
use sparse::{NormKind, Real};

/// Threads per block for the norm kernel (8 warps → 8 rows per block).
const BLOCK_THREADS: usize = 256;

/// Computes one row norm per row of `m` on the device, one warp per row,
/// returning the norm buffer and the launch statistics.
///
/// # Errors
///
/// Returns [`KernelError::Launch`] when the simulator rejects the launch
/// (sanitizer findings, injected faults, or a watchdog timeout).
pub fn row_norms_kernel<T: Real>(
    dev: &Device,
    m: &DeviceCsr<T>,
    kind: NormKind,
) -> Result<(GlobalBuffer<T>, LaunchStats), KernelError> {
    let rows = m.rows;
    let out = dev.buffer::<T>(rows);
    let warps_per_block = BLOCK_THREADS / WARP_SIZE;
    let blocks = rows.div_ceil(warps_per_block).max(1);

    let map = move |v: T| -> T {
        match kind {
            NormKind::L0 => T::ONE,
            NormKind::L1 => v.abs(),
            NormKind::L2 | NormKind::L2Squared => v * v,
            NormKind::Sum => v,
        }
    };

    let stats = dev.try_launch(
        "row_norms",
        LaunchConfig::new(blocks, BLOCK_THREADS, 0),
        |block| {
            block.run_warps(|w| {
                let row = w.global_warp_id();
                if row >= rows {
                    return;
                }
                w.range("norm_reduce", |w| {
                    let (start, end) = (
                        m.indptr.host_get(row) as usize,
                        m.indptr.host_get(row + 1) as usize,
                    );
                    // The indptr reads are two coalesced lane-0 loads.
                    let _ = w.global_gather(
                        &m.indptr,
                        &lanes_from_fn(|l| if l < 2 { Some(row + l) } else { None }),
                    );
                    let mut acc = T::ZERO;
                    let mut off = start;
                    while off < end {
                        let idx = lanes_from_fn(|l| {
                            let i = off + l;
                            (i < end).then_some(i)
                        });
                        let active = lanes_from_fn(|l| idx[l].is_some());
                        let vals = w.global_gather(&m.values, &idx);
                        w.issue(1); // the map op
                        let mapped = lanes_from_fn(|l| map(vals[l]));
                        acc += w.warp_reduce(&mapped, &active, T::ZERO, |a, b| a + b);
                        off += WARP_SIZE;
                    }
                    if kind == NormKind::L2 {
                        w.issue(1);
                        acc = acc.sqrt();
                    }
                    let oidx = lanes_from_fn(|l| (l == 0).then_some(row));
                    w.global_scatter(&out, &oidx, &lanes_from_fn(|_| acc));
                });
            });
        },
    )?;
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::{row_norms, CsrMatrix};

    fn sample() -> CsrMatrix<f32> {
        CsrMatrix::from_triplets(
            3,
            5,
            &[
                (0, 0, 3.0),
                (0, 4, -4.0),
                (2, 1, 1.0),
                (2, 2, 2.0),
                (2, 3, 2.0),
            ],
        )
        .expect("valid")
    }

    #[test]
    fn kernel_matches_host_norms_for_all_kinds() {
        let dev = Device::volta();
        let m = sample();
        let d = DeviceCsr::upload(&dev, &m);
        for kind in [
            NormKind::L0,
            NormKind::L1,
            NormKind::L2,
            NormKind::L2Squared,
            NormKind::Sum,
        ] {
            let (buf, _) = row_norms_kernel(&dev, &d, kind).expect("launch");
            let host = row_norms(&m, kind);
            for (i, &got) in buf.to_vec().iter().enumerate() {
                assert!(
                    (got - host.get(i)).abs() < 1e-6,
                    "{kind:?} row {i}: kernel {got} host {}",
                    host.get(i)
                );
            }
        }
    }

    #[test]
    fn long_rows_use_multiple_warp_chunks() {
        let dev = Device::volta();
        // One row of 100 ones → L1 = 100 via 4 chunks.
        let trips: Vec<(u32, u32, f32)> = (0..100).map(|c| (0, c, 1.0)).collect();
        let m = CsrMatrix::from_triplets(1, 100, &trips).expect("valid");
        let d = DeviceCsr::upload(&dev, &m);
        let (buf, stats) = row_norms_kernel(&dev, &d, NormKind::L1).expect("launch");
        assert_eq!(buf.to_vec(), vec![100.0]);
        // 4 chunked coalesced value loads + 2 indptr + 1 output write.
        assert!(stats.counters.global_transactions >= 5);
    }

    #[test]
    fn empty_matrix_launches_cleanly() {
        let dev = Device::volta();
        let m = CsrMatrix::<f32>::zeros(0, 4);
        let d = DeviceCsr::upload(&dev, &m);
        let (buf, _) = row_norms_kernel(&dev, &d, NormKind::L2).expect("launch");
        assert!(buf.to_vec().is_empty());
    }

    #[test]
    fn reads_are_coalesced() {
        let dev = Device::volta();
        // 32 rows of degree 32 → unit-stride value loads per warp.
        let trips: Vec<(u32, u32, f32)> = (0..32u32)
            .flat_map(|r| (0..32u32).map(move |c| (r, c, 1.0)))
            .collect();
        let m = CsrMatrix::from_triplets(32, 32, &trips).expect("valid");
        let d = DeviceCsr::upload(&dev, &m);
        let (_, stats) = row_norms_kernel(&dev, &d, NormKind::L2Squared).expect("launch");
        // Coalescing overhead should be modest (values are contiguous).
        assert!(stats.counters.coalescing_overhead() < 4.0);
    }
}
