//! Fused distance + top-k kernel: k-NN without materializing the dense
//! distance tile.
//!
//! The paper's estimator batches queries "to allow scaling to datasets
//! where the dense pairwise distance matrix may not otherwise fit in the
//! memory of the GPU" (§4.2); the logical endpoint of that line is to
//! never allocate the tile at all. This kernel fuses the per-pair
//! distance evaluation (a shared-memory-staged merge over the query row,
//! like the §3.2.2 refinement) with an in-block top-k candidate list:
//! each block owns one query row, computes distances to 32 index rows at
//! a time in registers, and feeds them straight into the selection list.
//! Device memory for outputs drops from `m × n` scalars to `m × k`.
//!
//! Restricted to distances whose finalization is per-cell (everything
//! except Correlation-style two-norm expansions works; we support the
//! full Table 1 set by computing norms per side once and folding the
//! expansion into the per-pair step).

use crate::device_fmt::DeviceCsr;
use crate::error::KernelError;
use crate::norms::row_norms_kernel;
use crate::strategy::PreparedIndex;
use gpu_sim::{lanes_from_fn, Device, GlobalBuffer, LaunchConfig, LaunchStats, WARP_SIZE};
use semiring::{Distance, DistanceParams, ExpansionInputs, Family};
use sparse::{CsrMatrix, Real};

/// Threads per block (one warp; the merge loop is the hot path).
const BLOCK_THREADS: usize = 32;

/// Result of a fused k-NN launch.
#[derive(Debug)]
pub struct FusedKnn<T> {
    /// `m × k` neighbor indices (row-major; `u32::MAX` padding).
    pub indices: GlobalBuffer<u32>,
    /// `m × k` neighbor distances (`+∞` padding).
    pub distances: GlobalBuffer<T>,
    /// All launches (norm kernels + the fused kernel).
    pub launches: Vec<LaunchStats>,
    /// Output bytes — `m × k` instead of the dense tile's `m × n`.
    pub output_bytes: usize,
}

impl<T> FusedKnn<T> {
    /// Total simulated seconds.
    pub fn sim_seconds(&self) -> f64 {
        self.launches.iter().map(LaunchStats::sim_seconds).sum()
    }
}

/// Runs the fused k-NN: for every row of `queries`, the `k` nearest rows
/// of the prepared index, never allocating the `m × n` tile.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] on dimensionality mismatch, or
/// [`KernelError::SharedMemoryExceeded`] when a query row cannot be
/// staged.
pub fn fused_knn<T: Real>(
    dev: &Device,
    queries: &CsrMatrix<T>,
    index: &PreparedIndex<T>,
    k: usize,
    distance: Distance,
    params: &DistanceParams,
) -> Result<FusedKnn<T>, KernelError> {
    if queries.cols() != index.cols() {
        return Err(KernelError::ShapeMismatch {
            a_cols: queries.cols(),
            b_cols: index.cols(),
        });
    }
    let (m, n, dim) = (queries.rows(), index.rows(), queries.cols());
    let kk = k.min(n.max(1));
    let row_smem = queries.max_degree() * (std::mem::size_of::<u32>() + std::mem::size_of::<T>());
    let cand_smem = kk * (std::mem::size_of::<u32>() + std::mem::size_of::<T>());
    let smem = row_smem + cand_smem;
    let available = dev.spec().shared_mem_per_block;
    if smem > available {
        return Err(KernelError::SharedMemoryExceeded {
            strategy: "fused-knn",
            required: smem,
            available,
        });
    }

    let mut launches = Vec::new();
    let a_dev = DeviceCsr::upload(dev, queries);
    // Norms for the expansion (index side cached, query side fresh).
    let kinds = distance.norms();
    let mut a_norms = Vec::new();
    let mut b_norms = Vec::new();
    for &kind in kinds {
        let (na, sa) = row_norms_kernel(dev, &a_dev, kind)?;
        launches.push(sa);
        a_norms.push(na);
        let (nb, sb) = index.norm(dev, kind)?;
        if let Some(sb) = sb {
            launches.push(sb);
        }
        b_norms.push(nb);
    }

    let out_idx = GlobalBuffer::from_vec(vec![u32::MAX; m * kk]);
    let out_val = GlobalBuffer::from_vec(vec![T::INFINITY; m * kk]);
    let sr = distance.semiring::<T>(params);
    let annihilating = sr.is_annihilating();
    let params = *params;
    let b_csr = index.csr();

    let stats = dev.try_launch(
        "fused_knn",
        LaunchConfig::new(m.max(1), BLOCK_THREADS, smem),
        |block| {
            let i = block.block_id;
            if i >= m || kk == 0 {
                return;
            }
            let (a_start, a_end) = a_dev.row_extent(i);
            let da = a_end - a_start;
            let s_cols = block.alloc_shared::<u32>(da.max(1));
            let s_vals = block.alloc_shared::<T>(da.max(1));
            let cand_idx = block.alloc_shared::<u32>(kk);
            let cand_val = block.alloc_shared::<T>(kk);

            block.run_warps(|w| {
                // Stage the query row (coalesced).
                w.range("stage_query", |w| {
                    let mut base = 0;
                    while base < da {
                        let gidx = lanes_from_fn(|l| {
                            let t = base + l;
                            (t < da).then(|| a_start + t)
                        });
                        let cols = w.global_gather(&a_dev.indices, &gidx);
                        let vals = w.global_gather(&a_dev.values, &gidx);
                        let sidx = lanes_from_fn(|l| {
                            let t = base + l;
                            (t < da).then_some(t)
                        });
                        w.smem_scatter(&s_cols, &sidx, &cols);
                        w.smem_scatter(&s_vals, &sidx, &vals);
                        base += WARP_SIZE;
                    }
                });

                // Query-side norms once per block.
                let a_n = lanes_from_fn(|s| {
                    if s < a_norms.len() {
                        a_norms[s].host_get(i)
                    } else {
                        T::ZERO
                    }
                });
                if !a_norms.is_empty() {
                    let _ = w.global_gather(&a_norms[0], &lanes_from_fn(|l| (l == 0).then_some(i)));
                }

                let mut len = 0usize;
                let mut threshold = T::INFINITY;
                let mut jbase = 0usize;
                while jbase < n {
                    let j = lanes_from_fn(|l| {
                        let t = jbase + l;
                        (t < n).then_some(t)
                    });
                    let b_start = w.global_gather(&b_csr.indptr, &j);
                    let b_end =
                        w.global_gather(&b_csr.indptr, &lanes_from_fn(|l| j[l].map(|x| x + 1)));
                    // Per-lane merge: distance(A_i, B_j) in registers.
                    let mut ia = [0usize; WARP_SIZE];
                    let mut ib = lanes_from_fn(|l| b_start[l] as usize);
                    let mut acc = [sr.reduce_identity(); WARP_SIZE];
                    w.range("merge", |w| loop {
                        let live = lanes_from_fn(|l| {
                            j[l].is_some() && (ia[l] < da || ib[l] < b_end[l] as usize)
                        });
                        if !live.iter().any(|&x| x) {
                            break;
                        }
                        let col_a = w.smem_gather(
                            &s_cols,
                            &lanes_from_fn(|l| (live[l] && ia[l] < da).then_some(ia[l])),
                        );
                        let col_b = w.global_gather(
                            &b_csr.indices,
                            &lanes_from_fn(|l| {
                                (live[l] && ib[l] < b_end[l] as usize).then_some(ib[l])
                            }),
                        );
                        let eff_a = lanes_from_fn(|l| {
                            if live[l] && ia[l] < da {
                                col_a[l]
                            } else {
                                u32::MAX
                            }
                        });
                        let eff_b = lanes_from_fn(|l| {
                            if live[l] && ib[l] < b_end[l] as usize {
                                col_b[l]
                            } else {
                                u32::MAX
                            }
                        });
                        let take_a = lanes_from_fn(|l| live[l] && eff_a[l] <= eff_b[l]);
                        let take_b = lanes_from_fn(|l| live[l] && eff_b[l] <= eff_a[l]);
                        w.branch(&take_a);
                        w.branch(&take_b);
                        let val_a =
                            w.smem_gather(&s_vals, &lanes_from_fn(|l| take_a[l].then_some(ia[l])));
                        let val_b = w.global_gather(
                            &b_csr.values,
                            &lanes_from_fn(|l| take_b[l].then_some(ib[l])),
                        );
                        w.issue(2);
                        for l in 0..WARP_SIZE {
                            if !live[l] {
                                continue;
                            }
                            let both = take_a[l] && take_b[l];
                            if both || !annihilating {
                                let va = if take_a[l] { val_a[l] } else { T::ZERO };
                                let vb = if take_b[l] { val_b[l] } else { T::ZERO };
                                acc[l] = sr.reduce(acc[l], sr.product(va, vb));
                            }
                            if take_a[l] {
                                ia[l] += 1;
                            }
                            if take_b[l] {
                                ib[l] += 1;
                            }
                        }
                    });

                    // Finalize per pair (expansion or NAMM post-op).
                    let dists = w.range("finalize", |w| {
                        let b_n: Vec<[T; WARP_SIZE]> = (0..kinds.len())
                            .map(|s| w.global_gather(&b_norms[s], &j))
                            .collect();
                        w.issue(4);
                        lanes_from_fn(|l| {
                            if j[l].is_none() {
                                return T::INFINITY;
                            }
                            if distance.family() == Family::Namm && kinds.is_empty() {
                                distance.finalize(acc[l], dim, &params)
                            } else {
                                // Expanded family, or a norm-fed NAMM
                                // (Bray-Curtis): combine with the row norms.
                                distance.expand(ExpansionInputs {
                                    dot: acc[l],
                                    a_norms: [a_n[0], a_n.get(1).copied().unwrap_or(T::ZERO)],
                                    b_norms: [
                                        b_n.first().map(|x| x[l]).unwrap_or(T::ZERO),
                                        b_n.get(1).map(|x| x[l]).unwrap_or(T::ZERO),
                                    ],
                                    k: dim,
                                })
                            }
                        })
                    });

                    // Feed the candidate list (threshold test + serialized
                    // insertion bursts, as in the standalone selector).
                    w.issue(1);
                    let passing = lanes_from_fn(|l| {
                        j[l].is_some() && !dists[l].is_nan() && (len < kk || dists[l] < threshold)
                    });
                    if passing.iter().any(|&p| p) {
                        w.branch(&passing);
                        w.range("select_insert", |w| {
                            for l in 0..WARP_SIZE {
                                if !passing[l] {
                                    continue;
                                }
                                let v = dists[l];
                                if len == kk && !(v < threshold) {
                                    continue;
                                }
                                let col = (jbase + l) as u32;
                                // smem-lint: begin-allow(serialized-emulation): host-side emulation of one lane's insertion sort; the burst is costed in aggregate by the smem_gather probe + issue at the end of the loop body
                                let mut pos = len;
                                while pos > 0 && v < cand_val.read(pos - 1) {
                                    pos -= 1;
                                }
                                if len == kk {
                                    for s in ((pos + 1)..kk).rev() {
                                        cand_idx.write(s, cand_idx.read(s - 1));
                                        cand_val.write(s, cand_val.read(s - 1));
                                    }
                                } else {
                                    for s in ((pos + 1)..=len).rev() {
                                        cand_idx.write(s, cand_idx.read(s - 1));
                                        cand_val.write(s, cand_val.read(s - 1));
                                    }
                                    len += 1;
                                }
                                cand_idx.write(pos, col);
                                cand_val.write(pos, v);
                                threshold = cand_val.read(len - 1);
                                let sidx = lanes_from_fn(|sl| (sl < len).then_some(sl));
                                w.smem_gather(&cand_val, &sidx);
                                w.issue(1);
                                // smem-lint: end-allow
                            }
                        });
                    }
                    jbase += WARP_SIZE;
                }

                // Emit the k results.
                // smem-lint: begin-allow(serialized-emulation): candidate list staged into registers for the coalesced emission; smem traffic was charged by the insertion-burst probes above
                w.range("emit", |w| {
                    let mut written = 0;
                    while written < kk {
                        let widx = lanes_from_fn(|l| {
                            let t = written + l;
                            (t < kk).then(|| i * kk + t)
                        });
                        let wv = lanes_from_fn(|l| {
                            let t = written + l;
                            if t < len {
                                cand_val.read(t)
                            } else {
                                T::INFINITY
                            }
                        });
                        let wi = lanes_from_fn(|l| {
                            let t = written + l;
                            if t < len {
                                cand_idx.read(t)
                            } else {
                                u32::MAX
                            }
                        });
                        w.global_scatter(&out_val, &widx, &wv);
                        w.global_scatter(&out_idx, &widx, &wi);
                        written += WARP_SIZE;
                    }
                });
                // smem-lint: end-allow
            });
        },
    )?;
    launches.push(stats);
    let output_bytes = out_idx.bytes() + out_val.bytes();
    Ok(FusedKnn {
        indices: out_idx,
        distances: out_val,
        launches,
        output_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{pairwise_distances, PairwiseOptions};

    fn dataset() -> CsrMatrix<f64> {
        let mut data = vec![0.0; 12 * 9];
        for r in 0..12 {
            for c in 0..9 {
                if (r * 3 + c) % 4 == 0 {
                    data[r * 9 + c] = 0.5 + (r as f64) / 7.0 + (c as f64) / 11.0;
                }
            }
        }
        CsrMatrix::from_dense(12, 9, &data)
    }

    #[test]
    fn fused_matches_unfused_for_every_distance() {
        let m = dataset();
        let dev = Device::volta();
        let params = DistanceParams { minkowski_p: 3.0 };
        let index = PreparedIndex::new(&dev, m.clone());
        let k = 4;
        for d in Distance::EXTENDED {
            let fused = fused_knn(&dev, &m, &index, k, d, &params).expect("fits");
            let tile = pairwise_distances(&dev, &m, &m, d, &params, &PairwiseOptions::default())
                .expect("ok");
            let fi = fused.indices.to_vec();
            let fv = fused.distances.to_vec();
            for q in 0..m.rows() {
                let mut want: Vec<(usize, f64)> =
                    tile.distances.row(q).iter().copied().enumerate().collect();
                want.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN").then(a.0.cmp(&b.0)));
                for s in 0..k {
                    // Compare by distance: the fused path accumulates in
                    // a different floating-point order than the two-pass
                    // tile, so exact ties may swap indices.
                    assert!(
                        (fv[q * k + s] - want[s].1).abs() < 1e-7,
                        "{d} query {q} slot {s}: {} vs {}",
                        fv[q * k + s],
                        want[s].1
                    );
                    let fused_idx = fi[q * k + s] as usize;
                    let fused_true_dist = tile.distances.get(q, fused_idx);
                    assert!(
                        (fused_true_dist - want[s].1).abs() < 1e-7,
                        "{d} query {q} slot {s}: index {fused_idx} has distance {fused_true_dist}, oracle {}",
                        want[s].1
                    );
                }
            }
        }
    }

    #[test]
    fn output_is_mk_not_mn() {
        let m = dataset();
        let dev = Device::volta();
        let index = PreparedIndex::new(&dev, m.clone());
        let fused = fused_knn(
            &dev,
            &m,
            &index,
            3,
            Distance::Euclidean,
            &DistanceParams::default(),
        )
        .expect("fits");
        // 12 x 3 outputs of (u32 + f64) instead of 12 x 12 f64.
        assert_eq!(fused.output_bytes, 12 * 3 * (4 + 8));
        assert!(fused.output_bytes < 12 * 12 * 8);
    }

    #[test]
    fn oversized_query_rows_are_rejected() {
        let dev = Device::volta();
        let trips: Vec<(u32, u32, f32)> = (0..30_000).map(|c| (0, c, 1.0)).collect();
        let q = CsrMatrix::from_triplets(1, 30_000, &trips).expect("valid");
        let index = PreparedIndex::new(&dev, q.clone());
        let err = fused_knn(
            &dev,
            &q,
            &index,
            2,
            Distance::Manhattan,
            &DistanceParams::default(),
        );
        assert!(matches!(err, Err(KernelError::SharedMemoryExceeded { .. })));
    }

    #[test]
    fn k_zero_and_k_beyond_n() {
        let m = dataset();
        let dev = Device::volta();
        let index = PreparedIndex::new(&dev, m.clone());
        let params = DistanceParams::default();
        let none = fused_knn(&dev, &m, &index, 0, Distance::Cosine, &params).expect("ok");
        assert!(none.indices.is_empty());
        let capped = fused_knn(&dev, &m, &index, 100, Distance::Cosine, &params).expect("ok");
        // k clamps to n = 12.
        assert_eq!(capped.indices.len(), 12 * 12);
    }
}
