//! Resilience policy engine: retries, simulated backoff, and the
//! graceful-degradation fallback cascade for the pairwise primitive.
//!
//! The paper's hybrid strategy (§3.3) is a *planned* computation: the
//! shared-memory representation is chosen up front from the device
//! budget and the data's degree distribution. This module handles the
//! complement — what to do when a plan fails at launch time. Failures
//! are classified three ways:
//!
//! * **Retryable** — transient faults (injected launch failures,
//!   ECC-corrected single-bit upsets). The same plan is retried, with a
//!   simulated exponential backoff accumulated into the report.
//! * **Degradable** — capacity faults (shared memory exceeded, hash
//!   table overflow, watchdog timeout). The cascade re-plans with the
//!   next cheaper shared-memory representation, walking
//!   `Hybrid(Dense) → Hybrid(Hash) → Hybrid(Bloom) → NaiveCsrShared →
//!   NaiveCsr` (expand-sort-contract falls back into the hybrid chain).
//!   Every step trades performance for a strictly smaller shared-memory
//!   footprint, ending at the naive kernel which needs none at all.
//! * **Fatal** — shape mismatches, invalid launch geometry, and
//!   sanitizer failures. These indicate host-side bugs, not capacity or
//!   luck, and are returned unchanged.

use crate::error::KernelError;
use crate::strategy::{SmemMode, Strategy};
use gpu_sim::SimError;

/// What the engine may fall back to when a strategy cannot complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FallbackCascade {
    /// Walk the standard degradation chain (see module docs).
    #[default]
    Standard,
    /// Never re-plan: degradable errors are returned like fatal ones
    /// (retries for transient faults still apply).
    Disabled,
}

/// Retry/fallback policy consumed by
/// [`crate::pairwise_distances_prepared`] and the batched k-NN driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResiliencePolicy {
    /// Transient-fault retries per cascade step.
    pub retries: u32,
    /// Base of the simulated exponential backoff between retries, in
    /// simulated seconds (doubles per retry within a step; accumulated
    /// into [`ResilienceReport::backoff_seconds`], never wall-clock).
    pub backoff_seconds: f64,
    /// Whether capacity faults may re-plan down the cascade.
    pub fallback: FallbackCascade,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        Self {
            retries: 2,
            backoff_seconds: 1e-6,
            fallback: FallbackCascade::Standard,
        }
    }
}

impl ResiliencePolicy {
    /// Policy with `retries` transient retries and the standard cascade.
    pub fn with_retries(retries: u32) -> Self {
        Self {
            retries,
            ..Self::default()
        }
    }

    /// Disables the fallback cascade (retries still apply).
    pub fn without_fallback(mut self) -> Self {
        self.fallback = FallbackCascade::Disabled;
        self
    }
}

/// Record of every decision the engine made for one pairwise call.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResilienceReport {
    /// Total launch attempts (1 when nothing went wrong).
    pub attempts: u32,
    /// Human-readable description of every fault that was absorbed
    /// (retried or degraded past), in order.
    pub faults_absorbed: Vec<String>,
    /// Strategy that produced the returned distances.
    pub final_strategy: Strategy,
    /// Shared-memory mode that produced the returned distances.
    pub final_smem: SmemMode,
    /// True when the final plan differs from the requested one.
    pub downgraded: bool,
    /// Total simulated backoff spent on retries.
    pub backoff_seconds: f64,
}

impl ResilienceReport {
    /// Starts a report for a requested plan.
    pub(crate) fn new(strategy: Strategy, smem: SmemMode) -> Self {
        Self {
            attempts: 0,
            faults_absorbed: Vec::new(),
            final_strategy: strategy,
            final_smem: smem,
            downgraded: false,
            backoff_seconds: 0.0,
        }
    }
}

/// How the engine treats one error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultClass {
    /// Same plan may succeed on a re-seeded launch.
    Retryable,
    /// A smaller shared-memory plan may succeed.
    Degradable,
    /// No retry or re-plan can help.
    Fatal,
}

/// Classifies a kernel error for the retry/fallback decision.
pub(crate) fn classify(e: &KernelError) -> FaultClass {
    match e {
        KernelError::Launch(SimError::TransientFault { .. }) => FaultClass::Retryable,
        KernelError::SharedMemoryExceeded { .. }
        | KernelError::UnsupportedSmemMode(_)
        | KernelError::Launch(SimError::SmemOverBudget { .. })
        | KernelError::Launch(SimError::CapacityOverflow { .. })
        | KernelError::Launch(SimError::WatchdogTimeout { .. }) => FaultClass::Degradable,
        KernelError::ShapeMismatch { .. }
        | KernelError::Launch(SimError::InvalidLaunchConfig(_))
        | KernelError::Launch(SimError::SanitizerFailure { .. }) => FaultClass::Fatal,
    }
}

/// The degradation chain for a requested plan: the plan itself first,
/// then strictly-smaller-footprint alternatives.
pub(crate) fn cascade_candidates(
    strategy: Strategy,
    smem: SmemMode,
    fallback: FallbackCascade,
) -> Vec<(Strategy, SmemMode)> {
    if fallback == FallbackCascade::Disabled {
        return vec![(strategy, smem)];
    }
    let hybrid_tail = |from: SmemMode| -> Vec<(Strategy, SmemMode)> {
        let rest: &[SmemMode] = match from {
            SmemMode::Dense | SmemMode::Auto => &[SmemMode::Hash, SmemMode::Bloom],
            SmemMode::Hash => &[SmemMode::Bloom],
            SmemMode::Bloom => &[],
        };
        let mut out = vec![(Strategy::HybridCooSpmv, from)];
        out.extend(rest.iter().map(|&m| (Strategy::HybridCooSpmv, m)));
        out.push((Strategy::NaiveCsrShared, SmemMode::Auto));
        out.push((Strategy::NaiveCsr, SmemMode::Auto));
        out
    };
    match strategy {
        Strategy::ExpandSortContract => {
            let mut out = vec![(Strategy::ExpandSortContract, smem)];
            out.extend(hybrid_tail(SmemMode::Auto));
            out
        }
        Strategy::HybridCooSpmv => hybrid_tail(smem),
        Strategy::NaiveCsrShared => vec![
            (Strategy::NaiveCsrShared, smem),
            (Strategy::NaiveCsr, SmemMode::Auto),
        ],
        Strategy::NaiveCsr => vec![(Strategy::NaiveCsr, smem)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_faults_are_retryable() {
        let e = KernelError::Launch(SimError::TransientFault {
            kernel: "k".into(),
            detail: "d".into(),
        });
        assert_eq!(classify(&e), FaultClass::Retryable);
    }

    #[test]
    fn capacity_faults_are_degradable() {
        for e in [
            KernelError::SharedMemoryExceeded {
                strategy: "esc",
                required: 1,
                available: 0,
            },
            KernelError::UnsupportedSmemMode("dense too wide".into()),
            KernelError::Launch(SimError::CapacityOverflow {
                kernel: "k".into(),
                resource: "smem-hash-table".into(),
                detail: "full".into(),
            }),
            KernelError::Launch(SimError::WatchdogTimeout {
                kernel: "k".into(),
                budget: 1,
            }),
            KernelError::Launch(SimError::SmemOverBudget {
                requested: 2,
                in_use: 0,
                capacity: 1,
            }),
        ] {
            assert_eq!(classify(&e), FaultClass::Degradable, "{e}");
        }
    }

    #[test]
    fn host_bugs_are_fatal() {
        let e = KernelError::ShapeMismatch {
            a_cols: 1,
            b_cols: 2,
        };
        assert_eq!(classify(&e), FaultClass::Fatal);
        let e = KernelError::Launch(SimError::InvalidLaunchConfig("zero blocks".into()));
        assert_eq!(classify(&e), FaultClass::Fatal);
    }

    #[test]
    fn cascade_walks_the_documented_chain() {
        let chain = cascade_candidates(
            Strategy::HybridCooSpmv,
            SmemMode::Dense,
            FallbackCascade::Standard,
        );
        assert_eq!(
            chain,
            vec![
                (Strategy::HybridCooSpmv, SmemMode::Dense),
                (Strategy::HybridCooSpmv, SmemMode::Hash),
                (Strategy::HybridCooSpmv, SmemMode::Bloom),
                (Strategy::NaiveCsrShared, SmemMode::Auto),
                (Strategy::NaiveCsr, SmemMode::Auto),
            ]
        );
    }

    #[test]
    fn esc_falls_back_into_the_hybrid_chain() {
        let chain = cascade_candidates(
            Strategy::ExpandSortContract,
            SmemMode::Auto,
            FallbackCascade::Standard,
        );
        assert_eq!(chain[0].0, Strategy::ExpandSortContract);
        assert_eq!(chain[1], (Strategy::HybridCooSpmv, SmemMode::Auto));
        assert_eq!(
            *chain.last().expect("non-empty"),
            (Strategy::NaiveCsr, SmemMode::Auto)
        );
    }

    #[test]
    fn naive_has_nothing_to_fall_back_to() {
        let chain = cascade_candidates(
            Strategy::NaiveCsr,
            SmemMode::Auto,
            FallbackCascade::Standard,
        );
        assert_eq!(chain.len(), 1);
    }

    #[test]
    fn disabled_cascade_keeps_only_the_request() {
        let chain = cascade_candidates(
            Strategy::HybridCooSpmv,
            SmemMode::Dense,
            FallbackCascade::Disabled,
        );
        assert_eq!(chain, vec![(Strategy::HybridCooSpmv, SmemMode::Dense)]);
    }
}
