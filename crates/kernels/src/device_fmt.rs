//! Sparse matrices resident in simulated device memory.

use gpu_sim::{Device, GlobalBuffer};
use sparse::{CooMatrix, CsrMatrix, Real};

/// A CSR matrix uploaded to device buffers (the simulated
/// `cudaMemcpy(HostToDevice)` of the inputs).
#[derive(Debug)]
pub struct DeviceCsr<T> {
    /// Row pointers (`rows + 1` entries, stored as `u32` like real GPU
    /// sparse libraries).
    pub indptr: GlobalBuffer<u32>,
    /// Column indices.
    pub indices: GlobalBuffer<u32>,
    /// Nonzero values.
    pub values: GlobalBuffer<T>,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl<T: Real> DeviceCsr<T> {
    /// Uploads a host CSR matrix. Buffers are labeled (`csr.indptr`,
    /// `csr.indices`, `csr.values`) so the fault injector can target
    /// them by name.
    pub fn upload(dev: &Device, m: &CsrMatrix<T>) -> Self {
        let indptr: Vec<u32> = m.indptr().iter().map(|&p| p as u32).collect();
        Self {
            indptr: dev.buffer_from_slice(&indptr).with_label("csr.indptr"),
            indices: dev.buffer_from_slice(m.indices()).with_label("csr.indices"),
            values: dev.buffer_from_slice(m.values()).with_label("csr.values"),
            rows: m.rows(),
            cols: m.cols(),
        }
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Device bytes held by the three arrays.
    pub fn bytes(&self) -> usize {
        self.indptr.bytes() + self.indices.bytes() + self.values.bytes()
    }

    /// Host-side row extent lookup (planning, not kernel work).
    pub fn row_extent(&self, row: usize) -> (usize, usize) {
        (
            self.indptr.host_get(row) as usize,
            self.indptr.host_get(row + 1) as usize,
        )
    }
}

/// A COO matrix uploaded to device buffers. The explicit `row_indices`
/// array is the §3.3 load-balancing workspace: its size is `nnz(B)`,
/// which is exactly the "workspace buffer of size nnz(B) per batch" the
/// paper reports for its dot-product semiring (§4.3).
#[derive(Debug)]
pub struct DeviceCoo<T> {
    /// Row index of every nonzero.
    pub row_indices: GlobalBuffer<u32>,
    /// Column index of every nonzero.
    pub col_indices: GlobalBuffer<u32>,
    /// Nonzero values.
    pub values: GlobalBuffer<T>,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl<T: Real> DeviceCoo<T> {
    /// Uploads the COO expansion of a host CSR matrix. Buffers are
    /// labeled (`coo.row_indices`, `coo.col_indices`, `coo.values`) so
    /// the fault injector can target them by name.
    pub fn upload(dev: &Device, m: &CsrMatrix<T>) -> Self {
        let coo = CooMatrix::from(m);
        Self {
            row_indices: dev
                .buffer_from_slice(coo.row_indices())
                .with_label("coo.row_indices"),
            col_indices: dev
                .buffer_from_slice(coo.col_indices())
                .with_label("coo.col_indices"),
            values: dev.buffer_from_slice(coo.values()).with_label("coo.values"),
            rows: m.rows(),
            cols: m.cols(),
        }
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Device bytes held by the three arrays.
    pub fn bytes(&self) -> usize {
        self.row_indices.bytes() + self.col_indices.bytes() + self.values.bytes()
    }

    /// Bytes of workspace beyond the CSR representation (the row-index
    /// expansion).
    pub fn workspace_bytes(&self) -> usize {
        self.row_indices.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix<f32> {
        CsrMatrix::from_triplets(2, 4, &[(0, 1, 2.0), (0, 3, 1.0), (1, 0, 5.0)]).expect("valid")
    }

    #[test]
    fn csr_upload_preserves_arrays() {
        let dev = Device::volta();
        let d = DeviceCsr::upload(&dev, &sample());
        assert_eq!(d.indptr.to_vec(), vec![0, 2, 3]);
        assert_eq!(d.indices.to_vec(), vec![1, 3, 0]);
        assert_eq!(d.values.to_vec(), vec![2.0, 1.0, 5.0]);
        assert_eq!(d.nnz(), 3);
        assert_eq!(d.row_extent(0), (0, 2));
        assert_eq!(d.row_extent(1), (2, 3));
    }

    #[test]
    fn coo_upload_expands_rows() {
        let dev = Device::volta();
        let d = DeviceCoo::upload(&dev, &sample());
        assert_eq!(d.row_indices.to_vec(), vec![0, 0, 1]);
        assert_eq!(d.workspace_bytes(), 12);
    }

    #[test]
    fn uploads_label_buffers_for_fault_targeting() {
        let dev = Device::volta();
        let csr = DeviceCsr::upload(&dev, &sample());
        assert_eq!(csr.values.label().as_deref(), Some("csr.values"));
        assert_eq!(csr.indices.label().as_deref(), Some("csr.indices"));
        assert_eq!(csr.indptr.label().as_deref(), Some("csr.indptr"));
        let coo = DeviceCoo::upload(&dev, &sample());
        assert_eq!(coo.row_indices.label().as_deref(), Some("coo.row_indices"));
        assert_eq!(coo.values.label().as_deref(), Some("coo.values"));
    }

    #[test]
    fn byte_accounting_matches_layout() {
        let dev = Device::volta();
        let m = sample();
        let csr = DeviceCsr::upload(&dev, &m);
        // 3 indptr u32 + 3 idx u32 + 3 f32 values.
        assert_eq!(csr.bytes(), 12 + 12 + 12);
        let coo = DeviceCoo::upload(&dev, &m);
        assert_eq!(coo.bytes(), 36);
    }
}
