//! Expand-sort-contract kernel (§3.2.1, Algorithm 1).
//!
//! One block per `(i, j)` row pair: the nonzero columns and values of
//! both rows are concatenated in shared memory ("expand"), sorted by
//! column with a bitonic network ("sort"), and adjacent duplicates are
//! combined with `⊗` while singletons get `⊗(v, 0)` ("contract").
//!
//! The paper found "the sorting step dominated the performance" and that
//! the `2·(nnz(a) + nnz(b))` shared-memory requirement "became a severe
//! limit to scale" — both effects appear in this implementation's
//! counters and occupancy.

use crate::device_fmt::DeviceCsr;
use crate::error::KernelError;
use gpu_sim::{
    bitonic_sort_by_key, lanes_from_fn, Device, GlobalBuffer, LaunchConfig, LaunchStats, WARP_SIZE,
};
use semiring::Semiring;
use sparse::Real;

/// Threads per block; two warps suffice since per-pair work is small.
const BLOCK_THREADS: usize = 64;

/// Shared-memory bytes the strategy needs per block for the given
/// maximum row degrees: keys and values for both rows, with columns
/// tagged by side (the `2·(nnz(a)+nnz(b))` of §3.2.1).
pub fn esc_smem_bytes<T>(max_deg_a: usize, max_deg_b: usize) -> usize {
    (max_deg_a + max_deg_b) * (std::mem::size_of::<u32>() + std::mem::size_of::<T>())
}

/// Computes the `m × n` inner-term matrix with the expand-sort-contract
/// strategy.
///
/// # Errors
///
/// Returns [`KernelError::SharedMemoryExceeded`] when the widest row pair
/// cannot fit the device's per-block shared memory — the scale limit the
/// paper hit.
pub fn expand_sort_contract_kernel<T: Real>(
    dev: &Device,
    a: &DeviceCsr<T>,
    b: &DeviceCsr<T>,
    a_max_degree: usize,
    b_max_degree: usize,
    sr: &Semiring<T>,
) -> Result<(GlobalBuffer<T>, LaunchStats), KernelError> {
    let (m, n) = (a.rows, b.rows);
    let smem = esc_smem_bytes::<T>(a_max_degree, b_max_degree);
    let available = dev.spec().shared_mem_per_block;
    if smem > available {
        return Err(KernelError::SharedMemoryExceeded {
            strategy: "expand-sort-contract",
            required: smem,
            available,
        });
    }
    // Output accumulates through ⊕ atomics: start every cell at id⊕.
    let out = GlobalBuffer::from_vec(vec![sr.reduce_identity(); m * n]);
    let sr = *sr;
    let annihilating = sr.is_annihilating();
    let cap = a_max_degree + b_max_degree;

    let stats = dev.try_launch(
        "expand_sort_contract",
        LaunchConfig::new((m * n).max(1), BLOCK_THREADS, smem),
        |block| {
            let pair = block.block_id;
            if pair >= m * n {
                return;
            }
            let (i, j) = (pair / n, pair % n);
            let keys = block.alloc_shared::<u32>(cap.max(1));
            let vals = block.alloc_shared::<T>(cap.max(1));
            let (a_start, a_end) = a.row_extent(i);
            let (b_start, b_end) = b.row_extent(j);
            let (da, db) = (a_end - a_start, b_end - b_start);
            let total = da + db;

            // Expand: warps cooperatively stage both rows into shared
            // memory with coalesced global reads. Column keys are tagged
            // with a side bit (col*2 + side) so equal columns sort
            // adjacently with the `a` element first — order matters for
            // asymmetric products.
            block.run_warps(|w| {
                w.range("expand", |w| {
                    let wpb = BLOCK_THREADS / WARP_SIZE;
                    let mut base = w.warp_id * WARP_SIZE;
                    while base < total {
                        let gidx = lanes_from_fn(|l| {
                            let t = base + l;
                            if t >= total {
                                None
                            } else if t < da {
                                Some(a_start + t)
                            } else {
                                Some(b_start + (t - da))
                            }
                        });
                        let is_a = lanes_from_fn(|l| base + l < da);
                        let cols = lanes_from_fn(|l| if base + l < da { gidx[l] } else { gidx[l] });
                        // panic-lint: begin-allow(guarded-unwrap): every expect is gated on is_some() for the same lane
                        let col_a = w.global_gather(
                            &a.indices,
                            &lanes_from_fn(|l| {
                                (is_a[l] && gidx[l].is_some()).then(|| gidx[l].expect("set"))
                            }),
                        );
                        let col_b = w.global_gather(
                            &b.indices,
                            &lanes_from_fn(|l| {
                                (!is_a[l] && gidx[l].is_some()).then(|| gidx[l].expect("set"))
                            }),
                        );
                        let val_a = w.global_gather(
                            &a.values,
                            &lanes_from_fn(|l| {
                                (is_a[l] && gidx[l].is_some()).then(|| gidx[l].expect("set"))
                            }),
                        );
                        let val_b = w.global_gather(
                            &b.values,
                            &lanes_from_fn(|l| {
                                (!is_a[l] && gidx[l].is_some()).then(|| gidx[l].expect("set"))
                            }),
                        );
                        // panic-lint: end-allow
                        let _ = cols;
                        let sidx = lanes_from_fn(|l| {
                            let t = base + l;
                            (t < total).then_some(t)
                        });
                        let skeys = lanes_from_fn(|l| {
                            if is_a[l] {
                                col_a[l] * 2
                            } else {
                                col_b[l] * 2 + 1
                            }
                        });
                        let svals = lanes_from_fn(|l| if is_a[l] { val_a[l] } else { val_b[l] });
                        w.smem_scatter(&keys, &sidx, &skeys);
                        w.smem_scatter(&vals, &sidx, &svals);
                        base += wpb * WARP_SIZE;
                    }
                });
            });
            block.sync();

            // Sort by tagged column (the dominating step). The network
            // charges cost analytically at block level, so the range
            // wraps the BlockCtx rather than a WarpCtx.
            block.range("sort", |block| {
                bitonic_sort_by_key(block, &keys, &vals, total)
            });
            block.sync();

            // Contract: adjacent elements with the same column combine
            // with ⊗(a, b); singletons contribute ⊗(v, 0) (or ⊗(0, v) for
            // b-side singletons). Per-warp partials combine through a
            // global atomic.
            block.run_warps(|w| {
                w.range("contract", |w| {
                    let wpb = BLOCK_THREADS / WARP_SIZE;
                    let mut warp_acc = sr.reduce_identity();
                    let mut base = w.warp_id * WARP_SIZE;
                    while base < total {
                        let cur_idx = lanes_from_fn(|l| {
                            let t = base + l;
                            (t < total).then_some(t)
                        });
                        let cur_keys = w.smem_gather(&keys, &cur_idx);
                        let cur_vals = w.smem_gather(&vals, &cur_idx);
                        let next_idx = lanes_from_fn(|l| {
                            let t = base + l + 1;
                            (t < total).then_some(t)
                        });
                        let next_keys = w.smem_gather(&keys, &next_idx);
                        let next_vals = w.smem_gather(&vals, &next_idx);
                        let prev_idx = lanes_from_fn(|l| {
                            let t = (base + l).checked_sub(1);
                            t.filter(|_| base + l < total)
                        });
                        let prev_keys = w.smem_gather(&keys, &prev_idx);
                        w.issue(3); // compares + product/reduce
                        let active = lanes_from_fn(|l| cur_idx[l].is_some());
                        let terms = lanes_from_fn(|l| {
                            if cur_idx[l].is_none() {
                                return sr.reduce_identity();
                            }
                            let t = base + l;
                            let col = cur_keys[l] >> 1;
                            // Second element of a duplicate pair: consumed by
                            // its predecessor.
                            if t > 0 && prev_idx[l].is_some() && prev_keys[l] >> 1 == col {
                                return sr.reduce_identity();
                            }
                            // First of a duplicate pair: combine both sides.
                            if next_idx[l].is_some() && next_keys[l] >> 1 == col {
                                return sr.product(cur_vals[l], next_vals[l]);
                            }
                            // Singleton: the other side is a structural zero
                            // — the annihilator for annihilating semirings
                            // (term vanishes), id⊗ = 0 for NAMMs.
                            if annihilating {
                                sr.reduce_identity()
                            } else if cur_keys[l] & 1 == 0 {
                                sr.product(cur_vals[l], T::ZERO)
                            } else {
                                sr.product(T::ZERO, cur_vals[l])
                            }
                        });
                        let partial =
                            w.warp_reduce(&terms, &active, sr.reduce_identity(), |x, y| {
                                sr.reduce(x, y)
                            });
                        warp_acc = sr.reduce(warp_acc, partial);
                        base += wpb * WARP_SIZE;
                    }
                    if warp_acc != sr.reduce_identity() || w.warp_id == 0 {
                        let oidx = lanes_from_fn(|l| (l == 0).then_some(pair));
                        let ovals = lanes_from_fn(|_| warp_acc);
                        w.global_atomic(&out, &oidx, &ovals, move |x, y| sr.reduce(x, y));
                    }
                });
            });
        },
    )?;
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::{apply_semiring_union, Distance, DistanceParams};
    use sparse::CsrMatrix;

    fn check(a: &CsrMatrix<f64>, b: &CsrMatrix<f64>, d: Distance) {
        let dev = Device::volta();
        let params = DistanceParams::default();
        let sr = d.semiring::<f64>(&params);
        let da = DeviceCsr::upload(&dev, a);
        let db = DeviceCsr::upload(&dev, b);
        let (out, _) =
            expand_sort_contract_kernel(&dev, &da, &db, a.max_degree(), b.max_degree(), &sr)
                .expect("fits smem");
        let got = out.to_vec();
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let av: Vec<_> = a.row(i).collect();
                let bv: Vec<_> = b.row(j).collect();
                let expect = apply_semiring_union(&av, &bv, &sr);
                let g = got[i * b.rows() + j];
                assert!(
                    (g - expect).abs() < 1e-9,
                    "{d} cell ({i},{j}): kernel {g}, reference {expect}"
                );
            }
        }
    }

    fn sample_pair() -> (CsrMatrix<f64>, CsrMatrix<f64>) {
        let a = CsrMatrix::from_dense(2, 5, &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let b = CsrMatrix::from_dense(
            3,
            5,
            &[
                0.5, 1.0, 0.0, 0.0, 3.0, 0.0, 2.0, 0.0, 1.0, 0.0, 4.0, 4.0, 4.0, 4.0, 4.0,
            ],
        );
        (a, b)
    }

    #[test]
    fn matches_reference_for_manhattan() {
        let (a, b) = sample_pair();
        check(&a, &b, Distance::Manhattan);
    }

    #[test]
    fn matches_reference_for_dot_product() {
        let (a, b) = sample_pair();
        check(&a, &b, Distance::DotProduct);
    }

    #[test]
    fn matches_reference_for_kl_asymmetric_product() {
        // KL's ⊗ is asymmetric: the a-first ordering in the sort must be
        // preserved. Use strictly positive intersecting rows.
        let a = CsrMatrix::from_dense(1, 4, &[0.5, 0.2, 0.0, 0.3]);
        let b = CsrMatrix::from_dense(1, 4, &[0.25, 0.25, 0.25, 0.25]);
        check(&a, &b, Distance::KlDivergence);
    }

    #[test]
    fn rows_wider_than_smem_are_rejected() {
        let dev = Device::volta();
        let a = CsrMatrix::<f32>::zeros(1, 100_000);
        let da = DeviceCsr::upload(&dev, &a);
        let sr = Distance::Manhattan.semiring::<f32>(&DistanceParams::default());
        let err = expand_sort_contract_kernel(&dev, &da, &da, 50_000, 50_000, &sr);
        assert!(matches!(err, Err(KernelError::SharedMemoryExceeded { .. })));
    }

    #[test]
    fn sort_dominates_issue_count() {
        // A pair of wide rows: the bitonic charge must dwarf the rest.
        let trips: Vec<(u32, u32, f64)> = (0..256).map(|c| (0, c * 2, 1.0)).collect();
        let a = CsrMatrix::from_triplets(1, 600, &trips).expect("valid");
        let dev = Device::volta();
        let sr = Distance::Manhattan.semiring::<f64>(&DistanceParams::default());
        let da = DeviceCsr::upload(&dev, &a);
        let (_, stats) = expand_sort_contract_kernel(&dev, &da, &da, 256, 256, &sr).expect("fits");
        // The 512-element bitonic network alone is ~45 stages × 256 CEs.
        assert!(stats.counters.issues > 2_000, "{}", stats.counters.issues);
    }
}
