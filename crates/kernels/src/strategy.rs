//! Top-level pairwise-distance entry point: strategy dispatch, norms,
//! expansion, and launch accounting.

use crate::device_fmt::{DeviceCoo, DeviceCsr};
use crate::error::KernelError;
use crate::esc::expand_sort_contract_kernel;
use crate::expansion::{expansion_kernel, finalize_kernel};
use crate::hybrid::{hybrid_inner_terms_cached, SmemVecKind};
use crate::naive::naive_csr_kernel;
use crate::naive_shared::naive_shared_kernel;
use crate::norms::row_norms_kernel;
use crate::resilience::{
    cascade_candidates, classify, FaultClass, ResiliencePolicy, ResilienceReport,
};
use gpu_sim::{Device, GlobalBuffer, LaunchStats};
use semiring::{Distance, DistanceParams, Family};
use sparse::{CsrMatrix, DenseMatrix, NormKind, Real};
use std::cell::RefCell;
use std::sync::Arc;

/// Which execution strategy computes the semiring passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// §3.2.1 / Algorithm 1 (per-pair expand-sort-contract blocks).
    ExpandSortContract,
    /// §3.2.2 / Algorithm 2 (one thread per output cell).
    NaiveCsr,
    /// §3.2.2's refinement: Algorithm 2 with the `A` row staged in
    /// shared memory ("marginal gains" per the paper).
    NaiveCsrShared,
    /// §3.3 / Algorithm 3 (the paper's contribution; default).
    #[default]
    HybridCooSpmv,
}

impl Strategy {
    /// Display name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::ExpandSortContract => "expand-sort-contract",
            Strategy::NaiveCsr => "naive-csr",
            Strategy::NaiveCsrShared => "naive-csr-shared",
            Strategy::HybridCooSpmv => "hybrid-coo-spmv",
        }
    }
}

/// Shared-memory representation request for the hybrid strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SmemMode {
    /// Dense when the dimensionality fits, hash otherwise (§3.3.2).
    #[default]
    Auto,
    /// Force the dense row array.
    Dense,
    /// Force the hash table.
    Hash,
    /// Force the bloom filter + global binary search.
    Bloom,
}

impl SmemMode {
    fn forced(self) -> Option<SmemVecKind> {
        match self {
            SmemMode::Auto => None,
            SmemMode::Dense => Some(SmemVecKind::Dense),
            SmemMode::Hash => Some(SmemVecKind::Hash),
            SmemMode::Bloom => Some(SmemVecKind::Bloom),
        }
    }
}

/// Options for [`pairwise_distances`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PairwiseOptions {
    /// Execution strategy for the semiring passes.
    pub strategy: Strategy,
    /// Shared-memory representation (hybrid strategy only).
    pub smem_mode: SmemMode,
    /// Retry/fallback policy. `None` (the default) surfaces every launch
    /// error unchanged; `Some` lets transient faults retry and capacity
    /// faults walk the degradation cascade (see [`crate::resilience`]).
    pub resilience: Option<ResiliencePolicy>,
}

/// Device-memory accounting of one pairwise computation (§4.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Bytes of the CSR inputs.
    pub input_bytes: usize,
    /// Bytes of the dense output matrix.
    pub output_bytes: usize,
    /// Extra workspace beyond inputs and output (COO row arrays, norm
    /// vectors) — the hybrid strategy's analog of cuSPARSE's internal
    /// buffer, which the paper reports as `nnz(B)` per batch.
    pub workspace_bytes: usize,
}

/// Result of a pairwise distance computation.
#[derive(Debug)]
pub struct PairwiseResult<T> {
    /// The `m × n` distance matrix.
    pub distances: DenseMatrix<T>,
    /// Per-kernel launch statistics, in execution order (successful
    /// attempt only — failed attempts are accounted in `resilience`).
    pub launches: Vec<LaunchStats>,
    /// Device-memory accounting.
    pub memory: MemoryFootprint,
    /// Engine decisions, present when a [`ResiliencePolicy`] was set.
    pub resilience: Option<ResilienceReport>,
}

impl<T> PairwiseResult<T> {
    /// Total simulated execution time across all launches.
    pub fn sim_seconds(&self) -> f64 {
        self.launches.iter().map(LaunchStats::sim_seconds).sum()
    }
}

/// A pairwise distance result still resident in device memory — the form
/// downstream device kernels (e.g. [`crate::top_k_kernel`]) consume
/// without a round trip to the host.
#[derive(Debug)]
pub struct DevicePairwise<T> {
    /// The `rows × cols` distance tile in device memory.
    pub buffer: GlobalBuffer<T>,
    /// Query rows.
    pub rows: usize,
    /// Index rows.
    pub cols: usize,
    /// Per-kernel launch statistics, in execution order.
    pub launches: Vec<LaunchStats>,
    /// Device-memory accounting.
    pub memory: MemoryFootprint,
    /// Engine decisions, present when a [`ResiliencePolicy`] was set.
    pub resilience: Option<ResilienceReport>,
}

impl<T> DevicePairwise<T> {
    /// Total simulated execution time across all launches.
    pub fn sim_seconds(&self) -> f64 {
        self.launches.iter().map(LaunchStats::sim_seconds).sum()
    }
}

/// Computes the full pairwise distance matrix `d(A_i, B_j)` on the
/// simulated device.
///
/// Runs the strategy's semiring pass(es), the row-norm kernel for any
/// norms the distance's expansion needs, and the expansion /
/// finalization kernel (§3.4).
///
/// # Errors
///
/// Returns an error when the operands' dimensionalities differ or the
/// strategy cannot satisfy its shared-memory requirements.
pub fn pairwise_distances<T: Real>(
    dev: &Device,
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    distance: Distance,
    params: &DistanceParams,
    opts: &PairwiseOptions,
) -> Result<PairwiseResult<T>, KernelError> {
    let d = pairwise_distances_device(dev, a, b, distance, params, opts)?;
    Ok(PairwiseResult {
        distances: DenseMatrix::from_vec(d.rows, d.cols, d.buffer.to_vec()),
        launches: d.launches,
        memory: d.memory,
        resilience: d.resilience,
    })
}

/// Like [`pairwise_distances`], but leaves the distance tile in device
/// memory for downstream kernels (the k-NN path chains the selection
/// kernel onto it).
///
/// # Errors
///
/// Returns an error when the operands' dimensionalities differ or the
/// strategy cannot satisfy its shared-memory requirements.
pub fn pairwise_distances_device<T: Real>(
    dev: &Device,
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    distance: Distance,
    params: &DistanceParams,
    opts: &PairwiseOptions,
) -> Result<DevicePairwise<T>, KernelError> {
    let prepared = PreparedIndex::new(dev, b.clone());
    pairwise_distances_prepared(dev, a, &prepared, distance, params, opts)
}

/// A fitted index resident in device memory: the CSR and COO uploads plus
/// lazily computed, cached row norms.
///
/// Building this once per index and reusing it across query batches is
/// what a fitted `NearestNeighbors` estimator does — the index-side
/// uploads and norm reductions then cost one launch per norm kind for
/// the whole query workload instead of one per tile.
#[derive(Debug)]
pub struct PreparedIndex<T> {
    host: CsrMatrix<T>,
    csr: DeviceCsr<T>,
    coo: DeviceCoo<T>,
    norms: RefCell<Vec<(NormKind, Arc<GlobalBuffer<T>>)>>,
}

impl<T: Real> PreparedIndex<T> {
    /// Uploads the index to device memory (CSR for the shared-memory
    /// side, COO for the streamed side).
    pub fn new(dev: &Device, host: CsrMatrix<T>) -> Self {
        let csr = DeviceCsr::upload(dev, &host);
        let coo = DeviceCoo::upload(dev, &host);
        Self {
            host,
            csr,
            coo,
            norms: RefCell::new(Vec::new()),
        }
    }

    /// The host-side matrix (used for planning).
    pub fn host(&self) -> &CsrMatrix<T> {
        &self.host
    }

    /// The device CSR upload.
    pub fn csr(&self) -> &DeviceCsr<T> {
        &self.csr
    }

    /// The device COO upload.
    pub fn coo(&self) -> &DeviceCoo<T> {
        &self.coo
    }

    /// Index rows.
    pub fn rows(&self) -> usize {
        self.host.rows()
    }

    /// Dimensionality.
    pub fn cols(&self) -> usize {
        self.host.cols()
    }

    /// Device bytes of the uploads (CSR + COO).
    pub fn upload_bytes(&self) -> usize {
        self.csr.bytes() + self.coo.bytes()
    }

    /// Returns the cached norm buffer for `kind`, computing it with the
    /// row-norm kernel on first use (the returned stats are `Some` only
    /// on that first call).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Launch`] when the norm kernel's launch is
    /// rejected by the simulator.
    #[allow(clippy::type_complexity)]
    pub fn norm(
        &self,
        dev: &Device,
        kind: NormKind,
    ) -> Result<(Arc<GlobalBuffer<T>>, Option<LaunchStats>), KernelError> {
        if let Some((_, buf)) = self.norms.borrow().iter().find(|(k, _)| *k == kind) {
            return Ok((Arc::clone(buf), None));
        }
        let (buf, stats) = row_norms_kernel(dev, &self.csr, kind)?;
        let buf = Arc::new(buf);
        self.norms.borrow_mut().push((kind, Arc::clone(&buf)));
        Ok((buf, Some(stats)))
    }
}

/// [`pairwise_distances_device`] against a [`PreparedIndex`], reusing its
/// uploads and cached norms.
///
/// When [`PairwiseOptions::resilience`] is set, this is the resilience
/// engine's entry point: transient faults retry the same plan (with
/// simulated backoff), capacity faults re-plan down the fallback cascade,
/// and every decision is recorded in the returned
/// [`DevicePairwise::resilience`] report.
///
/// # Errors
///
/// Returns an error when the operands' dimensionalities differ, the
/// strategy cannot satisfy its shared-memory requirements, or (with a
/// policy) the whole cascade is exhausted.
pub fn pairwise_distances_prepared<T: Real>(
    dev: &Device,
    a: &CsrMatrix<T>,
    b: &PreparedIndex<T>,
    distance: Distance,
    params: &DistanceParams,
    opts: &PairwiseOptions,
) -> Result<DevicePairwise<T>, KernelError> {
    if a.cols() != b.cols() {
        return Err(KernelError::ShapeMismatch {
            a_cols: a.cols(),
            b_cols: b.cols(),
        });
    }
    let a_dev = DeviceCsr::upload(dev, a);

    let Some(policy) = opts.resilience else {
        return attempt_pairwise(
            dev,
            a,
            &a_dev,
            b,
            distance,
            params,
            opts.strategy,
            opts.smem_mode,
        );
    };

    let candidates = cascade_candidates(opts.strategy, opts.smem_mode, policy.fallback);
    let mut report = ResilienceReport::new(opts.strategy, opts.smem_mode);
    let last = candidates.len() - 1;
    for (ci, &(strategy, smem)) in candidates.iter().enumerate() {
        let mut retries_left = policy.retries;
        let mut backoff = policy.backoff_seconds;
        loop {
            report.attempts += 1;
            let outcome = attempt_pairwise(dev, a, &a_dev, b, distance, params, strategy, smem);
            match outcome {
                Ok(mut d) => {
                    report.final_strategy = strategy;
                    report.final_smem = smem;
                    report.downgraded = ci > 0;
                    d.resilience = Some(report);
                    return Ok(d);
                }
                Err(e) => match classify(&e) {
                    FaultClass::Retryable if retries_left > 0 => {
                        retries_left -= 1;
                        report.backoff_seconds += backoff;
                        backoff *= 2.0;
                        report.faults_absorbed.push(format!("retried: {e}"));
                    }
                    FaultClass::Degradable if ci < last => {
                        report.faults_absorbed.push(format!(
                            "degraded past {}/{:?}: {e}",
                            strategy.name(),
                            smem
                        ));
                        break;
                    }
                    _ => return Err(e),
                },
            }
        }
    }
    unreachable!("the last cascade candidate returns or errors")
}

/// One planning-and-launch attempt of a single `(strategy, smem)` plan —
/// the engine-free body of [`pairwise_distances_prepared`].
fn attempt_pairwise<T: Real>(
    dev: &Device,
    a: &CsrMatrix<T>,
    a_dev: &DeviceCsr<T>,
    b: &PreparedIndex<T>,
    distance: Distance,
    params: &DistanceParams,
    strategy: Strategy,
    smem_mode: SmemMode,
) -> Result<DevicePairwise<T>, KernelError> {
    let (m, n, k) = (a.rows(), b.rows(), a.cols());
    let sr = distance.semiring::<T>(params);
    let mut launches = Vec::new();
    let mut workspace = 0usize;

    // Semiring pass(es) → inner terms.
    let inner: GlobalBuffer<T> = match strategy {
        Strategy::NaiveCsr => {
            let (out, stats) = naive_csr_kernel(dev, a_dev, &b.csr, &sr)?;
            launches.push(stats);
            out
        }
        Strategy::NaiveCsrShared => {
            let (out, stats) = naive_shared_kernel(dev, a_dev, &b.csr, a.max_degree(), &sr)?;
            launches.push(stats);
            out
        }
        Strategy::ExpandSortContract => {
            let (out, stats) = expand_sort_contract_kernel(
                dev,
                a_dev,
                &b.csr,
                a.max_degree(),
                b.host.max_degree(),
                &sr,
            )?;
            launches.push(stats);
            out
        }
        Strategy::HybridCooSpmv => {
            let (out, stats) = hybrid_inner_terms_cached(
                dev,
                a,
                &b.host,
                a_dev,
                &b.csr,
                &b.coo,
                &sr,
                smem_mode.forced(),
            )?;
            // COO row-index workspace: nnz(B) (+ nnz(A) for the NAMM
            // second pass).
            workspace += b.host.nnz() * 4;
            if !sr.is_annihilating() {
                workspace += a.nnz() * 4;
            }
            launches.extend(stats);
            out
        }
    };

    // Norms + expansion (expanded family or norm-fed NAMMs like
    // Bray-Curtis) or plain finalization (norm-free NAMMs).
    match distance.family() {
        Family::Namm if distance.norms().is_empty() => {
            launches.push(finalize_kernel(dev, &inner, m, n, k, distance, params)?);
        }
        _ => {
            let kinds = distance.norms();
            let mut a_norms = Vec::with_capacity(kinds.len());
            let mut b_norms: Vec<Arc<GlobalBuffer<T>>> = Vec::with_capacity(kinds.len());
            for &kind in kinds {
                let (na, sa) = row_norms_kernel(dev, a_dev, kind)?;
                workspace += na.bytes();
                launches.push(sa);
                a_norms.push(na);
                let (nb, sb) = b.norm(dev, kind)?;
                workspace += nb.bytes();
                if let Some(sb) = sb {
                    launches.push(sb);
                }
                b_norms.push(nb);
            }
            let a_refs: Vec<&GlobalBuffer<T>> = a_norms.iter().collect();
            let b_refs: Vec<&GlobalBuffer<T>> = b_norms.iter().map(Arc::as_ref).collect();
            launches.push(expansion_kernel(
                dev, &inner, m, n, k, &a_refs, &b_refs, distance,
            )?);
        }
    }

    let memory = MemoryFootprint {
        input_bytes: a.device_bytes() + b.host.device_bytes(),
        output_bytes: inner.bytes(),
        workspace_bytes: workspace,
    };
    Ok(DevicePairwise {
        buffer: inner,
        rows: m,
        cols: n,
        launches,
        memory,
        resilience: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::reference::dense_pairwise;

    fn sample() -> (CsrMatrix<f64>, CsrMatrix<f64>) {
        let a = CsrMatrix::from_dense(
            3,
            7,
            &[
                0.4, 0.0, 0.2, 0.0, 0.1, 0.0, 0.3, //
                0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, //
                0.1, 0.2, 0.0, 0.3, 0.0, 0.0, 0.4,
            ],
        );
        let b = CsrMatrix::from_dense(
            4,
            7,
            &[
                0.0, 0.5, 0.2, 0.0, 0.0, 0.3, 0.0, //
                0.4, 0.0, 0.2, 0.0, 0.1, 0.0, 0.3, //
                0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, //
                0.1, 0.1, 0.2, 0.2, 0.1, 0.1, 0.2,
            ],
        );
        (a, b)
    }

    fn check_all_distances(strategy: Strategy) {
        let (a, b) = sample();
        let dev = Device::volta();
        let params = DistanceParams { minkowski_p: 3.0 };
        let opts = PairwiseOptions {
            strategy,
            smem_mode: SmemMode::Auto,
            resilience: None,
        };
        for d in Distance::ALL {
            let got = pairwise_distances(&dev, &a, &b, d, &params, &opts)
                .unwrap_or_else(|e| panic!("{d} failed: {e}"));
            let want = dense_pairwise(&a, &b, d, &params);
            let diff = got.distances.max_abs_diff(&want);
            assert!(diff < 1e-7, "{d} via {}: max diff {diff}", strategy.name());
        }
    }

    #[test]
    fn hybrid_matches_dense_reference_for_all_15_distances() {
        check_all_distances(Strategy::HybridCooSpmv);
    }

    #[test]
    fn naive_matches_dense_reference_for_all_15_distances() {
        check_all_distances(Strategy::NaiveCsr);
    }

    #[test]
    fn naive_shared_matches_dense_reference_for_all_15_distances() {
        check_all_distances(Strategy::NaiveCsrShared);
    }

    #[test]
    fn esc_matches_dense_reference_for_all_15_distances() {
        check_all_distances(Strategy::ExpandSortContract);
    }

    #[test]
    fn bray_curtis_extension_runs_on_every_strategy() {
        // The norm-fed NAMM the paper's Table 1 does not exercise:
        // union pass + Sum norms + division in the expansion stage.
        let (a, b) = sample();
        let dev = Device::volta();
        let params = DistanceParams::default();
        let want = dense_pairwise(&a, &b, Distance::BrayCurtis, &params);
        for strategy in [
            Strategy::HybridCooSpmv,
            Strategy::NaiveCsr,
            Strategy::NaiveCsrShared,
            Strategy::ExpandSortContract,
        ] {
            let opts = PairwiseOptions {
                strategy,
                smem_mode: SmemMode::Auto,
                resilience: None,
            };
            let got = pairwise_distances(&dev, &a, &b, Distance::BrayCurtis, &params, &opts)
                .expect("runs");
            let diff = got.distances.max_abs_diff(&want);
            assert!(diff < 1e-9, "{}: {diff}", strategy.name());
        }
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let dev = Device::volta();
        let a = CsrMatrix::<f32>::zeros(2, 3);
        let b = CsrMatrix::<f32>::zeros(2, 4);
        let err = pairwise_distances(
            &dev,
            &a,
            &b,
            Distance::Cosine,
            &DistanceParams::default(),
            &PairwiseOptions::default(),
        );
        assert!(matches!(err, Err(KernelError::ShapeMismatch { .. })));
    }

    #[test]
    fn namm_runs_two_semiring_passes_expanded_one() {
        let (a, b) = sample();
        let dev = Device::volta();
        let params = DistanceParams::default();
        let opts = PairwiseOptions::default();
        let manhattan =
            pairwise_distances(&dev, &a, &b, Distance::Manhattan, &params, &opts).expect("ok");
        // Two hybrid passes + finalize.
        assert_eq!(manhattan.launches.len(), 3);
        let cosine =
            pairwise_distances(&dev, &a, &b, Distance::Cosine, &params, &opts).expect("ok");
        // One hybrid pass + 2 norm launches + expansion.
        assert_eq!(cosine.launches.len(), 4);
    }

    #[test]
    fn memory_footprint_reports_workspace() {
        let (a, b) = sample();
        let dev = Device::volta();
        let r = pairwise_distances(
            &dev,
            &a,
            &b,
            Distance::Manhattan,
            &DistanceParams::default(),
            &PairwiseOptions::default(),
        )
        .expect("ok");
        // NAMM hybrid: nnz(B)*4 + nnz(A)*4 of COO row workspace.
        assert_eq!(r.memory.workspace_bytes, (a.nnz() + b.nnz()) * 4);
        assert_eq!(r.memory.output_bytes, 3 * 4 * 8);
        assert!(r.sim_seconds() > 0.0);
    }

    #[test]
    fn zero_matrices_produce_finite_distances() {
        let dev = Device::volta();
        let a = CsrMatrix::<f64>::zeros(2, 5);
        let opts = PairwiseOptions::default();
        let params = DistanceParams::default();
        for d in Distance::ALL {
            let r = pairwise_distances(&dev, &a, &a, d, &params, &opts)
                .unwrap_or_else(|e| panic!("{d}: {e}"));
            for &v in r.distances.as_slice() {
                assert!(v.is_finite(), "{d} produced {v}");
            }
        }
    }
}
