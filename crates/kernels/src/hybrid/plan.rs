//! Host-side partition planning for high-degree rows (§3.3.3).
//!
//! "Rows with degree greater than 50% hash table capacity are partitioned
//! uniformly by their degrees into multiple blocks with subsets of the
//! degrees that can fit into 50% hash table capacity." One grid block is
//! scheduled per partition; single-partition rows are the fast path.

/// One thread block's assignment: a contiguous slice of one row's
/// nonzeros.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionEntry {
    /// The row whose slice this block loads into shared memory.
    pub row: usize,
    /// Offset of the slice within the row (in nonzeros).
    pub start: usize,
    /// Length of the slice.
    pub len: usize,
    /// True for the row's first partition, which additionally owns the
    /// columns absent from the *entire* row (NAMM terms) at the price of
    /// a global binary search per miss.
    pub is_first: bool,
    /// True when the row was split at all (misses are then ambiguous).
    pub partitioned: bool,
}

/// The full grid plan: one entry per block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// Block assignments, grouped by row in order.
    pub entries: Vec<PartitionEntry>,
    /// Number of rows that needed more than one partition.
    pub partitioned_rows: usize,
}

impl PartitionPlan {
    /// Plans one block per `max_entries`-sized slice of each row.
    ///
    /// Empty rows still get a block when `include_empty` is set (NAMM
    /// passes must visit them so the streamed side's terms are emitted);
    /// annihilating passes skip them.
    ///
    /// # Panics
    ///
    /// Panics if `max_entries` is zero.
    pub fn build(indptr: &[usize], max_entries: usize, include_empty: bool) -> Self {
        assert!(max_entries > 0, "max_entries must be positive");
        let mut entries = Vec::new();
        let mut partitioned_rows = 0;
        for row in 0..indptr.len().saturating_sub(1) {
            let degree = indptr[row + 1] - indptr[row];
            if degree == 0 {
                if include_empty {
                    entries.push(PartitionEntry {
                        row,
                        start: 0,
                        len: 0,
                        is_first: true,
                        partitioned: false,
                    });
                }
                continue;
            }
            let parts = degree.div_ceil(max_entries);
            if parts > 1 {
                partitioned_rows += 1;
            }
            for p in 0..parts {
                let start = p * max_entries;
                let len = max_entries.min(degree - start);
                entries.push(PartitionEntry {
                    row,
                    start,
                    len,
                    is_first: p == 0,
                    partitioned: parts > 1,
                });
            }
        }
        Self {
            entries,
            partitioned_rows,
        }
    }

    /// Number of blocks the plan schedules.
    pub fn blocks(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_rows_get_one_block_each() {
        let indptr = vec![0, 3, 5, 9];
        let plan = PartitionPlan::build(&indptr, 100, false);
        assert_eq!(plan.blocks(), 3);
        assert_eq!(plan.partitioned_rows, 0);
        assert!(plan.entries.iter().all(|e| e.is_first && !e.partitioned));
        assert_eq!(
            plan.entries[2],
            PartitionEntry {
                row: 2,
                start: 0,
                len: 4,
                is_first: true,
                partitioned: false,
            }
        );
    }

    #[test]
    fn high_degree_rows_split_uniformly() {
        // Row 0 has 10 nonzeros, capacity 4 → 3 partitions of 4/4/2.
        let indptr = vec![0, 10];
        let plan = PartitionPlan::build(&indptr, 4, false);
        assert_eq!(plan.blocks(), 3);
        assert_eq!(plan.partitioned_rows, 1);
        assert_eq!(
            plan.entries
                .iter()
                .map(|e| (e.start, e.len, e.is_first))
                .collect::<Vec<_>>(),
            vec![(0, 4, true), (4, 4, false), (8, 2, false)]
        );
        assert!(plan.entries.iter().all(|e| e.partitioned));
    }

    #[test]
    fn empty_rows_respect_include_flag() {
        let indptr = vec![0, 0, 2, 2];
        let skip = PartitionPlan::build(&indptr, 8, false);
        assert_eq!(skip.blocks(), 1);
        let keep = PartitionPlan::build(&indptr, 8, true);
        assert_eq!(keep.blocks(), 3);
        assert_eq!(keep.entries[0].len, 0);
    }

    #[test]
    fn exact_multiple_degree_has_no_tail() {
        let indptr = vec![0, 8];
        let plan = PartitionPlan::build(&indptr, 4, false);
        assert_eq!(plan.blocks(), 2);
        assert_eq!(plan.entries[1].len, 4);
    }
}
