//! Load-balanced hybrid CSR+COO strategy (§3.3): planning, shared-memory
//! mode resolution, and two-pass orchestration.

pub mod pass;
pub mod plan;
pub mod smem_vec;

pub use pass::{hybrid_pass, PassInputs, PassKind, BLOCK_THREADS};
pub use plan::{PartitionEntry, PartitionPlan};
pub use smem_vec::{Lookup, SmemVecKind, SmemVector};

use crate::device_fmt::{DeviceCoo, DeviceCsr};
use crate::error::KernelError;
use gpu_sim::{Device, GlobalBuffer, LaunchStats, SmemBloomFilter, SmemHashTable};
use semiring::Semiring;
use sparse::{CsrMatrix, Real};

/// Shared-memory budget per block: half the SM's capacity, so two blocks
/// of 32 warps keep the SM at full occupancy (§3.3: "a block size of 32
/// warps allows two blocks, the full 64 warps, to be scheduled
/// concurrently on each SM").
pub fn smem_budget(dev: &Device) -> usize {
    (dev.spec().shared_mem_per_sm / 2).min(dev.spec().shared_mem_per_block)
}

/// Resolved launch geometry for one hybrid side.
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// Chosen representation.
    pub kind: SmemVecKind,
    /// Hash capacity in slots (0 unless hash).
    pub hash_capacity: usize,
    /// Entries per partition before a row must split.
    pub max_entries: usize,
    /// Shared-memory bytes per block.
    pub smem_per_block: usize,
}

/// Picks the shared-memory configuration for a matrix side.
///
/// Dense when the dimensionality fits the budget (§3.3.2's 12K/20K
/// full-occupancy limits scale with the scalar width); otherwise the hash
/// table, with high-degree rows partitioned (§3.3.3). Bloom is only used
/// when explicitly requested.
///
/// # Errors
///
/// Returns [`KernelError::UnsupportedSmemMode`] if a forced mode cannot
/// fit (e.g. dense with a dimensionality over the budget).
pub fn resolve_config<T: Real>(
    dev: &Device,
    cols: usize,
    forced: Option<SmemVecKind>,
) -> Result<HybridConfig, KernelError> {
    let budget = smem_budget(dev);
    let dense_fits = cols * std::mem::size_of::<T>() <= budget;
    let kind = match forced {
        Some(SmemVecKind::Dense) if !dense_fits => {
            return Err(KernelError::UnsupportedSmemMode(format!(
                "dense vectors of dimensionality {cols} exceed the {budget}-byte budget"
            )));
        }
        Some(k) => k,
        None if dense_fits => SmemVecKind::Dense,
        None => SmemVecKind::Hash,
    };
    Ok(match kind {
        SmemVecKind::Dense => HybridConfig {
            kind,
            hash_capacity: 0,
            // Dense rows never split: the whole dimensionality is
            // addressable.
            max_entries: usize::MAX,
            smem_per_block: cols * std::mem::size_of::<T>(),
        },
        SmemVecKind::Hash => {
            let capacity = budget / SmemHashTable::<T>::smem_bytes(1);
            let max_entries =
                ((capacity as f64 * gpu_sim::collections::hash_table::MAX_LOAD) as usize).max(1);
            HybridConfig {
                kind,
                hash_capacity: capacity,
                max_entries,
                smem_per_block: SmemHashTable::<T>::smem_bytes(capacity),
            }
        }
        SmemVecKind::Bloom => {
            let max_bits = budget * 8;
            let max_entries = (max_bits / 8).max(1);
            HybridConfig {
                kind,
                hash_capacity: 0,
                max_entries,
                smem_per_block: SmemBloomFilter::smem_bytes(SmemBloomFilter::bits_for(max_entries)),
            }
        }
    })
}

/// Runs the hybrid strategy end to end on the inner terms: pass 1 always,
/// pass 2 (commuted, difference-only) when the semiring is a NAMM.
///
/// Returns the `m × n` inner-term buffer and the per-launch stats.
///
/// # Errors
///
/// Propagates configuration errors from [`resolve_config`].
#[allow(clippy::too_many_arguments)]
pub fn hybrid_inner_terms<T: Real>(
    dev: &Device,
    a_host: &CsrMatrix<T>,
    b_host: &CsrMatrix<T>,
    a_dev: &DeviceCsr<T>,
    b_dev: &DeviceCsr<T>,
    sr: &Semiring<T>,
    forced: Option<SmemVecKind>,
) -> Result<(GlobalBuffer<T>, Vec<LaunchStats>), KernelError> {
    let b_coo = DeviceCoo::upload(dev, b_host);
    hybrid_inner_terms_cached(dev, a_host, b_host, a_dev, b_dev, &b_coo, sr, forced)
}

/// [`hybrid_inner_terms`] with the `B`-side COO expansion supplied by the
/// caller, so a fitted index's upload is reused across query batches.
///
/// # Errors
///
/// Propagates configuration errors from [`resolve_config`].
#[allow(clippy::too_many_arguments)]
pub fn hybrid_inner_terms_cached<T: Real>(
    dev: &Device,
    a_host: &CsrMatrix<T>,
    b_host: &CsrMatrix<T>,
    a_dev: &DeviceCsr<T>,
    b_dev: &DeviceCsr<T>,
    b_coo: &DeviceCoo<T>,
    sr: &Semiring<T>,
    forced: Option<SmemVecKind>,
) -> Result<(GlobalBuffer<T>, Vec<LaunchStats>), KernelError> {
    let (m, n) = (a_host.rows(), b_host.rows());
    // Cells accumulate through ⊕ atomics, so they must start at id⊕
    // (0 for every Table 1 distance, +∞ for min-reductions like the
    // tropical semiring).
    let out = GlobalBuffer::from_vec(vec![sr.reduce_identity(); m * n]);
    let mut stats = Vec::new();

    let cfg = resolve_config::<T>(dev, a_host.cols(), forced)?;
    // Annihilating semirings skip blocks for empty rows — nothing in the
    // intersection can contribute. NAMMs must visit them for the ā ∩ b
    // terms.
    let plan_a = PartitionPlan::build(a_host.indptr(), cfg.max_entries, !sr.is_annihilating());
    stats.push(hybrid_pass(
        dev,
        &PassInputs {
            smem_side: a_dev,
            stream_side: b_coo,
            plan: &plan_a,
            kind: cfg.kind,
            hash_capacity: cfg.hash_capacity,
            smem_per_block: cfg.smem_per_block,
            sr: *sr,
            out: &out,
            out_cols: n,
            commuted: false,
        },
    )?);

    if !sr.is_annihilating() {
        let cfg_b = resolve_config::<T>(dev, b_host.cols(), forced)?;
        let a_coo = DeviceCoo::upload(dev, a_host);
        let plan_b = PartitionPlan::build(b_host.indptr(), cfg_b.max_entries, true);
        stats.push(hybrid_pass(
            dev,
            &PassInputs {
                smem_side: b_dev,
                stream_side: &a_coo,
                plan: &plan_b,
                kind: cfg_b.kind,
                hash_capacity: cfg_b.hash_capacity,
                smem_per_block: cfg_b.smem_per_block,
                sr: *sr,
                out: &out,
                out_cols: n,
                commuted: true,
            },
        )?);
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::{apply_semiring_union, Distance, DistanceParams};

    fn check_inner(
        a: &CsrMatrix<f64>,
        b: &CsrMatrix<f64>,
        d: Distance,
        forced: Option<SmemVecKind>,
    ) {
        let dev = Device::volta();
        let sr = d.semiring::<f64>(&DistanceParams::default());
        let da = DeviceCsr::upload(&dev, a);
        let db = DeviceCsr::upload(&dev, b);
        let (out, _) = hybrid_inner_terms(&dev, a, b, &da, &db, &sr, forced).expect("config ok");
        let got = out.to_vec();
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let av: Vec<_> = a.row(i).collect();
                let bv: Vec<_> = b.row(j).collect();
                let want = apply_semiring_union(&av, &bv, &sr);
                let g = got[i * b.rows() + j];
                assert!(
                    (g - want).abs() < 1e-9,
                    "{d} ({forced:?}) cell ({i},{j}): got {g}, want {want}"
                );
            }
        }
    }

    fn sample_with_empty_rows() -> (CsrMatrix<f64>, CsrMatrix<f64>) {
        let a = CsrMatrix::from_dense(
            3,
            8,
            &[
                1.0, 0.0, 2.0, 0.0, 0.5, 0.0, 0.0, 3.0, //
                0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, //
                0.0, 4.0, 0.0, 1.0, 0.0, 0.0, 2.0, 0.0,
            ],
        );
        let b = CsrMatrix::from_dense(
            3,
            8,
            &[
                0.0, 1.0, 2.0, 0.0, 0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, //
                2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0,
            ],
        );
        (a, b)
    }

    #[test]
    fn namm_union_with_empty_rows_dense() {
        let (a, b) = sample_with_empty_rows();
        check_inner(&a, &b, Distance::Manhattan, Some(SmemVecKind::Dense));
    }

    #[test]
    fn namm_union_with_empty_rows_hash() {
        let (a, b) = sample_with_empty_rows();
        check_inner(&a, &b, Distance::Manhattan, Some(SmemVecKind::Hash));
    }

    #[test]
    fn namm_union_with_empty_rows_bloom() {
        let (a, b) = sample_with_empty_rows();
        check_inner(&a, &b, Distance::Canberra, Some(SmemVecKind::Bloom));
    }

    #[test]
    fn dot_products_single_pass() {
        let (a, b) = sample_with_empty_rows();
        let dev = Device::volta();
        let sr = Distance::DotProduct.semiring::<f64>(&DistanceParams::default());
        let da = DeviceCsr::upload(&dev, &a);
        let db = DeviceCsr::upload(&dev, &b);
        let (_, stats) = hybrid_inner_terms(&dev, &a, &b, &da, &db, &sr, None).expect("config ok");
        assert_eq!(stats.len(), 1, "annihilating semirings need one pass");
        check_inner(&a, &b, Distance::DotProduct, None);
    }

    #[test]
    fn namm_needs_two_passes() {
        let (a, b) = sample_with_empty_rows();
        let dev = Device::volta();
        let sr = Distance::Manhattan.semiring::<f64>(&DistanceParams::default());
        let da = DeviceCsr::upload(&dev, &a);
        let db = DeviceCsr::upload(&dev, &b);
        let (_, stats) = hybrid_inner_terms(&dev, &a, &b, &da, &db, &sr, None).expect("config ok");
        assert_eq!(stats.len(), 2);
    }

    #[test]
    fn auto_mode_prefers_dense_for_small_k() {
        let dev = Device::volta();
        let cfg = resolve_config::<f32>(&dev, 1000, None).expect("ok");
        assert_eq!(cfg.kind, SmemVecKind::Dense);
        // Volta: 48 KiB budget / 4 bytes = 12K dims max in dense form.
        let cfg = resolve_config::<f32>(&dev, 20_000, None).expect("ok");
        assert_eq!(cfg.kind, SmemVecKind::Hash);
    }

    #[test]
    fn hash_capacity_matches_papers_3k_volta_limit() {
        let dev = Device::volta();
        let cfg = resolve_config::<f32>(&dev, 1_000_000, None).expect("ok");
        assert_eq!(cfg.kind, SmemVecKind::Hash);
        assert_eq!(cfg.hash_capacity, 6144);
        assert_eq!(cfg.max_entries, 3072); // "max degree of 3K on Volta"
    }

    #[test]
    fn forced_dense_beyond_budget_is_rejected() {
        let dev = Device::volta();
        let err = resolve_config::<f32>(&dev, 1_000_000, Some(SmemVecKind::Dense));
        assert!(matches!(err, Err(KernelError::UnsupportedSmemMode(_))));
    }
}
