//! The load-balanced hybrid CSR+COO SPMV pass (§3.3, Algorithm 3).
//!
//! Each block stages one row (or partition of a row, §3.3.3) of the
//! *shared-memory side* matrix, then every warp strides over the
//! *streamed side*'s COO nonzeros — coalesced loads of `rowidx`,
//! `colidx`, and `values` — applying `⊗`, segment-reducing by the
//! streamed row within the warp, and atomically `⊕`-combining segment
//! results into the output ("bounding the number of potential writes to
//! global memory by the number of active warps over each row of B").
//!
//! Pass 1 (`PassKind::Products`) computes `a ∩ b` plus `ā ∩ b`; for NAMM
//! distances a second launch with commuted operands and
//! `PassKind::Difference` adds the remaining `a ∩ b̄` — Equation 3's
//! union decomposition (§3.3.1).

use crate::device_fmt::{DeviceCoo, DeviceCsr};
use crate::error::KernelError;
use crate::hybrid::plan::PartitionPlan;
use crate::hybrid::smem_vec::{Lookup, SmemVecKind, SmemVector};
use gpu_sim::{
    lanes_from_fn, warp_binary_search, Device, GlobalBuffer, LaunchConfig, LaunchStats, WARP_SIZE,
};
use semiring::Semiring;
use sparse::Real;

/// Threads per block: 32 warps, the geometry §3.3 reports reaching full
/// Volta occupancy with two resident blocks per SM.
pub const BLOCK_THREADS: usize = 1024;

/// Which union component the pass contributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassKind {
    /// `⊗(smem[col], stream_val)` for every streamed nonzero — covers the
    /// column intersection and the streamed side's symmetric difference.
    Products,
    /// `⊗(stream_val, 0)` for streamed nonzeros whose column is *absent*
    /// from the shared-memory row — the remaining symmetric difference,
    /// with intersection hits skipped ("skipping the application of id⊗
    /// in B for the second pass").
    Difference,
}

/// Inputs of one hybrid pass launch.
#[derive(Debug)]
pub struct PassInputs<'x, T> {
    /// Matrix whose rows go to shared memory (`A` in pass 1, `B` in
    /// pass 2).
    pub smem_side: &'x DeviceCsr<T>,
    /// Matrix streamed in COO order (`B` in pass 1, `A` in pass 2).
    pub stream_side: &'x DeviceCoo<T>,
    /// Block assignment (one entry per block; see
    /// [`PartitionPlan::build`]).
    pub plan: &'x PartitionPlan,
    /// Shared-memory representation for the staged rows.
    pub kind: SmemVecKind,
    /// Hash capacity in slots (ignored by dense/bloom).
    pub hash_capacity: usize,
    /// Shared-memory bytes to reserve per block (must cover the
    /// representation).
    pub smem_per_block: usize,
    /// The distance's semiring.
    pub sr: Semiring<T>,
    /// Output buffer of `out_rows × out_cols` inner terms.
    pub out: &'x GlobalBuffer<T>,
    /// Output columns (the `B`-row count of the overall product).
    pub out_cols: usize,
    /// When true, output index is `stream_row * out_cols + smem_row`
    /// (pass 2's commuted orientation); otherwise
    /// `smem_row * out_cols + stream_row`.
    pub commuted: bool,
}

/// Launches one hybrid pass and returns its stats.
///
/// # Errors
///
/// Returns [`KernelError::Launch`] when the simulator rejects the launch
/// (a shared-memory budget the plan under-provisioned, or sanitizer
/// findings under [`gpu_sim::SanitizerMode::Fail`]).
pub fn hybrid_pass<T: Real>(
    dev: &Device,
    inp: &PassInputs<'_, T>,
) -> Result<LaunchStats, KernelError> {
    let sr = inp.sr;
    let annihilating = sr.is_annihilating();
    let id = sr.reduce_identity();
    let nnz_stream = inp.stream_side.nnz();
    let entries = &inp.plan.entries;
    let name = match inp.kind {
        SmemVecKind::Dense => "hybrid_pass_dense",
        SmemVecKind::Hash => "hybrid_pass_hash",
        SmemVecKind::Bloom => "hybrid_pass_bloom",
    };

    let stats = dev.try_launch(
        name,
        LaunchConfig::new(entries.len().max(1), BLOCK_THREADS, inp.smem_per_block),
        |block| {
            let Some(entry) = entries.get(block.block_id) else {
                return;
            };
            let (row_start, row_end) = inp.smem_side.row_extent(entry.row);
            let part_start = row_start + entry.start;
            let part_end = part_start + entry.len;
            let k = inp.smem_side.cols;
            let vec =
                SmemVector::<T>::build(block, inp.kind, k, inp.hash_capacity, entry.len.max(1));

            // Stage the partition: warps cooperatively load (coalesced)
            // and insert.
            let vec_ref = vec.clone();
            block.run_warps(|w| {
                w.range("row_cache", |w| {
                    let wpb = BLOCK_THREADS / WARP_SIZE;
                    let mut base = part_start + w.warp_id * WARP_SIZE;
                    while base < part_end {
                        let idx = lanes_from_fn(|l| {
                            let i = base + l;
                            (i < part_end).then_some(i)
                        });
                        let cols = w.global_gather(&inp.smem_side.indices, &idx);
                        let vals = w.global_gather(&inp.smem_side.values, &idx);
                        let ocols = lanes_from_fn(|l| idx[l].map(|_| cols[l]));
                        w.range("insert", |w| vec_ref.insert_warp(w, &ocols, &vals));
                        // Inserts can overflow the table/bloom capacity
                        // (recorded as a typed fault inside insert_warp);
                        // stop staging and limp so the launch surfaces the
                        // fault instead of compounding the damage.
                        if w.fault_pending() {
                            break;
                        }
                        base += wpb * WARP_SIZE;
                    }
                });
            });
            block.sync();

            // Stream the COO side.
            let vec_ref = vec.clone();
            block.run_warps(|w| {
                w.range("coo_sweep", |w| {
                    let wpb = BLOCK_THREADS / WARP_SIZE;
                    let mut base = w.warp_id * WARP_SIZE;
                    while base < nnz_stream {
                        let idx = lanes_from_fn(|l| {
                            let i = base + l;
                            (i < nnz_stream).then_some(i)
                        });
                        let srow = w.global_gather(&inp.stream_side.row_indices, &idx);
                        let scol = w.global_gather(&inp.stream_side.col_indices, &idx);
                        let sval = w.global_gather(&inp.stream_side.values, &idx);

                        let cols = lanes_from_fn(|l| idx[l].map(|_| scol[l]));
                        let looked = w.range("lookup", |w| {
                            let mut looked = vec_ref.lookup_warp(w, &cols);
                            // Bloom positives confirm against the partition's
                            // global column list.
                            if matches!(inp.kind, SmemVecKind::Bloom) {
                                looked = vec_ref.confirm_warp(
                                    w,
                                    &looked,
                                    &cols,
                                    &inp.smem_side.indices,
                                    &inp.smem_side.values,
                                    part_start,
                                    part_end,
                                );
                            }
                            looked
                        });

                        // Partitioned rows: a miss is ambiguous. Only the
                        // first partition resolves it, via a binary search
                        // over the *full* row — §3.3.3's "extra work in
                        // exchange for scale". Annihilating semirings skip
                        // the search entirely (a true miss contributes 0).
                        let needs_resolve =
                            entry.partitioned && entry.is_first && (!annihilating || inp.commuted);
                        let unresolved = lanes_from_fn(|l| {
                            if needs_resolve && matches!(looked[l], Lookup::Miss) {
                                cols[l]
                            } else {
                                None
                            }
                        });
                        let in_full_row = if unresolved.iter().any(Option::is_some) {
                            w.range("resolve", |w| {
                                let found = warp_binary_search(
                                    w,
                                    &inp.smem_side.indices,
                                    row_start,
                                    row_end,
                                    &unresolved,
                                );
                                lanes_from_fn(|l| found[l].is_some())
                            })
                        } else {
                            [false; WARP_SIZE]
                        };

                        // The per-lane ⊗ application (one issue) plus the
                        // branch that PassKind/partitioning forces.
                        w.range("product", |w| w.issue(1));
                        let terms = lanes_from_fn(|l| {
                            if idx[l].is_none() {
                                return id;
                            }
                            match (inp.commuted, looked[l]) {
                                // Pass 1: products with the streamed value.
                                (false, Lookup::Hit(va)) => sr.product(va, sval[l]),
                                (false, Lookup::Miss) => {
                                    // Annihilating semirings: the missing side
                                    // is the annihilator, not a literal 0 —
                                    // the term vanishes (this is what lets
                                    // relaxed semirings like min-plus run
                                    // intersection-only).
                                    if annihilating {
                                        id
                                    } else if !entry.partitioned
                                        || (entry.is_first && !in_full_row[l])
                                    {
                                        sr.product(T::ZERO, sval[l])
                                    } else {
                                        id // another partition owns it
                                    }
                                }
                                // Pass 2: only definitive misses contribute.
                                (true, Lookup::Hit(_)) => id,
                                (true, Lookup::Miss) => {
                                    if !entry.partitioned {
                                        sr.product(sval[l], T::ZERO)
                                    } else if entry.is_first && !in_full_row[l] {
                                        sr.product(sval[l], T::ZERO)
                                    } else {
                                        id
                                    }
                                }
                                (_, Lookup::Maybe) => id, // confirmed above
                            }
                        });
                        let active = lanes_from_fn(|l| idx[l].is_some() && terms[l] != id);
                        w.range("flush", |w| {
                            if active.iter().any(|&a| a) {
                                let keys = lanes_from_fn(|l| srow[l]);
                                let segs =
                                    w.warp_segmented_reduce(&keys, &terms, &active, id, |x, y| {
                                        sr.reduce(x, y)
                                    });
                                let out_idx = lanes_from_fn(|l| {
                                    segs.get(l).map(|&(key, _)| {
                                        if inp.commuted {
                                            key as usize * inp.out_cols + entry.row
                                        } else {
                                            entry.row * inp.out_cols + key as usize
                                        }
                                    })
                                });
                                let out_vals =
                                    lanes_from_fn(|l| segs.get(l).map(|&(_, v)| v).unwrap_or(id));
                                w.global_atomic(inp.out, &out_idx, &out_vals, move |x, y| {
                                    sr.reduce(x, y)
                                });
                            } else {
                                w.branch(&active);
                            }
                        });
                        base += wpb * WARP_SIZE;
                    }
                });
            });
        },
    )?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::{apply_semiring_pass, Distance, DistanceParams};
    use sparse::CsrMatrix;

    fn sample() -> (CsrMatrix<f64>, CsrMatrix<f64>) {
        let a = CsrMatrix::from_dense(
            2,
            6,
            &[
                1.0, 0.0, 2.0, 0.0, 0.5, 0.0, //
                0.0, 3.0, 0.0, 0.0, 0.0, 1.0,
            ],
        );
        let b = CsrMatrix::from_dense(
            3,
            6,
            &[
                0.0, 1.0, 2.0, 0.0, 0.0, 1.0, //
                1.0, 0.0, 2.0, 0.0, 0.5, 0.0, //
                4.0, 4.0, 0.0, 4.0, 0.0, 0.0,
            ],
        );
        (a, b)
    }

    fn run_pass1(
        a: &CsrMatrix<f64>,
        b: &CsrMatrix<f64>,
        d: Distance,
        kind: SmemVecKind,
        max_entries: usize,
    ) -> Vec<f64> {
        let dev = Device::volta();
        let sr = d.semiring::<f64>(&DistanceParams::default());
        let da = DeviceCsr::upload(&dev, a);
        let db = DeviceCoo::upload(&dev, b);
        let plan = PartitionPlan::build(a.indptr(), max_entries, false);
        let out = dev.buffer::<f64>(a.rows() * b.rows());
        let capacity = 256;
        let inp = PassInputs {
            smem_side: &da,
            stream_side: &db,
            plan: &plan,
            kind,
            hash_capacity: capacity,
            smem_per_block: 48 * 1024,
            sr,
            out: &out,
            out_cols: b.rows(),
            commuted: false,
        };
        hybrid_pass(&dev, &inp).expect("launch");
        out.to_vec()
    }

    fn expect_pass1(a: &CsrMatrix<f64>, b: &CsrMatrix<f64>, d: Distance) -> Vec<f64> {
        let sr = d.semiring::<f64>(&DistanceParams::default());
        let mut out = vec![0.0; a.rows() * b.rows()];
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let av: Vec<_> = a.row(i).collect();
                let bv: Vec<_> = b.row(j).collect();
                out[i * b.rows() + j] = apply_semiring_pass(&av, &bv, &sr);
            }
        }
        out
    }

    fn assert_close(got: &[f64], want: &[f64], what: &str) {
        for (i, (g, e)) in got.iter().zip(want).enumerate() {
            assert!((g - e).abs() < 1e-9, "{what} cell {i}: got {g}, want {e}");
        }
    }

    #[test]
    fn pass1_matches_reference_dense_mode() {
        let (a, b) = sample();
        for d in [
            Distance::DotProduct,
            Distance::Manhattan,
            Distance::Chebyshev,
        ] {
            let got = run_pass1(&a, &b, d, SmemVecKind::Dense, 1024);
            assert_close(&got, &expect_pass1(&a, &b, d), d.name());
        }
    }

    #[test]
    fn pass1_matches_reference_hash_mode() {
        let (a, b) = sample();
        for d in [Distance::DotProduct, Distance::Manhattan] {
            let got = run_pass1(&a, &b, d, SmemVecKind::Hash, 1024);
            assert_close(&got, &expect_pass1(&a, &b, d), d.name());
        }
    }

    #[test]
    fn pass1_matches_reference_bloom_mode() {
        let (a, b) = sample();
        for d in [Distance::DotProduct, Distance::Manhattan] {
            let got = run_pass1(&a, &b, d, SmemVecKind::Bloom, 1024);
            assert_close(&got, &expect_pass1(&a, &b, d), d.name());
        }
    }

    #[test]
    fn pass1_with_partitioned_rows_matches_reference() {
        let (a, b) = sample();
        // max_entries = 1 forces every row into per-nonzero partitions.
        for d in [Distance::Manhattan, Distance::DotProduct] {
            let got = run_pass1(&a, &b, d, SmemVecKind::Hash, 1);
            assert_close(&got, &expect_pass1(&a, &b, d), d.name());
        }
    }

    #[test]
    fn two_passes_compose_the_union() {
        let (a, b) = sample();
        let d = Distance::Manhattan;
        let dev = Device::volta();
        let params = DistanceParams::default();
        let sr = d.semiring::<f64>(&params);
        let da_csr = DeviceCsr::upload(&dev, &a);
        let db_coo = DeviceCoo::upload(&dev, &b);
        let db_csr = DeviceCsr::upload(&dev, &b);
        let da_coo = DeviceCoo::upload(&dev, &a);
        let out = dev.buffer::<f64>(a.rows() * b.rows());
        let plan_a = PartitionPlan::build(a.indptr(), 512, false);
        hybrid_pass(
            &dev,
            &PassInputs {
                smem_side: &da_csr,
                stream_side: &db_coo,
                plan: &plan_a,
                kind: SmemVecKind::Hash,
                hash_capacity: 256,
                smem_per_block: 48 * 1024,
                sr,
                out: &out,
                out_cols: b.rows(),
                commuted: false,
            },
        )
        .expect("launch");
        let plan_b = PartitionPlan::build(b.indptr(), 512, false);
        hybrid_pass(
            &dev,
            &PassInputs {
                smem_side: &db_csr,
                stream_side: &da_coo,
                plan: &plan_b,
                kind: SmemVecKind::Hash,
                hash_capacity: 256,
                smem_per_block: 48 * 1024,
                sr,
                out: &out,
                out_cols: b.rows(),
                commuted: true,
            },
        )
        .expect("launch");
        let got = out.to_vec();
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let av: Vec<_> = a.row(i).collect();
                let bv: Vec<_> = b.row(j).collect();
                let want = semiring::apply_semiring_union(&av, &bv, &sr);
                let g = got[i * b.rows() + j];
                assert!(
                    (g - want).abs() < 1e-9,
                    "cell ({i},{j}): got {g}, want {want}"
                );
            }
        }
    }

    #[test]
    fn stream_loads_are_coalesced() {
        let (a, b) = sample();
        let dev = Device::volta();
        let sr = Distance::DotProduct.semiring::<f64>(&DistanceParams::default());
        let da = DeviceCsr::upload(&dev, &a);
        let db = DeviceCoo::upload(&dev, &b);
        let plan = PartitionPlan::build(a.indptr(), 512, false);
        let out = dev.buffer::<f64>(a.rows() * b.rows());
        let stats = hybrid_pass(
            &dev,
            &PassInputs {
                smem_side: &da,
                stream_side: &db,
                plan: &plan,
                kind: SmemVecKind::Dense,
                hash_capacity: 0,
                smem_per_block: 48 * 1024,
                sr,
                out: &out,
                out_cols: b.rows(),
                commuted: false,
            },
        )
        .expect("launch");
        // COO arrays are read unit-stride: low overhead vs. the naive
        // kernel's data-dependent gathers.
        assert!(stats.counters.coalescing_overhead() < 6.0);
    }
}
