//! Shared-memory sparse-vector representations for the hybrid kernel
//! (§3.3 and §3.3.2).
//!
//! The hybrid strategy keeps the current row of `A` in shared memory in
//! one of three forms:
//!
//! * **Dense** — the row scattered into a `k`-element array; fastest
//!   lookup (direct index) but couples shared memory to dimensionality
//!   (the 12K/20K full-occupancy limits of §3.3.2).
//! * **Hash** — Murmur + linear-probing table of the row's nonzeros;
//!   couples shared memory to *degree* instead, at the price of probe
//!   chains (max degree 3K/5K at 48/82 KiB budgets).
//! * **Bloom** — membership filter only; definitive misses are free,
//!   positive hits fall back to a binary search in global memory.

use gpu_sim::{
    lanes_from_fn, warp_binary_search, BlockCtx, GlobalBuffer, Lanes, SmemBloomFilter,
    SmemHashTable, WarpCtx, WARP_SIZE,
};
use sparse::Real;

/// Which shared-memory representation a block uses for its row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SmemVecKind {
    /// Dense `k`-element array.
    Dense,
    /// Hash table of (column, value) pairs.
    Hash,
    /// Bloom filter over columns (values fetched from global memory).
    Bloom,
}

/// Outcome of a per-lane column lookup.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Lookup<T> {
    /// Column definitively absent from the stored slice.
    #[default]
    Miss,
    /// Column present with this stored value.
    Hit(T),
    /// Bloom-positive: may be present; must be confirmed against global
    /// memory.
    Maybe,
}

/// A row (or row slice) of a CSR matrix staged into block shared memory.
#[derive(Debug, Clone)]
pub enum SmemVector<T> {
    /// Dense form: `values[col]`, zero meaning absent.
    Dense {
        /// The dense value array of length `k`.
        values: gpu_sim::SharedArray<T>,
    },
    /// Hash-table form.
    Hash {
        /// The per-block table.
        table: SmemHashTable<T>,
    },
    /// Bloom-filter form (membership only).
    Bloom {
        /// The per-block filter.
        filter: SmemBloomFilter,
    },
}

impl<T: Real> SmemVector<T> {
    /// Shared-memory bytes the representation needs.
    ///
    /// `k` is the dimensionality (dense), `capacity` the hash slot count,
    /// `entries` the expected nonzeros (bloom).
    pub fn smem_bytes(kind: SmemVecKind, k: usize, capacity: usize, entries: usize) -> usize {
        match kind {
            SmemVecKind::Dense => k * std::mem::size_of::<T>(),
            SmemVecKind::Hash => SmemHashTable::<T>::smem_bytes(capacity),
            SmemVecKind::Bloom => SmemBloomFilter::smem_bytes(SmemBloomFilter::bits_for(entries)),
        }
    }

    /// Allocates the representation in the block's shared memory,
    /// cost-accounting the block-collective fill each form needs before
    /// its first lookup (dense lookups read every probed slot, so the
    /// whole array must be defined; zero means absent).
    pub fn build(
        block: &mut BlockCtx,
        kind: SmemVecKind,
        k: usize,
        capacity: usize,
        entries: usize,
    ) -> Self {
        match kind {
            SmemVecKind::Dense => {
                let values = block.alloc_shared::<T>(k);
                block.fill_shared(&values, T::ZERO);
                SmemVector::Dense { values }
            }
            SmemVecKind::Hash => SmemVector::Hash {
                table: SmemHashTable::new(block, capacity.max(WARP_SIZE)),
            },
            SmemVecKind::Bloom => SmemVector::Bloom {
                filter: SmemBloomFilter::new(block, SmemBloomFilter::bits_for(entries)),
            },
        }
    }

    /// Inserts a warp's worth of `(column, value)` pairs (one lane each).
    pub fn insert_warp(&self, w: &mut WarpCtx, cols: &Lanes<Option<u32>>, vals: &Lanes<T>) {
        match self {
            SmemVector::Dense { values } => {
                let idx = lanes_from_fn(|l| cols[l].map(|c| c as usize));
                w.smem_scatter(values, &idx, vals);
            }
            SmemVector::Hash { table } => table.insert_warp(w, cols, vals),
            SmemVector::Bloom { filter } => filter.insert_warp(w, cols),
        }
    }

    /// Looks up a warp's worth of columns.
    pub fn lookup_warp(&self, w: &mut WarpCtx, cols: &Lanes<Option<u32>>) -> Lanes<Lookup<T>> {
        match self {
            SmemVector::Dense { values } => {
                let idx = lanes_from_fn(|l| cols[l].map(|c| c as usize));
                let got = w.smem_gather(values, &idx);
                lanes_from_fn(|l| {
                    if cols[l].is_none() {
                        Lookup::Miss
                    } else if got[l] == T::ZERO {
                        Lookup::Miss
                    } else {
                        Lookup::Hit(got[l])
                    }
                })
            }
            SmemVector::Hash { table } => {
                let got = table.lookup_warp(w, cols);
                lanes_from_fn(|l| match got[l] {
                    Some(v) => Lookup::Hit(v),
                    None => Lookup::Miss,
                })
            }
            SmemVector::Bloom { filter } => {
                let got = filter.query_warp(w, cols);
                lanes_from_fn(|l| {
                    if cols[l].is_some() && got[l] {
                        Lookup::Maybe
                    } else {
                        Lookup::Miss
                    }
                })
            }
        }
    }

    /// Resolves [`Lookup::Maybe`] lanes against the row's global-memory
    /// column list `indices[start..end]` with a warp binary search,
    /// fetching the confirmed values.
    pub fn confirm_warp(
        &self,
        w: &mut WarpCtx,
        looked: &Lanes<Lookup<T>>,
        cols: &Lanes<Option<u32>>,
        indices: &GlobalBuffer<u32>,
        values: &GlobalBuffer<T>,
        start: usize,
        end: usize,
    ) -> Lanes<Lookup<T>> {
        let maybe = lanes_from_fn(|l| {
            if matches!(looked[l], Lookup::Maybe) {
                cols[l]
            } else {
                None
            }
        });
        if maybe.iter().all(Option::is_none) {
            return *looked;
        }
        let found = warp_binary_search(w, indices, start, end, &maybe);
        let vals = w.global_gather(values, &found);
        lanes_from_fn(|l| {
            if maybe[l].is_none() {
                looked[l]
            } else if found[l].is_some() {
                Lookup::Hit(vals[l])
            } else {
                Lookup::Miss
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Device, LaunchConfig};

    fn roundtrip(kind: SmemVecKind) {
        let dev = Device::volta();
        // Row: columns 3, 17, 40 with values 1.5, 2.5, 3.5 of k=64.
        let cols_data = [3u32, 17, 40];
        let vals_data = [1.5f32, 2.5, 3.5];
        let gidx = dev.buffer_from_slice(&cols_data);
        let gvals = dev.buffer_from_slice(&vals_data);
        dev.launch("smem_vec", LaunchConfig::new(1, 32, 48 * 1024), |block| {
            let vec = SmemVector::<f32>::build(block, kind, 64, 32, 3);
            let v = vec.clone();
            block.run_warps(|w| {
                let cols = lanes_from_fn(|l| (l < 3).then(|| cols_data[l]));
                let vals = lanes_from_fn(|l| if l < 3 { vals_data[l] } else { 0.0 });
                v.insert_warp(w, &cols, &vals);
                // Present and absent columns.
                let probe = lanes_from_fn(|l| match l {
                    0 => Some(3u32),
                    1 => Some(17),
                    2 => Some(40),
                    3 => Some(4),
                    4 => Some(63),
                    _ => None,
                });
                let got = v.lookup_warp(w, &probe);
                let got = v.confirm_warp(w, &got, &probe, &gidx, &gvals, 0, 3);
                assert_eq!(got[0], Lookup::Hit(1.5));
                assert_eq!(got[1], Lookup::Hit(2.5));
                assert_eq!(got[2], Lookup::Hit(3.5));
                assert_eq!(got[3], Lookup::Miss);
                assert_eq!(got[4], Lookup::Miss);
                assert_eq!(got[10], Lookup::Miss);
            });
        });
    }

    #[test]
    fn dense_round_trips() {
        roundtrip(SmemVecKind::Dense);
    }

    #[test]
    fn hash_round_trips() {
        roundtrip(SmemVecKind::Hash);
    }

    #[test]
    fn bloom_round_trips_via_confirmation() {
        roundtrip(SmemVecKind::Bloom);
    }

    #[test]
    fn smem_sizing_per_mode() {
        // Dense couples to dimensionality.
        assert_eq!(
            SmemVector::<f32>::smem_bytes(SmemVecKind::Dense, 1000, 0, 0),
            4000
        );
        // Hash couples to capacity (8 bytes per slot for f32).
        assert_eq!(
            SmemVector::<f32>::smem_bytes(SmemVecKind::Hash, 0, 512, 0),
            4096
        );
        // Bloom couples (weakly) to entries: 8 bits per entry.
        assert_eq!(
            SmemVector::<f32>::smem_bytes(SmemVecKind::Bloom, 0, 0, 320),
            320
        );
    }
}
