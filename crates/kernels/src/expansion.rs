//! Expansion / finalization kernel (§3.4): "the kernel to apply the
//! expansion function can be executed embarrassingly parallel using an
//! element-wise primitive ... to map each entry in the dot product matrix
//! to an individual GPU thread to coalesce the reads and writes."

use crate::error::KernelError;
use gpu_sim::{lanes_from_fn, Device, GlobalBuffer, LaunchConfig, LaunchStats, WARP_SIZE};
use semiring::{Distance, DistanceParams, ExpansionInputs, Family};
use sparse::Real;

/// Threads per block for the element-wise kernels.
const BLOCK_THREADS: usize = 256;

/// Applies the expansion function of an expanded-family distance to every
/// cell of the `rows × cols` inner-term matrix `dots`, in place.
///
/// `a_norms` / `b_norms` hold one buffer per [`Distance::norms`] entry
/// (up to two), indexed by row for `A` and by column for `B`.
///
/// # Errors
///
/// Returns [`KernelError::Launch`] when the simulator rejects the launch
/// (sanitizer findings, injected faults, or a watchdog timeout).
///
/// # Panics
///
/// Panics if called with a NAMM-family distance (use
/// [`finalize_kernel`]), or if buffer sizes disagree with the shape.
pub fn expansion_kernel<T: Real>(
    dev: &Device,
    dots: &GlobalBuffer<T>,
    rows: usize,
    cols: usize,
    k: usize,
    a_norms: &[&GlobalBuffer<T>],
    b_norms: &[&GlobalBuffer<T>],
    distance: Distance,
) -> Result<LaunchStats, KernelError> {
    assert!(
        distance.family() == Family::Expanded || !distance.norms().is_empty(),
        "expansion kernel applies to expanded-family or norm-fed distances"
    );
    assert_eq!(dots.len(), rows * cols, "inner-term matrix shape mismatch");
    let n_norms = distance.norms().len();
    assert_eq!(a_norms.len(), n_norms, "a_norms arity mismatch");
    assert_eq!(b_norms.len(), n_norms, "b_norms arity mismatch");

    let total = rows * cols;
    let blocks = total.div_ceil(BLOCK_THREADS).max(1);
    dev.try_launch(
        "expansion",
        LaunchConfig::new(blocks, BLOCK_THREADS, 0),
        |block| {
            block.run_warps(|w| {
                let idx = lanes_from_fn(|l| {
                    let i = w.global_thread_id(l);
                    (i < total).then_some(i)
                });
                if idx.iter().all(Option::is_none) {
                    return;
                }
                let (dot, an, bn) = w.range("gather", |w| {
                    let dot = w.global_gather(dots, &idx);
                    let mut an = [[T::ZERO; WARP_SIZE]; 2];
                    let mut bn = [[T::ZERO; WARP_SIZE]; 2];
                    for s in 0..n_norms {
                        let aidx = lanes_from_fn(|l| idx[l].map(|i| i / cols));
                        let bidx = lanes_from_fn(|l| idx[l].map(|i| i % cols));
                        an[s] = w.global_gather(a_norms[s], &aidx);
                        bn[s] = w.global_gather(b_norms[s], &bidx);
                    }
                    (dot, an, bn)
                });
                w.range("expand", |w| {
                    w.issue(4); // the expansion arithmetic
                    let out = lanes_from_fn(|l| {
                        if idx[l].is_none() {
                            return T::ZERO;
                        }
                        distance.expand(ExpansionInputs {
                            dot: dot[l],
                            a_norms: [an[0][l], an[1][l]],
                            b_norms: [bn[0][l], bn[1][l]],
                            k,
                        })
                    });
                    w.global_scatter(dots, &idx, &out);
                });
            });
        },
    )
    .map_err(KernelError::from)
}

/// Applies the NAMM finalization (`/k`, `√(·/2)`, `(·)^{1/p}`, …) to
/// every cell of the accumulated union matrix, in place.
///
/// # Errors
///
/// Returns [`KernelError::Launch`] when the simulator rejects the launch
/// (sanitizer findings, injected faults, or a watchdog timeout).
///
/// # Panics
///
/// Panics if called with an expanded-family distance.
pub fn finalize_kernel<T: Real>(
    dev: &Device,
    accs: &GlobalBuffer<T>,
    rows: usize,
    cols: usize,
    k: usize,
    distance: Distance,
    params: &DistanceParams,
) -> Result<LaunchStats, KernelError> {
    assert!(
        distance.family() == Family::Namm && distance.norms().is_empty(),
        "finalize kernel only applies to norm-free NAMM-family distances"
    );
    assert_eq!(accs.len(), rows * cols, "accumulator matrix shape mismatch");
    let total = rows * cols;
    let blocks = total.div_ceil(BLOCK_THREADS).max(1);
    let params = *params;
    dev.try_launch(
        "finalize",
        LaunchConfig::new(blocks, BLOCK_THREADS, 0),
        |block| {
            block.run_warps(|w| {
                let idx = lanes_from_fn(|l| {
                    let i = w.global_thread_id(l);
                    (i < total).then_some(i)
                });
                if idx.iter().all(Option::is_none) {
                    return;
                }
                let acc = w.global_gather(accs, &idx);
                w.issue(2);
                let out = lanes_from_fn(|l| distance.finalize(acc[l], k, &params));
                w.global_scatter(accs, &idx, &out);
            });
        },
    )
    .map_err(KernelError::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_expansion_on_device() {
        let dev = Device::volta();
        // 1x2 output: dots [0, 12.0]; ‖a0‖²=9; ‖b0‖²=16, ‖b1‖²=25.
        let dots = dev.buffer_from_slice(&[0.0f64, 12.0]);
        let an = dev.buffer_from_slice(&[9.0f64]);
        let bn = dev.buffer_from_slice(&[16.0f64, 25.0]);
        let stats = expansion_kernel(&dev, &dots, 1, 2, 4, &[&an], &[&bn], Distance::Euclidean)
            .expect("launch");
        let out = dots.to_vec();
        assert!((out[0] - 5.0).abs() < 1e-9);
        assert!((out[1] - (9.0f64 - 24.0 + 25.0).sqrt()).abs() < 1e-9);
        // Element-wise pass: reads and writes coalesce.
        assert!(stats.counters.coalescing_overhead() < 16.1);
    }

    #[test]
    fn hamming_finalize_on_device() {
        let dev = Device::volta();
        let accs = dev.buffer_from_slice(&[2.0f32, 0.0, 4.0, 1.0]);
        finalize_kernel(
            &dev,
            &accs,
            2,
            2,
            8,
            Distance::Hamming,
            &DistanceParams::default(),
        )
        .expect("launch");
        assert_eq!(accs.to_vec(), vec![0.25, 0.0, 0.5, 0.125]);
    }

    #[test]
    fn minkowski_finalize_takes_pth_root() {
        let dev = Device::volta();
        let accs = dev.buffer_from_slice(&[8.0f64]);
        finalize_kernel(
            &dev,
            &accs,
            1,
            1,
            3,
            Distance::Minkowski,
            &DistanceParams { minkowski_p: 3.0 },
        )
        .expect("launch");
        assert!((accs.host_get(0) - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "expanded-family")]
    fn expansion_rejects_namm() {
        let dev = Device::volta();
        let dots = dev.buffer::<f32>(1);
        let _ = expansion_kernel(&dev, &dots, 1, 1, 1, &[], &[], Distance::Manhattan);
    }

    #[test]
    #[should_panic(expected = "NAMM-family")]
    fn finalize_rejects_expanded() {
        let dev = Device::volta();
        let accs = dev.buffer::<f32>(1);
        let _ = finalize_kernel(
            &dev,
            &accs,
            1,
            1,
            1,
            Distance::Cosine,
            &DistanceParams::default(),
        );
    }

    #[test]
    fn norm_free_expansion_needs_no_buffers() {
        let dev = Device::volta();
        let dots = dev.buffer_from_slice(&[3.0f32]);
        expansion_kernel(&dev, &dots, 1, 1, 4, &[], &[], Distance::RusselRao).expect("launch");
        assert_eq!(dots.host_get(0), 0.25);
    }
}
