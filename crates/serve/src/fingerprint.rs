//! Dataset fingerprints for prepared-index cache keying.

use sparse::{CsrMatrix, Real};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a accumulator.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// Folds raw bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a little-endian `u64` into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Content fingerprint of a CSR matrix: shape, structure (`indptr`,
/// `indices`), and the exact bit patterns of the values (via the
/// lossless `f64` widening every [`Real`] provides). Two matrices get
/// the same fingerprint iff they are bit-identical, which is exactly the
/// granularity the determinism contract promises results at — so a
/// cache hit can never change an answer.
pub fn fingerprint<T: Real>(m: &CsrMatrix<T>) -> u64 {
    fingerprint_with_generation(m, 0)
}

/// [`fingerprint`] extended with a compaction-generation stamp.
///
/// Mutable datasets (DESIGN §16) rewrite their base matrix on every
/// compaction; two generations can coincidentally share content bytes —
/// most plainly, every compacted-to-empty dataset is bit-identical to a
/// never-written one — yet must not alias in the prepared cache, or a
/// stale generation's shards could serve a swapped-out dataset. The
/// generation is folded in *after* the content bytes so immutable
/// callers (generation 0) keep their existing keys.
pub fn fingerprint_with_generation<T: Real>(m: &CsrMatrix<T>, generation: u64) -> u64 {
    let mut h = Fnv1a::default();
    h.write_u64(m.rows() as u64);
    h.write_u64(m.cols() as u64);
    h.write_u64(m.nnz() as u64);
    for &p in m.indptr() {
        h.write_u64(p as u64);
    }
    for &i in m.indices() {
        h.write_u64(u64::from(i));
    }
    for &v in m.values() {
        h.write_u64(v.to_f64().to_bits());
    }
    h.write_u64(generation);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_matrices_share_a_fingerprint() {
        let a = CsrMatrix::<f32>::from_dense(2, 3, &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        let b = CsrMatrix::<f32>::from_dense(2, 3, &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn value_structure_and_shape_all_matter() {
        let base = CsrMatrix::<f32>::from_dense(2, 3, &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        let value = CsrMatrix::<f32>::from_dense(2, 3, &[1.5, 0.0, 2.0, 0.0, 3.0, 0.0]);
        let structure = CsrMatrix::<f32>::from_dense(2, 3, &[0.0, 1.0, 2.0, 0.0, 3.0, 0.0]);
        let shape = CsrMatrix::<f32>::from_dense(3, 2, &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        for other in [&value, &structure, &shape] {
            assert_ne!(fingerprint(&base), fingerprint(other));
        }
    }

    #[test]
    fn empty_matrices_differ_by_shape_only() {
        let a = CsrMatrix::<f64>::zeros(0, 4);
        let b = CsrMatrix::<f64>::zeros(0, 5);
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint(&a), fingerprint(&CsrMatrix::<f64>::zeros(0, 4)));
    }

    #[test]
    fn generation_stamp_splits_bitwise_equal_content() {
        // The empty-matrix aliasing bug: a dataset compacted down to
        // zero rows is bit-identical to a never-written one of the same
        // width, so without the generation stamp they would share a
        // cache key across generations.
        let empty = CsrMatrix::<f64>::zeros(0, 4);
        assert_eq!(fingerprint(&empty), fingerprint_with_generation(&empty, 0));
        assert_ne!(
            fingerprint_with_generation(&empty, 0),
            fingerprint_with_generation(&empty, 1)
        );
        let dense = CsrMatrix::<f32>::from_dense(2, 3, &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        assert_eq!(fingerprint(&dense), fingerprint_with_generation(&dense, 0));
        assert_ne!(
            fingerprint_with_generation(&dense, 3),
            fingerprint_with_generation(&dense, 4)
        );
    }
}
