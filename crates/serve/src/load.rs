//! Deterministic traffic-realistic workload generation: seeded Zipf
//! dataset popularity over diurnal/bursty arrival processes, all on the
//! discrete-event sim clock.
//!
//! Production sparse-retrieval traffic is nothing like the polite
//! fixed-gap streams of [`crate::replay_rows`]: dataset popularity is
//! Zipf-skewed (the same degree skew the paper's load-balancing story
//! targets, now across tenants), arrival rates swing diurnally, and
//! bursts land on top. [`Workload`] generates such a stream as a pure
//! function of its seed — no wall-clock, no global RNG — so every
//! replay, bench, and chaos drill that consumes it is reproducible
//! byte-for-byte.
//!
//! Two loop disciplines (DESIGN §14):
//!
//! * **open loop** ([`Workload::generate`]): arrivals follow a
//!   non-homogeneous Poisson process — rate `base_qps` modulated by a
//!   sinusoidal diurnal factor — realized by thinning, plus optional
//!   periodic bursts of simultaneous arrivals. Arrival times never
//!   react to service times, which is exactly what makes open-loop load
//!   the overload test: the generator keeps firing while the engine
//!   drowns.
//! * **closed loop** ([`Workload::generate_closed_loop`]): a fixed
//!   client population paces itself — each client issues its next
//!   request one think-time (exponential) plus one service-time
//!   estimate after the previous one, bounding outstanding requests by
//!   the population size. The service-time pacing uses a caller-supplied
//!   estimate rather than feedback from the engine, keeping generation
//!   a pure function of the seed (the determinism contract outranks
//!   closed-loop exactness; DESIGN §14 records the approximation).

use crate::engine::Request;
use sparse::{CsrMatrix, Real};

/// A deterministic splitmix64 PRNG — the workload generator's only
/// entropy source, so streams are pure functions of the seed.
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    ///
    /// Uses the rejection-free Lemire multiply-shift reduction on the
    /// raw 64-bit draw. The old `(next_f64() * n) as usize % n` route
    /// had two defects: the float product quantizes to 53 bits (a
    /// modulo-style bias across buckets), and when rounding pushed the
    /// product to exactly `n` the `%` silently wrapped an out-of-range
    /// index back to 0, double-weighting bucket zero.
    pub fn below(&mut self, n: usize) -> usize {
        bounded(self.next_u64(), n.max(1) as u64) as usize
    }

    /// Exponential draw with the given rate (mean `1 / rate`).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        // 1 - u is in (0, 1], so the log is finite.
        -(1.0 - self.next_f64()).ln() / rate
    }
}

/// Lemire multiply-shift reduction: maps a uniform 64-bit draw onto
/// `0..n` by taking the high 64 bits of the 128-bit product. Every
/// output is in range by construction (no `%` safety net needed) and
/// the per-bucket bias is at most `n / 2^64` — unmeasurable for any
/// pool size this system serves, versus the up-to-`2^11`-sample skew of
/// the former 53-bit float route.
#[inline]
pub(crate) fn bounded(x: u64, n: u64) -> u64 {
    ((u128::from(x) * u128::from(n)) >> 64) as u64
}

/// A seeded traffic model: Zipf dataset popularity, diurnal rate
/// modulation, periodic bursts, over a fixed simulated duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// PRNG seed; the generated stream is a pure function of it.
    pub seed: u64,
    /// Zipf skew exponent `s` for dataset popularity (`0.0` = uniform;
    /// larger = more skew toward dataset 0).
    pub zipf_s: f64,
    /// Baseline arrival rate in requests per simulated second.
    pub base_qps: f64,
    /// Diurnal modulation amplitude in `[0, 1)`: the instantaneous rate
    /// is `base_qps * (1 + amplitude * sin(2π t / period))`.
    pub diurnal_amplitude: f64,
    /// Diurnal period in simulated seconds.
    pub diurnal_period_s: f64,
    /// Burst spacing in simulated seconds (`0.0` disables bursts).
    pub burst_every_s: f64,
    /// Requests arriving simultaneously at each burst instant.
    pub burst_size: usize,
    /// Stream duration in simulated seconds.
    pub duration_s: f64,
}

impl Workload {
    /// A steady workload: `base_qps` for `duration_s`, no diurnal
    /// swing, no bursts, mild Zipf skew (`s = 1.0`).
    pub fn steady(seed: u64, base_qps: f64, duration_s: f64) -> Self {
        assert!(
            base_qps > 0.0 && duration_s > 0.0,
            "workload needs a positive rate and duration"
        );
        Self {
            seed,
            zipf_s: 1.0,
            base_qps,
            diurnal_amplitude: 0.0,
            diurnal_period_s: duration_s,
            burst_every_s: 0.0,
            burst_size: 0,
            duration_s,
        }
    }

    /// Sets the Zipf skew exponent.
    pub fn with_zipf(mut self, s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "zipf exponent must be >= 0");
        self.zipf_s = s;
        self
    }

    /// Adds sinusoidal diurnal modulation.
    pub fn with_diurnal(mut self, amplitude: f64, period_s: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&amplitude) && period_s > 0.0,
            "amplitude in [0,1), positive period"
        );
        self.diurnal_amplitude = amplitude;
        self.diurnal_period_s = period_s;
        self
    }

    /// Adds periodic bursts of `size` simultaneous arrivals.
    pub fn with_bursts(mut self, every_s: f64, size: usize) -> Self {
        assert!(every_s > 0.0, "burst spacing must be positive");
        self.burst_every_s = every_s;
        self.burst_size = size;
        self
    }

    /// Instantaneous arrival rate at simulated time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * t / self.diurnal_period_s;
        self.base_qps * (1.0 + self.diurnal_amplitude * phase.sin())
    }

    /// Zipf CDF over `n` datasets: entry `i` is the cumulative
    /// probability of datasets `0..=i`.
    fn zipf_cdf(&self, n: usize) -> Vec<f64> {
        let weights: Vec<f64> = (0..n)
            .map(|i| 1.0 / ((i + 1) as f64).powf(self.zipf_s))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect()
    }

    /// Draws a dataset id from the Zipf CDF.
    fn draw_dataset(cdf: &[f64], u: f64) -> usize {
        cdf.iter().position(|&c| u < c).unwrap_or(cdf.len() - 1)
    }

    /// Generates an **open-loop** request stream over `pools` (one CSR
    /// matrix per dataset; query rows are drawn uniformly from the
    /// targeted pool). Ids are assigned in arrival order after sorting,
    /// so the stream is already in canonical `(arrival_s, id)` order.
    ///
    /// # Panics
    ///
    /// Panics if `pools` is empty or any pool has no rows.
    pub fn generate<T: Real>(&self, pools: &[CsrMatrix<T>]) -> Vec<Request<T>> {
        assert!(!pools.is_empty(), "workload needs at least one dataset");
        assert!(
            pools.iter().all(|p| p.rows() > 0),
            "every dataset pool needs at least one row"
        );
        let mut rng = SplitMix64::new(self.seed);
        let cdf = self.zipf_cdf(pools.len());
        let rate_max = self.base_qps * (1.0 + self.diurnal_amplitude);

        // Thinned non-homogeneous Poisson arrivals.
        let mut times: Vec<f64> = Vec::new();
        let mut t = 0.0;
        loop {
            t += rng.exponential(rate_max);
            if t >= self.duration_s {
                break;
            }
            if rng.next_f64() < self.rate_at(t) / rate_max {
                times.push(t);
            }
        }
        // Periodic bursts: `burst_size` simultaneous arrivals.
        if self.burst_every_s > 0.0 && self.burst_size > 0 {
            let mut b = self.burst_every_s;
            while b < self.duration_s {
                for _ in 0..self.burst_size {
                    times.push(b);
                }
                b += self.burst_every_s;
            }
        }
        times.sort_by(f64::total_cmp);

        times
            .into_iter()
            .enumerate()
            .map(|(i, arrival_s)| {
                let dataset = Self::draw_dataset(&cdf, rng.next_f64());
                let row = rng.below(pools[dataset].rows());
                Request {
                    id: i as u64,
                    dataset,
                    arrival_s,
                    row: pools[dataset].slice_rows(row..row + 1),
                }
            })
            .collect()
    }

    /// Generates a **closed-loop** stream: `clients` clients each pace
    /// themselves with exponential think time (mean `think_s`) plus a
    /// fixed `service_est_s` per request, bounding outstanding load by
    /// the population size. Burst/diurnal knobs are ignored (the client
    /// population is the rate control); Zipf skew still picks datasets.
    ///
    /// # Panics
    ///
    /// Panics if `clients == 0`, parameters are non-positive, or
    /// `pools` is empty / has empty rows.
    pub fn generate_closed_loop<T: Real>(
        &self,
        pools: &[CsrMatrix<T>],
        clients: usize,
        think_s: f64,
        service_est_s: f64,
    ) -> Vec<Request<T>> {
        assert!(clients > 0, "closed loop needs at least one client");
        assert!(
            think_s > 0.0 && service_est_s >= 0.0,
            "think time must be positive, service estimate non-negative"
        );
        assert!(!pools.is_empty(), "workload needs at least one dataset");
        assert!(
            pools.iter().all(|p| p.rows() > 0),
            "every dataset pool needs at least one row"
        );
        let mut rng = SplitMix64::new(self.seed);
        let cdf = self.zipf_cdf(pools.len());
        let mut times: Vec<f64> = Vec::new();
        for _ in 0..clients {
            // Stagger client start times across one think interval.
            let mut t = rng.exponential(1.0 / think_s);
            while t < self.duration_s {
                times.push(t);
                t += service_est_s + rng.exponential(1.0 / think_s);
            }
        }
        times.sort_by(f64::total_cmp);
        times
            .into_iter()
            .enumerate()
            .map(|(i, arrival_s)| {
                let dataset = Self::draw_dataset(&cdf, rng.next_f64());
                let row = rng.below(pools[dataset].rows());
                Request {
                    id: i as u64,
                    dataset,
                    arrival_s,
                    row: pools[dataset].slice_rows(row..row + 1),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(rows: usize, salt: u64) -> CsrMatrix<f64> {
        let mut data = vec![0.0; rows * 6];
        for r in 0..rows {
            for c in 0..6 {
                if (r + c + salt as usize).is_multiple_of(3) {
                    data[r * 6 + c] = 1.0 + r as f64 + c as f64 / 7.0;
                }
            }
        }
        CsrMatrix::from_dense(rows, 6, &data)
    }

    #[test]
    fn streams_are_pure_functions_of_the_seed() {
        let pools = [pool(8, 0), pool(8, 1)];
        let w = Workload::steady(42, 5000.0, 0.02)
            .with_zipf(1.2)
            .with_diurnal(0.5, 0.01)
            .with_bursts(0.005, 4);
        let a = w.generate(&pools);
        let b = w.generate(&pools);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.dataset, y.dataset);
            assert_eq!(x.arrival_s.to_bits(), y.arrival_s.to_bits());
        }
        let c = Workload { seed: 43, ..w }.generate(&pools);
        assert!(
            a.len() != c.len()
                || a.iter()
                    .zip(&c)
                    .any(|(x, y)| x.arrival_s.to_bits() != y.arrival_s.to_bits()),
            "different seeds must produce different streams"
        );
    }

    #[test]
    fn zipf_skews_toward_low_dataset_ids() {
        let pools = [pool(4, 0), pool(4, 1), pool(4, 2), pool(4, 3)];
        let reqs = Workload::steady(7, 20_000.0, 0.05)
            .with_zipf(1.5)
            .generate(&pools);
        assert!(reqs.len() > 200, "enough samples to see the skew");
        let mut counts = [0usize; 4];
        for r in &reqs {
            counts[r.dataset] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[3], "{counts:?}");
    }

    #[test]
    fn bursts_land_on_schedule_and_ids_are_canonical() {
        let pools = [pool(4, 0)];
        let w = Workload::steady(1, 100.0, 0.1).with_bursts(0.025, 8);
        let reqs = w.generate(&pools);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i as u64, "ids follow arrival order");
        }
        let at_burst = reqs
            .iter()
            .filter(|r| (r.arrival_s - 0.025).abs() < 1e-12)
            .count();
        assert!(at_burst >= 8, "burst arrivals present: {at_burst}");
        // Arrivals are sorted.
        for w in reqs.windows(2) {
            assert!(w[0].arrival_s <= w[1].arrival_s);
        }
    }

    #[test]
    fn diurnal_modulation_shifts_density() {
        let w = Workload::steady(3, 10_000.0, 1.0).with_diurnal(0.9, 1.0);
        let pools = [pool(4, 0)];
        let reqs = w.generate(&pools);
        // First half-period sits above base rate, second half below.
        let first: usize = reqs.iter().filter(|r| r.arrival_s < 0.5).count();
        let second = reqs.len() - first;
        assert!(
            first > second + second / 2,
            "diurnal peak must dominate: {first} vs {second}"
        );
    }

    #[test]
    fn bounded_reduction_covers_the_full_range_without_wrapping() {
        // The top of the u64 range must map to n-1, not wrap to 0 the
        // way the float route did when rounding hit exactly n.
        for n in [1u64, 2, 3, 7, 8, 1000, u64::MAX] {
            assert_eq!(bounded(0, n), 0);
            assert_eq!(bounded(u64::MAX, n), n - 1);
        }
        // Monotone in x: the reduction is order-preserving.
        assert!(bounded(u64::MAX / 3, 9) <= bounded(u64::MAX / 2, 9));
        let mut rng = SplitMix64::new(11);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
        assert_eq!(SplitMix64::new(5).below(1), 0);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn empirical_histograms_match_zipf_and_uniform_weights(
            seed in 0u64..1000,
            zipf_milli in 0u32..2000,
        ) {
            let zipf_s = f64::from(zipf_milli) / 1000.0;
            let pools = [pool(8, 0), pool(8, 1), pool(8, 2), pool(8, 3)];
            let reqs = Workload::steady(seed, 40_000.0, 0.05)
                .with_zipf(zipf_s)
                .generate(&pools);
            // ~2000 expected arrivals; Poisson thinning cannot collapse
            // that below the histogram's statistical floor.
            prop_assert!(reqs.len() > 1000, "stream too short: {}", reqs.len());
            let n = reqs.len() as f64;

            // Dataset draws follow the Zipf weights.
            let weights: Vec<f64> =
                (0..4).map(|i| 1.0 / ((i + 1) as f64).powf(zipf_s)).collect();
            let total: f64 = weights.iter().sum();
            let mut counts = [0usize; 4];
            for r in &reqs {
                counts[r.dataset] += 1;
            }
            for (c, w) in counts.iter().zip(&weights) {
                let expected = w / total;
                let got = *c as f64 / n;
                // 6-sigma binomial tolerance: deterministic per seed,
                // loose enough to never flake across the seed range.
                let tol = 6.0 * (expected * (1.0 - expected) / n).sqrt() + 1e-3;
                prop_assert!(
                    (got - expected).abs() < tol,
                    "dataset freq {got:.4} vs zipf weight {expected:.4} (tol {tol:.4})"
                );
            }

            // Row draws within a pool are uniform (the fixed `below`).
            let mut rows = [0usize; 8];
            let mut rng = SplitMix64::new(seed.wrapping_mul(0x9e37));
            let draws = 8000;
            for _ in 0..draws {
                let r = rng.below(8);
                prop_assert!(r < 8);
                rows[r] += 1;
            }
            let expect = draws as f64 / 8.0;
            for c in rows {
                prop_assert!(
                    (c as f64 - expect).abs() < 6.0 * expect.sqrt(),
                    "row histogram bucket {c} strays from uniform {expect}"
                );
            }
        }
    }

    #[test]
    fn closed_loop_bounds_outstanding_requests_by_population() {
        let pools = [pool(4, 0)];
        let w = Workload::steady(9, 1000.0, 0.1);
        let clients = 4;
        let service = 2e-3;
        let reqs = w.generate_closed_loop(&pools, clients, 1e-3, service);
        assert!(!reqs.is_empty());
        // With pacing >= service_est, at most `clients` requests can sit
        // inside any service_est-wide window.
        for r in &reqs {
            let inside = reqs
                .iter()
                .filter(|x| x.arrival_s >= r.arrival_s && x.arrival_s < r.arrival_s + service)
                .count();
            assert!(inside <= clients, "window holds {inside} > {clients}");
        }
    }
}
