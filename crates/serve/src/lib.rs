//! The query-serving layer: prepared-index caching and micro-batched
//! request execution on top of the sparse k-NN primitives.
//!
//! The ROADMAP's north star is a system "serving heavy traffic from
//! millions of users", but the batch API re-validates, re-uploads, and
//! re-plans the index on every call — the paper's amortization story
//! (norms and device-resident CSR computed once, reused across the whole
//! pairwise grid) stopped at a single `run()`. This crate extends it
//! across requests:
//!
//! * [`fingerprint`] — content hash of a CSR dataset; the cache key.
//! * [`PreparedCache`] — LRU cache of [`neighbors::PreparedShards`]
//!   (device CSR/COO uploads, warmed norms, slab/device plan), evicted
//!   against a simulated device-memory budget
//!   ([`gpu_sim::DeviceSpec::mem_bytes`]).
//! * [`ServeEngine`] — a deterministic discrete-event loop that
//!   coalesces single-row requests into micro-batches (close on size or
//!   deadline), applies admission control, executes batches through the
//!   exact same core as `kneighbors_sharded`, and reports sim-time QPS
//!   and latency percentiles.
//!
//! Determinism contract (DESIGN §11): for every request id, the served
//! `(indices, distances)` are byte-identical to the corresponding row of
//! a one-shot [`neighbors::NearestNeighbors::kneighbors_sharded`] call
//! over the same pool — independent of batch sizes, arrival order,
//! host-thread count, cache evictions, or absorbed faults.

#![deny(missing_docs)]

pub mod cache;
pub mod engine;
pub mod fingerprint;

pub use cache::{CacheKey, CacheStats, PreparedCache};
pub use engine::{replay_rows, Request, Response, ServeConfig, ServeEngine, ServeReport};
pub use fingerprint::fingerprint;
