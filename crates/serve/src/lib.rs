//! The query-serving layer: prepared-index caching and micro-batched
//! request execution on top of the sparse k-NN primitives.
//!
//! The ROADMAP's north star is a system "serving heavy traffic from
//! millions of users", but the batch API re-validates, re-uploads, and
//! re-plans the index on every call — the paper's amortization story
//! (norms and device-resident CSR computed once, reused across the whole
//! pairwise grid) stopped at a single `run()`. This crate extends it
//! across requests:
//!
//! * [`fingerprint`] — content hash of a CSR dataset; the cache key.
//! * [`PreparedCache`] — LRU cache of [`neighbors::PreparedShards`]
//!   (device CSR/COO uploads, warmed norms, slab/device plan), evicted
//!   against a simulated device-memory budget
//!   ([`gpu_sim::DeviceSpec::mem_bytes`]).
//! * [`ServeEngine`] — a deterministic discrete-event loop that
//!   coalesces single-row requests into micro-batches (close on size or
//!   deadline), applies admission control, executes batches through the
//!   exact same core as `kneighbors_sharded`, and reports sim-time QPS
//!   and latency percentiles.
//!
//! Determinism contract (DESIGN §11): for every request id, the served
//! `(indices, distances)` are byte-identical to the corresponding row of
//! a one-shot [`neighbors::NearestNeighbors::kneighbors_sharded`] call
//! over the same pool — independent of batch sizes, arrival order,
//! host-thread count, cache evictions, or absorbed faults.
//!
//! Observability (DESIGN §13): every replay threads per-request spans
//! ([`RequestTraces`]) through the event loop and folds counters,
//! gauges, latency histograms, and SLO burn into a deterministic
//! [`MetricsRegistry`], exported as `metrics.v1` JSON or a
//! Prometheus-style text snapshot ([`MetricsSnapshot`]) and as a
//! chrome://tracing per-request flame view
//! ([`span::request_chrome_trace`]).
//!
//! Serving under overload (DESIGN §14): [`Workload`] generates
//! deterministic Zipf/diurnal/bursty traffic, [`AdmissionConfig`]
//! sheds or degrades load before the queue collapses, [`Fleet`]
//! autoscales [`neighbors::MultiDevice`] replicas on SLO error-budget
//! burn, and [`chaos_drill`] injects mid-traffic [`gpu_sim::FaultPlan`]
//! faults and asserts the fleet recovers with byte-identical answers.

#![deny(missing_docs)]

pub mod admission;
pub mod cache;
pub mod engine;
pub mod fingerprint;
pub mod fleet;
pub mod load;
pub mod metrics;
pub mod segment;
pub mod slo;
pub mod span;
pub mod wal;

pub use admission::{AdmissionConfig, AdmissionDecision, Rejection, ShedReason, TokenBucket};
pub use cache::{CacheKey, CacheOutcome, CacheStats, PreparedCache};
pub use engine::{
    replay_rows, CompactionRecord, IndexMode, IngestReport, Request, Response, ServeConfig,
    ServeEngine, ServeReport, TimedRecord, WalCounts,
};
pub use fingerprint::{fingerprint, fingerprint_with_generation};
pub use fleet::{
    chaos_drill, ChaosPlan, DrillOutcome, Fleet, FleetConfig, FleetReport, ScaleEvent,
    WindowOutcome,
};
pub use load::{SplitMix64, Workload};
pub use metrics::{
    nearest_rank, percentile_sorted, LogHistogram, MetricsRegistry, MetricsSnapshot,
};
pub use segment::{
    merge_arms, AppliedOp, CompactionJob, CompactionOutcome, MutableDataset, RankPlan,
};
pub use slo::{SloBudget, SloReport};
pub use span::{request_chrome_trace, RequestSpan, RequestTraces, SpanEvent};
pub use wal::{Manifest, Wal, WalError, WalOp, WalRecord};
