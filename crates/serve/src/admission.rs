//! SLO-driven admission control: per-dataset token buckets and
//! queue-depth watermarks that shed or *degrade* load instead of
//! letting the queue collapse.
//!
//! The engine's original backpressure was a single cliff: arrivals past
//! [`crate::ServeConfig::max_queue`] were dropped with no further
//! nuance. Production sparse-retrieval front-ends need two softer
//! levers before that cliff (ROADMAP item 4):
//!
//! * a **token bucket** per dataset ([`AdmissionConfig::tokens_per_s`],
//!   [`AdmissionConfig::burst`]) that bounds sustained per-dataset
//!   arrival rate, so one hot tenant cannot starve the rest;
//! * **queue-depth watermarks**: past
//!   [`AdmissionConfig::degrade_watermark`] admitted requests execute in
//!   *degraded* mode — the batch is routed through the hybrid kernel's
//!   bloom-filter shared-memory representation (the low-footprint end of
//!   the Hybrid→Hash→Bloom→NaiveCsr cascade), trading occupancy
//!   headroom for byte-identical answers (every strategy in the cascade
//!   produces bit-identical distances, DESIGN §11) — and past
//!   [`AdmissionConfig::shed_watermark`] arrivals are shed outright.
//!
//! Every decision is a pure function of the canonically-ordered request
//! set (the bucket refills from simulated arrival timestamps, never
//! wall-clock), so admission inherits the engine's determinism: the
//! same request set sheds the same ids for the same reasons regardless
//! of host threads or input permutation.

/// Why admission control shed a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The backlog reached [`crate::ServeConfig::max_queue`] (the hard
    /// cliff; always enforced, with or without an [`AdmissionConfig`]).
    QueueFull,
    /// The dataset's token bucket was empty: its sustained arrival rate
    /// exceeded [`AdmissionConfig::tokens_per_s`].
    RateLimit,
    /// The backlog reached [`AdmissionConfig::shed_watermark`].
    Watermark,
}

impl ShedReason {
    /// Short stable name used in span exports, metrics counters, and
    /// the serve CLI's stderr summary.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::RateLimit => "rate_limit",
            ShedReason::Watermark => "watermark",
        }
    }

    /// Every reason, in the stable order summaries report them.
    pub const ALL: [ShedReason; 3] = [
        ShedReason::QueueFull,
        ShedReason::RateLimit,
        ShedReason::Watermark,
    ];
}

/// One shed request: the id and the typed reason, in arrival order.
/// Returned in [`crate::ServeReport::rejected`] so shedding is visible
/// without a metrics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejection {
    /// Echo of [`crate::Request::id`].
    pub id: u64,
    /// Why the request was shed.
    pub reason: ShedReason,
}

/// Admission-control knobs, applied per dataset.
///
/// The default configuration admits everything (infinite rate, maximal
/// watermarks), so attaching it is behavior-neutral until a knob is
/// tightened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Token-bucket refill rate per dataset, in requests per simulated
    /// second.
    pub tokens_per_s: f64,
    /// Token-bucket capacity: the largest burst admitted at once.
    pub burst: f64,
    /// Backlog (queued + executing) at or past which admitted requests
    /// execute in degraded mode.
    pub degrade_watermark: usize,
    /// Backlog at or past which arrivals are shed with
    /// [`ShedReason::Watermark`]. Set below
    /// [`crate::ServeConfig::max_queue`] to shed with a typed reason
    /// before the hard cliff.
    pub shed_watermark: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            tokens_per_s: f64::INFINITY,
            burst: f64::INFINITY,
            degrade_watermark: usize::MAX,
            shed_watermark: usize::MAX,
        }
    }
}

impl AdmissionConfig {
    /// Sets the token-bucket rate and burst capacity.
    pub fn with_rate(mut self, tokens_per_s: f64, burst: f64) -> Self {
        assert!(
            tokens_per_s > 0.0 && burst >= 1.0,
            "token bucket needs a positive rate and room for one request"
        );
        self.tokens_per_s = tokens_per_s;
        self.burst = burst;
        self
    }

    /// Sets the degrade/shed backlog watermarks
    /// (`degrade <= shed` keeps the levers ordered).
    pub fn with_watermarks(mut self, degrade: usize, shed: usize) -> Self {
        assert!(degrade <= shed, "degrade watermark must not exceed shed");
        self.degrade_watermark = degrade;
        self.shed_watermark = shed;
        self
    }
}

/// The outcome of one admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Admit into the dataset's open batch at full quality.
    Admit,
    /// Admit, but mark the batch for degraded (low-footprint) execution.
    Degrade,
    /// Shed the request with the given reason.
    Shed(ShedReason),
}

/// Per-dataset token-bucket state. Refills from simulated arrival
/// timestamps; decisions in canonical `(arrival_s, id)` order are a
/// pure function of the request set.
#[derive(Debug, Clone, Copy)]
pub struct TokenBucket {
    tokens: f64,
    last_s: f64,
}

impl TokenBucket {
    /// A full bucket (capacity tokens available at t = 0).
    pub fn new(config: &AdmissionConfig) -> Self {
        Self {
            tokens: config.burst,
            last_s: 0.0,
        }
    }

    /// Tokens currently available (before any refill).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Decides admission for one arrival at simulated time `now_s` with
    /// `backlog` requests queued or executing. Checks run hard-to-soft:
    /// the `max_queue` cliff, the shed watermark, the token bucket, and
    /// finally the degrade watermark.
    pub fn admit(
        &mut self,
        config: &AdmissionConfig,
        now_s: f64,
        backlog: usize,
        max_queue: usize,
    ) -> AdmissionDecision {
        let dt = (now_s - self.last_s).max(0.0);
        self.last_s = now_s;
        self.tokens = (self.tokens + dt * config.tokens_per_s).min(config.burst);
        if backlog >= max_queue {
            return AdmissionDecision::Shed(ShedReason::QueueFull);
        }
        if backlog >= config.shed_watermark {
            return AdmissionDecision::Shed(ShedReason::Watermark);
        }
        if self.tokens < 1.0 {
            return AdmissionDecision::Shed(ShedReason::RateLimit);
        }
        self.tokens -= 1.0;
        if backlog >= config.degrade_watermark {
            AdmissionDecision::Degrade
        } else {
            AdmissionDecision::Admit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_admits_everything() {
        let cfg = AdmissionConfig::default();
        let mut bucket = TokenBucket::new(&cfg);
        for i in 0..1000 {
            assert_eq!(
                bucket.admit(&cfg, 0.0, i, usize::MAX),
                AdmissionDecision::Admit
            );
        }
    }

    #[test]
    fn queue_cliff_outranks_every_other_lever() {
        let cfg = AdmissionConfig::default().with_watermarks(2, 4);
        let mut bucket = TokenBucket::new(&cfg);
        assert_eq!(
            bucket.admit(&cfg, 0.0, 8, 8),
            AdmissionDecision::Shed(ShedReason::QueueFull)
        );
        assert_eq!(
            bucket.admit(&cfg, 0.0, 4, 8),
            AdmissionDecision::Shed(ShedReason::Watermark)
        );
        assert_eq!(bucket.admit(&cfg, 0.0, 2, 8), AdmissionDecision::Degrade);
        assert_eq!(bucket.admit(&cfg, 0.0, 1, 8), AdmissionDecision::Admit);
    }

    #[test]
    fn token_bucket_rate_limits_and_refills() {
        let cfg = AdmissionConfig::default().with_rate(1000.0, 2.0);
        let mut bucket = TokenBucket::new(&cfg);
        // Burst capacity 2: two immediate admits, then the bucket is dry.
        assert_eq!(bucket.admit(&cfg, 0.0, 0, 8), AdmissionDecision::Admit);
        assert_eq!(bucket.admit(&cfg, 0.0, 0, 8), AdmissionDecision::Admit);
        assert_eq!(
            bucket.admit(&cfg, 0.0, 0, 8),
            AdmissionDecision::Shed(ShedReason::RateLimit)
        );
        // 1 ms at 1000 tokens/s refills exactly one token.
        assert_eq!(bucket.admit(&cfg, 1e-3, 0, 8), AdmissionDecision::Admit);
        assert_eq!(
            bucket.admit(&cfg, 1e-3, 0, 8),
            AdmissionDecision::Shed(ShedReason::RateLimit)
        );
    }

    #[test]
    fn refill_caps_at_burst() {
        let cfg = AdmissionConfig::default().with_rate(1000.0, 3.0);
        let mut bucket = TokenBucket::new(&cfg);
        // A long idle gap must not bank more than `burst` tokens.
        bucket.admit(&cfg, 100.0, 0, 8);
        assert!(bucket.tokens() <= 3.0);
    }

    #[test]
    fn reasons_have_stable_names() {
        let names: Vec<&str> = ShedReason::ALL.iter().map(|r| r.name()).collect();
        assert_eq!(names, ["queue_full", "rate_limit", "watermark"]);
    }
}
