//! The write-ahead log for mutable datasets (DESIGN §16): an
//! append-only, checksummed record stream of insert/delete deltas.
//!
//! The serving layer's amortization story keys everything on immutable
//! content fingerprints, so a dataset that changes at all today changes
//! *wholesale* — full re-upload, full re-prepare. The WAL is the other
//! half of the LSM-style answer: writes land as deltas in a durable,
//! replayable log; queries see them through the fresh segment
//! ([`crate::segment::MutableDataset`]); compaction folds them back
//! into a new immutable generation.
//!
//! Format (`wal.v1`, line-oriented TSV — same family as the CLI's
//! request/response TSVs, so it diffs and `cmp`s cleanly in CI):
//!
//! ```text
//! wal.v1 <tab> <cols> <tab> <fnv64-hex>
//! <seq> <tab> i <tab> col:bits,col:bits,... <tab> <fnv64-hex>
//! <seq> <tab> d <tab> <row-id> <tab> <fnv64-hex>
//! ```
//!
//! * `seq` is a zero-based, strictly sequential record number; a gap or
//!   repeat is a [`WalError::BadSequence`], never a silent skip.
//! * Insert payloads carry ascending column indices with the value's
//!   exact `f64` bit pattern in hex (`-` for an all-zero row), so a
//!   render→parse round trip is bit-identical — the property the whole
//!   determinism contract rides on.
//! * Delete payloads name the *logical row id*: rows are numbered in
//!   insertion order starting from the seed base (base row `r` is id
//!   `r`), and ids are never reused — a tombstoned id stays dead across
//!   compactions.
//! * Every line ends with an FNV-1a checksum of the bytes before the
//!   final tab. A torn tail (power cut mid-append) therefore fails
//!   closed: [`Wal::parse`] reports the typed error, and
//!   [`Wal::parse_prefix`] recovers exactly the records before it.

use crate::fingerprint::Fnv1a;
use sparse::{Idx, Real};
use std::fmt;

/// One logged mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp<T> {
    /// Append a new row (ascending column indices + values); the row is
    /// assigned the next logical id.
    Insert {
        /// Column indices, strictly ascending.
        cols: Vec<Idx>,
        /// Matching values.
        vals: Vec<T>,
    },
    /// Tombstone the row with this logical id.
    Delete {
        /// The logical row id (insertion order, seed base included).
        row: u64,
    },
}

/// One WAL record: a sequence number plus its operation.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord<T> {
    /// Zero-based position in the log.
    pub seq: u64,
    /// The mutation.
    pub op: WalOp<T>,
}

/// Typed WAL failures. Parsing and replay either succeed completely or
/// surface one of these — never a panic, never a silent partial apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// The log does not start with a valid `wal.v1` header.
    BadHeader {
        /// What was wrong with it.
        reason: String,
    },
    /// A record line could not be parsed.
    Malformed {
        /// 1-based line number in the log text.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// A record's checksum does not match its bytes (torn or corrupted
    /// tail).
    ChecksumMismatch {
        /// 1-based line number in the log text.
        line: usize,
        /// Checksum recomputed from the record bytes.
        expected: u64,
        /// Checksum stored on the line.
        found: u64,
    },
    /// Record numbering skipped or repeated.
    BadSequence {
        /// 1-based line number (0 when raised at apply time).
        line: usize,
        /// The sequence number required here.
        expected: u64,
        /// The sequence number found.
        found: u64,
    },
    /// A delete names a logical id that was never assigned.
    DeleteOutOfRange {
        /// The offending record's sequence number.
        seq: u64,
        /// The id it tried to delete.
        row: u64,
    },
    /// A delete names a row that is already dead (tombstoned earlier or
    /// compacted away).
    DeleteDead {
        /// The offending record's sequence number.
        seq: u64,
        /// The id it tried to delete.
        row: u64,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadHeader { reason } => write!(f, "bad wal.v1 header: {reason}"),
            Self::Malformed { line, reason } => {
                write!(f, "malformed wal record at line {line}: {reason}")
            }
            Self::ChecksumMismatch {
                line,
                expected,
                found,
            } => write!(
                f,
                "wal checksum mismatch at line {line}: expected {expected:016x}, found {found:016x}"
            ),
            Self::BadSequence {
                line,
                expected,
                found,
            } => write!(
                f,
                "wal sequence break at line {line}: expected seq {expected}, found {found}"
            ),
            Self::DeleteOutOfRange { seq, row } => {
                write!(f, "wal record {seq} deletes unassigned row id {row}")
            }
            Self::DeleteDead { seq, row } => {
                write!(f, "wal record {seq} deletes already-dead row id {row}")
            }
        }
    }
}

impl std::error::Error for WalError {}

/// FNV-1a over a line's pre-checksum bytes.
fn line_checksum(body: &str) -> u64 {
    let mut h = Fnv1a::default();
    h.write(body.as_bytes());
    h.finish()
}

/// An in-memory WAL: the dataset width it applies to plus its records.
#[derive(Debug, Clone, PartialEq)]
pub struct Wal<T> {
    cols: usize,
    records: Vec<WalRecord<T>>,
}

impl<T: Real> Wal<T> {
    /// An empty log for datasets of the given width.
    pub fn new(cols: usize) -> Self {
        Self {
            cols,
            records: Vec::new(),
        }
    }

    /// Dataset width every insert must respect.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The records, in sequence order.
    pub fn records(&self) -> &[WalRecord<T>] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Keeps only the first `n` records — the crash-replay test's "the
    /// tail never happened" primitive.
    pub fn truncate(&mut self, n: usize) {
        self.records.truncate(n);
    }

    /// Appends an insert record; returns its sequence number.
    ///
    /// # Panics
    ///
    /// Panics if the column indices are not strictly ascending and in
    /// range, or if `cols` and `vals` disagree in length — appending is
    /// the writer's API, and a writer handing over a malformed row is a
    /// programmer error, not a replay-time condition.
    pub fn append_insert(&mut self, cols: &[Idx], vals: &[T]) -> u64 {
        assert_eq!(cols.len(), vals.len(), "cols/vals length mismatch");
        assert!(
            cols.windows(2).all(|w| w[0] < w[1]),
            "insert columns must be strictly ascending"
        );
        assert!(
            cols.iter().all(|&c| (c as usize) < self.cols),
            "insert column out of range"
        );
        let seq = self.records.len() as u64;
        self.records.push(WalRecord {
            seq,
            op: WalOp::Insert {
                cols: cols.to_vec(),
                vals: vals.to_vec(),
            },
        });
        seq
    }

    /// Appends a delete record for logical `row`; returns its sequence
    /// number. Liveness of the id is checked at apply time (the log
    /// cannot know the dataset's state).
    pub fn append_delete(&mut self, row: u64) -> u64 {
        let seq = self.records.len() as u64;
        self.records.push(WalRecord {
            seq,
            op: WalOp::Delete { row },
        });
        seq
    }

    /// Renders the log as `wal.v1` text (header + one line per record,
    /// each with its FNV checksum).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let header = format!("wal.v1\t{}", self.cols);
        out.push_str(&header);
        out.push('\t');
        out.push_str(&format!("{:016x}", line_checksum(&header)));
        out.push('\n');
        for rec in &self.records {
            let body = match &rec.op {
                WalOp::Insert { cols, vals } => {
                    let payload = if cols.is_empty() {
                        "-".to_string()
                    } else {
                        cols.iter()
                            .zip(vals)
                            .map(|(c, v)| format!("{}:{:016x}", c, v.to_f64().to_bits()))
                            .collect::<Vec<_>>()
                            .join(",")
                    };
                    format!("{}\ti\t{}", rec.seq, payload)
                }
                WalOp::Delete { row } => format!("{}\td\t{}", rec.seq, row),
            };
            out.push_str(&body);
            out.push('\t');
            out.push_str(&format!("{:016x}", line_checksum(&body)));
            out.push('\n');
        }
        out
    }

    /// Strict parse: the whole text must be a valid log. The CLI's
    /// ingest path uses this — a torn or corrupted WAL is an input
    /// error, not something to serve around silently.
    ///
    /// # Errors
    ///
    /// Returns the first [`WalError`] encountered.
    pub fn parse(text: &str) -> Result<Self, WalError> {
        let (wal, err) = Self::parse_prefix(text);
        match err {
            Some(e) => Err(e),
            None => Ok(wal),
        }
    }

    /// Lossy parse: returns the longest valid prefix plus the error
    /// that stopped parsing (if any). Crash recovery uses this — every
    /// record before the torn tail is intact by checksum, so replaying
    /// the prefix is exactly "the tail never happened".
    pub fn parse_prefix(text: &str) -> (Self, Option<WalError>) {
        let mut lines = text.lines().enumerate();
        let header = match lines.next() {
            Some((_, l)) => l,
            None => {
                return (
                    Self::new(0),
                    Some(WalError::BadHeader {
                        reason: "empty log".to_string(),
                    }),
                )
            }
        };
        let cols = match Self::parse_header(header) {
            Ok(c) => c,
            Err(e) => return (Self::new(0), Some(e)),
        };
        let mut wal = Self::new(cols);
        for (idx, line) in lines {
            // A trailing newline produces no empty element from
            // `lines()`, so an empty line mid-log is real corruption.
            if let Err(e) = wal.parse_record_line(idx + 1, line) {
                return (wal, Some(e));
            }
        }
        (wal, None)
    }

    fn parse_header(line: &str) -> Result<usize, WalError> {
        let bad = |reason: &str| WalError::BadHeader {
            reason: reason.to_string(),
        };
        let (body, sum) = line
            .rsplit_once('\t')
            .ok_or_else(|| bad("missing checksum"))?;
        let found = u64::from_str_radix(sum, 16).map_err(|_| bad("checksum is not 64-bit hex"))?;
        let expected = line_checksum(body);
        if found != expected {
            return Err(bad("header checksum mismatch"));
        }
        let mut parts = body.split('\t');
        if parts.next() != Some("wal.v1") {
            return Err(bad("expected magic `wal.v1`"));
        }
        let cols = parts
            .next()
            .and_then(|c| c.parse::<usize>().ok())
            .ok_or_else(|| bad("missing or non-numeric column count"))?;
        if parts.next().is_some() {
            return Err(bad("trailing header fields"));
        }
        Ok(cols)
    }

    fn parse_record_line(&mut self, line_no: usize, line: &str) -> Result<(), WalError> {
        let malformed = |reason: String| WalError::Malformed {
            line: line_no,
            reason,
        };
        let (body, sum) = line
            .rsplit_once('\t')
            .ok_or_else(|| malformed("missing checksum field".to_string()))?;
        let found = u64::from_str_radix(sum, 16)
            .map_err(|_| malformed("checksum is not 64-bit hex".to_string()))?;
        let expected = line_checksum(body);
        if found != expected {
            return Err(WalError::ChecksumMismatch {
                line: line_no,
                expected,
                found,
            });
        }
        let mut parts = body.split('\t');
        let seq: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| malformed("missing or non-numeric seq".to_string()))?;
        let want = self.records.len() as u64;
        if seq != want {
            return Err(WalError::BadSequence {
                line: line_no,
                expected: want,
                found: seq,
            });
        }
        let op = parts
            .next()
            .ok_or_else(|| malformed("missing op field".to_string()))?;
        let payload = parts
            .next()
            .ok_or_else(|| malformed("missing payload field".to_string()))?;
        if parts.next().is_some() {
            return Err(malformed("trailing record fields".to_string()));
        }
        match op {
            "i" => {
                let mut cols: Vec<Idx> = Vec::new();
                let mut vals: Vec<T> = Vec::new();
                if payload != "-" {
                    for cell in payload.split(',') {
                        let (c, bits) = cell
                            .split_once(':')
                            .ok_or_else(|| malformed(format!("bad insert cell `{cell}`")))?;
                        let c: Idx = c
                            .parse()
                            .map_err(|_| malformed(format!("bad column `{c}`")))?;
                        let bits = u64::from_str_radix(bits, 16)
                            .map_err(|_| malformed(format!("bad value bits `{bits}`")))?;
                        if (c as usize) >= self.cols {
                            return Err(malformed(format!(
                                "column {c} out of range for width {}",
                                self.cols
                            )));
                        }
                        if let Some(&last) = cols.last() {
                            if c <= last {
                                return Err(malformed(
                                    "insert columns must be strictly ascending".to_string(),
                                ));
                            }
                        }
                        cols.push(c);
                        vals.push(T::from_f64(f64::from_bits(bits)));
                    }
                }
                self.records.push(WalRecord {
                    seq,
                    op: WalOp::Insert { cols, vals },
                });
            }
            "d" => {
                let row: u64 = payload
                    .parse()
                    .map_err(|_| malformed(format!("bad delete row id `{payload}`")))?;
                self.records.push(WalRecord {
                    seq,
                    op: WalOp::Delete { row },
                });
            }
            other => return Err(malformed(format!("unknown op `{other}`"))),
        }
        Ok(())
    }
}

/// The generation-stamped manifest: one checksummed line naming the
/// state a serving process should recover to — which base generation is
/// current, its content fingerprint, and how far into the log replay
/// has progressed. Written next to the WAL by the CLI's ingest path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Compaction generation of the current base segment.
    pub generation: u64,
    /// Rows in the current base segment.
    pub base_rows: usize,
    /// [`crate::fingerprint::fingerprint_with_generation`] of the base.
    pub base_fingerprint: u64,
    /// Records consumed from the log (applied or rejected).
    pub log_position: u64,
    /// Dataset width.
    pub cols: usize,
}

impl Manifest {
    /// Renders the manifest as one checksummed `manifest.v1` line.
    pub fn render(&self) -> String {
        let body = format!(
            "manifest.v1\tgeneration={}\tbase_rows={}\tbase_fingerprint={:016x}\tlog_position={}\tcols={}",
            self.generation, self.base_rows, self.base_fingerprint, self.log_position, self.cols
        );
        format!("{}\t{:016x}\n", body, line_checksum(&body))
    }

    /// Parses a rendered manifest.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::BadHeader`] when the magic, a field, or the
    /// checksum does not check out.
    pub fn parse(text: &str) -> Result<Self, WalError> {
        let bad = |reason: &str| WalError::BadHeader {
            reason: format!("manifest: {reason}"),
        };
        let line = text.lines().next().ok_or_else(|| bad("empty"))?;
        let (body, sum) = line
            .rsplit_once('\t')
            .ok_or_else(|| bad("missing checksum"))?;
        let found = u64::from_str_radix(sum, 16).map_err(|_| bad("checksum is not 64-bit hex"))?;
        if found != line_checksum(body) {
            return Err(bad("checksum mismatch"));
        }
        let mut parts = body.split('\t');
        if parts.next() != Some("manifest.v1") {
            return Err(bad("expected magic `manifest.v1`"));
        }
        let mut field = |name: &str| -> Result<u64, WalError> {
            let cell = parts.next().ok_or_else(|| bad("missing field"))?;
            let (k, v) = cell.split_once('=').ok_or_else(|| bad("bad field"))?;
            if k != name {
                return Err(bad(&format!("expected field `{name}`, found `{k}`")));
            }
            if name == "base_fingerprint" {
                u64::from_str_radix(v, 16).map_err(|_| bad("bad fingerprint"))
            } else {
                v.parse().map_err(|_| bad(&format!("non-numeric `{name}`")))
            }
        };
        Ok(Self {
            generation: field("generation")?,
            base_rows: field("base_rows")? as usize,
            base_fingerprint: field("base_fingerprint")?,
            log_position: field("log_position")?,
            cols: field("cols")? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Wal<f32> {
        let mut w = Wal::new(6);
        w.append_insert(&[0, 2, 5], &[1.0, -2.5, 0.125]);
        w.append_delete(1);
        w.append_insert(&[], &[]);
        w.append_insert(&[3], &[f32::MIN_POSITIVE]);
        w.append_delete(7);
        w
    }

    #[test]
    fn render_parse_round_trips_bit_exactly() {
        let w = sample();
        let text = w.render();
        let back = Wal::<f32>::parse(&text).expect("valid log parses");
        assert_eq!(back.cols(), 6);
        assert_eq!(back.records().len(), w.records().len());
        for (a, b) in w.records().iter().zip(back.records()) {
            assert_eq!(a.seq, b.seq);
            match (&a.op, &b.op) {
                (WalOp::Insert { cols: ca, vals: va }, WalOp::Insert { cols: cb, vals: vb }) => {
                    assert_eq!(ca, cb);
                    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                    assert_eq!(bits(va), bits(vb));
                }
                (WalOp::Delete { row: ra }, WalOp::Delete { row: rb }) => assert_eq!(ra, rb),
                (x, y) => panic!("op kind diverged: {x:?} vs {y:?}"),
            }
        }
        // Rendering the parse is byte-identical to the original text.
        assert_eq!(text, back.render());
    }

    #[test]
    fn corrupted_bytes_fail_closed_with_typed_errors() {
        let text = sample().render();
        // Flip one payload byte on the third line: checksum mismatch.
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[2] = lines[2].replacen("\td\t", "\ti\t", 1);
        let torn = lines.join("\n");
        let (prefix, err) = Wal::<f32>::parse_prefix(&torn);
        assert_eq!(prefix.len(), 1, "records before the corruption survive");
        assert!(
            matches!(err, Some(WalError::ChecksumMismatch { line: 3, .. })),
            "{err:?}"
        );
        assert!(Wal::<f32>::parse(&torn).is_err());

        // Drop a line: sequence break.
        let skipped = format!("{}\n{}\n{}", lines[0], lines[1], lines[3]);
        let (_, err) = Wal::<f32>::parse_prefix(&skipped);
        assert!(
            matches!(
                err,
                Some(WalError::BadSequence {
                    expected: 1,
                    found: 2,
                    ..
                })
            ),
            "{err:?}"
        );

        // Garbage header.
        let (w, err) = Wal::<f32>::parse_prefix("nonsense");
        assert!(matches!(err, Some(WalError::BadHeader { .. })), "{err:?}");
        assert!(w.is_empty());
    }

    #[test]
    fn manifest_round_trips_and_rejects_corruption() {
        let m = Manifest {
            generation: 3,
            base_rows: 128,
            base_fingerprint: 0xdead_beef_cafe_f00d,
            log_position: 999,
            cols: 64,
        };
        let text = m.render();
        assert_eq!(Manifest::parse(&text).expect("parses"), m);
        let corrupt = text.replacen("generation=3", "generation=4", 1);
        assert!(Manifest::parse(&corrupt).is_err(), "checksum must catch it");
    }
}
