//! The replica fleet: an SLO-burn-driven autoscaler over
//! [`MultiDevice`] replicas, plus chaos-mode fault drills — all on the
//! deterministic sim clock.
//!
//! The fleet chops simulated time into fixed windows
//! ([`FleetConfig::window_s`]), serves each window through a
//! [`ServeEngine`] over the current replica pool, and feeds each
//! window's worst sliding-window SLO burn ([`crate::SloReport::worst_window_burn`])
//! into a small autoscaling state machine (DESIGN §14): burn above
//! [`FleetConfig::scale_up_burn`] adds a replica (subject to a
//! cooldown), burn below [`FleetConfig::scale_down_burn`] for
//! [`FleetConfig::cooldown_windows`] consecutive windows removes one.
//! Scaling rebuilds the engine — the prepared-index cache is keyed on
//! pool size, so the re-prepare cost of resharding is charged
//! honestly, exactly as a real fleet pays it.
//!
//! **Chaos mode** ([`ChaosPlan`]) arms a [`FaultPlan`] on every replica
//! for the windows overlapping `[start_s, end_s)`; [`chaos_drill`] runs
//! the same workload with and without the plan, byte-compares the
//! surviving (served-in-both) answers, and reports the first
//! post-chaos window whose burn re-enters the caller's envelope — the
//! recovery bound the serve_fleet bench and the CI chaos-smoke job
//! assert on.
//!
//! Determinism: windows are scheduling epochs processed in order; every
//! decision (scale, shed, degrade) is a pure function of the request
//! set and the configuration, so fleet reports — like engine reports —
//! are byte-identical across host-thread counts and arrival
//! permutations. Window boundaries reset the device-busy horizon
//! (each window's engine starts idle), which is the one modeling
//! simplification DESIGN §14 records.

use crate::admission::{Rejection, ShedReason};
use crate::engine::{Request, Response, ServeConfig, ServeEngine};
use crate::metrics::{percentile_sorted, MetricsRegistry};
use crate::slo::SloBudget;
use crate::span::RequestSpan;
use gpu_sim::{Device, FaultPlan};
use kernels::KernelError;
use neighbors::{MultiDevice, NearestNeighbors};
use sparse::Real;
use std::collections::BTreeMap;

/// Autoscaler and windowing knobs for a replica fleet.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Floor on pool size (scale-down stops here; at least 1).
    pub min_replicas: usize,
    /// Ceiling on pool size (scale-up stops here).
    pub max_replicas: usize,
    /// Scheduling-window length in simulated seconds.
    pub window_s: f64,
    /// Worst-window SLO burn above which the fleet adds a replica.
    pub scale_up_burn: f64,
    /// Worst-window burn below which a window counts as *calm*;
    /// `cooldown_windows` consecutive calm windows remove a replica.
    pub scale_down_burn: f64,
    /// Windows to hold after a scale-up before scaling again, and the
    /// calm streak required before a scale-down.
    pub cooldown_windows: usize,
    /// Per-window serving configuration (batching + admission).
    pub serve: ServeConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            min_replicas: 1,
            max_replicas: 4,
            window_s: 1e-3,
            scale_up_burn: 1.0,
            scale_down_burn: 0.25,
            cooldown_windows: 2,
            serve: ServeConfig::default(),
        }
    }
}

/// A mid-traffic fault-injection drill: the fault plan is armed on
/// every replica for windows overlapping `[start_s, end_s)`.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// First simulated second of the chaos interval.
    pub start_s: f64,
    /// End of the chaos interval (exclusive).
    pub end_s: f64,
    /// The fault plan to arm (seeded, deterministic per replica).
    pub fault: FaultPlan,
}

/// One deterministic autoscaling decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleEvent {
    /// Window index the decision was made in (takes effect next window).
    pub window: usize,
    /// Simulated end of that window.
    pub at_s: f64,
    /// Pool size before.
    pub from: usize,
    /// Pool size after.
    pub to: usize,
    /// The worst-window burn that drove the decision.
    pub burn: f64,
}

/// Per-window serving outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowOutcome {
    /// Window index.
    pub window: usize,
    /// Window start (simulated seconds).
    pub start_s: f64,
    /// Replicas serving this window.
    pub replicas: usize,
    /// Requests arriving in the window.
    pub arrived: usize,
    /// Requests served.
    pub served: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Requests served in degraded mode.
    pub degraded: u64,
    /// Worst sliding-window SLO burn across configured datasets.
    pub worst_burn: f64,
    /// Whether a chaos plan was armed for this window.
    pub chaos: bool,
}

/// Aggregate outcome of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport<T> {
    /// Served responses across all windows, in canonical
    /// `(completion_s, id)` order.
    pub responses: Vec<Response<T>>,
    /// Shed requests (typed reasons) across all windows, arrival order.
    pub rejected: Vec<Rejection>,
    /// Per-window outcomes, in window order.
    pub windows: Vec<WindowOutcome>,
    /// Autoscaling decisions, in window order.
    pub scale_events: Vec<ScaleEvent>,
    /// Pool size after the final window.
    pub replicas_final: usize,
    /// Per-request spans across all windows, canonical order.
    pub spans: Vec<RequestSpan>,
}

impl<T> FleetReport<T> {
    /// The `p`-th latency percentile over every served response
    /// (nearest-rank, like [`crate::ServeReport::latency_percentile`]).
    pub fn latency_percentile(&self, p: f64) -> f64 {
        let mut lat: Vec<f64> = self.responses.iter().map(Response::latency_s).collect();
        lat.sort_by(f64::total_cmp);
        percentile_sorted(&lat, p)
    }

    /// Fraction of arrivals shed (0.0 when nothing arrived).
    pub fn shed_fraction(&self) -> f64 {
        let arrived = self.responses.len() + self.rejected.len();
        if arrived == 0 {
            0.0
        } else {
            self.rejected.len() as f64 / arrived as f64
        }
    }

    /// The worst per-window burn observed over the run.
    pub fn worst_burn(&self) -> f64 {
        self.windows
            .iter()
            .map(|w| w.worst_burn)
            .fold(0.0, f64::max)
    }
}

/// An autoscaled replica fleet over a prototype device.
pub struct Fleet {
    proto: Device,
    config: FleetConfig,
    slos: BTreeMap<usize, SloBudget>,
    chaos: Option<ChaosPlan>,
    metrics: MetricsRegistry,
    /// Completed [`Fleet::run`] calls — the ordinal that namespaces
    /// each run's per-window counter series in the registry.
    runs: u64,
}

impl Fleet {
    /// A fleet cloning replicas from `proto` (spec, sanitizer,
    /// watchdog — and fault plan, which chaos windows override).
    pub fn new(proto: Device, config: FleetConfig) -> Self {
        assert!(
            config.min_replicas >= 1 && config.min_replicas <= config.max_replicas,
            "replica bounds must satisfy 1 <= min <= max"
        );
        assert!(
            config.window_s > 0.0 && config.window_s.is_finite(),
            "window length must be positive"
        );
        Self {
            proto,
            config,
            slos: BTreeMap::new(),
            chaos: None,
            metrics: MetricsRegistry::new(),
            runs: 0,
        }
    }

    /// Sets the latency SLO for `dataset` — the autoscaler steers on
    /// the worst window burn across all configured datasets.
    pub fn with_slo(mut self, dataset: usize, budget: SloBudget) -> Self {
        self.slos.insert(dataset, budget);
        self
    }

    /// Arms a chaos plan for the run.
    pub fn with_chaos(mut self, chaos: ChaosPlan) -> Self {
        assert!(
            chaos.start_s < chaos.end_s,
            "chaos interval must be non-empty"
        );
        self.chaos = Some(chaos);
        self
    }

    /// The fleet-level metrics registry (counters accumulate across
    /// runs; gauges reflect the latest run).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Whether a chaos plan is armed for the window starting at
    /// `start_s`.
    fn chaos_active(&self, start_s: f64) -> bool {
        self.chaos
            .as_ref()
            .is_some_and(|c| start_s < c.end_s && start_s + self.config.window_s > c.start_s)
    }

    /// Runs the fleet over a request stream: windows the stream,
    /// serves each window at the current pool size, and autoscales on
    /// SLO burn. See the module docs for the determinism contract.
    ///
    /// # Errors
    ///
    /// Propagates the first kernel error any window produces. Under a
    /// chaos plan, fit the estimators with a
    /// [`kernels::ResiliencePolicy`] so injected faults are absorbed
    /// by the cascade instead of surfacing here.
    pub fn run<T: Real>(
        &mut self,
        fitted: &[NearestNeighbors<T>],
        requests: &[Request<T>],
    ) -> Result<FleetReport<T>, KernelError> {
        let cfg = self.config;
        let mut order: Vec<&Request<T>> = requests.iter().collect();
        order.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s).then(a.id.cmp(&b.id)));
        let last_arrival = order.last().map(|r| r.arrival_s).unwrap_or(0.0);
        let n_windows = if order.is_empty() {
            0
        } else {
            (last_arrival / cfg.window_s) as usize + 1
        };

        let mut report = FleetReport {
            responses: Vec::new(),
            rejected: Vec::new(),
            windows: Vec::new(),
            scale_events: Vec::new(),
            replicas_final: cfg.min_replicas,
            spans: Vec::new(),
        };
        let mut replicas = cfg.min_replicas;
        let mut engine: Option<ServeEngine<T>> = None;
        let mut engine_shape: Option<(usize, bool)> = None;
        let mut cooldown = 0usize;
        let mut calm_streak = 0usize;
        let mut degraded_total = 0u64;
        let mut chaos_windows = 0u64;
        let mut next = 0usize;
        // Cumulative shed counts per typed reason at the close of each
        // window — the monotone series `bench::validate_metrics` checks
        // (a cumulative counter that ever decreased would mean a window
        // un-shed a request).
        let mut shed_cum = [0u64; ShedReason::ALL.len()];
        let mut window_shed_cum: Vec<[u64; ShedReason::ALL.len()]> = Vec::new();

        for w in 0..n_windows {
            let start_s = w as f64 * cfg.window_s;
            let end_s = start_s + cfg.window_s;
            let mut window_reqs: Vec<Request<T>> = Vec::new();
            while next < order.len() && order[next].arrival_s < end_s {
                window_reqs.push(order[next].clone());
                next += 1;
            }
            let chaos = self.chaos_active(start_s);
            if chaos {
                chaos_windows += 1;
            }

            // Rebuild the engine when the pool shape changes (size or
            // chaos arming); keep it otherwise so the prepared cache
            // persists across windows.
            if engine_shape != Some((replicas, chaos)) {
                let proto = match (&self.chaos, chaos) {
                    (Some(c), true) => self.proto.clone().with_fault_plan(c.fault.clone()),
                    _ => self.proto.clone(),
                };
                let multi = MultiDevice::replicate(&proto, replicas);
                let mut e = ServeEngine::new(multi, cfg.serve);
                for (&dataset, &budget) in &self.slos {
                    e.set_slo(dataset, budget);
                }
                engine = Some(e);
                engine_shape = Some((replicas, chaos));
            }
            let e = engine.as_mut().expect("engine built above");

            let (arrived, served, shed, degraded, worst_burn) = if window_reqs.is_empty() {
                (0, 0, 0, 0, 0.0)
            } else {
                let r = e.replay(fitted, &window_reqs)?;
                let worst = r
                    .slo
                    .iter()
                    .map(crate::SloReport::worst_window_burn)
                    .fold(0.0, f64::max);
                let out = (
                    window_reqs.len(),
                    r.responses.len(),
                    r.rejected.len(),
                    r.degraded_requests,
                    worst,
                );
                degraded_total += r.degraded_requests;
                for rej in &r.rejected {
                    let slot = ShedReason::ALL
                        .iter()
                        .position(|&x| x == rej.reason)
                        .expect("every reason is in ALL");
                    shed_cum[slot] += 1;
                }
                report.responses.extend(r.responses);
                report.rejected.extend(r.rejected);
                report.spans.extend(r.spans);
                out
            };
            report.windows.push(WindowOutcome {
                window: w,
                start_s,
                replicas,
                arrived,
                served,
                shed,
                degraded,
                worst_burn,
                chaos,
            });
            window_shed_cum.push(shed_cum);

            // The autoscaling state machine (DESIGN §14): one step per
            // window, cooldown after scale-up, calm streak before
            // scale-down.
            cooldown = cooldown.saturating_sub(1);
            if worst_burn > cfg.scale_up_burn {
                calm_streak = 0;
                if cooldown == 0 && replicas < cfg.max_replicas {
                    report.scale_events.push(ScaleEvent {
                        window: w,
                        at_s: end_s,
                        from: replicas,
                        to: replicas + 1,
                        burn: worst_burn,
                    });
                    replicas += 1;
                    cooldown = cfg.cooldown_windows;
                }
            } else if worst_burn < cfg.scale_down_burn {
                calm_streak += 1;
                if calm_streak >= cfg.cooldown_windows.max(1) && replicas > cfg.min_replicas {
                    report.scale_events.push(ScaleEvent {
                        window: w,
                        at_s: end_s,
                        from: replicas,
                        to: replicas - 1,
                        burn: worst_burn,
                    });
                    replicas -= 1;
                    calm_streak = 0;
                }
            } else {
                calm_streak = 0;
            }
        }

        report.replicas_final = replicas;
        report.responses.sort_by(|a, b| {
            a.completion_s
                .total_cmp(&b.completion_s)
                .then(a.id.cmp(&b.id))
        });
        report.spans.sort_by(|a, b| {
            a.arrival_s
                .total_cmp(&b.arrival_s)
                .then(a.request_id.cmp(&b.request_id))
        });
        report.rejected.sort_by_key(|r| r.id);

        let m = &mut self.metrics;
        let ups = report.scale_events.iter().filter(|e| e.to > e.from).count() as u64;
        let downs = report.scale_events.len() as u64 - ups;
        m.inc("serve.fleet.windows_total", report.windows.len() as u64);
        m.inc("serve.fleet.chaos_windows_total", chaos_windows);
        m.inc("serve.fleet.scale_ups_total", ups);
        m.inc("serve.fleet.scale_downs_total", downs);
        m.inc(
            "serve.fleet.requests_arrived_total",
            (report.responses.len() + report.rejected.len()) as u64,
        );
        m.inc(
            "serve.fleet.requests_served_total",
            report.responses.len() as u64,
        );
        m.inc(
            "serve.fleet.requests_shed_total",
            report.rejected.len() as u64,
        );
        m.inc("serve.fleet.degraded_requests_total", degraded_total);
        // Per-window cumulative shed series, namespaced by run ordinal
        // so several runs through one fleet never splice their windows
        // together. Zero-padded window tags make the registry's sorted
        // key order equal window order; `bench::validate_metrics`
        // asserts each series is monotone non-decreasing and that the
        // final cumulative values reconcile with
        // `serve.fleet.requests_shed_total`.
        if !report.rejected.is_empty() {
            for (w, cums) in window_shed_cum.iter().enumerate() {
                for (slot, reason) in ShedReason::ALL.iter().enumerate() {
                    m.inc(
                        &format!(
                            "serve.fleet.run{:03}.w{:04}.shed_{}_total",
                            self.runs,
                            w,
                            reason.name()
                        ),
                        cums[slot],
                    );
                }
            }
        }
        self.runs += 1;
        m.set_gauge("serve.fleet.replicas", replicas as f64);
        m.set_gauge("serve.fleet.shed_fraction", report.shed_fraction());
        m.set_gauge("serve.fleet.worst_window_burn", report.worst_burn());
        m.set_gauge("serve.fleet.p99_latency_s", report.latency_percentile(99.0));
        Ok(report)
    }
}

/// Outcome of a [`chaos_drill`].
#[derive(Debug, Clone)]
pub struct DrillOutcome<T> {
    /// The fault-free run.
    pub baseline: FleetReport<T>,
    /// The chaos run.
    pub chaos: FleetReport<T>,
    /// Ids served in both runs.
    pub common: usize,
    /// Of those, answers that differ in any byte — must be 0: faults
    /// are absorbed by the resilience cascade, never served.
    pub divergent: usize,
    /// First post-chaos window whose burn re-entered the envelope
    /// (`None` if it never recovered inside the run).
    pub recovery_window: Option<usize>,
}

/// Runs the same workload through a fault-free fleet and a chaos-armed
/// fleet, byte-compares the surviving (served-in-both) request set,
/// and finds the first post-chaos window with worst burn at or under
/// `envelope_burn`.
///
/// # Errors
///
/// Propagates kernel errors from either run.
pub fn chaos_drill<T: Real>(
    proto: &Device,
    config: FleetConfig,
    slos: &[(usize, SloBudget)],
    fitted: &[NearestNeighbors<T>],
    requests: &[Request<T>],
    chaos: ChaosPlan,
    envelope_burn: f64,
) -> Result<DrillOutcome<T>, KernelError> {
    let chaos_end = chaos.end_s;
    let mut baseline_fleet = Fleet::new(proto.clone(), config);
    let mut chaos_fleet = Fleet::new(proto.clone(), config).with_chaos(chaos);
    for &(dataset, budget) in slos {
        baseline_fleet = baseline_fleet.with_slo(dataset, budget);
        chaos_fleet = chaos_fleet.with_slo(dataset, budget);
    }
    let baseline = baseline_fleet.run(fitted, requests)?;
    let chaos_report = chaos_fleet.run(fitted, requests)?;

    // Byte-compare the served intersection: indices exactly, distances
    // by bit pattern (to_f64 widening is lossless and injective).
    let by_id: BTreeMap<u64, &Response<T>> = baseline.responses.iter().map(|r| (r.id, r)).collect();
    let mut common = 0usize;
    let mut divergent = 0usize;
    for r in &chaos_report.responses {
        if let Some(b) = by_id.get(&r.id) {
            common += 1;
            let same = r.indices == b.indices
                && r.distances.len() == b.distances.len()
                && r.distances
                    .iter()
                    .zip(&b.distances)
                    .all(|(x, y)| x.to_f64().to_bits() == y.to_f64().to_bits());
            if !same {
                divergent += 1;
            }
        }
    }
    let recovery_window = chaos_report
        .windows
        .iter()
        .find(|w| w.start_s >= chaos_end && w.worst_burn <= envelope_burn)
        .map(|w| w.window);
    Ok(DrillOutcome {
        baseline,
        chaos: chaos_report,
        common,
        divergent,
        recovery_window,
    })
}
