//! LRU cache of prepared index shard sets, evicting against a simulated
//! device-memory budget.

use crate::fingerprint::fingerprint_with_generation;
use kernels::KernelError;
use neighbors::{MultiDevice, NearestNeighbors, PreparedShards};
use sparse::Real;
use std::sync::Arc;

/// Cache key: the dataset's content fingerprint plus every knob that
/// changes the prepared artifact (pool size and slab geometry — the
/// metric only changes which norms get warmed, and norms accumulate
/// per-kind inside one prepared entry, so it is deliberately *not* part
/// of the key).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`crate::fingerprint::fingerprint`] of the index matrix.
    pub fingerprint: u64,
    /// Devices in the pool the shards are pinned to.
    pub devices: usize,
    /// Explicit slab-rows override, if the estimator has one.
    pub index_batch_rows: Option<usize>,
}

/// Hit/miss/eviction counters, reported by the serve CLI and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to prepare (upload + warm) a new entry.
    pub misses: u64,
    /// Entries evicted to fit the memory budget.
    pub evictions: u64,
    /// Entries whose byte accounting was touched while reclaiming
    /// budget. With incremental resident-byte tracking this equals
    /// `evictions` exactly; the old implementation re-summed every
    /// resident entry per eviction, which would have made a cold burst
    /// of E evictions cost O(E²) probes. Regression-guarded in tests.
    pub eviction_probes: u64,
}

/// The outcome of one cache lookup, consumed by the request engine's
/// span events and metrics registry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheOutcome {
    /// Whether the lookup was answered from the cache.
    pub hit: bool,
    /// Entries evicted by this lookup (0 on hits).
    pub evictions: u64,
    /// Simulated seconds spent warming norms (0.0 on hits).
    pub warm_seconds: f64,
}

struct CacheEntry<T> {
    key: CacheKey,
    shards: Arc<PreparedShards<T>>,
    bytes: usize,
}

/// An LRU cache of [`PreparedShards`] keyed by dataset fingerprint.
///
/// Entries are charged their simulated device footprint (uploads plus
/// norm vectors); inserting past `budget_bytes` evicts least-recently
/// used entries first. A single entry larger than the whole budget is
/// still admitted (the alternative is not serving at all) — it simply
/// evicts everything else and is replaced as soon as a different index
/// is requested.
pub struct PreparedCache<T> {
    budget_bytes: usize,
    // Most-recently-used entry last; eviction pops from the front.
    // A Vec keeps iteration order deterministic (no hash-map ordering).
    entries: Vec<CacheEntry<T>>,
    // Incrementally-maintained sum of entry bytes. Re-summing the entry
    // list inside the eviction loop made a cold burst O(n²).
    resident: usize,
    stats: CacheStats,
}

impl<T: Real> PreparedCache<T> {
    /// Creates a cache with an explicit byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            entries: Vec::new(),
            resident: 0,
            stats: CacheStats::default(),
        }
    }

    /// Creates a cache budgeted at half the pool's first device's
    /// global memory ([`gpu_sim::DeviceSpec::mem_bytes`]) — the other
    /// half is left for query uploads and dense output tiles.
    pub fn for_pool(multi: &MultiDevice) -> Self {
        let mem = multi
            .devices()
            .first()
            .map(|d| d.spec().mem_bytes)
            .unwrap_or(16 * 1024 * 1024 * 1024);
        Self::new(mem / 2)
    }

    /// The configured budget in bytes.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Bytes currently held by cached entries. O(1): the total is
    /// maintained incrementally across inserts and evictions.
    pub fn resident_bytes(&self) -> usize {
        debug_assert_eq!(
            self.resident,
            self.entries.iter().map(|e| e.bytes).sum::<usize>(),
            "incremental resident-byte accounting drifted"
        );
        self.resident
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up (or prepares, on miss) the shard set for `nn`'s fitted
    /// index over `multi`. On a miss the index is sliced, uploaded, and
    /// its norms warmed; `warm_seconds` in the return value is the
    /// simulated time that warming cost (0.0 on a hit), which the
    /// request engine charges to the batch that triggered the miss.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from the norm-warming launches.
    ///
    /// # Panics
    ///
    /// Panics if `nn` has not been fitted.
    pub fn get_or_prepare(
        &mut self,
        nn: &NearestNeighbors<T>,
        multi: &MultiDevice,
    ) -> Result<(Arc<PreparedShards<T>>, f64), KernelError> {
        let (shards, outcome) = self.lookup(nn, multi)?;
        Ok((shards, outcome.warm_seconds))
    }

    /// [`Self::get_or_prepare`] with a full [`CacheOutcome`] — the
    /// request engine uses this to emit cache hit/miss span events and
    /// per-lookup eviction counts.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from the norm-warming launches.
    ///
    /// # Panics
    ///
    /// Panics if `nn` has not been fitted.
    pub fn lookup(
        &mut self,
        nn: &NearestNeighbors<T>,
        multi: &MultiDevice,
    ) -> Result<(Arc<PreparedShards<T>>, CacheOutcome), KernelError> {
        self.lookup_generation(nn, multi, 0)
    }

    /// [`Self::lookup`] for a specific compaction generation of a
    /// mutable dataset (DESIGN §16). The generation is folded into the
    /// cache key via [`fingerprint_with_generation`], so a re-compacted
    /// base whose bytes coincide with an earlier generation (most
    /// plainly: an empty one) still gets its own entry, and the
    /// compactor's atomic swap is just "start looking up gen+1".
    /// Immutable callers are generation 0.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from the norm-warming launches.
    ///
    /// # Panics
    ///
    /// Panics if `nn` has not been fitted.
    pub fn lookup_generation(
        &mut self,
        nn: &NearestNeighbors<T>,
        multi: &MultiDevice,
        generation: u64,
    ) -> Result<(Arc<PreparedShards<T>>, CacheOutcome), KernelError> {
        let index = nn.index().expect("fit() the estimator before serving");
        let key = CacheKey {
            fingerprint: fingerprint_with_generation(index, generation),
            devices: multi.len(),
            index_batch_rows: nn.index_slab_rows(),
        };
        if let Some(pos) = self.entries.iter().position(|e| e.key == key) {
            // Refresh recency: move to the back.
            let entry = self.entries.remove(pos);
            let shards = Arc::clone(&entry.shards);
            self.entries.push(entry);
            self.stats.hits += 1;
            return Ok((
                shards,
                CacheOutcome {
                    hit: true,
                    evictions: 0,
                    warm_seconds: 0.0,
                },
            ));
        }
        self.stats.misses += 1;
        let shards = Arc::new(nn.prepare_shards(multi));
        let (warm_seconds, _) = nn.warm_shards(&shards)?;
        let bytes = shards.device_bytes();
        let mut evictions = 0u64;
        while !self.entries.is_empty() && self.resident + bytes > self.budget_bytes {
            // One O(1) accounting probe per evicted entry — `resident`
            // is already maintained, so a burst of E evictions does
            // exactly E probes (the counter the regression test pins).
            let evicted = self.entries.remove(0);
            self.resident -= evicted.bytes;
            self.stats.evictions += 1;
            self.stats.eviction_probes += 1;
            evictions += 1;
        }
        self.resident += bytes;
        self.entries.push(CacheEntry {
            key,
            shards: Arc::clone(&shards),
            bytes,
        });
        Ok((
            shards,
            CacheOutcome {
                hit: false,
                evictions,
                warm_seconds,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Device;
    use semiring::Distance;
    use sparse::CsrMatrix;

    fn dataset(rows: usize, salt: f64) -> CsrMatrix<f64> {
        let mut data = vec![0.0; rows * 8];
        for r in 0..rows {
            for c in 0..8 {
                if (r + c) % 3 == 0 {
                    data[r * 8 + c] = salt + (r as f64) / 7.0 + (c as f64) / 31.0;
                }
            }
        }
        CsrMatrix::from_dense(rows, 8, &data)
    }

    #[test]
    fn hit_on_identical_content_miss_on_different() {
        let multi = MultiDevice::replicate(&Device::volta(), 2);
        let mut cache = PreparedCache::new(usize::MAX);
        let nn_a = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(dataset(6, 1.0));
        let nn_b = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(dataset(6, 2.0));
        let (_, warm_a) = cache.get_or_prepare(&nn_a, &multi).expect("ok");
        assert!(warm_a > 0.0, "miss warms norms");
        let (_, warm_again) = cache.get_or_prepare(&nn_a, &multi).expect("ok");
        assert_eq!(warm_again, 0.0, "hit is free");
        cache.get_or_prepare(&nn_b, &multi).expect("ok");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 2, 0));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_evicts_oldest_when_over_budget() {
        let multi = MultiDevice::replicate(&Device::volta(), 2);
        let nn_a = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(dataset(6, 1.0));
        let nn_b = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(dataset(6, 2.0));
        // Budget sized so exactly one prepared entry fits.
        let probe = nn_a.prepare_shards(&multi);
        let mut cache = PreparedCache::new(probe.device_bytes() + 1);
        cache.get_or_prepare(&nn_a, &multi).expect("ok");
        cache.get_or_prepare(&nn_b, &multi).expect("ok");
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 1);
        // A is gone: touching it again is a miss (and evicts B).
        let (_, warm) = cache.get_or_prepare(&nn_a, &multi).expect("ok");
        assert!(warm > 0.0);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn pool_budget_comes_from_the_device_spec() {
        let multi = MultiDevice::replicate(&Device::volta(), 2);
        let cache = PreparedCache::<f64>::for_pool(&multi);
        assert_eq!(cache.budget_bytes(), 8 * 1024 * 1024 * 1024);
    }

    #[test]
    fn zero_byte_budget_still_serves_and_never_panics() {
        // Degenerate budget: every entry is oversized, so each lookup
        // evicts whatever is resident and admits the new entry anyway
        // (serving beats refusing). Deterministic, no panic.
        let multi = MultiDevice::replicate(&Device::volta(), 2);
        let mut cache = PreparedCache::new(0);
        let nn_a = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(dataset(6, 1.0));
        let nn_b = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(dataset(6, 2.0));
        let (shards_a, warm_a) = cache.get_or_prepare(&nn_a, &multi).expect("ok");
        assert!(warm_a > 0.0);
        assert_eq!(cache.len(), 1, "oversized entry is still admitted");
        assert!(cache.resident_bytes() > cache.budget_bytes());
        let (_, outcome) = cache.lookup(&nn_b, &multi).expect("ok");
        assert!(!outcome.hit);
        assert_eq!(outcome.evictions, 1, "the resident entry is evicted");
        assert_eq!(cache.len(), 1);
        // The evicted Arc stays usable by whoever still holds it.
        let r = nn_a
            .kneighbors_prepared(&shards_a, &dataset(6, 1.0), 2)
            .expect("stale shards still serve");
        assert_eq!(r.indices.len(), 6);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (0, 2, 1));
    }

    #[test]
    fn single_dataset_larger_than_the_whole_budget_is_admitted_once() {
        let multi = MultiDevice::replicate(&Device::volta(), 2);
        let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(dataset(8, 1.0));
        let bytes = nn.prepare_shards(&multi).device_bytes();
        // Budget strictly smaller than the one dataset we serve.
        let mut cache = PreparedCache::new(bytes / 2);
        let (_, first) = cache.lookup(&nn, &multi).expect("ok");
        assert!(!first.hit);
        assert_eq!(cache.len(), 1);
        // Repeated lookups of the same oversized entry are hits — it is
        // never self-evicted, so an over-budget tenant does not thrash.
        for _ in 0..3 {
            let (_, again) = cache.lookup(&nn, &multi).expect("ok");
            assert!(again.hit, "oversized resident entry must hit");
            assert_eq!(again.evictions, 0);
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (3, 1, 0));
    }

    #[test]
    fn burst_eviction_does_linear_accounting_work() {
        // Regression guard for the O(n²) eviction loop: admitting an
        // entry that forces E evictions must touch each victim's byte
        // accounting exactly once (E probes), not re-walk the resident
        // list per victim (which totals E·(E+1)/2 probes and made cold
        // bursts quadratic).
        let multi = MultiDevice::replicate(&Device::volta(), 2);
        let fits: Vec<_> = (0..6)
            .map(|i| {
                NearestNeighbors::new(Device::volta(), Distance::Euclidean)
                    .fit(dataset(6, 1.0 + i as f64))
            })
            .collect();
        let one = fits[0].prepare_shards(&multi).device_bytes();
        // Budget holds five entries; the sixth (slightly larger set
        // below) forces a multi-entry burst in a single lookup.
        let mut cache = PreparedCache::new(5 * one + 1);
        for nn in &fits[..5] {
            cache.lookup(nn, &multi).expect("ok");
        }
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.stats().evictions, 0);
        // A larger entry that needs more than one entry's worth of
        // space reclaimed: every eviction in the burst must cost
        // exactly one probe.
        let big = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(dataset(24, 9.0));
        cache.lookup(&big, &multi).expect("ok");
        let s = cache.stats();
        assert!(s.evictions >= 2, "burst expected: {s:?}");
        assert_eq!(
            s.evictions, s.eviction_probes,
            "eviction accounting must be O(E): {s:?}"
        );
        let check = cache.resident_bytes();
        assert!(check <= 5 * one + 1 || cache.len() == 1, "budget respected");
    }

    #[test]
    fn generations_get_distinct_entries_for_identical_bytes() {
        // The compactor's atomic swap relies on (content, generation)
        // keys: the same bytes looked up under a new generation is a
        // miss (its own prepared artifact), and both generations then
        // hit independently.
        let multi = MultiDevice::replicate(&Device::volta(), 2);
        let mut cache = PreparedCache::new(usize::MAX);
        let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(dataset(6, 1.0));
        let (_, g0) = cache.lookup_generation(&nn, &multi, 0).expect("ok");
        assert!(!g0.hit);
        let (_, g1) = cache.lookup_generation(&nn, &multi, 1).expect("ok");
        assert!(!g1.hit, "new generation must not alias the old entry");
        assert_eq!(cache.len(), 2);
        let (_, g0_again) = cache.lookup_generation(&nn, &multi, 0).expect("ok");
        let (_, g1_again) = cache.lookup_generation(&nn, &multi, 1).expect("ok");
        assert!(g0_again.hit && g1_again.hit);
        // Plain lookup is generation 0.
        let (_, plain) = cache.lookup(&nn, &multi).expect("ok");
        assert!(plain.hit);
    }

    #[test]
    fn eviction_racing_warm_shards_on_a_stale_handle_is_deterministic() {
        // The "race": a caller holds the Arc from a lookup while later
        // lookups evict that entry from the cache. The simulated-device
        // buffers are owned by the Arc, so warming and querying the
        // stale handle must keep working, byte-identical to a fresh
        // prepare — eviction only drops the cache's reference.
        let multi = MultiDevice::replicate(&Device::volta(), 2);
        let nn_a = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(dataset(6, 1.0));
        let nn_b = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(dataset(6, 2.0));
        let probe = nn_a.prepare_shards(&multi).device_bytes();
        let mut cache = PreparedCache::new(probe + 1);
        let (stale, _) = cache.lookup(&nn_a, &multi).expect("ok");
        // Evict A by inserting B into the one-entry budget.
        cache.lookup(&nn_b, &multi).expect("ok");
        assert_eq!(cache.stats().evictions, 1);
        // Re-warming the stale handle after its eviction: idempotent
        // (norms are already warmed, so zero additional sim time).
        let (rewarm_s, launches) = nn_a.warm_shards(&stale).expect("warm after evict");
        assert_eq!(rewarm_s, 0.0, "already-warm shards cost nothing");
        assert_eq!(launches, 0);
        let query = dataset(6, 1.0);
        let via_stale = nn_a.kneighbors_prepared(&stale, &query, 3).expect("ok");
        let fresh = nn_a.kneighbors_sharded(&multi, &query, 3).expect("ok");
        assert_eq!(via_stale.indices, fresh.indices);
        for (a, b) in via_stale.distances.iter().zip(&fresh.distances) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "stale handle must serve bytes");
            }
        }
    }
}
