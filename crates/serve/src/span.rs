//! Per-request spans: every serve request carries a deterministic trace
//! id and a typed event timeline, threaded through the engine's
//! discrete-event loop.
//!
//! Span taxonomy (DESIGN §13): a request's life is
//! `Enqueue → BatchAdmit → (CacheHit | CacheMiss → Prepare) →
//! ShardLaunch per device → (Retry | Degrade)* → Merge → Reply`,
//! or `Enqueue → Rejected` when admission control sheds it. Batches
//! admitted past the degrade watermark additionally carry an
//! [`SpanEvent::AdmissionDegrade`] marker. Every span **must** end in a
//! terminal event ([`SpanEvent::Reply`] or [`SpanEvent::Rejected`]) —
//! `xtask analyze`'s deny-severity `dropped-span` rule fails the gate
//! on serve/neighbors code that calls
//! [`RequestTraces::begin_request`] without a matching
//! [`RequestTraces::finish_request`]/[`RequestTraces::reject_request`].
//!
//! Timestamps are simulated seconds from the same sim-clock the kernel
//! profiler uses, so [`RequestTraces::chrome_trace`] produces a
//! per-request flame view that lines up with `--profile`'s kernel
//! timeline and opens directly in Perfetto.

use crate::admission::ShedReason;
use gpu_sim::{chrome_trace_envelope, json_escape};
use std::collections::BTreeMap;

/// One typed event on a request's timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum SpanEvent {
    /// The request arrived and was admitted to its dataset's open batch.
    Enqueue,
    /// Admission control shed the request (terminal).
    Rejected {
        /// Queued + executing requests at the rejection instant.
        backlog: usize,
        /// The typed shed reason (queue cliff, rate limit, watermark).
        reason: ShedReason,
    },
    /// The request's batch closed and was handed to the device pool.
    BatchAdmit {
        /// Engine-wide batch sequence number.
        batch: usize,
        /// Requests sharing the batch.
        size: usize,
    },
    /// The prepared-index cache served the batch's shards.
    CacheHit,
    /// The cache had to prepare (upload + warm) the batch's shards.
    CacheMiss {
        /// Entries evicted to fit the new one.
        evictions: u64,
    },
    /// Index preparation (upload + norm warming) charged to this batch.
    Prepare {
        /// Simulated seconds of preparation.
        seconds: f64,
    },
    /// One device shard's kernel execution.
    ShardLaunch {
        /// Shard index within the prepared plan.
        shard: usize,
        /// Device slot executing the shard.
        device_slot: usize,
        /// Simulated seconds attributed to the shard.
        seconds: f64,
    },
    /// The resilience cascade retried transient faults.
    Retry {
        /// Maximum attempts any tile needed.
        attempts: u32,
        /// Faults absorbed across the batch.
        faults: usize,
    },
    /// The resilience cascade degraded the execution plan.
    Degrade {
        /// The strategy that produced the returned distances.
        strategy: String,
    },
    /// Admission control routed the request's batch to degraded
    /// (low-footprint) execution because the backlog crossed the
    /// degrade watermark. Answers stay byte-identical (DESIGN §11).
    AdmissionDegrade {
        /// The degraded execution mode (e.g. `smem=Bloom`).
        strategy: String,
    },
    /// The brute-force fresh-segment scan ran alongside the prepared
    /// base for this batch (mutable datasets, DESIGN §16).
    FreshScan {
        /// Rows in the fresh segment at dispatch time.
        rows: usize,
        /// Tombstoned rows masked out of the scan's candidates.
        tombstoned: usize,
    },
    /// Base-arm and fresh-arm candidates merged under the canonical
    /// `cmp_dist_idx` order into live-rank coordinates.
    SegmentMerge {
        /// Base generation the batch was served against.
        generation: u64,
    },
    /// Per-shard results merged into the batch answer.
    Merge,
    /// The response was handed back to the caller (terminal).
    Reply {
        /// Queue + execution latency of the request.
        latency_s: f64,
    },
}

impl SpanEvent {
    /// Short stable name used in exports and summaries.
    pub fn name(&self) -> &'static str {
        match self {
            SpanEvent::Enqueue => "enqueue",
            SpanEvent::Rejected { .. } => "rejected",
            SpanEvent::BatchAdmit { .. } => "batch_admit",
            SpanEvent::CacheHit => "cache_hit",
            SpanEvent::CacheMiss { .. } => "cache_miss",
            SpanEvent::Prepare { .. } => "prepare",
            SpanEvent::ShardLaunch { .. } => "shard_launch",
            SpanEvent::Retry { .. } => "retry",
            SpanEvent::Degrade { .. } => "degrade",
            SpanEvent::AdmissionDegrade { .. } => "admission_degrade",
            SpanEvent::FreshScan { .. } => "fresh_scan",
            SpanEvent::SegmentMerge { .. } => "segment_merge",
            SpanEvent::Merge => "merge",
            SpanEvent::Reply { .. } => "reply",
        }
    }

    /// Whether this event closes a span.
    pub fn is_terminal(&self) -> bool {
        matches!(self, SpanEvent::Reply { .. } | SpanEvent::Rejected { .. })
    }
}

/// An event stamped with its simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Simulated seconds.
    pub t_s: f64,
    /// The event.
    pub event: SpanEvent,
}

/// The full timeline of one request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSpan {
    /// Deterministic trace id: FNV-1a over (request id, dataset,
    /// arrival-time bits) — stable across replays of the same request
    /// set.
    pub trace_id: u64,
    /// Echo of the request id.
    pub request_id: u64,
    /// Echo of the request's dataset.
    pub dataset: usize,
    /// The request's arrival time.
    pub arrival_s: f64,
    /// Events in simulated-time order (appended by the engine's
    /// deterministic event loop).
    pub events: Vec<TimedEvent>,
}

impl RequestSpan {
    /// Whether the span ended in a terminal event (reply or rejection).
    pub fn is_terminal(&self) -> bool {
        self.events.last().is_some_and(|e| e.event.is_terminal())
    }

    /// The timestamp of the first event matching `pred`, if any.
    fn first_t(&self, pred: impl Fn(&SpanEvent) -> bool) -> Option<f64> {
        self.events.iter().find(|e| pred(&e.event)).map(|e| e.t_s)
    }
}

/// Deterministic trace id for a request.
pub fn trace_id(request_id: u64, dataset: usize, arrival_s: f64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    mix(&request_id.to_le_bytes());
    mix(&(dataset as u64).to_le_bytes());
    mix(&arrival_s.to_bits().to_le_bytes());
    h
}

/// Collector for one replay's request spans, keyed by request id.
#[derive(Debug, Clone, Default)]
pub struct RequestTraces {
    spans: Vec<RequestSpan>,
    index_of: BTreeMap<u64, usize>,
}

impl RequestTraces {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a span for request `id` and records its
    /// [`SpanEvent::Enqueue`]. Every opened span must later be closed
    /// with [`Self::finish_request`] or [`Self::reject_request`] — the
    /// `dropped-span` lint enforces this pairing statically.
    pub fn begin_request(&mut self, id: u64, dataset: usize, arrival_s: f64) {
        let idx = self.spans.len();
        self.spans.push(RequestSpan {
            trace_id: trace_id(id, dataset, arrival_s),
            request_id: id,
            dataset,
            arrival_s,
            events: vec![TimedEvent {
                t_s: arrival_s,
                event: SpanEvent::Enqueue,
            }],
        });
        self.index_of.insert(id, idx);
    }

    /// Appends `event` at simulated time `t_s` to request `id`'s span.
    /// Unknown ids are ignored (the engine only emits events for spans
    /// it opened).
    pub fn push_event(&mut self, id: u64, t_s: f64, event: SpanEvent) {
        if let Some(&idx) = self.index_of.get(&id) {
            self.spans[idx].events.push(TimedEvent { t_s, event });
        }
    }

    /// Closes request `id`'s span with its terminal
    /// [`SpanEvent::Reply`].
    pub fn finish_request(&mut self, id: u64, t_s: f64, latency_s: f64) {
        self.push_event(id, t_s, SpanEvent::Reply { latency_s });
    }

    /// Closes request `id`'s span with its terminal
    /// [`SpanEvent::Rejected`] carrying the typed shed reason.
    pub fn reject_request(&mut self, id: u64, t_s: f64, backlog: usize, reason: ShedReason) {
        self.push_event(id, t_s, SpanEvent::Rejected { backlog, reason });
    }

    /// The collected spans, in span-open (admission) order.
    pub fn spans(&self) -> &[RequestSpan] {
        &self.spans
    }

    /// Consumes the collector, returning spans sorted by
    /// `(arrival_s, request_id)` — the canonical order, independent of
    /// input permutation.
    pub fn into_spans(mut self) -> Vec<RequestSpan> {
        self.spans.sort_by(|a, b| {
            a.arrival_s
                .total_cmp(&b.arrival_s)
                .then(a.request_id.cmp(&b.request_id))
        });
        self.spans
    }
}

/// Serializes request spans as chrome://tracing `trace_event` JSON
/// (same envelope as the kernel profiler's [`gpu_sim::chrome_trace`]).
///
/// Layout: one *process* per dataset (pid = dataset id), one *thread*
/// per request (tid = request id). Each served request renders a
/// `request` span (arrival → reply) with nested `queued` and `execute`
/// phases; rejected requests render a zero-width `rejected` marker.
/// Timestamps are deterministic simulated microseconds.
pub fn request_chrome_trace(spans: &[RequestSpan]) -> String {
    let mut events: Vec<String> = Vec::new();
    let mut seen_datasets: Vec<usize> = Vec::new();
    for s in spans {
        if !seen_datasets.contains(&s.dataset) {
            seen_datasets.push(s.dataset);
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                 \"args\":{{\"name\":\"dataset{}\"}}}}",
                s.dataset, s.dataset
            ));
        }
        let ts = s.arrival_s * 1e6;
        let trace = format!("{:016x}", s.trace_id);
        match s.events.last().map(|e| &e.event) {
            Some(SpanEvent::Reply { .. }) => {
                let end = s.events.last().map(|e| e.t_s).unwrap_or(s.arrival_s);
                // Execution begins at the first post-admission event
                // (cache outcome or shard launch); queued covers
                // arrival → that instant.
                let exec_start = s
                    .first_t(|e| {
                        matches!(
                            e,
                            SpanEvent::CacheHit
                                | SpanEvent::CacheMiss { .. }
                                | SpanEvent::Prepare { .. }
                                | SpanEvent::ShardLaunch { .. }
                        )
                    })
                    .unwrap_or(end);
                for (name, a, b) in [
                    ("request", s.arrival_s, end),
                    ("queued", s.arrival_s, exec_start),
                    ("execute", exec_start, end),
                ] {
                    events.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"serve\",\"ph\":\"X\",\
                         \"ts\":{:.4},\"dur\":{:.4},\"pid\":{},\"tid\":{},\
                         \"args\":{{\"trace\":\"{}\",\"events\":{}}}}}",
                        json_escape(name),
                        a * 1e6,
                        (b - a).max(0.0) * 1e6,
                        s.dataset,
                        s.request_id,
                        trace,
                        s.events.len()
                    ));
                }
            }
            last => {
                let reason = match last {
                    Some(SpanEvent::Rejected { reason, .. }) => reason.name(),
                    _ => "dropped",
                };
                events.push(format!(
                    "{{\"name\":\"rejected\",\"cat\":\"serve\",\"ph\":\"X\",\
                     \"ts\":{ts:.4},\"dur\":0.0,\"pid\":{},\"tid\":{},\
                     \"args\":{{\"trace\":\"{}\",\"reason\":\"{}\"}}}}",
                    s.dataset, s.request_id, trace, reason
                ));
            }
        }
    }
    chrome_trace_envelope(&events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, served: bool) -> RequestSpan {
        let mut traces = RequestTraces::new();
        traces.begin_request(id, 0, 1e-6 * id as f64);
        if served {
            traces.push_event(id, 2e-6, SpanEvent::BatchAdmit { batch: 0, size: 1 });
            traces.push_event(id, 2e-6, SpanEvent::CacheHit);
            traces.push_event(
                id,
                2e-6,
                SpanEvent::ShardLaunch {
                    shard: 0,
                    device_slot: 0,
                    seconds: 1e-6,
                },
            );
            traces.push_event(id, 3e-6, SpanEvent::Merge);
            traces.finish_request(id, 3e-6, 3e-6);
        } else {
            traces.reject_request(id, 1e-6 * id as f64, 9, ShedReason::QueueFull);
        }
        traces.into_spans().remove(0)
    }

    #[test]
    fn terminal_detection() {
        assert!(span(1, true).is_terminal());
        assert!(span(2, false).is_terminal());
        let mut traces = RequestTraces::new();
        traces.begin_request(3, 0, 0.0);
        assert!(!traces.spans()[0].is_terminal());
    }

    #[test]
    fn trace_ids_are_stable_and_distinct() {
        assert_eq!(trace_id(1, 0, 0.5), trace_id(1, 0, 0.5));
        assert_ne!(trace_id(1, 0, 0.5), trace_id(2, 0, 0.5));
        assert_ne!(trace_id(1, 0, 0.5), trace_id(1, 1, 0.5));
    }

    #[test]
    fn into_spans_sorts_canonically() {
        let mut traces = RequestTraces::new();
        traces.begin_request(5, 0, 3e-6);
        traces.begin_request(1, 0, 1e-6);
        let spans = traces.into_spans();
        assert_eq!(spans[0].request_id, 1);
        assert_eq!(spans[1].request_id, 5);
    }

    #[test]
    fn chrome_trace_shapes_served_and_rejected() {
        let json = request_chrome_trace(&[span(1, true), span(2, false)]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"dataset0\""));
        assert!(json.contains("\"name\":\"request\""));
        assert!(json.contains("\"name\":\"queued\""));
        assert!(json.contains("\"name\":\"execute\""));
        assert!(json.contains("\"name\":\"rejected\""));
        assert!(json.contains("\"ph\":\"X\""));
    }
}
