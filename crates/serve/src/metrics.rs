//! Deterministic serving-path metrics: counters, gauges, and
//! fixed-layout log-bucket histograms over *simulated* time.
//!
//! The registry is the signal substrate for ROADMAP item 4 (SLO-driven
//! admission control and autoscaling): every number it holds is a pure
//! function of the replayed request set. There is no wall clock, no
//! sampling, and no hash-map iteration order anywhere — counters and
//! gauges live in `BTreeMap`s, histogram bucket layout is a compile-time
//! constant, and values are recorded in the engine's canonical response
//! order — so a [`MetricsSnapshot`] rendered from the same request set
//! is **byte-identical** across `GPU_SIM_HOST_THREADS` settings and
//! arrival-order permutations (tested by proptest in
//! `tests/metrics.rs`).
//!
//! Export formats:
//! * [`MetricsSnapshot::to_json`] — the self-describing `metrics.v1`
//!   schema, mirroring `bench.v1`/`diag.v1`; validated by
//!   `bench::validate_metrics` (and `xtask check_bench_json --metrics`).
//! * [`MetricsSnapshot::to_prometheus`] — a Prometheus text-exposition
//!   snapshot for eyeballs and scrape-shaped tooling.
//!
//! Percentile contract: [`nearest_rank`] is the *single* definition of
//! a percentile in the serving layer. `ServeReport::latency_percentile`
//! (the stderr summary) applies it to exact sorted latencies;
//! [`LogHistogram::percentile`] applies the same rank to cumulative
//! bucket counts and returns the containing bucket's upper edge, so the
//! two always agree to within one bucket width (≤ [`HIST_GROWTH`]×).

use gpu_sim::json_escape;
use std::collections::BTreeMap;

/// Number of finite log-spaced histogram buckets (excluding the
/// underflow bucket `[0, HIST_MIN]` and the overflow bucket).
pub const HIST_BUCKETS: usize = 128;

/// Upper edge of the underflow bucket: 100 simulated nanoseconds.
pub const HIST_MIN: f64 = 1e-7;

/// Geometric growth factor between bucket edges: 2^(1/4) (~19% wide
/// buckets). 128 buckets span `1e-7 s .. ~429 s`, comfortably covering
/// every simulated serving latency.
pub const HIST_GROWTH: f64 = 1.189207115002721;

/// The 1-based nearest-rank index for percentile `p` over `n` samples:
/// `ceil(p/100 · n)` clamped to `[1, n]`. This is the one percentile
/// definition shared by the stderr summary, the registry histograms,
/// and the SLO tracker. Returns 0 when `n == 0`.
pub fn nearest_rank(p: f64, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let rank = ((p / 100.0) * n as f64).ceil();
    if rank.is_nan() || rank < 1.0 {
        1
    } else {
        (rank as usize).min(n)
    }
}

/// Nearest-rank percentile over an already-sorted slice; 0.0 when
/// empty. The sort order must be ascending ([`f64::total_cmp`]).
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    match nearest_rank(p, sorted.len()) {
        0 => 0.0,
        rank => sorted[rank - 1],
    }
}

/// A fixed-layout log-bucket histogram over non-negative simulated
/// seconds.
///
/// Layout (compile-time constant, never adapts to data — adaptivity
/// would break byte-identity across permutations): bucket 0 holds
/// `[0, HIST_MIN]`, bucket `i` holds
/// `(HIST_MIN·G^(i-1), HIST_MIN·G^i]`, and one overflow bucket holds
/// everything above the last finite edge.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    counts: [u64; HIST_BUCKETS + 1],
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; HIST_BUCKETS + 1],
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values. Well-defined bit-for-bit because the
    /// engine records in canonical (completion, id) response order.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Observations above the last finite bucket edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The upper edge of finite bucket `i` (`i == 0` is the underflow
    /// bucket edge, [`HIST_MIN`]).
    pub fn upper_edge(i: usize) -> f64 {
        debug_assert!(i <= HIST_BUCKETS);
        HIST_MIN * HIST_GROWTH.powi(i as i32)
    }

    /// Index of the finite bucket containing `v`, or `None` for
    /// overflow values.
    pub fn bucket_index(v: f64) -> Option<usize> {
        if v <= HIST_MIN {
            return Some(0);
        }
        if v > Self::upper_edge(HIST_BUCKETS) {
            return None;
        }
        // Log-estimate the bucket, then fix up against the exact edges
        // so the boundary semantics (`(lo, hi]`) are exact regardless of
        // floating-point log error.
        let mut i = ((v / HIST_MIN).ln() / HIST_GROWTH.ln()).ceil() as i64;
        i = i.clamp(1, HIST_BUCKETS as i64);
        let mut i = i as usize;
        while i > 1 && v <= Self::upper_edge(i - 1) {
            i -= 1;
        }
        while i < HIST_BUCKETS && v > Self::upper_edge(i) {
            i += 1;
        }
        Some(i)
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite values — simulated durations
    /// are non-negative by construction, so such a value means the
    /// engine is broken.
    pub fn record(&mut self, v: f64) {
        assert!(
            v.is_finite() && v >= 0.0,
            "histogram observation must be finite and non-negative, got {v}"
        );
        match Self::bucket_index(v) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum += v;
    }

    /// Non-empty finite buckets as `(index, upper_edge, count)`, in
    /// ascending index order.
    pub fn nonzero_buckets(&self) -> Vec<(usize, f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, Self::upper_edge(i), c))
            .collect()
    }

    /// The nearest-rank `p`-th percentile, reported as the upper edge of
    /// the bucket containing the rank-th smallest observation (so it
    /// overestimates the exact sample by at most one bucket width).
    /// Overflow observations report the first edge past the finite
    /// range; an empty histogram reports 0.0.
    pub fn percentile(&self, p: f64) -> f64 {
        let rank = nearest_rank(p, self.count as usize) as u64;
        if rank == 0 {
            return 0.0;
        }
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::upper_edge(i);
            }
        }
        HIST_MIN * HIST_GROWTH.powi(HIST_BUCKETS as i32 + 1)
    }
}

/// The deterministic metrics registry: named counters, gauges, and
/// [`LogHistogram`]s. All maps are `BTreeMap` so iteration (and thus
/// every rendered snapshot) is ordered by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to counter `name` (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets gauge `name` to `v`.
    ///
    /// # Panics
    ///
    /// Panics on non-finite `v` — `metrics.v1` is JSON and JSON has no
    /// NaN/Inf, so a non-finite gauge means the producer is broken.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        assert!(v.is_finite(), "non-finite gauge {name} = {v}");
        self.gauges.insert(name.to_string(), v);
    }

    /// Records `v` into histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(v);
    }

    /// Current value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The histogram registered under `name`.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// Freezes the registry into a named, renderable snapshot.
    pub fn snapshot(&self, name: &str) -> MetricsSnapshot {
        MetricsSnapshot {
            name: name.to_string(),
            counters: self.counters.clone().into_iter().collect(),
            gauges: self.gauges.clone().into_iter().collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(n, h)| HistogramSnapshot {
                    name: n.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    overflow: h.overflow(),
                    p50: h.percentile(50.0),
                    p99: h.percentile(99.0),
                    buckets: h.nonzero_buckets(),
                })
                .collect(),
        }
    }
}

/// One histogram inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Registry name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Observations past the finite bucket range.
    pub overflow: u64,
    /// Histogram-derived p50 (bucket upper edge; see
    /// [`LogHistogram::percentile`]).
    pub p50: f64,
    /// Histogram-derived p99.
    pub p99: f64,
    /// Non-empty finite buckets `(index, upper_edge, count)`.
    pub buckets: Vec<(usize, f64, u64)>,
}

/// A frozen, renderable view of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Snapshot name (the `name` field of the `metrics.v1` document).
    pub name: String,
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Formats an `f64` as a JSON number (shortest round-trip form), the
/// same convention `bench.v1` uses.
///
/// # Panics
///
/// Panics on non-finite values.
fn fmt_number(v: f64) -> String {
    assert!(v.is_finite(), "non-finite value {v} in metrics snapshot");
    format!("{v:?}")
}

impl MetricsSnapshot {
    /// Renders the snapshot as a `metrics.v1` JSON document:
    ///
    /// ```json
    /// {"schema":"metrics.v1","name":"...",
    ///  "counters":{"a":1}, "gauges":{"g":0.5},
    ///  "histograms":[{"name":"h","count":2,"sum":3.0,"overflow":0,
    ///                 "p50":...,"p99":...,
    ///                 "buckets":[{"i":0,"le":1e-7,"count":2}]}]}
    /// ```
    ///
    /// The rendering is canonical — sorted keys, shortest round-trip
    /// numbers, no whitespace variance — so equal registries render
    /// byte-identical documents.
    ///
    /// # Panics
    ///
    /// Panics when the snapshot violates its own schema (non-finite
    /// numbers, unsorted or duplicate names, bucket counts that do not
    /// sum to the histogram count): a self-validating writer, like the
    /// `bench.v1` reporter.
    pub fn to_json(&self) -> String {
        self.check();
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", json_escape(k)))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json_escape(k), fmt_number(*v)))
            .collect();
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|h| {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .map(|(i, le, c)| {
                        format!("{{\"i\":{i},\"le\":{},\"count\":{c}}}", fmt_number(*le))
                    })
                    .collect();
                format!(
                    "{{\"name\":\"{}\",\"count\":{},\"sum\":{},\"overflow\":{},\
                     \"p50\":{},\"p99\":{},\"buckets\":[{}]}}",
                    json_escape(&h.name),
                    h.count,
                    fmt_number(h.sum),
                    h.overflow,
                    fmt_number(h.p50),
                    fmt_number(h.p99),
                    buckets.join(",")
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"metrics.v1\",\"name\":\"{}\",\"counters\":{{{}}},\
             \"gauges\":{{{}}},\"histograms\":[{}]}}",
            json_escape(&self.name),
            counters.join(","),
            gauges.join(","),
            hists.join(",")
        )
    }

    /// Renders the snapshot in Prometheus text-exposition style.
    /// Counter names gain a `_total`-style verbatim pass-through (names
    /// in the registry already carry their unit suffixes); dots are
    /// mapped to underscores to fit the Prometheus grammar. Histograms
    /// render cumulative `_bucket{le=...}` series plus `_count`/`_sum`.
    pub fn to_prometheus(&self) -> String {
        fn prom_name(n: &str) -> String {
            n.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for (k, v) in &self.counters {
            let n = prom_name(k);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (k, v) in &self.gauges {
            let n = prom_name(k);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", fmt_number(*v)));
        }
        for h in &self.histograms {
            let n = prom_name(&h.name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cum = 0u64;
            for (_, le, c) in &h.buckets {
                cum += c;
                out.push_str(&format!("{n}_bucket{{le=\"{}\"}} {cum}\n", fmt_number(*le)));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n", fmt_number(h.sum)));
            out.push_str(&format!("{n}_count {}\n", h.count));
        }
        out
    }

    /// Structural self-checks shared by both renderers.
    fn check(&self) {
        assert!(!self.name.is_empty(), "metrics snapshot needs a name");
        for w in self.counters.windows(2) {
            assert!(w[0].0 < w[1].0, "counters must be strictly sorted");
        }
        for w in self.gauges.windows(2) {
            assert!(w[0].0 < w[1].0, "gauges must be strictly sorted");
        }
        for (k, v) in &self.gauges {
            assert!(v.is_finite(), "non-finite gauge {k} = {v}");
        }
        for h in &self.histograms {
            assert!(h.sum.is_finite(), "non-finite sum in histogram {}", h.name);
            let mut prev = f64::NEG_INFINITY;
            let mut total = h.overflow;
            for (_, le, c) in &h.buckets {
                assert!(*le > prev, "bucket edges must increase in {}", h.name);
                prev = *le;
                total += c;
            }
            assert_eq!(
                total, h.count,
                "bucket counts must sum to count in {}",
                h.name
            );
            assert!(
                h.p50.is_finite() && h.p99.is_finite() && h.p50 <= h.p99,
                "percentiles must be finite and ordered in {}",
                h.name
            );
        }
        for w in self.histograms.windows(2) {
            assert!(w[0].name < w[1].name, "histograms must be strictly sorted");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_edges() {
        assert_eq!(nearest_rank(50.0, 0), 0);
        assert_eq!(nearest_rank(50.0, 1), 1);
        assert_eq!(nearest_rank(0.0, 5), 1);
        assert_eq!(nearest_rank(100.0, 5), 5);
        assert_eq!(nearest_rank(50.0, 4), 2);
        assert_eq!(nearest_rank(99.0, 100), 99);
        assert_eq!(nearest_rank(200.0, 5), 5);
    }

    #[test]
    fn bucket_boundaries_are_half_open() {
        assert_eq!(LogHistogram::bucket_index(0.0), Some(0));
        assert_eq!(LogHistogram::bucket_index(HIST_MIN), Some(0));
        let e1 = LogHistogram::upper_edge(1);
        assert_eq!(LogHistogram::bucket_index(e1), Some(1));
        assert_eq!(LogHistogram::bucket_index(e1 * 1.0000001), Some(2));
        let top = LogHistogram::upper_edge(HIST_BUCKETS);
        assert_eq!(LogHistogram::bucket_index(top), Some(HIST_BUCKETS));
        assert_eq!(LogHistogram::bucket_index(top * 1.01), None);
    }

    #[test]
    fn percentile_matches_bucket_of_exact_rank() {
        let mut h = LogHistogram::new();
        let samples = [1e-6, 2e-6, 3e-6, 4e-6, 1e-3];
        for s in samples {
            h.record(s);
        }
        // Rank of p50 over 5 samples is 3 → sample 3e-6.
        let expect = LogHistogram::upper_edge(LogHistogram::bucket_index(3e-6).unwrap());
        assert_eq!(h.percentile(50.0), expect);
        // p99 → rank 5 → the 1e-3 outlier's bucket.
        let expect = LogHistogram::upper_edge(LogHistogram::bucket_index(1e-3).unwrap());
        assert_eq!(h.percentile(99.0), expect);
        assert_eq!(
            h.percentile(50.0).min(h.percentile(99.0)),
            h.percentile(50.0)
        );
    }

    #[test]
    fn empty_histogram_is_defined() {
        let h = LogHistogram::new();
        assert_eq!(h.percentile(50.0), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn snapshot_renders_canonical_json_and_prometheus() {
        let mut reg = MetricsRegistry::new();
        reg.inc("serve.requests_total", 3);
        reg.set_gauge("serve.qps", 125.5);
        reg.observe("serve.latency_s", 2e-6);
        reg.observe("serve.latency_s", 3e-6);
        let snap = reg.snapshot("unit");
        let json = snap.to_json();
        assert!(json.starts_with("{\"schema\":\"metrics.v1\",\"name\":\"unit\""));
        assert!(json.contains("\"serve.requests_total\":3"));
        assert!(json.contains("\"serve.qps\":125.5"));
        assert!(json.contains("\"histograms\":[{\"name\":\"serve.latency_s\",\"count\":2"));
        let prom = snap.to_prometheus();
        assert!(prom.contains("serve_requests_total 3"));
        assert!(prom.contains("# TYPE serve_latency_s histogram"));
        assert!(prom.contains("serve_latency_s_count 2"));
        assert!(prom.contains("le=\"+Inf\"} 2"));
        // Same registry → byte-identical render.
        assert_eq!(json, reg.snapshot("unit").to_json());
    }

    #[test]
    #[should_panic(expected = "non-finite gauge")]
    fn non_finite_gauge_panics() {
        MetricsRegistry::new().set_gauge("bad", f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_observation_panics() {
        LogHistogram::new().record(-1.0);
    }
}
