//! Per-dataset SLO budgets: a target p99 latency, an error budget, and
//! burn rates over sliding simulated-time windows.
//!
//! An [`SloBudget`] says "the p99 latency of dataset *d* stays under
//! `target_p99_s`, with at most `error_budget` of requests allowed to
//! breach it". [`assess`] replays a response set against the budget:
//! overall breach fraction, budget burn (breach fraction over the
//! budget — burn > 1.0 means the SLO is violated), and the worst burn
//! over sliding windows of `window_s` (half-window stride), which is
//! the early-warning signal admission control and autoscaling (ROADMAP
//! item 4) will act on. Everything is computed from simulated
//! timestamps in canonical response order, so SLO reports inherit the
//! engine's bit-for-bit determinism.

use crate::metrics::MetricsRegistry;

/// Cap on assessed sliding windows; past it the stride widens so the
/// report stays bounded (the cap is far above any realistic replay).
const MAX_WINDOWS: usize = 4096;

/// A per-dataset latency SLO.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloBudget {
    /// The p99 latency target in simulated seconds.
    pub target_p99_s: f64,
    /// Allowed fraction of requests breaching the target (e.g. 0.01).
    pub error_budget: f64,
    /// Sliding-window length in simulated seconds for burn tracking.
    pub window_s: f64,
}

impl SloBudget {
    /// A budget with the conventional 1% error budget and a window of
    /// 100 × the target (so one window holds enough traffic for the
    /// fraction to mean something).
    pub fn p99(target_p99_s: f64) -> Self {
        assert!(
            target_p99_s > 0.0 && target_p99_s.is_finite(),
            "SLO target must be positive and finite"
        );
        Self {
            target_p99_s,
            error_budget: 0.01,
            window_s: target_p99_s * 100.0,
        }
    }

    /// Overrides the error budget.
    pub fn with_error_budget(mut self, error_budget: f64) -> Self {
        assert!(
            error_budget > 0.0 && error_budget <= 1.0,
            "error budget must be in (0, 1]"
        );
        self.error_budget = error_budget;
        self
    }

    /// Overrides the sliding-window length.
    pub fn with_window(mut self, window_s: f64) -> Self {
        assert!(
            window_s > 0.0 && window_s.is_finite(),
            "SLO window must be positive and finite"
        );
        self.window_s = window_s;
        self
    }
}

/// Burn accounting for one sliding window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowBurn {
    /// Window start (simulated seconds).
    pub start_s: f64,
    /// Responses completing inside the window.
    pub requests: u64,
    /// Of those, responses over the latency target.
    pub breaches: u64,
}

/// The assessed SLO outcome for one dataset over one replay.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Dataset id the budget applies to.
    pub dataset: usize,
    /// The budget that was assessed.
    pub budget: SloBudget,
    /// Responses assessed.
    pub requests: u64,
    /// Responses over `target_p99_s`.
    pub breaches: u64,
    /// Sliding windows (half-window stride), in start order.
    pub windows: Vec<WindowBurn>,
}

impl SloReport {
    /// Fraction of responses breaching the target (0.0 when empty).
    pub fn breach_fraction(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.breaches as f64 / self.requests as f64
        }
    }

    /// Overall error-budget burn: breach fraction over the budget.
    /// Burn ≤ 1.0 means the SLO held.
    pub fn budget_burn(&self) -> f64 {
        self.breach_fraction() / self.budget.error_budget
    }

    /// The worst burn over any sliding window (0.0 with no windows).
    pub fn worst_window_burn(&self) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.requests > 0)
            .map(|w| (w.breaches as f64 / w.requests as f64) / self.budget.error_budget)
            .fold(0.0, f64::max)
    }

    /// Records this report's signals into `reg` under
    /// `serve.d<dataset>.slo_*` names.
    pub fn record(&self, reg: &mut MetricsRegistry) {
        let d = self.dataset;
        reg.inc(&format!("serve.d{d}.slo_requests_total"), self.requests);
        reg.inc(&format!("serve.d{d}.slo_breaches_total"), self.breaches);
        reg.set_gauge(
            &format!("serve.d{d}.slo_target_p99_s"),
            self.budget.target_p99_s,
        );
        reg.set_gauge(&format!("serve.d{d}.slo_budget_burn"), self.budget_burn());
        reg.set_gauge(
            &format!("serve.d{d}.slo_worst_window_burn"),
            self.worst_window_burn(),
        );
    }
}

/// Assesses `budget` over one dataset's `(completion_s, latency_s)`
/// pairs (any order; windowing is order-independent by construction).
pub fn assess(dataset: usize, budget: SloBudget, responses: &[(f64, f64)]) -> SloReport {
    let requests = responses.len() as u64;
    let breaches = responses
        .iter()
        .filter(|(_, lat)| *lat > budget.target_p99_s)
        .count() as u64;
    let mut windows = Vec::new();
    if !responses.is_empty() {
        let t0 = responses
            .iter()
            .map(|(c, _)| *c)
            .fold(f64::INFINITY, f64::min);
        let t1 = responses
            .iter()
            .map(|(c, _)| *c)
            .fold(f64::NEG_INFINITY, f64::max);
        let mut stride = budget.window_s / 2.0;
        let span = (t1 - t0).max(0.0);
        if span / stride > MAX_WINDOWS as f64 {
            stride = span / MAX_WINDOWS as f64;
        }
        let mut j = 0usize;
        loop {
            let start = t0 + stride * j as f64;
            if start > t1 {
                break;
            }
            let end = start + budget.window_s;
            let mut w = WindowBurn {
                start_s: start,
                requests: 0,
                breaches: 0,
            };
            for (c, lat) in responses {
                if *c >= start && *c < end {
                    w.requests += 1;
                    if *lat > budget.target_p99_s {
                        w.breaches += 1;
                    }
                }
            }
            windows.push(w);
            j += 1;
        }
    }
    SloReport {
        dataset,
        budget,
        requests,
        breaches,
        windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burn_rates_follow_breach_fraction() {
        let budget = SloBudget::p99(1e-3).with_error_budget(0.1);
        // 10 responses, 2 over target.
        let responses: Vec<(f64, f64)> = (0..10)
            .map(|i| (i as f64 * 1e-3, if i < 2 { 2e-3 } else { 1e-4 }))
            .collect();
        let r = assess(0, budget, &responses);
        assert_eq!((r.requests, r.breaches), (10, 2));
        assert!((r.breach_fraction() - 0.2).abs() < 1e-12);
        assert!((r.budget_burn() - 2.0).abs() < 1e-12);
        // The breaches cluster early, so some window burns hotter than
        // the overall rate.
        assert!(r.worst_window_burn() >= r.budget_burn());
    }

    #[test]
    fn empty_response_set_is_defined() {
        let r = assess(0, SloBudget::p99(1e-3), &[]);
        assert_eq!(r.breach_fraction(), 0.0);
        assert_eq!(r.budget_burn(), 0.0);
        assert_eq!(r.worst_window_burn(), 0.0);
        assert!(r.windows.is_empty());
    }

    #[test]
    fn record_lands_in_the_registry() {
        let mut reg = MetricsRegistry::new();
        let r = assess(1, SloBudget::p99(1e-3), &[(0.0, 2e-3), (1e-4, 1e-5)]);
        r.record(&mut reg);
        assert_eq!(reg.counter("serve.d1.slo_requests_total"), 2);
        assert_eq!(reg.counter("serve.d1.slo_breaches_total"), 1);
        assert!(reg.gauge("serve.d1.slo_budget_burn").unwrap() > 1.0);
    }
}
