//! The micro-batched request engine: a deterministic discrete-event
//! simulation of a k-NN serving loop.
//!
//! Requests arrive at simulated timestamps, one query row each, tagged
//! with the dataset they query. The engine keeps one open batch per
//! dataset and closes a batch when it fills ([`ServeConfig::max_batch`])
//! or when its oldest request has waited [`ServeConfig::max_wait_s`];
//! closed batches execute serially on the device pool (devices inside
//! the pool still parallelize each batch's slabs, exactly like
//! `kneighbors_sharded`). Admission control (DESIGN §14) runs three
//! levers hard-to-soft: arrivals are shed outright once the backlog —
//! queued plus not-yet-completed requests — reaches
//! [`ServeConfig::max_queue`] (the HTTP-429 cliff), shed with typed
//! reasons past the [`AdmissionConfig`] watermarks or an empty
//! per-dataset token bucket, and *degraded* (routed through the
//! bloom-filter smem representation, byte-identical answers) past the
//! degrade watermark.
//!
//! Observability: every replay threads a [`RequestTraces`] collector
//! through the event loop (enqueue → batch-admit → cache hit/miss →
//! prepare → per-shard launch → retry/degrade → merge → reply) and
//! folds the outcome into the engine's [`MetricsRegistry`] — counters,
//! gauges, latency histograms, and per-dataset SLO burn (DESIGN §13).
//! Both are pure functions of the request set, so snapshots and traces
//! are byte-identical across host-thread counts and arrival
//! permutations.
//!
//! Determinism: batching only changes *when* a query runs and *which
//! rows share a tile*, and per-row results are independent of tile
//! composition (DESIGN §10); the engine funnels into the same execution
//! core as `kneighbors_sharded`, so every served response is
//! byte-identical to the one-shot answer for the same query row.

use crate::admission::{AdmissionConfig, AdmissionDecision, Rejection, ShedReason, TokenBucket};
use crate::cache::{CacheStats, PreparedCache};
use crate::fingerprint::fingerprint;
use crate::metrics::{percentile_sorted, MetricsRegistry};
use crate::segment::{merge_arms, AppliedOp, CompactionJob, MutableDataset};
use crate::slo::{assess, SloBudget, SloReport};
use crate::span::{RequestSpan, RequestTraces, SpanEvent};
use crate::wal::{WalError, WalRecord};
use kernels::{KernelError, SmemMode};
use neighbors::{IvfIndex, IvfParams, IvfPrepared, MultiDevice, NearestNeighbors};
use sparse::{CsrMatrix, Idx, Real};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How the engine generates candidates for each batch (DESIGN §15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexMode {
    /// Brute-force scan of every index row (the default): answers are
    /// exact and degraded batches reroute through the bloom-filter smem
    /// representation, byte-identical by DESIGN §11.
    #[default]
    Exact,
    /// IVF approximate tier: a seeded [`IvfIndex`] is fitted (and
    /// cached) per dataset; batches probe `nprobe` posting lists and
    /// rerank them exactly. Degraded batches *halve* `nprobe` instead
    /// of switching smem — trading recall, never answer integrity
    /// (every returned pair carries an exact kernel distance,
    /// deterministic across host threads and pool sizes).
    Ivf {
        /// Posting lists to fit. `0` = auto (`ceil(sqrt(rows))`).
        nlist: usize,
        /// Lists probed per query (clamped to `[1, nlist]`;
        /// `nprobe == nlist` routes through the exact serving path, so
        /// it reproduces the exact oracle byte for byte).
        nprobe: usize,
    },
}

/// Batching and admission knobs for the request engine.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Neighbors returned per query.
    pub k: usize,
    /// A batch dispatches as soon as it holds this many requests.
    pub max_batch: usize,
    /// ... or as soon as its oldest request has waited this long
    /// (simulated seconds).
    pub max_wait_s: f64,
    /// Reject arrivals once this many admitted requests are still
    /// queued or executing.
    pub max_queue: usize,
    /// Serve without the prepared-index cache: every batch re-prepares
    /// (re-uploads, re-warms) its index from scratch. Exists to measure
    /// exactly what the cache buys; never faster.
    pub per_query_prepare: bool,
    /// SLO-driven admission control: per-dataset token buckets and
    /// degrade/shed watermarks ([`AdmissionConfig`]). `None` keeps only
    /// the hard `max_queue` cliff.
    pub admission: Option<AdmissionConfig>,
    /// Candidate-generation tier ([`IndexMode::Exact`] by default).
    pub index: IndexMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            k: 10,
            max_batch: 8,
            max_wait_s: 200e-6,
            max_queue: 1024,
            per_query_prepare: false,
            admission: None,
            index: IndexMode::Exact,
        }
    }
}

/// One incoming query: a single row against dataset `dataset`.
#[derive(Debug, Clone)]
pub struct Request<T> {
    /// Caller-chosen request id, echoed in the response.
    pub id: u64,
    /// Which fitted dataset this query targets (index into the slice
    /// passed to [`ServeEngine::replay`]).
    pub dataset: usize,
    /// Simulated arrival time in seconds.
    pub arrival_s: f64,
    /// The query row (`1 × cols`).
    pub row: CsrMatrix<T>,
}

/// The served answer for one request.
#[derive(Debug, Clone)]
pub struct Response<T> {
    /// Echo of [`Request::id`].
    pub id: u64,
    /// Echo of [`Request::dataset`].
    pub dataset: usize,
    /// Neighbor indices, ascending by distance.
    pub indices: Vec<usize>,
    /// The corresponding distances.
    pub distances: Vec<T>,
    /// Simulated arrival time.
    pub arrival_s: f64,
    /// When the request's batch closed and was handed to the device.
    pub dispatch_s: f64,
    /// When the batch's kernels finished.
    pub completion_s: f64,
}

impl<T> Response<T> {
    /// Queue + execution latency in simulated seconds.
    pub fn latency_s(&self) -> f64 {
        self.completion_s - self.arrival_s
    }
}

/// Aggregate outcome of a replay.
#[derive(Debug, Clone)]
pub struct ServeReport<T> {
    /// Served responses, in completion order (ties by id).
    pub responses: Vec<Response<T>>,
    /// Requests shed by admission control (typed reason per id), in
    /// arrival order.
    pub rejected: Vec<Rejection>,
    /// Batches executed.
    pub batches: usize,
    /// Simulated seconds spent executing kernels (excludes queue idle
    /// time; includes norm warming charged to cache misses).
    pub busy_seconds: f64,
    /// Last completion minus first arrival.
    pub makespan_s: f64,
    /// Cache counters accumulated during this replay.
    pub cache: CacheStats,
    /// Per-request spans in canonical `(arrival_s, id)` order; every
    /// span ends in a terminal event (reply or rejection).
    pub spans: Vec<RequestSpan>,
    /// SLO assessments for datasets with a configured
    /// [`SloBudget`] (see [`ServeEngine::set_slo`]), in dataset order.
    pub slo: Vec<SloReport>,
    /// Requests served through degraded (low-footprint) execution after
    /// their batch crossed the admission degrade watermark.
    pub degraded_requests: u64,
    /// Batches dispatched in degraded mode.
    pub degraded_batches: u64,
}

impl<T> ServeReport<T> {
    /// Served queries per simulated second.
    pub fn qps(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.responses.len() as f64 / self.makespan_s
        } else {
            0.0
        }
    }

    /// The `p`-th latency percentile in simulated seconds, using the
    /// workspace-wide nearest-rank definition
    /// ([`crate::metrics::nearest_rank`]) — the same rank rule the
    /// `metrics.v1` histograms apply, so the stderr summary and the
    /// registry always agree to within one histogram bucket width.
    ///
    /// Defined for every input: 0.0 with no served responses, the
    /// single latency with one. Never panics — simulated latencies are
    /// finite by construction and sorting uses [`f64::total_cmp`].
    pub fn latency_percentile(&self, p: f64) -> f64 {
        let mut lat: Vec<f64> = self.responses.iter().map(Response::latency_s).collect();
        lat.sort_by(f64::total_cmp);
        percentile_sorted(&lat, p)
    }

    /// Shed counts per typed reason, in [`ShedReason::ALL`] order —
    /// what the serve CLI's stderr summary prints so shedding is
    /// visible without a metrics snapshot.
    pub fn shed_counts(&self) -> [(ShedReason, usize); 3] {
        ShedReason::ALL.map(|reason| {
            (
                reason,
                self.rejected.iter().filter(|r| r.reason == reason).count(),
            )
        })
    }

    /// Fraction of arrivals shed (0.0 when nothing arrived).
    pub fn shed_fraction(&self) -> f64 {
        let arrived = self.responses.len() + self.rejected.len();
        if arrived == 0 {
            0.0
        } else {
            self.rejected.len() as f64 / arrived as f64
        }
    }
}

/// Stacks single-row queries into one `rows × cols` batch matrix.
fn vstack<T: Real>(rows: &[&CsrMatrix<T>], cols: usize) -> CsrMatrix<T> {
    let mut indptr = Vec::with_capacity(rows.len() + 1);
    let mut indices: Vec<Idx> = Vec::new();
    let mut values: Vec<T> = Vec::new();
    indptr.push(0);
    for r in rows {
        indices.extend_from_slice(r.indices());
        values.extend_from_slice(r.values());
        indptr.push(indices.len());
    }
    CsrMatrix::from_parts(rows.len(), cols, indptr, indices, values)
        .expect("stacking valid rows preserves CSR invariants")
}

/// The serving loop: fitted estimators, a device pool, a prepared-index
/// cache, the batching configuration, and the metrics registry every
/// replay folds its signals into.
pub struct ServeEngine<T> {
    multi: MultiDevice,
    cache: PreparedCache<T>,
    config: ServeConfig,
    metrics: MetricsRegistry,
    slos: BTreeMap<usize, SloBudget>,
    /// Fitted IVF artifacts per dataset id (IVF mode only), keyed by
    /// content fingerprint + pool size so refits and reshards are
    /// detected exactly like [`PreparedCache`] misses.
    ivf: BTreeMap<usize, IvfEntry<T>>,
}

/// What `ivf_lookup` hands a dispatching batch: the fitted index, its
/// prepared posting lists, the fit's simulated seconds, and whether
/// this call paid them (false on a cache hit).
type IvfArtifact<T> = (Arc<IvfIndex<T>>, Arc<IvfPrepared<T>>, f64, bool);

/// One cached IVF artifact: the fitted index plus its posting lists
/// prepared for the engine's pool.
struct IvfEntry<T> {
    fingerprint: u64,
    nlist: usize,
    devices: usize,
    index: Arc<IvfIndex<T>>,
    prepared: Arc<IvfPrepared<T>>,
}

struct OpenBatch<T> {
    requests: Vec<Request<T>>,
    /// Sticky: set when any member was admitted past the degrade
    /// watermark; the whole batch then executes in degraded mode.
    degraded: bool,
}

/// Mutable state of one replay's event loop, bundled so
/// [`ServeEngine::dispatch`] stays a readable call.
struct ReplayState<T> {
    open: Vec<OpenBatch<T>>,
    responses: Vec<Response<T>>,
    rejected: Vec<Rejection>,
    /// (completion, count) of still-executing batches.
    inflight: Vec<(f64, usize)>,
    device_free_at: f64,
    batches: usize,
    busy_seconds: f64,
    traces: RequestTraces,
    retries: u64,
    degrades: u64,
    faults: u64,
    shard_launches: u64,
    prepares: u64,
    /// Per-dataset admission token buckets (empty without admission).
    buckets: Vec<TokenBucket>,
    /// Lazily-built degraded-mode clones of the fitted estimators
    /// (same fitted index, bloom-filter smem; DESIGN §14).
    degraded_fit: Vec<Option<NearestNeighbors<T>>>,
    degraded_requests: u64,
    degraded_batches: u64,
    /// `ann.*` accounting (IVF mode only; all zero in exact mode).
    ann_searches: u64,
    ann_probes: u64,
    ann_shortlist_rows: u64,
    ann_fits: u64,
    ann_degraded_nprobe: u64,
}

impl<T: Real> ServeEngine<T> {
    /// Creates an engine over `multi` with the given config and a cache
    /// budgeted from the pool's device spec
    /// ([`PreparedCache::for_pool`]).
    pub fn new(multi: MultiDevice, config: ServeConfig) -> Self {
        let cache = PreparedCache::for_pool(&multi);
        Self {
            multi,
            cache,
            config,
            metrics: MetricsRegistry::new(),
            slos: BTreeMap::new(),
            ivf: BTreeMap::new(),
        }
    }

    /// Switches the candidate-generation tier (builder form).
    pub fn with_index_mode(mut self, index: IndexMode) -> Self {
        self.config.index = index;
        self
    }

    /// Replaces the cache with one of an explicit byte budget.
    pub fn with_cache_budget(mut self, budget_bytes: usize) -> Self {
        self.cache = PreparedCache::new(budget_bytes);
        self
    }

    /// Attaches SLO-driven admission control (token buckets + degrade/
    /// shed watermarks) to subsequent replays.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.config.admission = Some(admission);
        self
    }

    /// Sets the latency SLO for `dataset` (builder form of
    /// [`Self::set_slo`]).
    pub fn with_slo(mut self, dataset: usize, budget: SloBudget) -> Self {
        self.set_slo(dataset, budget);
        self
    }

    /// Sets the latency SLO for `dataset`: subsequent replays assess
    /// the budget over that dataset's responses, report it in
    /// [`ServeReport::slo`], and record burn signals in the registry.
    pub fn set_slo(&mut self, dataset: usize, budget: SloBudget) {
        self.slos.insert(dataset, budget);
    }

    /// The engine's cache statistics so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The metrics registry accumulated over every replay so far.
    /// Counters accumulate across replays; gauges reflect the most
    /// recent replay; histograms accumulate observations.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Replays a request stream against `fitted` estimators (one per
    /// dataset id; each must already be [`NearestNeighbors::fit`]).
    /// Requests are processed in `(arrival_s, id)` order regardless of
    /// input order, so a replay is a pure function of its request set.
    ///
    /// # Errors
    ///
    /// Returns the first kernel error any batch produces, or a
    /// [`KernelError::ShapeMismatch`] when a request's dataset id is
    /// out of range.
    pub fn replay(
        &mut self,
        fitted: &[NearestNeighbors<T>],
        requests: &[Request<T>],
    ) -> Result<ServeReport<T>, KernelError> {
        let stats_before = self.cache.stats();
        let mut order: Vec<&Request<T>> = requests.iter().collect();
        order.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s).then(a.id.cmp(&b.id)));

        let admission = self.config.admission;
        let mut st = ReplayState {
            open: (0..fitted.len())
                .map(|_| OpenBatch {
                    requests: Vec::new(),
                    degraded: false,
                })
                .collect(),
            responses: Vec::new(),
            rejected: Vec::new(),
            inflight: Vec::new(),
            device_free_at: 0.0,
            batches: 0,
            busy_seconds: 0.0,
            traces: RequestTraces::new(),
            retries: 0,
            degrades: 0,
            faults: 0,
            shard_launches: 0,
            prepares: 0,
            buckets: admission
                .map(|cfg| vec![TokenBucket::new(&cfg); fitted.len()])
                .unwrap_or_default(),
            degraded_fit: (0..fitted.len()).map(|_| None).collect(),
            degraded_requests: 0,
            degraded_batches: 0,
            ann_searches: 0,
            ann_probes: 0,
            ann_shortlist_rows: 0,
            ann_fits: 0,
            ann_degraded_nprobe: 0,
        };
        let mut next = 0usize;

        loop {
            // The earliest forced dispatch: an open batch whose oldest
            // request hits its wait deadline. Ties break by dataset id.
            let deadline = st
                .open
                .iter()
                .enumerate()
                .filter_map(|(d, b)| {
                    b.requests
                        .first()
                        .map(|r| (r.arrival_s + self.config.max_wait_s, d))
                })
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let arrival = order.get(next).map(|r| r.arrival_s);

            match (deadline, arrival) {
                (Some((t, d)), Some(at)) if t <= at => {
                    self.dispatch(fitted, &mut st, d, t)?;
                }
                (_, Some(at)) => {
                    let r = order[next];
                    next += 1;
                    if r.dataset >= fitted.len() {
                        return Err(KernelError::ShapeMismatch {
                            a_cols: r.dataset,
                            b_cols: fitted.len(),
                        });
                    }
                    st.inflight.retain(|&(done, _)| done > at);
                    let backlog: usize = st.open.iter().map(|b| b.requests.len()).sum::<usize>()
                        + st.inflight.iter().map(|&(_, n)| n).sum::<usize>();
                    st.traces.begin_request(r.id, r.dataset, r.arrival_s);
                    let d = r.dataset;
                    let decision = match admission {
                        Some(cfg) => st.buckets[d].admit(&cfg, at, backlog, self.config.max_queue),
                        None if backlog >= self.config.max_queue => {
                            AdmissionDecision::Shed(ShedReason::QueueFull)
                        }
                        None => AdmissionDecision::Admit,
                    };
                    match decision {
                        AdmissionDecision::Shed(reason) => {
                            st.rejected.push(Rejection { id: r.id, reason });
                            st.traces.reject_request(r.id, at, backlog, reason);
                            continue;
                        }
                        AdmissionDecision::Degrade => st.open[d].degraded = true,
                        AdmissionDecision::Admit => {}
                    }
                    st.open[d].requests.push(r.clone());
                    if st.open[d].requests.len() >= self.config.max_batch {
                        self.dispatch(fitted, &mut st, d, at)?;
                    }
                }
                (Some((t, d)), None) => {
                    self.dispatch(fitted, &mut st, d, t)?;
                }
                (None, None) => break,
            }
        }

        st.responses.sort_by(|a, b| {
            a.completion_s
                .total_cmp(&b.completion_s)
                .then(a.id.cmp(&b.id))
        });
        let first_arrival = order.first().map(|r| r.arrival_s).unwrap_or(0.0);
        let makespan_s = st
            .responses
            .iter()
            .map(|r| r.completion_s)
            .fold(0.0f64, f64::max)
            - first_arrival;
        let after = self.cache.stats();
        let mut report = ServeReport {
            responses: st.responses,
            rejected: st.rejected,
            batches: st.batches,
            busy_seconds: st.busy_seconds,
            makespan_s: makespan_s.max(0.0),
            cache: CacheStats {
                hits: after.hits - stats_before.hits,
                misses: after.misses - stats_before.misses,
                evictions: after.evictions - stats_before.evictions,
                eviction_probes: after.eviction_probes - stats_before.eviction_probes,
            },
            spans: st.traces.into_spans(),
            slo: Vec::new(),
            degraded_requests: st.degraded_requests,
            degraded_batches: st.degraded_batches,
        };
        let counts = ReplayCounts {
            retries: st.retries,
            degrades: st.degrades,
            faults: st.faults,
            shard_launches: st.shard_launches,
            prepares: st.prepares,
            ann_searches: st.ann_searches,
            ann_probes: st.ann_probes,
            ann_shortlist_rows: st.ann_shortlist_rows,
            ann_fits: st.ann_fits,
            ann_degraded_nprobe: st.ann_degraded_nprobe,
        };
        self.record_replay(&mut report, &counts);
        Ok(report)
    }

    /// Folds one replay's outcome into the engine's registry and
    /// assesses configured SLOs (filling [`ServeReport::slo`]).
    fn record_replay(&mut self, report: &mut ServeReport<T>, extra: &ReplayCounts) {
        let m = &mut self.metrics;
        let served = report.responses.len() as u64;
        m.inc(
            "serve.requests_arrived_total",
            served + report.rejected.len() as u64,
        );
        m.inc("serve.requests_served_total", served);
        m.inc(
            "serve.requests_rejected_total",
            report.rejected.len() as u64,
        );
        for (reason, n) in report.shed_counts() {
            m.inc(&format!("serve.shed_{}_total", reason.name()), n as u64);
        }
        m.inc("serve.degraded_requests_total", report.degraded_requests);
        m.inc("serve.degraded_batches_total", report.degraded_batches);
        m.inc("serve.batches_total", report.batches as u64);
        m.inc("serve.cache_hits_total", report.cache.hits);
        m.inc("serve.cache_misses_total", report.cache.misses);
        m.inc("serve.cache_evictions_total", report.cache.evictions);
        m.inc("serve.retries_total", extra.retries);
        m.inc("serve.degrades_total", extra.degrades);
        m.inc("serve.faults_absorbed_total", extra.faults);
        m.inc("serve.shard_launches_total", extra.shard_launches);
        m.inc("serve.prepares_total", extra.prepares);

        // `ann.*` only exists in IVF mode, so exact-mode snapshots are
        // byte-identical to pre-IVF builds.
        if extra.ann_searches > 0 {
            m.inc("ann.searches_total", extra.ann_searches);
            m.inc("ann.probes_total", extra.ann_probes);
            m.inc("ann.shortlist_rows_total", extra.ann_shortlist_rows);
            m.inc("ann.fits_total", extra.ann_fits);
            m.inc("ann.degraded_nprobe_total", extra.ann_degraded_nprobe);
            if let IndexMode::Ivf { nprobe, .. } = self.config.index {
                m.set_gauge("ann.nprobe", nprobe.max(1) as f64);
            }
        }

        let occupancy = if report.batches > 0 && self.config.max_batch > 0 {
            served as f64 / (report.batches as f64 * self.config.max_batch as f64)
        } else {
            0.0
        };
        m.set_gauge("serve.batch_occupancy", occupancy);
        m.set_gauge("serve.qps", report.qps());
        m.set_gauge("serve.busy_seconds", report.busy_seconds);
        m.set_gauge("serve.makespan_s", report.makespan_s);
        m.set_gauge(
            "serve.cache_resident_bytes",
            self.cache.resident_bytes() as f64,
        );
        m.set_gauge("serve.cache_budget_bytes", self.cache.budget_bytes() as f64);
        m.set_gauge("serve.p50_latency_s", report.latency_percentile(50.0));
        m.set_gauge("serve.p99_latency_s", report.latency_percentile(99.0));

        // Histograms record in canonical (completion, id) order, so
        // float sums are reproducible bit-for-bit.
        for r in &report.responses {
            m.observe("serve.latency_s", r.latency_s());
            m.observe("serve.queue_wait_s", r.dispatch_s - r.arrival_s);
            m.observe("serve.exec_s", r.completion_s - r.dispatch_s);
            m.observe(&format!("serve.d{}.latency_s", r.dataset), r.latency_s());
        }

        for (&dataset, &budget) in &self.slos {
            let pairs: Vec<(f64, f64)> = report
                .responses
                .iter()
                .filter(|r| r.dataset == dataset)
                .map(|r| (r.completion_s, r.latency_s()))
                .collect();
            let slo = assess(dataset, budget, &pairs);
            slo.record(m);
            report.slo.push(slo);
        }
    }

    /// Returns the cached IVF artifact for `dataset` (fingerprint,
    /// `nlist`, and pool size all matching), fitting and preparing one
    /// on a miss. The returned flag says whether this call fitted, so
    /// the dispatching batch can be charged the fit's simulated time.
    fn ivf_lookup(
        &mut self,
        dataset: usize,
        nn: &NearestNeighbors<T>,
        nlist: usize,
    ) -> Result<IvfArtifact<T>, KernelError> {
        let index = nn.index().expect("fit() the estimator before serving");
        let fp = fingerprint(index);
        let nlist_eff = if nlist == 0 {
            (index.rows() as f64).sqrt().ceil() as usize
        } else {
            nlist
        }
        .max(1);
        if let Some(e) = self.ivf.get(&dataset) {
            if e.fingerprint == fp && e.nlist == nlist_eff && e.devices == self.multi.len() {
                return Ok((Arc::clone(&e.index), Arc::clone(&e.prepared), 0.0, false));
            }
        }
        let params = IvfParams {
            nlist: nlist_eff,
            ..IvfParams::default()
        };
        let ivf = Arc::new(IvfIndex::fit(nn, params)?);
        let prepared = Arc::new(ivf.prepare(&self.multi));
        let fit_seconds = ivf.fit_sim_seconds();
        self.ivf.insert(
            dataset,
            IvfEntry {
                fingerprint: fp,
                nlist: nlist_eff,
                devices: self.multi.len(),
                index: Arc::clone(&ivf),
                prepared: Arc::clone(&prepared),
            },
        );
        Ok((ivf, prepared, fit_seconds, true))
    }

    fn dispatch(
        &mut self,
        fitted: &[NearestNeighbors<T>],
        st: &mut ReplayState<T>,
        dataset: usize,
        close_s: f64,
    ) -> Result<(), KernelError> {
        let taken = std::mem::take(&mut st.open[dataset].requests);
        let degraded = std::mem::replace(&mut st.open[dataset].degraded, false);
        if taken.is_empty() {
            return Ok(());
        }
        let nn = &fitted[dataset];
        let cols = nn.index().expect("fitted").cols();
        let rows: Vec<&CsrMatrix<T>> = taken.iter().map(|r| &r.row).collect();
        let batch_query = vstack(&rows, cols);

        let batch_id = st.batches;
        for req in &taken {
            st.traces.push_event(
                req.id,
                close_s,
                SpanEvent::BatchAdmit {
                    batch: batch_id,
                    size: taken.len(),
                },
            );
        }

        let is_ivf = matches!(self.config.index, IndexMode::Ivf { .. });
        // Degraded batches run through a lazily-built clone of the
        // estimator forced onto the bloom-filter smem representation —
        // the low-footprint end of the Hybrid→Hash→Bloom→NaiveCsr
        // cascade. Same fitted index, same prepared shards, and every
        // strategy produces bit-identical distances (DESIGN §11), so
        // degrading trades occupancy headroom, never answer bytes.
        // (IVF batches degrade differently — by lowering `nprobe`,
        // handled in the IVF arm below.)
        if degraded {
            st.degraded_batches += 1;
            st.degraded_requests += taken.len() as u64;
            if !is_ivf {
                if st.degraded_fit[dataset].is_none() {
                    let mut opts = *nn.pairwise_options();
                    opts.smem_mode = SmemMode::Bloom;
                    st.degraded_fit[dataset] = Some(nn.clone().with_options(opts));
                }
                for req in &taken {
                    st.traces.push_event(
                        req.id,
                        close_s,
                        SpanEvent::AdmissionDegrade {
                            strategy: "smem=Bloom".to_string(),
                        },
                    );
                }
            }
        }

        let start_s = close_s.max(st.device_free_at);
        let mut prep_s = 0.0;
        let result = match self.config.index {
            IndexMode::Exact => {
                let exec_nn = if degraded {
                    st.degraded_fit[dataset].as_ref().expect("built above")
                } else {
                    nn
                };
                if self.config.per_query_prepare {
                    // Baseline mode: pay uploads + norms on every batch
                    // (no cache involved, so no cache span events
                    // either).
                    st.prepares += 1;
                    exec_nn.kneighbors_sharded(&self.multi, &batch_query, self.config.k)?
                } else {
                    let (shards, outcome) = self.cache.lookup(nn, &self.multi)?;
                    for req in &taken {
                        if outcome.hit {
                            st.traces.push_event(req.id, close_s, SpanEvent::CacheHit);
                        } else {
                            st.traces.push_event(
                                req.id,
                                close_s,
                                SpanEvent::CacheMiss {
                                    evictions: outcome.evictions,
                                },
                            );
                            st.traces.push_event(
                                req.id,
                                start_s,
                                SpanEvent::Prepare {
                                    seconds: outcome.warm_seconds,
                                },
                            );
                        }
                    }
                    if !outcome.hit {
                        st.prepares += 1;
                    }
                    prep_s = outcome.warm_seconds;
                    exec_nn.kneighbors_prepared(&shards, &batch_query, self.config.k)?
                }
            }
            IndexMode::Ivf { nlist, nprobe } => {
                // The fitted IVF artifact is cached per dataset; the
                // first batch to touch a dataset pays the k-means fit
                // the same way the first exact batch pays norm warming.
                let (ivf, prepared, fit_seconds, fitted_now) =
                    self.ivf_lookup(dataset, nn, nlist)?;
                for req in &taken {
                    if fitted_now {
                        st.traces.push_event(
                            req.id,
                            close_s,
                            SpanEvent::CacheMiss { evictions: 0 },
                        );
                        st.traces.push_event(
                            req.id,
                            start_s,
                            SpanEvent::Prepare {
                                seconds: fit_seconds,
                            },
                        );
                    } else {
                        st.traces.push_event(req.id, close_s, SpanEvent::CacheHit);
                    }
                }
                if fitted_now {
                    st.prepares += 1;
                    st.ann_fits += 1;
                    prep_s += fit_seconds;
                }
                // Degrade cascade, IVF edition: under admission
                // pressure the batch probes half as many posting lists
                // — visible in `ann.*` counters and the span stream,
                // recovered the moment pressure lifts.
                let nprobe_eff = if degraded {
                    st.ann_degraded_nprobe += 1;
                    let lowered = (nprobe.max(1) / 2).max(1);
                    for req in &taken {
                        st.traces.push_event(
                            req.id,
                            close_s,
                            SpanEvent::AdmissionDegrade {
                                strategy: format!("nprobe={lowered}"),
                            },
                        );
                    }
                    lowered
                } else {
                    nprobe.max(1)
                };
                st.ann_searches += 1;
                if nprobe_eff >= ivf.nlist() {
                    // Full probe degenerates to the exact tier: the
                    // same `PreparedShards` artifact and execution core
                    // `IndexMode::Exact` serves with, so the response
                    // bytes equal the exact oracle's by construction
                    // (DESIGN §15) — gathered posting-list slabs could
                    // only reproduce them to re-association precision.
                    let rows = batch_query.rows();
                    st.ann_probes += (rows * ivf.nlist()) as u64;
                    st.ann_shortlist_rows += (rows * ivf.index_rows()) as u64;
                    let (shards, outcome) = self.cache.lookup(nn, &self.multi)?;
                    if !outcome.hit {
                        st.prepares += 1;
                    }
                    prep_s += outcome.warm_seconds;
                    nn.kneighbors_prepared(&shards, &batch_query, self.config.k)?
                } else {
                    let ans =
                        ivf.search_prepared(&prepared, &batch_query, self.config.k, nprobe_eff)?;
                    st.ann_probes += ans.stats.probes as u64;
                    st.ann_shortlist_rows += ans.stats.shortlist_rows as u64;
                    ans.knn
                }
            }
        };
        let exec_seconds = prep_s + result.sim_seconds;

        for (slot, secs) in result.per_device_seconds.iter().enumerate() {
            st.shard_launches += 1;
            for req in &taken {
                st.traces.push_event(
                    req.id,
                    start_s,
                    SpanEvent::ShardLaunch {
                        shard: slot,
                        device_slot: slot,
                        seconds: *secs,
                    },
                );
            }
        }

        let max_attempts = result
            .resilience
            .iter()
            .map(|r| r.attempts)
            .max()
            .unwrap_or(1);
        let batch_faults: usize = result
            .resilience
            .iter()
            .map(|r| r.faults_absorbed.len())
            .sum();
        let downgraded = result.resilience.iter().find(|r| r.downgraded);
        st.retries += result
            .resilience
            .iter()
            .map(|r| r.attempts.saturating_sub(1) as u64)
            .sum::<u64>();
        st.degrades += result.resilience.iter().filter(|r| r.downgraded).count() as u64;
        st.faults += batch_faults as u64;
        if max_attempts > 1 || batch_faults > 0 {
            for req in &taken {
                st.traces.push_event(
                    req.id,
                    start_s,
                    SpanEvent::Retry {
                        attempts: max_attempts,
                        faults: batch_faults,
                    },
                );
            }
        }
        if let Some(r) = downgraded {
            let strategy = format!("{:?}", r.final_strategy);
            for req in &taken {
                st.traces.push_event(
                    req.id,
                    start_s,
                    SpanEvent::Degrade {
                        strategy: strategy.clone(),
                    },
                );
            }
        }

        let completion_s = start_s + exec_seconds;
        st.device_free_at = completion_s;
        st.busy_seconds += exec_seconds;
        st.batches += 1;
        st.inflight.push((completion_s, taken.len()));

        for (i, req) in taken.into_iter().enumerate() {
            st.traces.push_event(req.id, completion_s, SpanEvent::Merge);
            st.traces
                .finish_request(req.id, completion_s, completion_s - req.arrival_s);
            st.responses.push(Response {
                id: req.id,
                dataset,
                indices: result.indices[i].clone(),
                distances: result.distances[i].clone(),
                arrival_s: req.arrival_s,
                dispatch_s: start_s,
                completion_s,
            });
        }
        Ok(())
    }

    /// Replays a merged stream of WAL writes and query requests against
    /// a [`MutableDataset`] (DESIGN §16). Queries are answered from two
    /// arms — the prepared base (through the generation-keyed cache)
    /// and a brute-force scan of the fresh segment — tombstone-masked
    /// and merged under the canonical `cmp_dist_idx` order into
    /// *live-rank* coordinates, so every response is byte-identical to
    /// a one-shot `kneighbors_sharded` over
    /// [`MutableDataset::rebuild`]'s matrix at the same instant.
    ///
    /// Semantics of time: a batch is answered against the dataset state
    /// at its dispatch instant, and every write first flushes the open
    /// batch (queries admitted before a write never see it). Once
    /// `dataset.pending_ops()` reaches `compact_threshold` (0 disables
    /// compaction), a background compaction snapshots the live state,
    /// re-prepares it as generation+1 off the serving lane (its warm
    /// time never blocks a batch), and atomically swaps in at the first
    /// event on or after its ready time. `proto` supplies the metric /
    /// device / kernel options; it does not need to be fitted.
    ///
    /// # Errors
    ///
    /// Returns kernel errors from either arm, or
    /// [`KernelError::ShapeMismatch`] when a request targets a dataset
    /// other than 0 (mutable replays serve exactly one dataset).
    /// Malformed WAL records are *not* errors: they are counted,
    /// reported in [`IngestReport::wal_errors`], and skipped — the log
    /// position advances so one poison record cannot wedge the stream.
    ///
    /// # Panics
    ///
    /// Panics in IVF mode: the approximate tier over mutable datasets
    /// is ROADMAP work, and serving it would break the byte-identity
    /// contract this method is defined by.
    pub fn replay_ingest(
        &mut self,
        proto: &NearestNeighbors<T>,
        dataset: &mut MutableDataset<T>,
        writes: &[TimedRecord<T>],
        requests: &[Request<T>],
        compact_threshold: usize,
    ) -> Result<IngestReport<T>, KernelError> {
        assert!(
            matches!(self.config.index, IndexMode::Exact),
            "mutable ingest serves the exact tier only"
        );
        let stats_before = self.cache.stats();
        let mut order: Vec<&Request<T>> = requests.iter().collect();
        order.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s).then(a.id.cmp(&b.id)));
        let mut wseq: Vec<&TimedRecord<T>> = writes.iter().collect();
        wseq.sort_by(|a, b| {
            a.at_s
                .total_cmp(&b.at_s)
                .then(a.record.seq.cmp(&b.record.seq))
        });

        let admission = self.config.admission;
        let mut st = ReplayState {
            open: vec![OpenBatch {
                requests: Vec::new(),
                degraded: false,
            }],
            responses: Vec::new(),
            rejected: Vec::new(),
            inflight: Vec::new(),
            device_free_at: 0.0,
            batches: 0,
            busy_seconds: 0.0,
            traces: RequestTraces::new(),
            retries: 0,
            degrades: 0,
            faults: 0,
            shard_launches: 0,
            prepares: 0,
            buckets: admission
                .map(|cfg| vec![TokenBucket::new(&cfg)])
                .unwrap_or_default(),
            degraded_fit: vec![None],
            degraded_requests: 0,
            degraded_batches: 0,
            ann_searches: 0,
            ann_probes: 0,
            ann_shortlist_rows: 0,
            ann_fits: 0,
            ann_degraded_nprobe: 0,
        };
        let mut ing = IngestState {
            pending: None,
            base_fit: None,
            wal: WalCounts::default(),
            wal_errors: Vec::new(),
            compactions_started: 0,
            compactions: Vec::new(),
            fresh_scans: 0,
        };
        let mut nq = 0usize;
        let mut nw = 0usize;

        loop {
            let deadline = st.open[0]
                .requests
                .first()
                .map(|r| r.arrival_s + self.config.max_wait_s);
            let write = wseq.get(nw).map(|w| w.at_s);
            let arrival = order.get(nq).map(|r| r.arrival_s);

            // Earliest event wins; ties resolve deadline → write →
            // query, so a same-instant write still flushes the batch
            // of earlier arrivals before mutating state.
            let due_deadline = deadline
                .is_some_and(|t| write.is_none_or(|w| t <= w) && arrival.is_none_or(|a| t <= a));
            let due_write = !due_deadline && write.is_some_and(|w| arrival.is_none_or(|a| w <= a));

            if due_deadline {
                let t = deadline.expect("checked above");
                self.dispatch_ingest(proto, dataset, &mut st, &mut ing, t)?;
            } else if due_write {
                let w = wseq[nw];
                nw += 1;
                // Read-your-writes boundary: queries already admitted
                // are answered against pre-write state.
                self.dispatch_ingest(proto, dataset, &mut st, &mut ing, w.at_s)?;
                Self::land_ready_compaction(dataset, &mut ing, w.at_s);
                ing.wal.appended += 1;
                match dataset.apply(&w.record) {
                    Ok(AppliedOp::Inserted { .. }) => {
                        ing.wal.applied += 1;
                        ing.wal.inserts += 1;
                    }
                    Ok(AppliedOp::Deleted { .. }) => {
                        ing.wal.applied += 1;
                        ing.wal.deletes += 1;
                    }
                    Err(e) => {
                        ing.wal.rejected += 1;
                        ing.wal_errors.push((w.record.seq, e));
                    }
                }
                if compact_threshold > 0
                    && ing.pending.is_none()
                    && dataset.pending_ops() >= compact_threshold
                {
                    self.start_compaction(proto, dataset, &mut ing, w.at_s)?;
                }
            } else if let Some(at) = arrival {
                let r = order[nq];
                nq += 1;
                if r.dataset != 0 {
                    return Err(KernelError::ShapeMismatch {
                        a_cols: r.dataset,
                        b_cols: 1,
                    });
                }
                st.inflight.retain(|&(done, _)| done > at);
                let backlog: usize =
                    st.open[0].requests.len() + st.inflight.iter().map(|&(_, n)| n).sum::<usize>();
                st.traces.begin_request(r.id, 0, r.arrival_s);
                let decision = match admission {
                    Some(cfg) => st.buckets[0].admit(&cfg, at, backlog, self.config.max_queue),
                    None if backlog >= self.config.max_queue => {
                        AdmissionDecision::Shed(ShedReason::QueueFull)
                    }
                    None => AdmissionDecision::Admit,
                };
                match decision {
                    AdmissionDecision::Shed(reason) => {
                        st.rejected.push(Rejection { id: r.id, reason });
                        st.traces.reject_request(r.id, at, backlog, reason);
                        continue;
                    }
                    AdmissionDecision::Degrade => st.open[0].degraded = true,
                    AdmissionDecision::Admit => {}
                }
                st.open[0].requests.push(r.clone());
                if st.open[0].requests.len() >= self.config.max_batch {
                    self.dispatch_ingest(proto, dataset, &mut st, &mut ing, at)?;
                }
            } else {
                break;
            }
        }
        // A compaction still in flight at stream end stays pending: the
        // report's started/landed counts record the difference.

        st.responses.sort_by(|a, b| {
            a.completion_s
                .total_cmp(&b.completion_s)
                .then(a.id.cmp(&b.id))
        });
        let first_arrival = order.first().map(|r| r.arrival_s).unwrap_or(0.0);
        let makespan_s = st
            .responses
            .iter()
            .map(|r| r.completion_s)
            .fold(0.0f64, f64::max)
            - first_arrival;
        let after = self.cache.stats();
        let mut serve = ServeReport {
            responses: st.responses,
            rejected: st.rejected,
            batches: st.batches,
            busy_seconds: st.busy_seconds,
            makespan_s: makespan_s.max(0.0),
            cache: CacheStats {
                hits: after.hits - stats_before.hits,
                misses: after.misses - stats_before.misses,
                evictions: after.evictions - stats_before.evictions,
                eviction_probes: after.eviction_probes - stats_before.eviction_probes,
            },
            spans: st.traces.into_spans(),
            slo: Vec::new(),
            degraded_requests: st.degraded_requests,
            degraded_batches: st.degraded_batches,
        };
        let counts = ReplayCounts {
            retries: st.retries,
            degrades: st.degrades,
            faults: st.faults,
            shard_launches: st.shard_launches,
            prepares: st.prepares,
            ann_searches: 0,
            ann_probes: 0,
            ann_shortlist_rows: 0,
            ann_fits: 0,
            ann_degraded_nprobe: 0,
        };
        self.record_replay(&mut serve, &counts);
        let report = IngestReport {
            serve,
            wal: ing.wal,
            wal_errors: ing.wal_errors,
            compactions_started: ing.compactions_started,
            compactions: ing.compactions,
            final_generation: dataset.generation(),
        };
        self.record_ingest(&report, dataset, ing.fresh_scans);
        Ok(report)
    }

    /// Folds one ingest replay's `wal.*` / `compact.*` signals into the
    /// registry. Emitted only by ingest replays, so immutable-serving
    /// snapshots are byte-identical to pre-WAL builds.
    fn record_ingest(
        &mut self,
        report: &IngestReport<T>,
        dataset: &MutableDataset<T>,
        fresh_scans: u64,
    ) {
        let m = &mut self.metrics;
        m.inc("wal.records_appended_total", report.wal.appended);
        m.inc("wal.records_applied_total", report.wal.applied);
        m.inc("wal.records_rejected_total", report.wal.rejected);
        m.inc("wal.inserts_total", report.wal.inserts);
        m.inc("wal.deletes_total", report.wal.deletes);
        m.inc("wal.fresh_scans_total", fresh_scans);
        m.inc("compact.started_total", report.compactions_started);
        m.inc("compact.completed_total", report.compactions.len() as u64);
        for c in &report.compactions {
            m.inc("compact.rows_total", c.rows as u64);
            m.inc(
                "compact.tombstones_cleared_total",
                c.cleared_tombstones as u64,
            );
            m.inc("compact.folded_fresh_total", c.folded_fresh as u64);
            m.observe("compact.seconds", c.seconds);
        }
        m.set_gauge("wal.fresh_rows", dataset.fresh_rows() as f64);
        m.set_gauge("wal.tombstones", dataset.tombstone_count() as f64);
        m.set_gauge("wal.live_rows", dataset.live_rows() as f64);
        m.set_gauge("compact.generation", dataset.generation() as f64);
    }

    /// Snapshots the dataset and pre-warms the next generation's shards
    /// into the cache under its generation-stamped key. The warm time
    /// is the compaction's duration — spent on the maintenance lane,
    /// not the serving lane — and the swap lands at the first event on
    /// or after `started + seconds`.
    fn start_compaction(
        &mut self,
        proto: &NearestNeighbors<T>,
        dataset: &MutableDataset<T>,
        ing: &mut IngestState<T>,
        t: f64,
    ) -> Result<(), KernelError> {
        let job = dataset.begin_compaction();
        let (nn, seconds) = if job.matrix.rows() > 0 {
            let nn = proto.clone().fit(job.matrix.clone());
            let (_, outcome) = self
                .cache
                .lookup_generation(&nn, &self.multi, job.generation)?;
            (Some(nn), outcome.warm_seconds)
        } else {
            // Compacting to empty: nothing to upload or warm.
            (None, 0.0)
        };
        ing.compactions_started += 1;
        ing.pending = Some(PendingCompaction {
            ready_s: t + seconds,
            started_s: t,
            seconds,
            job,
            nn,
        });
        Ok(())
    }

    /// Lands the pending compaction if its ready time has passed.
    fn land_ready_compaction(dataset: &mut MutableDataset<T>, ing: &mut IngestState<T>, t: f64) {
        let ready = ing.pending.as_ref().is_some_and(|p| p.ready_s <= t);
        if !ready {
            return;
        }
        let p = ing.pending.take().expect("checked above");
        let generation = p.job.generation;
        let outcome = dataset.finish_compaction(p.job);
        ing.base_fit = p.nn.map(|nn| (generation, nn));
        ing.compactions.push(CompactionRecord {
            generation,
            started_s: p.started_s,
            ready_s: p.ready_s,
            seconds: p.seconds,
            rows: outcome.rows,
            cleared_tombstones: outcome.cleared_tombstones,
            folded_fresh: outcome.folded_fresh,
        });
    }

    /// Closes and executes the open batch against the mutable dataset:
    /// base arm through the generation-keyed cache, fresh arm as a
    /// brute-force scan, tombstone masking and `cmp_dist_idx` merge
    /// into live-rank coordinates.
    fn dispatch_ingest(
        &mut self,
        proto: &NearestNeighbors<T>,
        dataset: &mut MutableDataset<T>,
        st: &mut ReplayState<T>,
        ing: &mut IngestState<T>,
        close_s: f64,
    ) -> Result<(), KernelError> {
        // Serve against the newest landed generation first.
        Self::land_ready_compaction(dataset, ing, close_s);
        let taken = std::mem::take(&mut st.open[0].requests);
        let degraded = std::mem::replace(&mut st.open[0].degraded, false);
        if taken.is_empty() {
            return Ok(());
        }
        let rows: Vec<&CsrMatrix<T>> = taken.iter().map(|r| &r.row).collect();
        let batch_query = vstack(&rows, dataset.cols());
        let k = self.config.k;
        let plan = dataset.rank_plan();

        let batch_id = st.batches;
        for req in &taken {
            st.traces.push_event(
                req.id,
                close_s,
                SpanEvent::BatchAdmit {
                    batch: batch_id,
                    size: taken.len(),
                },
            );
        }
        if degraded {
            st.degraded_batches += 1;
            st.degraded_requests += taken.len() as u64;
            for req in &taken {
                st.traces.push_event(
                    req.id,
                    close_s,
                    SpanEvent::AdmissionDegrade {
                        strategy: "smem=Bloom".to_string(),
                    },
                );
            }
        }
        let degrade_opts = |nn: &NearestNeighbors<T>| {
            let mut opts = *nn.pairwise_options();
            opts.smem_mode = SmemMode::Bloom;
            nn.clone().with_options(opts)
        };

        let start_s = close_s.max(st.device_free_at);
        let mut prep_s = 0.0;

        // Base arm: over-fetch k + dead so tombstone masking can never
        // starve the merge, through the generation-keyed cache.
        let base_result = if dataset.base().rows() > 0 && k > 0 {
            let refit = !matches!(&ing.base_fit, Some((g, _)) if *g == dataset.generation());
            if refit {
                ing.base_fit = Some((
                    dataset.generation(),
                    proto.clone().fit(dataset.base().clone()),
                ));
            }
            let (_, base_nn) = ing.base_fit.as_ref().expect("fitted above");
            let k_base = (k + plan.base_dead).min(dataset.base().rows());
            let exec_nn = if degraded {
                degrade_opts(base_nn)
            } else {
                base_nn.clone()
            };
            let result = if self.config.per_query_prepare {
                st.prepares += 1;
                exec_nn.kneighbors_sharded(&self.multi, &batch_query, k_base)?
            } else {
                let (shards, outcome) =
                    self.cache
                        .lookup_generation(base_nn, &self.multi, dataset.generation())?;
                for req in &taken {
                    if outcome.hit {
                        st.traces.push_event(req.id, close_s, SpanEvent::CacheHit);
                    } else {
                        st.traces.push_event(
                            req.id,
                            close_s,
                            SpanEvent::CacheMiss {
                                evictions: outcome.evictions,
                            },
                        );
                        st.traces.push_event(
                            req.id,
                            start_s,
                            SpanEvent::Prepare {
                                seconds: outcome.warm_seconds,
                            },
                        );
                    }
                }
                if !outcome.hit {
                    st.prepares += 1;
                }
                prep_s += outcome.warm_seconds;
                exec_nn.kneighbors_prepared(&shards, &batch_query, k_base)?
            };
            Some(result)
        } else {
            None
        };

        // Fresh arm: brute-force scan, re-uploaded every batch — that
        // is the cost compaction exists to bound.
        let fresh_result = if dataset.fresh_rows() > 0 && k > 0 {
            ing.fresh_scans += 1;
            let fresh_nn = {
                let fitted = proto.clone().fit(dataset.fresh_matrix());
                if degraded {
                    degrade_opts(&fitted)
                } else {
                    fitted
                }
            };
            let k_fresh = (k + plan.fresh_dead).min(dataset.fresh_rows());
            for req in &taken {
                st.traces.push_event(
                    req.id,
                    close_s,
                    SpanEvent::FreshScan {
                        rows: dataset.fresh_rows(),
                        tombstoned: plan.fresh_dead,
                    },
                );
            }
            Some(fresh_nn.kneighbors_sharded(&self.multi, &batch_query, k_fresh)?)
        } else {
            None
        };

        let mut exec_seconds = prep_s;
        for result in [&base_result, &fresh_result].into_iter().flatten() {
            exec_seconds += result.sim_seconds;
            for (slot, secs) in result.per_device_seconds.iter().enumerate() {
                st.shard_launches += 1;
                for req in &taken {
                    st.traces.push_event(
                        req.id,
                        start_s,
                        SpanEvent::ShardLaunch {
                            shard: slot,
                            device_slot: slot,
                            seconds: *secs,
                        },
                    );
                }
            }
            let max_attempts = result
                .resilience
                .iter()
                .map(|r| r.attempts)
                .max()
                .unwrap_or(1);
            let batch_faults: usize = result
                .resilience
                .iter()
                .map(|r| r.faults_absorbed.len())
                .sum();
            st.retries += result
                .resilience
                .iter()
                .map(|r| r.attempts.saturating_sub(1) as u64)
                .sum::<u64>();
            st.degrades += result.resilience.iter().filter(|r| r.downgraded).count() as u64;
            st.faults += batch_faults as u64;
            if max_attempts > 1 || batch_faults > 0 {
                for req in &taken {
                    st.traces.push_event(
                        req.id,
                        start_s,
                        SpanEvent::Retry {
                            attempts: max_attempts,
                            faults: batch_faults,
                        },
                    );
                }
            }
            if let Some(r) = result.resilience.iter().find(|r| r.downgraded) {
                let strategy = format!("{:?}", r.final_strategy);
                for req in &taken {
                    st.traces.push_event(
                        req.id,
                        start_s,
                        SpanEvent::Degrade {
                            strategy: strategy.clone(),
                        },
                    );
                }
            }
        }

        let (indices, distances) = merge_arms(
            k,
            &plan,
            base_result
                .as_ref()
                .map(|r| (r.indices.as_slice(), r.distances.as_slice())),
            fresh_result
                .as_ref()
                .map(|r| (r.indices.as_slice(), r.distances.as_slice())),
            taken.len(),
        );

        let completion_s = start_s + exec_seconds;
        st.device_free_at = completion_s;
        st.busy_seconds += exec_seconds;
        st.batches += 1;
        st.inflight.push((completion_s, taken.len()));

        for (i, req) in taken.into_iter().enumerate() {
            st.traces.push_event(
                req.id,
                completion_s,
                SpanEvent::SegmentMerge {
                    generation: dataset.generation(),
                },
            );
            st.traces.push_event(req.id, completion_s, SpanEvent::Merge);
            st.traces
                .finish_request(req.id, completion_s, completion_s - req.arrival_s);
            st.responses.push(Response {
                id: req.id,
                dataset: 0,
                indices: indices[i].clone(),
                distances: distances[i].clone(),
                arrival_s: req.arrival_s,
                dispatch_s: start_s,
                completion_s,
            });
        }
        Ok(())
    }
}

/// A WAL record stamped with its simulated arrival time, for
/// [`ServeEngine::replay_ingest`]'s merged write/query event stream.
#[derive(Debug, Clone)]
pub struct TimedRecord<T> {
    /// When the write lands on the sim clock.
    pub at_s: f64,
    /// The record itself (its `seq` orders same-instant writes).
    pub record: WalRecord<T>,
}

/// WAL bookkeeping for one ingest replay. Conservation law (enforced
/// by `bench::validate_metrics`): `appended = applied + rejected`, and
/// `applied = inserts + deletes`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalCounts {
    /// Records presented to the engine.
    pub appended: u64,
    /// Records that mutated the dataset.
    pub applied: u64,
    /// Records rejected with a typed [`WalError`].
    pub rejected: u64,
    /// Applied inserts.
    pub inserts: u64,
    /// Applied deletes.
    pub deletes: u64,
}

/// One landed compaction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionRecord {
    /// The generation the compaction produced.
    pub generation: u64,
    /// Sim time the snapshot was taken.
    pub started_s: f64,
    /// Sim time the new generation became servable.
    pub ready_s: f64,
    /// Simulated seconds of re-prepare work (upload + norm warming of
    /// the new base), spent off the serving lane.
    pub seconds: f64,
    /// Rows in the new base.
    pub rows: usize,
    /// Tombstones cleared because their rows were compacted away.
    pub cleared_tombstones: usize,
    /// Fresh rows folded into the new base.
    pub folded_fresh: usize,
}

/// Outcome of one [`ServeEngine::replay_ingest`] call.
#[derive(Debug, Clone)]
pub struct IngestReport<T> {
    /// The serving-side report (responses in live-rank coordinates).
    pub serve: ServeReport<T>,
    /// WAL bookkeeping.
    pub wal: WalCounts,
    /// Typed rejects, in log order: `(seq, error)`.
    pub wal_errors: Vec<(u64, WalError)>,
    /// Compactions started (landed or still in flight at stream end).
    pub compactions_started: u64,
    /// Landed compactions, in landing order.
    pub compactions: Vec<CompactionRecord>,
    /// The dataset's generation when the stream ended.
    pub final_generation: u64,
}

impl<T> IngestReport<T> {
    /// The served responses, in completion order (live-rank indices).
    pub fn responses(&self) -> &[Response<T>] {
        &self.serve.responses
    }
}

/// An in-flight compaction: the frozen snapshot plus the sim time its
/// re-prepared base becomes swappable.
struct PendingCompaction<T> {
    job: CompactionJob<T>,
    /// The new base, already fitted (None for an empty base).
    nn: Option<NearestNeighbors<T>>,
    started_s: f64,
    seconds: f64,
    ready_s: f64,
}

/// Mutable-dataset state threaded through one ingest replay.
struct IngestState<T> {
    pending: Option<PendingCompaction<T>>,
    /// The fitted estimator for the *current* base generation.
    base_fit: Option<(u64, NearestNeighbors<T>)>,
    wal: WalCounts,
    wal_errors: Vec<(u64, WalError)>,
    compactions_started: u64,
    compactions: Vec<CompactionRecord>,
    fresh_scans: u64,
}

/// Counters a replay accumulates outside the report itself.
struct ReplayCounts {
    retries: u64,
    degrades: u64,
    faults: u64,
    shard_launches: u64,
    prepares: u64,
    ann_searches: u64,
    ann_probes: u64,
    ann_shortlist_rows: u64,
    ann_fits: u64,
    ann_degraded_nprobe: u64,
}

/// Builds a fixed-gap replay stream over the rows of `query`: request
/// `i` is row `i` arriving at `i * gap_s`, all against dataset 0. The
/// `spdist serve` driver and the throughput bench both use this shape.
pub fn replay_rows<T: Real>(query: &CsrMatrix<T>, gap_s: f64) -> Vec<Request<T>> {
    (0..query.rows())
        .map(|i| Request {
            id: i as u64,
            dataset: 0,
            arrival_s: i as f64 * gap_s,
            row: query.slice_rows(i..i + 1),
        })
        .collect()
}
