//! The micro-batched request engine: a deterministic discrete-event
//! simulation of a k-NN serving loop.
//!
//! Requests arrive at simulated timestamps, one query row each, tagged
//! with the dataset they query. The engine keeps one open batch per
//! dataset and closes a batch when it fills ([`ServeConfig::max_batch`])
//! or when its oldest request has waited [`ServeConfig::max_wait_s`];
//! closed batches execute serially on the device pool (devices inside
//! the pool still parallelize each batch's slabs, exactly like
//! `kneighbors_sharded`). Admission control rejects arrivals outright
//! once the backlog — queued plus not-yet-completed requests — reaches
//! [`ServeConfig::max_queue`], which is the backpressure signal a real
//! front-end would surface as HTTP 429.
//!
//! Determinism: batching only changes *when* a query runs and *which
//! rows share a tile*, and per-row results are independent of tile
//! composition (DESIGN §10); the engine funnels into the same execution
//! core as `kneighbors_sharded`, so every served response is
//! byte-identical to the one-shot answer for the same query row.

use crate::cache::{CacheStats, PreparedCache};
use kernels::KernelError;
use neighbors::{MultiDevice, NearestNeighbors};
use sparse::{CsrMatrix, Idx, Real};

/// Batching and admission knobs for the request engine.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Neighbors returned per query.
    pub k: usize,
    /// A batch dispatches as soon as it holds this many requests.
    pub max_batch: usize,
    /// ... or as soon as its oldest request has waited this long
    /// (simulated seconds).
    pub max_wait_s: f64,
    /// Reject arrivals once this many admitted requests are still
    /// queued or executing.
    pub max_queue: usize,
    /// Serve without the prepared-index cache: every batch re-prepares
    /// (re-uploads, re-warms) its index from scratch. Exists to measure
    /// exactly what the cache buys; never faster.
    pub per_query_prepare: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            k: 10,
            max_batch: 8,
            max_wait_s: 200e-6,
            max_queue: 1024,
            per_query_prepare: false,
        }
    }
}

/// One incoming query: a single row against dataset `dataset`.
#[derive(Debug, Clone)]
pub struct Request<T> {
    /// Caller-chosen request id, echoed in the response.
    pub id: u64,
    /// Which fitted dataset this query targets (index into the slice
    /// passed to [`ServeEngine::replay`]).
    pub dataset: usize,
    /// Simulated arrival time in seconds.
    pub arrival_s: f64,
    /// The query row (`1 × cols`).
    pub row: CsrMatrix<T>,
}

/// The served answer for one request.
#[derive(Debug, Clone)]
pub struct Response<T> {
    /// Echo of [`Request::id`].
    pub id: u64,
    /// Echo of [`Request::dataset`].
    pub dataset: usize,
    /// Neighbor indices, ascending by distance.
    pub indices: Vec<usize>,
    /// The corresponding distances.
    pub distances: Vec<T>,
    /// Simulated arrival time.
    pub arrival_s: f64,
    /// When the request's batch closed and was handed to the device.
    pub dispatch_s: f64,
    /// When the batch's kernels finished.
    pub completion_s: f64,
}

impl<T> Response<T> {
    /// Queue + execution latency in simulated seconds.
    pub fn latency_s(&self) -> f64 {
        self.completion_s - self.arrival_s
    }
}

/// Aggregate outcome of a replay.
#[derive(Debug, Clone)]
pub struct ServeReport<T> {
    /// Served responses, in completion order (ties by id).
    pub responses: Vec<Response<T>>,
    /// Ids rejected by admission control, in arrival order.
    pub rejected: Vec<u64>,
    /// Batches executed.
    pub batches: usize,
    /// Simulated seconds spent executing kernels (excludes queue idle
    /// time; includes norm warming charged to cache misses).
    pub busy_seconds: f64,
    /// Last completion minus first arrival.
    pub makespan_s: f64,
    /// Cache counters accumulated during this replay.
    pub cache: CacheStats,
}

impl<T> ServeReport<T> {
    /// Served queries per simulated second.
    pub fn qps(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.responses.len() as f64 / self.makespan_s
        } else {
            0.0
        }
    }

    /// The `p`-th latency percentile (nearest-rank) in simulated
    /// seconds, or 0.0 with no served responses.
    pub fn latency_percentile(&self, p: f64) -> f64 {
        if self.responses.is_empty() {
            return 0.0;
        }
        let mut lat: Vec<f64> = self.responses.iter().map(Response::latency_s).collect();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let rank = ((p / 100.0) * lat.len() as f64).ceil().max(1.0) as usize;
        lat[rank.min(lat.len()) - 1]
    }
}

/// Stacks single-row queries into one `rows × cols` batch matrix.
fn vstack<T: Real>(rows: &[&CsrMatrix<T>], cols: usize) -> CsrMatrix<T> {
    let mut indptr = Vec::with_capacity(rows.len() + 1);
    let mut indices: Vec<Idx> = Vec::new();
    let mut values: Vec<T> = Vec::new();
    indptr.push(0);
    for r in rows {
        indices.extend_from_slice(r.indices());
        values.extend_from_slice(r.values());
        indptr.push(indices.len());
    }
    CsrMatrix::from_parts(rows.len(), cols, indptr, indices, values)
        .expect("stacking valid rows preserves CSR invariants")
}

/// The serving loop: fitted estimators, a device pool, a prepared-index
/// cache, and the batching configuration.
pub struct ServeEngine<T> {
    multi: MultiDevice,
    cache: PreparedCache<T>,
    config: ServeConfig,
}

struct OpenBatch<T> {
    requests: Vec<Request<T>>,
}

impl<T: Real> ServeEngine<T> {
    /// Creates an engine over `multi` with the given config and a cache
    /// budgeted from the pool's device spec
    /// ([`PreparedCache::for_pool`]).
    pub fn new(multi: MultiDevice, config: ServeConfig) -> Self {
        let cache = PreparedCache::for_pool(&multi);
        Self {
            multi,
            cache,
            config,
        }
    }

    /// Replaces the cache with one of an explicit byte budget.
    pub fn with_cache_budget(mut self, budget_bytes: usize) -> Self {
        self.cache = PreparedCache::new(budget_bytes);
        self
    }

    /// The engine's cache statistics so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Replays a request stream against `fitted` estimators (one per
    /// dataset id; each must already be [`NearestNeighbors::fit`]).
    /// Requests are processed in `(arrival_s, id)` order regardless of
    /// input order, so a replay is a pure function of its request set.
    ///
    /// # Errors
    ///
    /// Returns the first kernel error any batch produces, or a
    /// [`KernelError::ShapeMismatch`] when a request's dataset id is
    /// out of range.
    pub fn replay(
        &mut self,
        fitted: &[NearestNeighbors<T>],
        requests: &[Request<T>],
    ) -> Result<ServeReport<T>, KernelError> {
        let stats_before = self.cache.stats();
        let mut order: Vec<&Request<T>> = requests.iter().collect();
        order.sort_by(|a, b| {
            a.arrival_s
                .partial_cmp(&b.arrival_s)
                .expect("finite arrival times")
                .then(a.id.cmp(&b.id))
        });

        let mut open: Vec<OpenBatch<T>> = (0..fitted.len())
            .map(|_| OpenBatch {
                requests: Vec::new(),
            })
            .collect();
        let mut responses: Vec<Response<T>> = Vec::new();
        let mut rejected: Vec<u64> = Vec::new();
        let mut inflight: Vec<(f64, usize)> = Vec::new(); // (completion, count)
        let mut device_free_at = 0.0f64;
        let mut batches = 0usize;
        let mut busy_seconds = 0.0f64;
        let mut next = 0usize;

        loop {
            // The earliest forced dispatch: an open batch whose oldest
            // request hits its wait deadline. Ties break by dataset id.
            let deadline = open
                .iter()
                .enumerate()
                .filter_map(|(d, b)| {
                    b.requests
                        .first()
                        .map(|r| (r.arrival_s + self.config.max_wait_s, d))
                })
                .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
            let arrival = order.get(next).map(|r| r.arrival_s);

            match (deadline, arrival) {
                (Some((t, d)), Some(at)) if t <= at => {
                    self.dispatch(
                        fitted,
                        &mut open,
                        d,
                        t,
                        &mut device_free_at,
                        &mut inflight,
                        &mut responses,
                        &mut batches,
                        &mut busy_seconds,
                    )?;
                }
                (_, Some(at)) => {
                    let r = order[next];
                    next += 1;
                    if r.dataset >= fitted.len() {
                        return Err(KernelError::ShapeMismatch {
                            a_cols: r.dataset,
                            b_cols: fitted.len(),
                        });
                    }
                    inflight.retain(|&(done, _)| done > at);
                    let backlog: usize = open.iter().map(|b| b.requests.len()).sum::<usize>()
                        + inflight.iter().map(|&(_, n)| n).sum::<usize>();
                    if backlog >= self.config.max_queue {
                        rejected.push(r.id);
                        continue;
                    }
                    let d = r.dataset;
                    open[d].requests.push(r.clone());
                    if open[d].requests.len() >= self.config.max_batch {
                        self.dispatch(
                            fitted,
                            &mut open,
                            d,
                            at,
                            &mut device_free_at,
                            &mut inflight,
                            &mut responses,
                            &mut batches,
                            &mut busy_seconds,
                        )?;
                    }
                }
                (Some((t, d)), None) => {
                    self.dispatch(
                        fitted,
                        &mut open,
                        d,
                        t,
                        &mut device_free_at,
                        &mut inflight,
                        &mut responses,
                        &mut batches,
                        &mut busy_seconds,
                    )?;
                }
                (None, None) => break,
            }
        }

        responses.sort_by(|a, b| {
            a.completion_s
                .partial_cmp(&b.completion_s)
                .expect("finite")
                .then(a.id.cmp(&b.id))
        });
        let first_arrival = order.first().map(|r| r.arrival_s).unwrap_or(0.0);
        let makespan_s = responses
            .iter()
            .map(|r| r.completion_s)
            .fold(0.0f64, f64::max)
            - first_arrival;
        let after = self.cache.stats();
        Ok(ServeReport {
            responses,
            rejected,
            batches,
            busy_seconds,
            makespan_s: makespan_s.max(0.0),
            cache: CacheStats {
                hits: after.hits - stats_before.hits,
                misses: after.misses - stats_before.misses,
                evictions: after.evictions - stats_before.evictions,
            },
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        fitted: &[NearestNeighbors<T>],
        open: &mut [OpenBatch<T>],
        dataset: usize,
        close_s: f64,
        device_free_at: &mut f64,
        inflight: &mut Vec<(f64, usize)>,
        responses: &mut Vec<Response<T>>,
        batches: &mut usize,
        busy_seconds: &mut f64,
    ) -> Result<(), KernelError> {
        let taken = std::mem::take(&mut open[dataset].requests);
        if taken.is_empty() {
            return Ok(());
        }
        let nn = &fitted[dataset];
        let cols = nn.index().expect("fitted").cols();
        let rows: Vec<&CsrMatrix<T>> = taken.iter().map(|r| &r.row).collect();
        let batch_query = vstack(&rows, cols);

        let (exec_seconds, result) = if self.config.per_query_prepare {
            // Baseline mode: pay uploads + norms on every batch.
            let r = nn.kneighbors_sharded(&self.multi, &batch_query, self.config.k)?;
            (r.sim_seconds, r)
        } else {
            let (shards, warm_s) = self.cache.get_or_prepare(nn, &self.multi)?;
            let r = nn.kneighbors_prepared(&shards, &batch_query, self.config.k)?;
            (warm_s + r.sim_seconds, r)
        };

        let start_s = close_s.max(*device_free_at);
        let completion_s = start_s + exec_seconds;
        *device_free_at = completion_s;
        *busy_seconds += exec_seconds;
        *batches += 1;
        inflight.push((completion_s, taken.len()));

        for (i, req) in taken.into_iter().enumerate() {
            responses.push(Response {
                id: req.id,
                dataset,
                indices: result.indices[i].clone(),
                distances: result.distances[i].clone(),
                arrival_s: req.arrival_s,
                dispatch_s: start_s,
                completion_s,
            });
        }
        Ok(())
    }
}

/// Builds a fixed-gap replay stream over the rows of `query`: request
/// `i` is row `i` arriving at `i * gap_s`, all against dataset 0. The
/// `spdist serve` driver and the throughput bench both use this shape.
pub fn replay_rows<T: Real>(query: &CsrMatrix<T>, gap_s: f64) -> Vec<Request<T>> {
    (0..query.rows())
        .map(|i| Request {
            id: i as u64,
            dataset: 0,
            arrival_s: i as f64 * gap_s,
            row: query.slice_rows(i..i + 1),
        })
        .collect()
}
