//! The mutable-dataset segment structure (DESIGN §16): an immutable
//! prepared **base** plus a small brute-force **fresh** segment and a
//! tombstone set, with snapshot compaction folding fresh back into a
//! new base generation.
//!
//! Rows carry *logical ids* assigned in insertion order — seed base row
//! `r` is id `r`, WAL inserts continue from there, and ids are never
//! reused. The live view of the dataset is "all non-tombstoned rows in
//! ascending id order", which is exactly the row order a from-scratch
//! rebuild ([`MutableDataset::rebuild`]) materializes. Queries answer
//! in that coordinate system (*live ranks*), so a served index is
//! directly a row number of the rebuilt matrix — the byte-identity
//! oracle the acceptance tests `cmp` against.
//!
//! Why per-arm execution is exact (not approximately) equal to the
//! rebuild: per-row distances are pure functions of the query row and
//! the index row bytes, independent of which other rows share the
//! matrix (DESIGN §10's singleton-slab argument — the same fact that
//! makes contiguous sharding byte-identical). So computing the base arm
//! and fresh arm separately, masking tombstones, remapping to live
//! ranks, and merging under [`cmp_dist_idx`] reproduces the one-shot
//! answer over the rebuilt matrix bit for bit.

use crate::wal::{WalError, WalOp, WalRecord};
use neighbors::cmp_dist_idx;
use sparse::{CsrMatrix, Idx, Real};
use std::collections::BTreeSet;

/// One fresh (not-yet-compacted) row.
#[derive(Debug, Clone)]
struct FreshRow<T> {
    id: u64,
    cols: Vec<Idx>,
    vals: Vec<T>,
}

/// What applying one WAL record did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppliedOp {
    /// A row was appended and assigned this logical id.
    Inserted {
        /// The new row's logical id.
        id: u64,
    },
    /// A live row was tombstoned.
    Deleted {
        /// The tombstoned logical id.
        id: u64,
    },
}

/// A snapshot taken by [`MutableDataset::begin_compaction`]: the new
/// base contents frozen at snapshot time, carried by the compactor
/// while writes keep landing, and swapped in by
/// [`MutableDataset::finish_compaction`].
#[derive(Debug, Clone)]
pub struct CompactionJob<T> {
    /// The new base: live rows at snapshot time, ascending id order.
    pub matrix: CsrMatrix<T>,
    /// Logical id of each row of `matrix`.
    pub ids: Vec<u64>,
    /// `next_id` at snapshot time: every id below this is either in
    /// `ids` or permanently dead once the job lands.
    pub watermark: u64,
    /// The generation this job will become.
    pub generation: u64,
}

/// What a finished compaction changed, for metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// Rows in the new base.
    pub rows: usize,
    /// Tombstones dropped because their rows were compacted away.
    pub cleared_tombstones: usize,
    /// Fresh rows folded into the new base.
    pub folded_fresh: usize,
}

/// Precomputed id→live-rank maps for one query dispatch. Ranks are row
/// numbers of the rebuilt matrix; `None` marks a tombstoned row.
#[derive(Debug, Clone)]
pub struct RankPlan {
    /// Live rank per base-matrix row (position order).
    pub base_rank: Vec<Option<usize>>,
    /// Live rank per fresh-matrix row (position order).
    pub fresh_rank: Vec<Option<usize>>,
    /// Tombstoned rows in the base matrix (the base arm's over-fetch
    /// padding: `k + base_dead` candidates survive any masking).
    pub base_dead: usize,
    /// Tombstoned rows in the fresh matrix.
    pub fresh_dead: usize,
    /// Total live rows.
    pub live: usize,
}

/// A dataset that accepts WAL deltas while staying exactly servable:
/// prepared base + brute-force fresh + tombstones.
#[derive(Debug, Clone)]
pub struct MutableDataset<T> {
    cols: usize,
    base: CsrMatrix<T>,
    /// Logical id of each base row, strictly ascending.
    base_ids: Vec<u64>,
    generation: u64,
    next_id: u64,
    fresh: Vec<FreshRow<T>>,
    tombstones: BTreeSet<u64>,
    /// Records consumed from the log (applied or rejected), i.e. the
    /// seq the next record must carry.
    log_position: u64,
}

impl<T: Real> MutableDataset<T> {
    /// Wraps a seed base matrix: its rows get logical ids `0..rows`,
    /// generation 0, empty fresh segment.
    pub fn new(base: CsrMatrix<T>) -> Self {
        let rows = base.rows() as u64;
        Self {
            cols: base.cols(),
            base_ids: (0..rows).collect(),
            next_id: rows,
            base,
            generation: 0,
            fresh: Vec::new(),
            tombstones: BTreeSet::new(),
            log_position: 0,
        }
    }

    /// An empty dataset of the given width (everything arrives via the
    /// WAL).
    pub fn empty(cols: usize) -> Self {
        Self::new(CsrMatrix::zeros(0, cols))
    }

    /// Dataset width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Current compaction generation of the base segment.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The base segment (may contain tombstoned rows until the next
    /// compaction).
    pub fn base(&self) -> &CsrMatrix<T> {
        &self.base
    }

    /// Rows in the fresh segment (tombstoned ones included).
    pub fn fresh_rows(&self) -> usize {
        self.fresh.len()
    }

    /// Outstanding tombstones.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// Records consumed from the log so far.
    pub fn log_position(&self) -> u64 {
        self.log_position
    }

    /// Live (servable) rows.
    pub fn live_rows(&self) -> usize {
        self.base_ids.len() + self.fresh.len() - self.tombstones.len()
    }

    /// Deltas the next compaction would fold or clear: fresh rows plus
    /// tombstones. The compaction threshold compares against this.
    pub fn pending_ops(&self) -> usize {
        self.fresh.len() + self.tombstones.len()
    }

    fn is_live(&self, id: u64) -> bool {
        if self.tombstones.contains(&id) {
            return false;
        }
        self.base_ids.binary_search(&id).is_ok()
            || self.fresh.binary_search_by_key(&id, |f| f.id).is_ok()
    }

    /// Applies one WAL record. The record's `seq` must be exactly the
    /// current log position; op-level rejects (bad deletes) still
    /// consume the position — the log moves forward, the state does
    /// not, and the caller counts the record as rejected.
    ///
    /// # Errors
    ///
    /// [`WalError::BadSequence`] on a position mismatch (nothing
    /// consumed); [`WalError::DeleteOutOfRange`] / [`WalError::DeleteDead`]
    /// when a delete names an unassigned or dead id (record consumed).
    pub fn apply(&mut self, record: &WalRecord<T>) -> Result<AppliedOp, WalError> {
        if record.seq != self.log_position {
            return Err(WalError::BadSequence {
                line: 0,
                expected: self.log_position,
                found: record.seq,
            });
        }
        self.log_position += 1;
        match &record.op {
            WalOp::Insert { cols, vals } => {
                let id = self.next_id;
                self.next_id += 1;
                self.fresh.push(FreshRow {
                    id,
                    cols: cols.clone(),
                    vals: vals.clone(),
                });
                Ok(AppliedOp::Inserted { id })
            }
            WalOp::Delete { row } => {
                if *row >= self.next_id {
                    return Err(WalError::DeleteOutOfRange {
                        seq: record.seq,
                        row: *row,
                    });
                }
                if !self.is_live(*row) {
                    return Err(WalError::DeleteDead {
                        seq: record.seq,
                        row: *row,
                    });
                }
                self.tombstones.insert(*row);
                Ok(AppliedOp::Deleted { id: *row })
            }
        }
    }

    /// The fresh segment as a matrix (tombstoned rows included — row
    /// membership never changes distances of other rows, and keeping
    /// positions stable means deletes don't force a rebuild). Row `i`
    /// corresponds to the `i`-th inserted-and-not-yet-compacted row.
    pub fn fresh_matrix(&self) -> CsrMatrix<T> {
        let mut indptr = Vec::with_capacity(self.fresh.len() + 1);
        let mut indices: Vec<Idx> = Vec::new();
        let mut values: Vec<T> = Vec::new();
        indptr.push(0);
        for f in &self.fresh {
            indices.extend_from_slice(&f.cols);
            values.extend_from_slice(&f.vals);
            indptr.push(indices.len());
        }
        CsrMatrix::from_parts(self.fresh.len(), self.cols, indptr, indices, values)
            .expect("fresh rows preserve CSR invariants")
    }

    /// Materializes the equivalent immutable dataset: live rows in
    /// ascending logical-id order. This is the byte-identity oracle —
    /// served indices are row numbers of exactly this matrix.
    pub fn rebuild(&self) -> CsrMatrix<T> {
        let mut indptr = Vec::new();
        let mut indices: Vec<Idx> = Vec::new();
        let mut values: Vec<T> = Vec::new();
        indptr.push(0);
        let mut rows = 0;
        // Base ids all precede fresh ids, and both are ascending, so
        // live order is "live base rows, then live fresh rows".
        for (pos, id) in self.base_ids.iter().enumerate() {
            if self.tombstones.contains(id) {
                continue;
            }
            indices.extend_from_slice(self.base.row_indices(pos));
            values.extend_from_slice(self.base.row_values(pos));
            indptr.push(indices.len());
            rows += 1;
        }
        for f in &self.fresh {
            if self.tombstones.contains(&f.id) {
                continue;
            }
            indices.extend_from_slice(&f.cols);
            values.extend_from_slice(&f.vals);
            indptr.push(indices.len());
            rows += 1;
        }
        CsrMatrix::from_parts(rows, self.cols, indptr, indices, values)
            .expect("live rows preserve CSR invariants")
    }

    /// Builds the id→live-rank maps for the current state.
    pub fn rank_plan(&self) -> RankPlan {
        let mut base_rank = Vec::with_capacity(self.base_ids.len());
        let mut rank = 0usize;
        let mut base_dead = 0usize;
        for id in &self.base_ids {
            if self.tombstones.contains(id) {
                base_rank.push(None);
                base_dead += 1;
            } else {
                base_rank.push(Some(rank));
                rank += 1;
            }
        }
        let mut fresh_rank = Vec::with_capacity(self.fresh.len());
        let mut fresh_dead = 0usize;
        for f in &self.fresh {
            if self.tombstones.contains(&f.id) {
                fresh_rank.push(None);
                fresh_dead += 1;
            } else {
                fresh_rank.push(Some(rank));
                rank += 1;
            }
        }
        RankPlan {
            base_rank,
            fresh_rank,
            base_dead,
            fresh_dead,
            live: rank,
        }
    }

    /// Snapshots the live state as a [`CompactionJob`]. Writes applied
    /// after this call accumulate normally and survive the swap.
    pub fn begin_compaction(&self) -> CompactionJob<T> {
        let ids: Vec<u64> = self
            .base_ids
            .iter()
            .chain(self.fresh.iter().map(|f| &f.id))
            .filter(|id| !self.tombstones.contains(id))
            .copied()
            .collect();
        CompactionJob {
            matrix: self.rebuild(),
            ids,
            watermark: self.next_id,
            generation: self.generation + 1,
        }
    }

    /// Atomically swaps a finished compaction in: the job's matrix
    /// becomes the base, fresh keeps only rows inserted after the
    /// snapshot, and tombstones referencing compacted-away rows are
    /// dropped. Queries before and after the swap answer identically —
    /// the swap only moves rows between arms.
    pub fn finish_compaction(&mut self, job: CompactionJob<T>) -> CompactionOutcome {
        debug_assert_eq!(job.generation, self.generation + 1, "jobs land in order");
        let folded_fresh = self.fresh.iter().filter(|f| f.id < job.watermark).count();
        self.fresh.retain(|f| f.id >= job.watermark);
        // A tombstone stays only while its row is still present in an
        // arm: rows of the new base (deleted after the snapshot) or
        // fresh rows past the watermark. Everything else was compacted
        // away and its id can never be referenced again.
        let before = self.tombstones.len();
        let ids = &job.ids;
        self.tombstones
            .retain(|id| *id >= job.watermark || ids.binary_search(id).is_ok());
        let cleared = before - self.tombstones.len();
        let rows = job.matrix.rows();
        self.base = job.matrix;
        self.base_ids = job.ids;
        self.generation = job.generation;
        CompactionOutcome {
            rows,
            cleared_tombstones: cleared,
            folded_fresh,
        }
    }
}

/// One arm's per-query candidate lists: `(indices, distances)`, both
/// arm-local and in canonical [`cmp_dist_idx`] order.
pub type ArmLists<'a, T> = (&'a [Vec<usize>], &'a [Vec<T>]);

/// Merges per-query candidate lists from the base and fresh arms into
/// the final top-`k` in live-rank coordinates.
///
/// Each arm's lists are in canonical [`cmp_dist_idx`] order over
/// *arm-local* indices; remapping through the [`RankPlan`] is monotone
/// (live rank increases with arm row), so each remapped list stays
/// sorted and a two-pointer merge under `cmp_dist_idx` yields the
/// exact order a one-shot top-k over the rebuilt matrix produces.
pub fn merge_arms<T: Real>(
    k: usize,
    plan: &RankPlan,
    base: Option<ArmLists<'_, T>>,
    fresh: Option<ArmLists<'_, T>>,
    queries: usize,
) -> (Vec<Vec<usize>>, Vec<Vec<T>>) {
    let remap =
        |arm: Option<ArmLists<'_, T>>, ranks: &[Option<usize>], q: usize| -> Vec<(usize, T)> {
            match arm {
                Some((idx, dist)) => idx[q]
                    .iter()
                    .zip(&dist[q])
                    .filter_map(|(&i, &d)| ranks[i].map(|r| (r, d)))
                    .collect(),
                None => Vec::new(),
            }
        };
    let mut out_idx = Vec::with_capacity(queries);
    let mut out_dist = Vec::with_capacity(queries);
    for q in 0..queries {
        let a = remap(base, &plan.base_rank, q);
        let b = remap(fresh, &plan.fresh_rank, q);
        let mut merged = Vec::with_capacity(k.min(a.len() + b.len()));
        let (mut i, mut j) = (0, 0);
        while merged.len() < k && (i < a.len() || j < b.len()) {
            let take_a = match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) => cmp_dist_idx(x, y).is_le(),
                (Some(_), None) => true,
                _ => false,
            };
            if take_a {
                merged.push(a[i]);
                i += 1;
            } else {
                merged.push(b[j]);
                j += 1;
            }
        }
        out_idx.push(merged.iter().map(|&(r, _)| r).collect());
        out_dist.push(merged.iter().map(|&(_, d)| d).collect());
    }
    (out_idx, out_dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::Wal;

    fn row(seed: usize) -> (Vec<Idx>, Vec<f64>) {
        let cols: Vec<Idx> = (0..8u32)
            .filter(|&c| (c as usize + seed).is_multiple_of(3))
            .collect();
        let vals = cols
            .iter()
            .map(|&c| 1.0 + seed as f64 + f64::from(c) / 7.0)
            .collect();
        (cols, vals)
    }

    fn seeded(rows: usize) -> (MutableDataset<f64>, Wal<f64>) {
        let mut dense = vec![0.0; rows * 8];
        for r in 0..rows {
            let (cols, vals) = row(r);
            for (c, v) in cols.iter().zip(&vals) {
                dense[r * 8 + *c as usize] = *v;
            }
        }
        (
            MutableDataset::new(CsrMatrix::from_dense(rows, 8, &dense)),
            Wal::new(8),
        )
    }

    #[test]
    fn inserts_deletes_and_rebuild_agree_with_logical_order() {
        let (mut ds, mut wal) = seeded(3);
        let (c, v) = row(10);
        wal.append_insert(&c, &v);
        wal.append_delete(1);
        let (c, v) = row(11);
        wal.append_insert(&c, &v);
        for rec in wal.records() {
            ds.apply(rec).expect("applies");
        }
        assert_eq!(ds.live_rows(), 4);
        assert_eq!(ds.pending_ops(), 3);
        let rebuilt = ds.rebuild();
        assert_eq!(rebuilt.rows(), 4);
        // Live order: base 0, base 2, fresh id 3, fresh id 4.
        let plan = ds.rank_plan();
        assert_eq!(plan.base_rank, vec![Some(0), None, Some(1)]);
        assert_eq!(plan.fresh_rank, vec![Some(2), Some(3)]);
        assert_eq!((plan.base_dead, plan.fresh_dead, plan.live), (1, 0, 4));
        // Rebuilt row 1 is base row 2.
        assert_eq!(rebuilt.row_indices(1), ds.base().row_indices(2));
    }

    #[test]
    fn bad_deletes_are_typed_and_consume_the_log_position() {
        let (mut ds, _) = seeded(2);
        let bad = WalRecord {
            seq: 0,
            op: WalOp::Delete { row: 99 },
        };
        assert!(matches!(
            ds.apply(&bad),
            Err(WalError::DeleteOutOfRange { seq: 0, row: 99 })
        ));
        assert_eq!(ds.log_position(), 1, "rejected records still consume seq");
        let ok = WalRecord {
            seq: 1,
            op: WalOp::Delete { row: 0 },
        };
        ds.apply(&ok).expect("applies");
        let twice = WalRecord {
            seq: 2,
            op: WalOp::Delete { row: 0 },
        };
        assert!(matches!(
            ds.apply(&twice),
            Err(WalError::DeleteDead { seq: 2, row: 0 })
        ));
        // Out-of-order records do not consume anything.
        let skew = WalRecord {
            seq: 7,
            op: WalOp::Delete { row: 1 },
        };
        assert!(matches!(ds.apply(&skew), Err(WalError::BadSequence { .. })));
        assert_eq!(ds.log_position(), 3);
    }

    #[test]
    fn compaction_folds_fresh_clears_dead_tombstones_and_preserves_rebuild() {
        let (mut ds, mut wal) = seeded(4);
        for s in 10..14 {
            let (c, v) = row(s);
            wal.append_insert(&c, &v);
        }
        wal.append_delete(0);
        wal.append_delete(5);
        for rec in wal.records() {
            ds.apply(rec).expect("applies");
        }
        let before = ds.rebuild();
        let job = ds.begin_compaction();
        // Writes landing mid-compaction.
        let (c, v) = row(20);
        let mut extra = WalRecord {
            seq: ds.log_position(),
            op: WalOp::Insert {
                cols: c.clone(),
                vals: v.clone(),
            },
        };
        ds.apply(&extra).expect("mid-compaction insert");
        extra.seq += 1;
        extra.op = WalOp::Delete { row: 1 };
        ds.apply(&extra).expect("mid-compaction delete");
        let mid = ds.rebuild();

        let outcome = ds.finish_compaction(job);
        assert_eq!(ds.generation(), 1);
        assert_eq!(outcome.rows, before.rows());
        // Tombstones for ids 0 and 5 were compacted away; the
        // mid-compaction tombstone for id 1 (now a base row) remains.
        assert_eq!(outcome.cleared_tombstones, 2);
        assert_eq!(ds.tombstone_count(), 1);
        assert_eq!(ds.fresh_rows(), 1, "post-snapshot insert stays fresh");
        // The swap changes no answers: rebuild is identical before and
        // after landing the job.
        let after = ds.rebuild();
        assert_eq!(mid.rows(), after.rows());
        assert_eq!(mid.indptr(), after.indptr());
        assert_eq!(mid.indices(), after.indices());
        let bits = |m: &CsrMatrix<f64>| m.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&mid), bits(&after));
        // A second compaction from here lands as generation 2.
        let job2 = ds.begin_compaction();
        ds.finish_compaction(job2);
        assert_eq!(ds.generation(), 2);
        assert_eq!(ds.pending_ops(), 0);
        assert_eq!(ds.rebuild().rows(), after.rows());
    }

    #[test]
    fn merge_arms_reproduces_single_list_order() {
        // Base candidates at ranks 0,2 (base row 1 tombstoned), fresh
        // at ranks 3,4; distances interleave.
        let plan = RankPlan {
            base_rank: vec![Some(0), None, Some(1), Some(2)],
            fresh_rank: vec![Some(3), Some(4)],
            base_dead: 1,
            fresh_dead: 0,
            live: 5,
        };
        let base_idx = vec![vec![1usize, 0, 2, 3]];
        let base_dist = vec![vec![0.5f64, 1.0, 2.0, 4.0]];
        let fresh_idx = vec![vec![0usize, 1]];
        let fresh_dist = vec![vec![1.0f64, 3.0]];
        let (idx, dist) = merge_arms(
            4,
            &plan,
            Some((&base_idx, &base_dist)),
            Some((&fresh_idx, &fresh_dist)),
            1,
        );
        // Tombstoned base row 1 (d=0.5) is masked. Tie at d=1.0 between
        // live rank 0 (base) and live rank 3 (fresh) breaks low-rank.
        assert_eq!(idx[0], vec![0, 3, 1, 4]);
        assert_eq!(dist[0], vec![1.0, 1.0, 2.0, 3.0]);
    }
}
