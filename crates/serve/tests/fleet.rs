//! Acceptance suite for serving under overload (DESIGN §14): workload
//! generation, SLO-driven admission control, the autoscaled replica
//! fleet, and chaos drills.
//!
//! The contracts under test:
//! * admission degrade/shed decisions are typed, counted, and leave
//!   served answers byte-identical to an unthrottled run;
//! * the fleet's scale-up/down decisions and its full report are pure
//!   functions of the request set — byte-identical across host-thread
//!   counts and arrival permutations;
//! * a mid-traffic chaos plan never changes a served byte and the
//!   fleet's burn re-enters the envelope within bounded windows.

use gpu_sim::{Device, FaultPlan};
use kernels::{PairwiseOptions, ResiliencePolicy};
use neighbors::{MultiDevice, NearestNeighbors};
use semiring::Distance;
use serve::{
    chaos_drill, AdmissionConfig, ChaosPlan, Fleet, FleetConfig, Request, ServeConfig, ServeEngine,
    ShedReason, SloBudget, Workload,
};
use sparse::CsrMatrix;

fn dataset(rows: usize, salt: u64) -> CsrMatrix<f64> {
    let mut data = vec![0.0; rows * 12];
    for r in 0..rows {
        for c in 0..12 {
            if (r + 2 * c + salt as usize).is_multiple_of(4) {
                data[r * 12 + c] = 1.0 + (salt as f64) / 3.0 + (r as f64) / 7.0 + (c as f64) / 31.0;
            }
        }
    }
    CsrMatrix::from_dense(rows, 12, &data)
}

fn resilient_fit(dev: &Device, m: CsrMatrix<f64>) -> NearestNeighbors<f64> {
    let opts = PairwiseOptions {
        resilience: Some(ResiliencePolicy::with_retries(8)),
        ..PairwiseOptions::default()
    };
    // Host-side selection: the device top-k kernel sits outside the
    // resilience cascade, so chaos-injected faults on it would be fatal
    // rather than absorbed (same caveat as the engine fault tests).
    NearestNeighbors::new(dev.clone(), Distance::Euclidean)
        .with_selection(neighbors::Selection::Host)
        .with_options(opts)
        .fit(m)
}

/// A burst at t=0 (overload) followed by a sparse calm tail.
fn burst_then_calm(
    m: &CsrMatrix<f64>,
    burst: usize,
    calm: usize,
    calm_gap_s: f64,
) -> Vec<Request<f64>> {
    let mut reqs: Vec<Request<f64>> = (0..burst)
        .map(|i| Request {
            id: i as u64,
            dataset: 0,
            arrival_s: 0.0,
            row: m.slice_rows(i % m.rows()..i % m.rows() + 1),
        })
        .collect();
    for j in 0..calm {
        let i = burst + j;
        reqs.push(Request {
            id: i as u64,
            dataset: 0,
            arrival_s: 4e-3 + j as f64 * calm_gap_s,
            row: m.slice_rows(i % m.rows()..i % m.rows() + 1),
        });
    }
    reqs
}

#[test]
fn degraded_batches_serve_byte_identical_answers() {
    let m = dataset(16, 0);
    let reqs = burst_then_calm(&m, 24, 0, 0.0);
    let cfg = ServeConfig {
        k: 3,
        max_batch: 4,
        max_wait_s: 20e-6,
        max_queue: 1024,
        ..ServeConfig::default()
    };
    let run = |admission: Option<AdmissionConfig>| {
        let multi = MultiDevice::replicate(&Device::volta(), 2);
        let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(m.clone());
        let mut config = cfg;
        config.admission = admission;
        let mut engine = ServeEngine::new(multi, config);
        let report = engine.replay(&[nn], &reqs).expect("replay");
        let counters = (
            engine.metrics().counter("serve.degraded_requests_total"),
            engine.metrics().counter("serve.degraded_batches_total"),
        );
        (report, counters)
    };
    // Degrade watermark 0: every admitted batch executes degraded.
    let (degraded, (dr, db)) = run(Some(
        AdmissionConfig::default().with_watermarks(0, usize::MAX),
    ));
    let (plain, _) = run(None);
    assert_eq!(degraded.responses.len(), plain.responses.len());
    assert_eq!(degraded.degraded_requests, 24);
    assert!(degraded.degraded_batches > 0);
    assert_eq!(dr, 24);
    assert_eq!(db, degraded.degraded_batches);
    // Every span of a served request carries the admission_degrade
    // marker, and the answers match the unthrottled run bit-for-bit.
    for (a, b) in degraded.responses.iter().zip(&plain.responses) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.indices, b.indices, "degrade must not change neighbors");
        for (x, y) in a.distances.iter().zip(&b.distances) {
            assert_eq!(x.to_bits(), y.to_bits(), "degrade must not change bytes");
        }
    }
    let marked = degraded
        .spans
        .iter()
        .filter(|s| {
            s.events
                .iter()
                .any(|e| e.event.name() == "admission_degrade")
        })
        .count();
    assert_eq!(marked, 24, "every request carries the degrade marker");
}

#[test]
fn shed_reasons_are_typed_counted_and_summarized() {
    let m = dataset(16, 0);
    // 1 kqps sustained against a bucket refilling at 100 tokens/s with
    // burst 4: most arrivals rate-limit. Watermark shed kicks in first
    // for backlog >= 2.
    let reqs: Vec<Request<f64>> = (0..40usize)
        .map(|i| Request {
            id: i as u64,
            dataset: 0,
            arrival_s: i as f64 * 1e-3,
            row: m.slice_rows(i % 16..i % 16 + 1),
        })
        .collect();
    let multi = MultiDevice::replicate(&Device::volta(), 2);
    let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(m.clone());
    let cfg = ServeConfig {
        k: 3,
        max_batch: 4,
        max_wait_s: 50e-6,
        max_queue: 8,
        admission: Some(AdmissionConfig::default().with_rate(100.0, 4.0)),
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(multi, cfg);
    let report = engine.replay(&[nn], &reqs).expect("replay");
    assert!(!report.rejected.is_empty(), "rate limit must shed");
    assert!(report
        .rejected
        .iter()
        .all(|r| r.reason == ShedReason::RateLimit));
    let m = engine.metrics();
    assert_eq!(
        m.counter("serve.shed_rate_limit_total"),
        report.rejected.len() as u64
    );
    assert_eq!(m.counter("serve.shed_queue_full_total"), 0);
    assert_eq!(
        m.counter("serve.requests_rejected_total"),
        report.rejected.len() as u64
    );
    // The typed counts surface without any metrics snapshot.
    let counts = report.shed_counts();
    assert_eq!(counts[1].0, ShedReason::RateLimit);
    assert_eq!(counts[1].1, report.rejected.len());
    assert!(report.shed_fraction() > 0.0 && report.shed_fraction() < 1.0);
    // Rejected spans are terminal and carry the reason.
    let rejected_spans = report
        .spans
        .iter()
        .filter(|s| s.events.iter().any(|e| e.event.name() == "rejected"))
        .count();
    assert_eq!(rejected_spans, report.rejected.len());
}

#[test]
fn queue_cliff_still_sheds_without_admission_config() {
    let m = dataset(16, 0);
    let reqs = burst_then_calm(&m, 16, 0, 0.0);
    let multi = MultiDevice::replicate(&Device::volta(), 2);
    let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(m.clone());
    let cfg = ServeConfig {
        k: 2,
        max_batch: 4,
        max_wait_s: 10.0,
        max_queue: 3,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(multi, cfg);
    let report = engine.replay(&[nn], &reqs).expect("replay");
    assert!(!report.rejected.is_empty());
    assert!(report
        .rejected
        .iter()
        .all(|r| r.reason == ShedReason::QueueFull));
    assert_eq!(
        engine.metrics().counter("serve.shed_queue_full_total"),
        report.rejected.len() as u64
    );
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        min_replicas: 1,
        max_replicas: 3,
        window_s: 1e-3,
        scale_up_burn: 1.0,
        scale_down_burn: 0.5,
        cooldown_windows: 2,
        serve: ServeConfig {
            k: 3,
            max_batch: 4,
            // Tight coalescing deadline: a lone calm-phase request costs
            // ~1.2 us end to end, while a deep burst backlog pushes the
            // tail past the SLO target — the contrast the autoscaler
            // tests lean on.
            max_wait_s: 1e-6,
            max_queue: 4096,
            ..ServeConfig::default()
        },
    }
}

/// SLO used across the fleet tests: tight enough that a sustained burst
/// breaches (batch service time is ~0.25 us, so a backlog a dozen
/// batches deep blows through 3 us) while an uncontended single-request
/// window stays comfortably inside it.
fn tight_slo() -> SloBudget {
    SloBudget::p99(3e-6)
}

/// Canonical byte rendering of a fleet run for determinism comparison.
fn fleet_fingerprint(proto: &Device, requests: &[Request<f64>]) -> String {
    let mut fleet = Fleet::new(proto.clone(), fleet_config()).with_slo(0, tight_slo());
    let nn = resilient_fit(&Device::volta(), dataset(16, 0));
    let report = fleet.run(&[nn], requests).expect("fleet runs");
    let mut out = String::new();
    for r in &report.responses {
        out.push_str(&format!(
            "{}:{}:{}:{:x?}\n",
            r.id,
            r.completion_s.to_bits(),
            r.indices
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(","),
            r.distances.iter().map(|d| d.to_bits()).collect::<Vec<_>>()
        ));
    }
    for e in &report.scale_events {
        out.push_str(&format!("scale:{}:{}->{}\n", e.window, e.from, e.to));
    }
    out.push_str(&fleet.metrics().snapshot("serve.fleet").to_json());
    out
}

#[test]
fn fleet_scales_up_under_burn_and_down_when_calm() {
    let m = dataset(16, 0);
    // Heavy burst (breaches the 150 us SLO hard), then a long calm
    // tail of spaced singles.
    let reqs = burst_then_calm(&m, 240, 10, 1e-3);
    let mut fleet = Fleet::new(Device::volta(), fleet_config()).with_slo(0, tight_slo());
    let nn = resilient_fit(&Device::volta(), m.clone());
    let report = fleet.run(&[nn], &reqs).expect("fleet runs");
    assert_eq!(
        report.responses.len() + report.rejected.len(),
        reqs.len(),
        "no request lost"
    );
    let ups = report.scale_events.iter().filter(|e| e.to > e.from).count();
    let downs = report.scale_events.iter().filter(|e| e.to < e.from).count();
    assert!(ups >= 1, "overload must trigger a scale-up: {report:?}");
    assert!(downs >= 1, "calm tail must scale back down");
    assert_eq!(report.replicas_final, fleet_config().min_replicas);
    let metrics = fleet.metrics();
    assert_eq!(metrics.counter("serve.fleet.scale_ups_total"), ups as u64);
    assert_eq!(
        metrics.counter("serve.fleet.scale_downs_total"),
        downs as u64
    );
    assert_eq!(
        metrics.counter("serve.fleet.windows_total"),
        report.windows.len() as u64
    );
    bench::validate_metrics(&metrics.snapshot("serve.fleet").to_json())
        .expect("fleet metrics validate");
}

#[test]
fn fleet_reports_are_byte_identical_across_threads_and_permutations() {
    let pools = [dataset(16, 0)];
    let workload = Workload::steady(11, 40_000.0, 5e-3)
        .with_zipf(1.1)
        .with_diurnal(0.4, 2e-3)
        .with_bursts(1.25e-3, 16);
    let requests = workload.generate(&pools);
    assert!(requests.len() > 100, "workload dense enough to stress");
    let reference = fleet_fingerprint(&Device::volta(), &requests);

    // Reversed arrival order, 8 host threads: same bytes.
    let mut reversed = requests.clone();
    reversed.reverse();
    let threaded = Device::volta().with_host_threads(8);
    assert_eq!(fleet_fingerprint(&threaded, &reversed), reference);
}

#[test]
fn chaos_drill_recovers_and_never_serves_a_divergent_byte() {
    let m = dataset(16, 0);
    let reqs = burst_then_calm(&m, 60, 12, 0.5e-3);
    let chaos = ChaosPlan {
        start_s: 0.0,
        end_s: 2e-3,
        // 10% transient launch failures, absorbed by the retry policy.
        fault: FaultPlan::seeded(7).with_transient_launch_failures(100),
    };
    let nn = resilient_fit(&Device::volta(), m.clone());
    let outcome = chaos_drill(
        &Device::volta(),
        fleet_config(),
        &[(0, tight_slo())],
        &[nn],
        &reqs,
        chaos,
        1.0,
    )
    .expect("drill runs");
    assert!(outcome.common > 0, "runs must share served requests");
    assert_eq!(outcome.divergent, 0, "chaos must never change a byte");
    let recovered = outcome.recovery_window.expect("fleet must recover");
    // Recovery within the calm tail: bounded by the window count.
    assert!(recovered < outcome.chaos.windows.len());
    // The chaos run actually saw chaos windows and absorbed faults.
    assert!(outcome.chaos.windows.iter().any(|w| w.chaos));
    assert!(outcome.chaos.windows.iter().any(|w| !w.chaos));
}
