//! Serving-telemetry acceptance suite (DESIGN §13).
//!
//! The determinism contract under test: a `metrics.v1` snapshot is a
//! pure function of the request *set* — byte-identical across host
//! thread counts and arrival-order permutations of the same stream —
//! and its histogram percentiles bound the exact sort-based percentiles
//! from above by at most one log-bucket width. The final test drives an
//! eviction-thrashing, fault-absorbing, SLO-breaching replay end to end
//! and checks every signal the registry claims to expose.

use gpu_sim::{Device, FaultPlan};
use kernels::{PairwiseOptions, ResiliencePolicy};
use neighbors::{MultiDevice, NearestNeighbors};
use proptest::prelude::*;
use proptest::TestRng;
use semiring::Distance;
use serve::metrics::{HIST_GROWTH, HIST_MIN};
use serve::{
    percentile_sorted, replay_rows, request_chrome_trace, LogHistogram, Request, ServeConfig,
    ServeEngine, SloBudget,
};
use sparse::CsrMatrix;

fn dataset(rows: usize, salt: u64) -> CsrMatrix<f64> {
    let mut data = vec![0.0; rows * 12];
    for r in 0..rows {
        for c in 0..12 {
            if (r + 2 * c + salt as usize).is_multiple_of(4) {
                data[r * 12 + c] = 1.0 + (salt as f64) / 3.0 + (r as f64) / 7.0 + (c as f64) / 31.0;
            }
        }
    }
    CsrMatrix::from_dense(rows, 12, &data)
}

fn engine_for(host_threads: usize) -> (ServeEngine<f64>, Vec<NearestNeighbors<f64>>) {
    let dev = if host_threads > 1 {
        Device::volta().with_host_threads(host_threads)
    } else {
        Device::volta()
    };
    let multi = MultiDevice::replicate(&dev, 2);
    let nn = NearestNeighbors::new(dev, Distance::Euclidean).fit(dataset(12, 0));
    let cfg = ServeConfig {
        k: 3,
        max_batch: 4,
        max_wait_s: 40e-6,
        ..ServeConfig::default()
    };
    let engine = ServeEngine::new(multi, cfg).with_slo(0, SloBudget::p99(400e-6));
    (engine, vec![nn])
}

/// One replay of `requests` (in the given order) on `host_threads`,
/// returning the canonical `metrics.v1` rendering.
fn snapshot_of(host_threads: usize, requests: &[Request<f64>]) -> String {
    let (mut engine, fitted) = engine_for(host_threads);
    engine.replay(&fitted, requests).expect("replay runs");
    engine.metrics().snapshot("serve").to_json()
}

// ---------------------------------------------------------------------
// Satellite 1: latency_percentile edge cases, and the stderr summary
// and the registry agreeing on one nearest-rank definition.
// ---------------------------------------------------------------------

#[test]
fn latency_percentile_is_defined_for_empty_and_single_sample_reports() {
    let (mut engine, fitted) = engine_for(1);
    let empty = engine.replay(&fitted, &[]).expect("empty replay");
    assert!(empty.responses.is_empty());
    for p in [0.0, 50.0, 99.0, 100.0] {
        assert_eq!(empty.latency_percentile(p), 0.0, "empty report, p{p}");
    }

    let m = dataset(12, 0);
    let one = vec![Request {
        id: 0,
        dataset: 0,
        arrival_s: 0.0,
        row: m.slice_rows(0..1),
    }];
    let report = engine.replay(&fitted, &one).expect("single replay");
    assert_eq!(report.responses.len(), 1);
    let lat = report.responses[0].latency_s();
    assert!(lat > 0.0);
    // Every percentile of a single sample is that sample: nearest rank
    // ceil(p/100 * 1) clamps to 1.
    for p in [1.0, 50.0, 99.0, 100.0] {
        assert_eq!(report.latency_percentile(p).to_bits(), lat.to_bits());
    }
}

#[test]
fn summary_percentiles_and_registry_agree_on_nearest_rank() {
    let (mut engine, fitted) = engine_for(1);
    let report = engine
        .replay(&fitted, &replay_rows(&dataset(12, 0), 15e-6))
        .expect("replay");
    let m = engine.metrics();
    // The gauges carry the *exact* nearest-rank percentiles — the same
    // numbers ServeReport::latency_percentile (the stderr summary)
    // computes, bit for bit.
    for (p, gauge) in [(50.0, "serve.p50_latency_s"), (99.0, "serve.p99_latency_s")] {
        let exact = report.latency_percentile(p);
        let g = m.gauge(gauge).expect("percentile gauge recorded");
        assert_eq!(g.to_bits(), exact.to_bits(), "{gauge}");
        // The histogram's bucketed answer bounds the same rank's sample
        // from above by at most one bucket width (factor HIST_GROWTH).
        let hist = m.histogram("serve.latency_s").expect("latency histogram");
        let bucketed = hist.percentile(p);
        assert!(
            exact <= bucketed && bucketed <= (exact * HIST_GROWTH).max(HIST_MIN),
            "p{p}: exact {exact} vs bucketed {bucketed}"
        );
    }
}

// ---------------------------------------------------------------------
// Satellite 3 (proptests): snapshot byte-identity and the histogram
// percentile oracle.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The canonical snapshot is a pure function of the request set:
    /// shuffling the input order and changing the simulator's host
    /// thread count must leave the rendered bytes untouched.
    #[test]
    fn snapshots_are_byte_identical_across_threads_and_permutations(seed in 0u64..1 << 32) {
        let requests = replay_rows(&dataset(12, 0), 15e-6);
        let reference = snapshot_of(1, &requests);

        // Fisher–Yates with the deterministic shim RNG.
        let mut shuffled = requests.clone();
        let mut rng = TestRng::from_seed(seed | 1);
        for i in (1..shuffled.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            shuffled.swap(i, j);
        }

        prop_assert_eq!(&snapshot_of(1, &shuffled), &reference);
        prop_assert_eq!(&snapshot_of(8, &shuffled), &reference);
    }

    /// Histogram-derived percentiles match the exact sort-based oracle
    /// to within one bucket width: `exact <= bucketed <= exact * G`
    /// (floored at the underflow edge).
    #[test]
    fn histogram_percentiles_track_the_sort_oracle(
        samples in proptest::collection::vec(1u64..2_000_000, 1..300),
        p in 1u32..100,
    ) {
        let samples: Vec<f64> = samples.into_iter().map(|n| n as f64 * 1e-8).collect();
        let mut hist = LogHistogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let mut sorted = samples;
        sorted.sort_by(f64::total_cmp);
        let p = p as f64;
        let exact = percentile_sorted(&sorted, p);
        let bucketed = hist.percentile(p);
        prop_assert!(
            exact <= bucketed && bucketed <= (exact * HIST_GROWTH).max(HIST_MIN),
            "p{}: exact {} vs bucketed {}", p, exact, bucketed
        );
    }
}

// ---------------------------------------------------------------------
// The acceptance replay: cache thrash + injected faults + a tight SLO,
// with every exported signal checked and both documents validated by
// the bench-side parsers.
// ---------------------------------------------------------------------

#[test]
fn thrashing_faulty_replay_exposes_every_signal() {
    let a = dataset(10, 0);
    let b = dataset(10, 1);
    // 10% transient launch failures absorbed by retries.
    let faulty =
        Device::volta().with_fault_plan(FaultPlan::seeded(7).with_transient_launch_failures(100));
    let opts = PairwiseOptions {
        resilience: Some(ResiliencePolicy::with_retries(8)),
        ..PairwiseOptions::default()
    };
    let multi = MultiDevice::replicate(&faulty, 2);
    let nn_a = NearestNeighbors::new(faulty.clone(), Distance::Euclidean)
        .with_selection(neighbors::Selection::Host)
        .with_options(opts)
        .fit(a.clone());
    let nn_b = NearestNeighbors::new(faulty.clone(), Distance::Euclidean)
        .with_selection(neighbors::Selection::Host)
        .with_options(opts)
        .fit(b.clone());
    // Budget fits one prepared entry, so dataset switches evict; runs
    // of same-dataset batches still hit.
    let budget = nn_a.prepare_shards(&multi).device_bytes() + 1;
    let cfg = ServeConfig {
        k: 3,
        max_batch: 2,
        max_wait_s: 30e-6,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(multi, cfg)
        .with_cache_budget(budget)
        // An unmeetable target: every served request breaches, so the
        // burn signals must saturate.
        .with_slo(0, SloBudget::p99(1e-9))
        .with_slo(1, SloBudget::p99(1e-9));

    // Runs of one dataset (hits within the run) separated by switches
    // to the other (miss + eviction): AAAA BBBB AAAA BBBB ...
    let mut reqs = Vec::new();
    for i in 0..10usize {
        let run = i / 5;
        reqs.push(Request {
            id: i as u64,
            dataset: 0,
            arrival_s: (4 * run * 5 + 2 * (i % 5)) as f64 * 20e-6,
            row: a.slice_rows(i..i + 1),
        });
        reqs.push(Request {
            id: 100 + i as u64,
            dataset: 1,
            arrival_s: ((4 * run + 2) * 5 + 2 * (i % 5)) as f64 * 20e-6,
            row: b.slice_rows(i..i + 1),
        });
    }
    let report = engine.replay(&[nn_a, nn_b], &reqs).expect("replay");
    assert_eq!(report.responses.len(), 20);

    let m = engine.metrics();
    // Cache signals: hits within runs, misses and evictions on every
    // dataset switch.
    assert!(m.counter("serve.cache_hits_total") > 0, "no hits");
    assert!(m.counter("serve.cache_misses_total") > 1, "no thrash");
    assert!(m.counter("serve.cache_evictions_total") > 0, "no evictions");
    assert_eq!(m.counter("serve.cache_hits_total"), report.cache.hits);
    assert_eq!(m.counter("serve.cache_misses_total"), report.cache.misses);

    // Resilience signals: the armed fault plan must have fired and been
    // absorbed by retries.
    assert!(
        m.counter("serve.faults_absorbed_total") > 0,
        "no faults absorbed"
    );
    assert!(m.counter("serve.retries_total") > 0, "no retries recorded");

    // SLO burn: a 1 ns target on a microsecond-scale path breaches on
    // every served request of both datasets.
    for d in 0..2usize {
        let served = m.counter(&format!("serve.d{d}.slo_requests_total"));
        let breaches = m.counter(&format!("serve.d{d}.slo_breaches_total"));
        assert!(
            served > 0 && breaches == served,
            "d{d}: {breaches}/{served}"
        );
        let burn = m
            .gauge(&format!("serve.d{d}.slo_budget_burn"))
            .expect("burn");
        assert!(burn > 1.0, "d{d}: burn {burn} must blow the 1% budget");
        let worst = m
            .gauge(&format!("serve.d{d}.slo_worst_window_burn"))
            .expect("worst window");
        assert!(worst >= burn / 2.0, "d{d}: worst window {worst} vs {burn}");
    }
    assert_eq!(report.slo.len(), 2);
    assert!(report.slo.iter().all(|s| s.breaches == s.requests));

    // Exact percentile gauges against the sort oracle.
    let mut lat: Vec<f64> = report.responses.iter().map(|r| r.latency_s()).collect();
    lat.sort_by(f64::total_cmp);
    for (p, gauge) in [(50.0, "serve.p50_latency_s"), (99.0, "serve.p99_latency_s")] {
        let oracle = percentile_sorted(&lat, p);
        let g = m.gauge(gauge).expect("gauge");
        assert_eq!(g.to_bits(), oracle.to_bits(), "{gauge}");
    }

    // Span taxonomy: one span per request, every one terminal, and the
    // interesting event kinds all present somewhere in the stream.
    assert_eq!(report.spans.len(), reqs.len());
    assert!(report.spans.iter().all(serve::RequestSpan::is_terminal));
    let event_names: std::collections::BTreeSet<&str> = report
        .spans
        .iter()
        .flat_map(|s| s.events.iter().map(|e| e.event.name()))
        .collect();
    for required in [
        "enqueue",
        "batch_admit",
        "cache_hit",
        "cache_miss",
        "prepare",
        "shard_launch",
        "retry",
        "merge",
        "reply",
    ] {
        assert!(event_names.contains(required), "missing event {required}");
    }

    // Both export formats validate under the bench-side parsers (the
    // same code paths CI's check_bench_json runs).
    let snap = m.snapshot("serve");
    bench::validate_metrics(&snap.to_json()).expect("metrics.v1 validates");
    bench::validate_chrome_trace(&request_chrome_trace(&report.spans))
        .expect("request trace validates");
    assert!(snap.to_prometheus().contains("serve_latency_s_bucket"));
}

#[test]
fn rejected_requests_get_terminal_rejection_spans() {
    let m = dataset(16, 0);
    let multi = MultiDevice::replicate(&Device::volta(), 2);
    let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(m.clone());
    let cfg = ServeConfig {
        k: 2,
        max_batch: 4,
        max_wait_s: 10.0,
        max_queue: 3,
        ..ServeConfig::default()
    };
    let reqs: Vec<Request<f64>> = (0..16usize)
        .map(|i| Request {
            id: i as u64,
            dataset: 0,
            arrival_s: 0.0,
            row: m.slice_rows(i..i + 1),
        })
        .collect();
    let mut engine = ServeEngine::new(multi, cfg);
    let report = engine.replay(&[nn], &reqs).expect("replay");
    assert!(!report.rejected.is_empty());
    assert_eq!(report.spans.len(), 16);
    assert!(report.spans.iter().all(serve::RequestSpan::is_terminal));
    let rejected_spans = report
        .spans
        .iter()
        .filter(|s| s.events.iter().any(|e| e.event.name() == "rejected"))
        .count();
    assert_eq!(rejected_spans, report.rejected.len());
    assert_eq!(
        engine.metrics().counter("serve.requests_rejected_total"),
        report.rejected.len() as u64
    );
    bench::validate_chrome_trace(&request_chrome_trace(&report.spans)).expect("trace validates");
}
