//! Serving-layer determinism suite: streamed micro-batches must be
//! byte-identical to the one-shot sharded path — across batch sizes,
//! arrival orders, cache evictions mid-stream, host-thread counts, and
//! under an armed fault plan absorbed by the resilience policy.

use gpu_sim::{Device, FaultPlan};
use kernels::{PairwiseOptions, ResiliencePolicy};
use neighbors::{IvfIndex, IvfParams, KnnResult, MultiDevice, NearestNeighbors};
use semiring::Distance;
use serve::{
    replay_rows, AdmissionConfig, IndexMode, Request, ServeConfig, ServeEngine, ServeReport,
};
use sparse::CsrMatrix;

fn dataset(rows: usize, salt: u64) -> CsrMatrix<f64> {
    let mut data = vec![0.0; rows * 12];
    for r in 0..rows {
        for c in 0..12 {
            if (r + 2 * c + salt as usize).is_multiple_of(4) {
                data[r * 12 + c] = 1.0 + (salt as f64) / 3.0 + (r as f64) / 7.0 + (c as f64) / 31.0;
            }
        }
    }
    CsrMatrix::from_dense(rows, 12, &data)
}

/// Asserts each served response equals (bit-for-bit) the corresponding
/// row of the one-shot result.
fn assert_rows_match(report: &ServeReport<f64>, oneshot: &KnnResult<f64>, ctx: &str) {
    for resp in &report.responses {
        let q = resp.id as usize;
        assert_eq!(
            resp.indices, oneshot.indices[q],
            "{ctx}: indices of query {q}"
        );
        let served: Vec<u64> = resp.distances.iter().map(|d| d.to_bits()).collect();
        let want: Vec<u64> = oneshot.distances[q].iter().map(|d| d.to_bits()).collect();
        assert_eq!(served, want, "{ctx}: distance bits of query {q}");
    }
}

#[test]
fn served_answers_match_one_shot_across_batch_sizes() {
    let m = dataset(18, 0);
    let multi = MultiDevice::replicate(&Device::volta(), 3);
    let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(m.clone());
    let oneshot = nn.kneighbors_sharded(&multi, &m, 4).expect("ok");
    for max_batch in [1usize, 2, 5, 18] {
        for max_wait_us in [1.0, 50.0, 1000.0] {
            let cfg = ServeConfig {
                k: 4,
                max_batch,
                max_wait_s: max_wait_us * 1e-6,
                ..ServeConfig::default()
            };
            let mut engine = ServeEngine::new(multi.clone(), cfg);
            let report = engine
                .replay(std::slice::from_ref(&nn), &replay_rows(&m, 20e-6))
                .expect("replay");
            assert_eq!(report.responses.len(), 18);
            assert!(report.rejected.is_empty());
            assert_rows_match(
                &report,
                &oneshot,
                &format!("batch={max_batch} wait={max_wait_us}us"),
            );
        }
    }
}

#[test]
fn arrival_order_does_not_change_answers() {
    let m = dataset(12, 0);
    let multi = MultiDevice::replicate(&Device::volta(), 2);
    let nn = NearestNeighbors::new(Device::volta(), Distance::Cosine).fit(m.clone());
    let oneshot = nn.kneighbors_sharded(&multi, &m, 3).expect("ok");
    // Rows arrive in reversed and in interleaved order; ids still name
    // the original row.
    let reversed: Vec<Request<f64>> = (0..12)
        .map(|i| Request {
            id: i as u64,
            dataset: 0,
            arrival_s: (11 - i) as f64 * 30e-6,
            row: m.slice_rows(i..i + 1),
        })
        .collect();
    let interleaved: Vec<Request<f64>> = (0..12)
        .map(|i| Request {
            id: i as u64,
            dataset: 0,
            arrival_s: ((i % 3) * 4 + i / 3) as f64 * 30e-6,
            row: m.slice_rows(i..i + 1),
        })
        .collect();
    for (label, reqs) in [("reversed", reversed), ("interleaved", interleaved)] {
        let cfg = ServeConfig {
            k: 3,
            max_batch: 4,
            max_wait_s: 60e-6,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(multi.clone(), cfg);
        let report = engine
            .replay(std::slice::from_ref(&nn), &reqs)
            .expect("replay");
        assert_eq!(report.responses.len(), 12);
        assert_rows_match(&report, &oneshot, label);
    }
}

#[test]
fn cache_evictions_mid_stream_do_not_change_answers() {
    let a = dataset(10, 0);
    let b = dataset(10, 1);
    let multi = MultiDevice::replicate(&Device::volta(), 2);
    let nn_a = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(a.clone());
    let nn_b = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(b.clone());
    let one_a = nn_a.kneighbors_sharded(&multi, &a, 3).expect("ok");
    let one_b = nn_b.kneighbors_sharded(&multi, &b, 3).expect("ok");
    // Budget fits one prepared entry, so alternating datasets thrashes.
    let budget = nn_a.prepare_shards(&multi).device_bytes() + 1;
    let cfg = ServeConfig {
        k: 3,
        max_batch: 2,
        max_wait_s: 40e-6,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(multi.clone(), cfg).with_cache_budget(budget);
    // Interleave: rows of A and B alternate; ids 0..9 are A's rows,
    // 100..109 are B's.
    let mut reqs = Vec::new();
    for i in 0..10usize {
        reqs.push(Request {
            id: i as u64,
            dataset: 0,
            arrival_s: (2 * i) as f64 * 25e-6,
            row: a.slice_rows(i..i + 1),
        });
        reqs.push(Request {
            id: 100 + i as u64,
            dataset: 1,
            arrival_s: (2 * i + 1) as f64 * 25e-6,
            row: b.slice_rows(i..i + 1),
        });
    }
    let report = engine.replay(&[nn_a, nn_b], &reqs).expect("replay");
    assert_eq!(report.responses.len(), 20);
    assert!(
        report.cache.evictions > 0,
        "the point of this test is to thrash: {:?}",
        report.cache
    );
    for resp in &report.responses {
        let (oneshot, q) = if resp.dataset == 0 {
            (&one_a, resp.id as usize)
        } else {
            (&one_b, (resp.id - 100) as usize)
        };
        assert_eq!(resp.indices, oneshot.indices[q], "query {}", resp.id);
        let served: Vec<u64> = resp.distances.iter().map(|d| d.to_bits()).collect();
        let want: Vec<u64> = oneshot.distances[q].iter().map(|d| d.to_bits()).collect();
        assert_eq!(served, want, "query {}", resp.id);
    }
}

#[test]
fn host_thread_parallelism_does_not_change_answers() {
    let m = dataset(14, 0);
    let serial = MultiDevice::replicate(&Device::volta(), 2);
    let threaded = MultiDevice::replicate(&Device::volta().with_host_threads(4), 2);
    let nn_serial = NearestNeighbors::new(Device::volta(), Distance::Manhattan).fit(m.clone());
    let nn_threaded =
        NearestNeighbors::new(Device::volta().with_host_threads(4), Distance::Manhattan)
            .fit(m.clone());
    let oneshot = nn_serial.kneighbors_sharded(&serial, &m, 5).expect("ok");
    let cfg = ServeConfig {
        k: 5,
        max_batch: 3,
        max_wait_s: 50e-6,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(threaded, cfg);
    let report = engine
        .replay(std::slice::from_ref(&nn_threaded), &replay_rows(&m, 15e-6))
        .expect("replay");
    assert_eq!(report.responses.len(), 14);
    assert_rows_match(&report, &oneshot, "host-threads=4");
}

#[test]
fn absorbed_faults_do_not_change_answers() {
    let m = dataset(14, 0);
    // 10% transient launch failures, absorbed by the retry policy: the
    // serving path must return the same bits as the faultless one-shot.
    let faulty =
        Device::volta().with_fault_plan(FaultPlan::seeded(7).with_transient_launch_failures(100));
    let opts = PairwiseOptions {
        resilience: Some(ResiliencePolicy::with_retries(8)),
        ..PairwiseOptions::default()
    };
    // Host-side selection: the device top-k kernel sits outside the
    // resilience cascade in the one-shot path too, so a fault injected
    // into it is fatal for both paths rather than absorbed by either.
    let clean_multi = MultiDevice::replicate(&Device::volta(), 2);
    let clean_nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean)
        .with_selection(neighbors::Selection::Host)
        .fit(m.clone());
    let oneshot = clean_nn
        .kneighbors_sharded(&clean_multi, &m, 4)
        .expect("ok");

    let faulty_multi = MultiDevice::replicate(&faulty, 2);
    let faulty_nn = NearestNeighbors::new(faulty.clone(), Distance::Euclidean)
        .with_selection(neighbors::Selection::Host)
        .with_options(opts)
        .fit(m.clone());
    let cfg = ServeConfig {
        k: 4,
        max_batch: 4,
        max_wait_s: 80e-6,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(faulty_multi, cfg);
    let report = engine
        .replay(std::slice::from_ref(&faulty_nn), &replay_rows(&m, 20e-6))
        .expect("replay");
    assert_eq!(report.responses.len(), 14);
    assert_rows_match(&report, &oneshot, "armed fault plan");
}

#[test]
fn admission_control_rejects_past_max_queue() {
    let m = dataset(16, 0);
    let multi = MultiDevice::replicate(&Device::volta(), 2);
    let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(m.clone());
    let cfg = ServeConfig {
        k: 2,
        max_batch: 4,
        // A long deadline and a burst of simultaneous arrivals: the
        // queue saturates before anything dispatches.
        max_wait_s: 10.0,
        max_queue: 3,
        ..ServeConfig::default()
    };
    let reqs: Vec<Request<f64>> = (0..16usize)
        .map(|i| Request {
            id: i as u64,
            dataset: 0,
            arrival_s: 0.0,
            row: m.slice_rows(i..i + 1),
        })
        .collect();
    let mut engine = ServeEngine::new(multi.clone(), cfg);
    let report = engine
        .replay(std::slice::from_ref(&nn), &reqs)
        .expect("replay");
    assert!(!report.rejected.is_empty(), "backpressure must engage");
    assert_eq!(report.responses.len() + report.rejected.len(), 16);
    // Whatever was admitted is still answered correctly.
    let oneshot = nn.kneighbors_sharded(&multi, &m, 2).expect("ok");
    assert_rows_match(&report, &oneshot, "with rejections");
}

#[test]
fn latency_percentiles_are_ordered_and_batching_amortizes() {
    let m = dataset(16, 0);
    let multi = MultiDevice::replicate(&Device::volta(), 2);
    let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(m.clone());
    let cfg = ServeConfig {
        k: 3,
        max_batch: 4,
        max_wait_s: 50e-6,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(multi.clone(), cfg);
    let report = engine
        .replay(std::slice::from_ref(&nn), &replay_rows(&m, 10e-6))
        .expect("replay");
    let p50 = report.latency_percentile(50.0);
    let p99 = report.latency_percentile(99.0);
    assert!(p50 > 0.0 && p50 <= p99, "p50={p50} p99={p99}");
    assert!(report.batches < 16, "micro-batching coalesced requests");
    assert!(report.qps() > 0.0);
    // Cached serving re-executes without re-preparing: second replay of
    // the same stream is all hits and strictly less busy time.
    let first_busy = report.busy_seconds;
    let report2 = engine
        .replay(std::slice::from_ref(&nn), &replay_rows(&m, 10e-6))
        .expect("replay");
    assert_eq!(report2.cache.misses, 0);
    assert!(report2.busy_seconds <= first_busy);
    assert_rows_match(
        &report2,
        &nn.kneighbors_sharded(&multi, &m, 3).expect("ok"),
        "second replay",
    );
}

/// IVF serving at `nprobe == nlist` probes every posting list, so the
/// exact-rerank contract (DESIGN §15) makes every served response
/// byte-identical to the exact one-shot oracle — and the `ann.*`
/// counter family appears in the registry.
#[test]
fn ivf_full_probe_serving_matches_exact_oracle() {
    let m = dataset(20, 1);
    let multi = MultiDevice::replicate(&Device::volta(), 2);
    let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(m.clone());
    let oneshot = nn.kneighbors_sharded(&multi, &m, 4).expect("ok");
    let cfg = ServeConfig {
        k: 4,
        max_batch: 5,
        max_wait_s: 40e-6,
        index: IndexMode::Ivf {
            nlist: 5,
            nprobe: 5,
        },
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(multi, cfg);
    let report = engine
        .replay(std::slice::from_ref(&nn), &replay_rows(&m, 15e-6))
        .expect("replay");
    assert_eq!(report.responses.len(), 20);
    assert_rows_match(&report, &oneshot, "ivf nprobe=nlist");
    let metrics = engine.metrics();
    assert!(metrics.counter("ann.searches_total") > 0);
    assert_eq!(metrics.counter("ann.fits_total"), 1);
    assert!(metrics.counter("ann.probes_total") >= metrics.counter("ann.searches_total"));
    assert_eq!(metrics.gauge("ann.nprobe"), Some(5.0));
    // Second replay reuses the fitted artifact: no new fit.
    engine
        .replay(std::slice::from_ref(&nn), &replay_rows(&m, 15e-6))
        .expect("replay");
    assert_eq!(engine.metrics().counter("ann.fits_total"), 1);
}

/// Partial probes shrink the shortlist but never invent distances:
/// every served pair appears in the exact full ranking with its
/// distance agreeing to re-tiling (ulp) precision, and — Cosine being
/// a single-pass family, whose pair bits are independent of batch
/// composition (DESIGN §15) — the served bytes equal the library
/// [`IvfIndex`] answer for the same `nprobe` exactly, even though the
/// engine reranks in micro-batches of 4.
#[test]
fn ivf_partial_probe_serves_pairs_from_the_exact_ranking() {
    let m = dataset(20, 2);
    let multi = MultiDevice::replicate(&Device::volta(), 3);
    let nn = NearestNeighbors::new(Device::volta(), Distance::Cosine).fit(m.clone());
    let full = nn.kneighbors_sharded(&multi, &m, 20).expect("ok");
    let ivf = IvfIndex::fit(
        &nn,
        IvfParams {
            nlist: 5,
            ..IvfParams::default()
        },
    )
    .expect("fit");
    let library = ivf.search_with_nprobe(&m, 4, 2).expect("search");
    let cfg = ServeConfig {
        k: 4,
        max_batch: 4,
        max_wait_s: 40e-6,
        index: IndexMode::Ivf {
            nlist: 5,
            nprobe: 2,
        },
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(multi, cfg);
    let report = engine
        .replay(std::slice::from_ref(&nn), &replay_rows(&m, 15e-6))
        .expect("replay");
    assert_eq!(report.responses.len(), 20);
    for resp in &report.responses {
        let q = resp.id as usize;
        assert_eq!(resp.indices, library.knn.indices[q], "query {q}");
        let served: Vec<u64> = resp.distances.iter().map(|d| d.to_bits()).collect();
        let want: Vec<u64> = library.knn.distances[q]
            .iter()
            .map(|d| d.to_bits())
            .collect();
        assert_eq!(served, want, "query {q}: serve vs library bits");
        for (&idx, &dist) in resp.indices.iter().zip(&resp.distances) {
            let pos = full.indices[q]
                .iter()
                .position(|&j| j == idx)
                .expect("served index exists in the full ranking");
            assert!(
                (dist - full.distances[q][pos]).abs() < 1e-9,
                "query {q} neighbor {idx}: rerank must agree with the oracle"
            );
        }
    }
}

/// Under admission pressure the IVF degrade cascade halves `nprobe`
/// instead of swapping smem representation: responses still carry
/// exact distances and the lowered probes are visible in `ann.*`.
#[test]
fn ivf_degrade_lowers_nprobe_and_keeps_exact_rerank() {
    let m = dataset(16, 0);
    let multi = MultiDevice::replicate(&Device::volta(), 2);
    let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(m.clone());
    let full = nn.kneighbors_sharded(&multi, &m, 16).expect("ok");
    let cfg = ServeConfig {
        k: 3,
        max_batch: 4,
        max_wait_s: 20e-6,
        max_queue: 1024,
        admission: Some(AdmissionConfig::default().with_watermarks(0, usize::MAX)),
        index: IndexMode::Ivf {
            nlist: 4,
            nprobe: 4,
        },
        ..ServeConfig::default()
    };
    let reqs: Vec<Request<f64>> = (0..16)
        .map(|i| Request {
            id: i as u64,
            dataset: 0,
            arrival_s: 0.0,
            row: m.slice_rows(i..i + 1),
        })
        .collect();
    let mut engine = ServeEngine::new(multi, cfg);
    let report = engine
        .replay(std::slice::from_ref(&nn), &reqs)
        .expect("replay");
    assert_eq!(report.responses.len(), 16);
    assert!(report.degraded_batches > 0);
    let metrics = engine.metrics();
    assert!(metrics.counter("ann.degraded_nprobe_total") > 0);
    assert_eq!(
        metrics.counter("ann.degraded_nprobe_total"),
        report.degraded_batches
    );
    // Halved probes still rerank exactly: every served pair agrees
    // with the full ranking to re-tiling precision (Euclidean pair
    // bits are batch-independent, but the full ranking was computed on
    // a different slab geometry — DESIGN §15).
    for resp in &report.responses {
        let q = resp.id as usize;
        for (&idx, &dist) in resp.indices.iter().zip(&resp.distances) {
            let pos = full.indices[q]
                .iter()
                .position(|&j| j == idx)
                .expect("served index exists in the full ranking");
            assert!((dist - full.distances[q][pos]).abs() < 1e-9);
        }
    }
}
