//! Mutable-dataset ingest suite (DESIGN §16): WAL replay must be
//! crash-safe (any byte-level truncation parses to a consistent prefix
//! or a typed error — never a panic or a silent partial apply), and
//! query answers after ANY replayed WAL prefix must be byte-identical
//! to a one-shot run over the dataset rebuilt from scratch — across
//! arrival permutations, host-thread counts, mid-stream compactions,
//! and armed fault plans.

use gpu_sim::{Device, FaultPlan};
use kernels::{PairwiseOptions, ResiliencePolicy, Strategy};
use neighbors::{MultiDevice, NearestNeighbors};
use proptest::prelude::*;
use semiring::Distance;
use serve::{MutableDataset, Request, ServeConfig, ServeEngine, TimedRecord, Wal, WalRecord};
use sparse::{CsrMatrix, Idx};

fn dataset(rows: usize, salt: u64) -> CsrMatrix<f64> {
    let mut data = vec![0.0; rows * 12];
    for r in 0..rows {
        for c in 0..12 {
            if (r + 2 * c + salt as usize).is_multiple_of(4) {
                data[r * 12 + c] = 1.0 + (salt as f64) / 3.0 + (r as f64) / 7.0 + (c as f64) / 31.0;
            }
        }
    }
    CsrMatrix::from_dense(rows, 12, &data)
}

/// A deterministic WAL over `cols` columns: inserts with irregular
/// sparsity patterns interleaved with deletes of earlier-live rows.
fn sample_wal(cols: usize, base_rows: usize, ops: usize, seed: u64) -> Wal<f64> {
    let mut wal = Wal::new(cols);
    let mut next_id = base_rows as u64;
    let mut live: Vec<u64> = (0..base_rows as u64).collect();
    for i in 0..ops {
        let roll = (i as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(seed)
            .rotate_left(17);
        if roll.is_multiple_of(3) && !live.is_empty() {
            let victim = live.remove((roll as usize / 3) % live.len());
            wal.append_delete(victim);
        } else {
            let row_cols: Vec<Idx> = (0..cols as u32)
                .filter(|&c| (c as u64 + roll) % 3 != 1)
                .collect();
            let vals: Vec<f64> = row_cols
                .iter()
                .map(|&c| 0.25 + (c as f64) / 5.0 + ((roll % 11) as f64) / 7.0)
                .collect();
            wal.append_insert(&row_cols, &vals);
            live.push(next_id);
            next_id += 1;
        }
    }
    wal
}

fn timed(records: &[WalRecord<f64>], at_s: f64, spacing_s: f64) -> Vec<TimedRecord<f64>> {
    records
        .iter()
        .enumerate()
        .map(|(i, record)| TimedRecord {
            at_s: at_s + i as f64 * spacing_s,
            record: record.clone(),
        })
        .collect()
}

/// Per-pair-pure execution (DESIGN §16): the naive-CSR kernel scores a
/// `(query, row)` pair from the two rows' bytes alone, so the base and
/// fresh arms produce the same bits the rebuilt matrix would — the
/// hybrid COO sweep instead folds stream-side terms at chunk boundaries
/// measured from the slab's global nnz offset (§7), which re-associates
/// when deletes or compactions repack the slab.
fn pure_opts() -> PairwiseOptions {
    PairwiseOptions {
        strategy: Strategy::NaiveCsr,
        ..PairwiseOptions::default()
    }
}

fn requests(queries: &CsrMatrix<f64>, start_s: f64, spacing_s: f64) -> Vec<Request<f64>> {
    (0..queries.rows())
        .map(|i| Request {
            id: i as u64,
            dataset: 0,
            arrival_s: start_s + i as f64 * spacing_s,
            row: queries.slice_rows(i..i + 1),
        })
        .collect()
}

/// Fits the rebuilt matrix and asserts every response is bit-identical
/// to the one-shot sharded oracle over it.
fn assert_matches_rebuild(
    responses: &[serve::Response<f64>],
    rebuilt: &CsrMatrix<f64>,
    queries: &CsrMatrix<f64>,
    multi: &MultiDevice,
    k: usize,
    ctx: &str,
) {
    let oracle = NearestNeighbors::new(Device::volta(), Distance::Euclidean)
        .with_options(pure_opts())
        .fit(rebuilt.clone())
        .kneighbors_sharded(multi, queries, k.min(rebuilt.rows()))
        .expect("oracle");
    for resp in responses {
        let q = resp.id as usize;
        assert_eq!(
            resp.indices, oracle.indices[q],
            "{ctx}: indices of query {q}"
        );
        let served: Vec<u64> = resp.distances.iter().map(|d| d.to_bits()).collect();
        let want: Vec<u64> = oracle.distances[q].iter().map(|d| d.to_bits()).collect();
        assert_eq!(served, want, "{ctx}: distance bits of query {q}");
    }
}

/// The tentpole acceptance criterion: after replaying ANY prefix of the
/// WAL, served answers are byte-identical to a rebuild-from-scratch.
#[test]
fn every_wal_prefix_serves_rebuild_identical_bytes() {
    let base = dataset(10, 0);
    let queries = dataset(8, 3);
    let wal = sample_wal(12, 10, 12, 41);
    let multi = MultiDevice::replicate(&Device::volta(), 2);
    let proto =
        NearestNeighbors::new(Device::volta(), Distance::Euclidean).with_options(pure_opts());
    for prefix in 0..=wal.len() {
        let mut ds = MutableDataset::new(base.clone());
        let writes = timed(&wal.records()[..prefix], 0.0, 0.0);
        let reqs = requests(&queries, 1e-3, 10e-6);
        let cfg = ServeConfig {
            k: 4,
            max_batch: 3,
            max_wait_s: 40e-6,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(multi.clone(), cfg);
        let report = engine
            .replay_ingest(&proto, &mut ds, &writes, &reqs, 0)
            .expect("ingest");
        assert_eq!(report.responses().len(), 8, "prefix={prefix}");
        assert_eq!(report.wal.appended, prefix as u64);
        assert_eq!(report.wal.rejected, 0);
        assert_matches_rebuild(
            report.responses(),
            &ds.rebuild(),
            &queries,
            &multi,
            4,
            &format!("prefix={prefix}"),
        );
    }
}

/// Interleaved writes and queries: each query is answered against the
/// dataset state at its dispatch instant (writes admitted earlier are
/// visible, later ones are not), verified against per-instant rebuild
/// snapshots — and the same stream in a different arrival permutation
/// of the queries serves the same per-id bytes.
#[test]
fn interleaved_writes_see_snapshots_and_permutations_agree() {
    let base = dataset(9, 1);
    let queries = dataset(10, 4);
    let wal = sample_wal(12, 9, 10, 7);
    let multi = MultiDevice::replicate(&Device::volta(), 2);
    let proto =
        NearestNeighbors::new(Device::volta(), Distance::Euclidean).with_options(pure_opts());
    // Writes at 100us spacing; query i lands between write i and i+1,
    // max_batch=1 + tiny deadline so each dispatches at arrival.
    let writes = timed(wal.records(), 100e-6, 100e-6);
    let reqs: Vec<Request<f64>> = (0..queries.rows())
        .map(|i| Request {
            id: i as u64,
            dataset: 0,
            arrival_s: 150e-6 + i as f64 * 100e-6,
            row: queries.slice_rows(i..i + 1),
        })
        .collect();
    let cfg = ServeConfig {
        k: 3,
        max_batch: 1,
        max_wait_s: 1e-9,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(multi.clone(), cfg);
    let mut ds = MutableDataset::new(base.clone());
    let report = engine
        .replay_ingest(&proto, &mut ds, &writes, &reqs, 0)
        .expect("ingest");
    assert_eq!(report.responses().len(), queries.rows());

    // Shadow-replay the WAL to the snapshot each query dispatched
    // against: query i saw writes 0..=i.
    for resp in report.responses() {
        let q = resp.id as usize;
        let mut shadow = MutableDataset::new(base.clone());
        for rec in &wal.records()[..(q + 1).min(wal.len())] {
            shadow.apply(rec).expect("shadow apply");
        }
        assert_matches_rebuild(
            std::slice::from_ref(resp),
            &shadow.rebuild(),
            &queries,
            &multi,
            3,
            &format!("snapshot after write {q}"),
        );
    }
}

/// Mid-compaction chaos: a small threshold forces compactions while
/// queries are in flight, on a device with an armed fault plan absorbed
/// by retries, with host threads enabled — answers stay byte-identical
/// to the rebuild oracle and the generation advances.
#[test]
fn compaction_chaos_and_host_threads_preserve_bytes() {
    let base = dataset(8, 2);
    let queries = dataset(12, 5);
    let wal = sample_wal(12, 8, 14, 23);
    let faulty = Device::volta()
        .with_host_threads(4)
        .with_fault_plan(FaultPlan::seeded(5).with_transient_launch_failures(80));
    let opts = PairwiseOptions {
        resilience: Some(ResiliencePolicy::with_retries(8)),
        ..PairwiseOptions::default()
    };
    let multi = MultiDevice::replicate(&faulty, 2);
    let proto = NearestNeighbors::new(faulty.clone(), Distance::Euclidean)
        .with_selection(neighbors::Selection::Host)
        .with_options(opts);
    let writes = timed(wal.records(), 0.0, 50e-6);
    // Queries trail the writes so every one sees the fully-applied log,
    // while compactions land mid-stream.
    let reqs = requests(&queries, 1e-3, 20e-6);
    let cfg = ServeConfig {
        k: 4,
        max_batch: 4,
        max_wait_s: 60e-6,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(multi.clone(), cfg);
    let mut ds = MutableDataset::new(base.clone());
    let report = engine
        .replay_ingest(&proto, &mut ds, &writes, &reqs, 4)
        .expect("ingest");
    assert_eq!(report.responses().len(), queries.rows());
    assert!(
        !report.compactions.is_empty(),
        "threshold 4 over 14 ops must compact"
    );
    assert!(report.final_generation >= 1);
    // Clean-device oracle: absorbed faults must not leak into bytes.
    let clean = MultiDevice::replicate(&Device::volta(), 2);
    assert_matches_rebuild(
        report.responses(),
        &ds.rebuild(),
        &queries,
        &clean,
        4,
        "chaos+compaction",
    );

    // Conservation laws, as the CI gate checks them.
    let m = engine.metrics();
    assert_eq!(
        m.counter("wal.records_appended_total"),
        m.counter("wal.records_applied_total") + m.counter("wal.records_rejected_total")
    );
    assert_eq!(
        m.counter("wal.records_applied_total"),
        m.counter("wal.inserts_total") + m.counter("wal.deletes_total")
    );
    assert!(m.counter("compact.completed_total") <= m.counter("compact.started_total"));
    assert!(m.counter("compact.started_total") <= m.counter("wal.records_appended_total"));
    assert!(m.counter("wal.fresh_scans_total") <= m.counter("serve.batches_total"));
    assert_eq!(m.gauge("compact.generation"), Some(ds.generation() as f64));
}

/// A poison record (delete of a never-allocated id) is rejected with a
/// typed error, consumes its log position, and the stream continues —
/// the served bytes match the rebuild that skipped it.
#[test]
fn rejected_records_are_counted_and_skipped() {
    let base = dataset(7, 0);
    let queries = dataset(6, 6);
    let mut wal: Wal<f64> = Wal::new(12);
    wal.append_insert(&[0, 3, 7], &[1.5, 2.5, 3.5]);
    wal.append_delete(999); // out of range: rejected, position consumed
    wal.append_delete(2);
    wal.append_delete(2); // double-delete: rejected (dead row)
    wal.append_insert(&[1, 4], &[0.5, 4.5]);
    let multi = MultiDevice::replicate(&Device::volta(), 2);
    let proto =
        NearestNeighbors::new(Device::volta(), Distance::Euclidean).with_options(pure_opts());
    let writes = timed(wal.records(), 0.0, 0.0);
    let reqs = requests(&queries, 1e-3, 15e-6);
    let cfg = ServeConfig {
        k: 3,
        max_batch: 2,
        max_wait_s: 30e-6,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(multi.clone(), cfg);
    let mut ds = MutableDataset::new(base.clone());
    let report = engine
        .replay_ingest(&proto, &mut ds, &writes, &reqs, 0)
        .expect("ingest");
    assert_eq!(report.wal.appended, 5);
    assert_eq!(report.wal.applied, 3);
    assert_eq!(report.wal.rejected, 2);
    assert_eq!(report.wal_errors.len(), 2);
    assert_eq!(ds.log_position(), 5, "rejected records consume positions");
    assert_eq!(ds.live_rows(), 7 + 2 - 1);
    assert_matches_rebuild(
        report.responses(),
        &ds.rebuild(),
        &queries,
        &multi,
        3,
        "poison records",
    );
}

/// Compacting down to an empty dataset (every row deleted) and then
/// inserting into it again keeps serving correct bytes.
#[test]
fn delete_everything_then_reinsert_still_serves() {
    let base = dataset(4, 1);
    let queries = dataset(5, 2);
    let mut wal: Wal<f64> = Wal::new(12);
    for id in 0..4 {
        wal.append_delete(id);
    }
    wal.append_insert(&[2, 5, 11], &[0.5, 1.5, 2.5]);
    wal.append_insert(&[0, 6], &[3.5, 4.5]);
    let multi = MultiDevice::replicate(&Device::volta(), 2);
    let proto =
        NearestNeighbors::new(Device::volta(), Distance::Euclidean).with_options(pure_opts());
    let writes = timed(wal.records(), 0.0, 20e-6);
    let reqs = requests(&queries, 1e-3, 15e-6);
    let cfg = ServeConfig {
        k: 2,
        max_batch: 2,
        max_wait_s: 30e-6,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(multi.clone(), cfg);
    let mut ds = MutableDataset::new(base);
    let report = engine
        .replay_ingest(&proto, &mut ds, &writes, &reqs, 4)
        .expect("ingest");
    assert_eq!(report.responses().len(), 5);
    assert_eq!(ds.live_rows(), 2);
    assert_matches_rebuild(
        report.responses(),
        &ds.rebuild(),
        &queries,
        &multi,
        2,
        "delete-all then reinsert",
    );
}

/// Under the default hybrid strategy, cross-slab re-association (§7)
/// means rebuild-oracle agreement is to re-tiling precision rather
/// than bit-exact — but the ingest replay itself stays fully
/// deterministic: the same WAL + query stream serves the same bytes
/// twice, and every served pair appears in the exact full ranking
/// within the same `1e-9` bound every §10/§15 cross-tiling assertion
/// uses.
#[test]
fn hybrid_default_is_deterministic_and_agrees_to_retiling_precision() {
    let base = dataset(10, 0);
    let queries = dataset(8, 3);
    let wal = sample_wal(12, 10, 12, 41);
    let multi = MultiDevice::replicate(&Device::volta(), 2);
    let proto = NearestNeighbors::new(Device::volta(), Distance::Euclidean);
    let cfg = ServeConfig {
        k: 4,
        max_batch: 3,
        max_wait_s: 40e-6,
        ..ServeConfig::default()
    };
    let run = || {
        let mut ds = MutableDataset::new(base.clone());
        let mut engine = ServeEngine::new(multi.clone(), cfg);
        let report = engine
            .replay_ingest(
                &proto,
                &mut ds,
                &timed(wal.records(), 0.0, 0.0),
                &requests(&queries, 1e-3, 10e-6),
                5,
            )
            .expect("ingest");
        (report, ds)
    };
    let (first, ds) = run();
    let (second, _) = run();
    for (a, b) in first.responses().iter().zip(second.responses()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.indices, b.indices);
        let abits: Vec<u64> = a.distances.iter().map(|d| d.to_bits()).collect();
        let bbits: Vec<u64> = b.distances.iter().map(|d| d.to_bits()).collect();
        assert_eq!(abits, bbits, "replaying the same stream must be pure");
    }
    let rebuilt = ds.rebuild();
    let full = NearestNeighbors::new(Device::volta(), Distance::Euclidean)
        .fit(rebuilt.clone())
        .kneighbors_sharded(&multi, &queries, rebuilt.rows())
        .expect("full ranking");
    for resp in first.responses() {
        let q = resp.id as usize;
        for (&idx, &dist) in resp.indices.iter().zip(&resp.distances) {
            let pos = full.indices[q]
                .iter()
                .position(|&j| j == idx)
                .expect("served index exists in the full ranking");
            assert!(
                (dist - full.distances[q][pos]).abs() < 1e-9,
                "query {q} neighbor {idx}: hybrid must agree to re-tiling precision"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Crash-replay safety: cutting the rendered WAL at ANY byte offset
    /// parses to a consistent record prefix plus (for mid-record cuts)
    /// a typed error — never a panic — and the recovered prefix applies
    /// cleanly to a dataset whose rebuild matches a direct replay of
    /// the same record prefix.
    #[test]
    fn truncated_wal_recovers_a_consistent_prefix(
        seed in 0u64..400,
        ops in 1usize..14,
        cut_milli in 0u32..=1000,
    ) {
        let wal = sample_wal(10, 6, ops, seed);
        let text = wal.render();
        let cut = (text.len() * cut_milli as usize) / 1000;
        let truncated = &text[..cut];
        let (recovered, err) = Wal::<f64>::parse_prefix(truncated);
        // The recovered records are a strict prefix of the originals.
        prop_assert!(recovered.len() <= wal.len());
        for (got, want) in recovered.records().iter().zip(wal.records()) {
            prop_assert_eq!(got, want);
        }
        // A cut strictly inside the stream surfaces a typed error
        // unless it landed exactly on a record boundary.
        if cut < text.len() && recovered.len() < wal.len() {
            let mut boundary = wal.clone();
            boundary.truncate(recovered.len());
            let clean_cut = truncated == boundary.render()
                || truncated == boundary.render().trim_end_matches('\n');
            prop_assert!(
                err.is_some() || clean_cut,
                "mid-record cut at {} must yield a typed error",
                cut
            );
        }
        // The strict parser accepts exactly the error-free prefixes.
        prop_assert_eq!(Wal::<f64>::parse(truncated).is_ok(), err.is_none());
        // Replaying the recovered prefix applies without panic and
        // matches a direct prefix replay, byte for byte.
        let base = dataset(6, seed % 3);
        let mut from_recovered = MutableDataset::new(base.clone());
        for rec in recovered.records() {
            let applied = from_recovered.apply(rec);
            prop_assert!(applied.is_ok(), "recovered prefix must replay: {:?}", applied);
        }
        let mut from_original = MutableDataset::new(base);
        for rec in &wal.records()[..recovered.len()] {
            from_original.apply(rec).expect("original prefix");
        }
        let a = from_recovered.rebuild();
        let b = from_original.rebuild();
        prop_assert_eq!(a.rows(), b.rows());
        prop_assert_eq!(a.indptr(), b.indptr());
        prop_assert_eq!(a.indices(), b.indices());
        let abits: Vec<u64> = a.values().iter().map(|v| v.to_bits()).collect();
        let bbits: Vec<u64> = b.values().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(abits, bbits);
    }
}
