//! End-to-end tests of the `spdist` CLI binary: generate → inspect →
//! query → graph, all through real files and process invocations.

use std::path::PathBuf;
use std::process::Command;

fn spdist() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spdist"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("spdist-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn gen_info_knn_graph_round_trip() {
    let data = tmp("data.mtx");
    let graph = tmp("graph.mtx");

    // gen
    let out = spdist()
        .args([
            "gen",
            "--profile",
            "nytimes",
            "--scale",
            "0.003",
            "--seed",
            "7",
            "--output",
        ])
        .arg(&data)
        .output()
        .expect("spdist runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // info
    let out = spdist()
        .arg("info")
        .arg("--input")
        .arg(&data)
        .output()
        .expect("spdist runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("shape:"), "{stdout}");
    assert!(stdout.contains("density:"), "{stdout}");

    // knn to stdout
    let out = spdist()
        .args(["knn", "--metric", "cosine", "--k", "3", "--input"])
        .arg(&data)
        .output()
        .expect("spdist runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let first = stdout.lines().next().expect("at least one query row");
    assert!(first.starts_with("0\t"), "{first}");
    // Self-match at distance ~0 in the first slot.
    assert!(first.contains("0:0.000000"), "{first}");

    // knn to a connectivity graph file
    let out = spdist()
        .args([
            "knn",
            "--metric",
            "jaccard",
            "--k",
            "2",
            "--graph",
            "connectivity",
        ])
        .arg("--input")
        .arg(&data)
        .arg("--output")
        .arg(&graph)
        .output()
        .expect("spdist runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let g: sparse::CsrMatrix<f32> =
        sparse::read_matrix_market(std::fs::File::open(&graph).expect("graph written"))
            .expect("valid matrix market");
    assert_eq!(g.rows(), g.cols());
    assert!(g.nnz() > 0);

    let _ = std::fs::remove_file(&data);
    let _ = std::fs::remove_file(&graph);
}

#[test]
fn profile_fits_and_replicates() {
    let data = tmp("fit-data.mtx");
    let replica = tmp("fit-replica.mtx");
    let out = spdist()
        .args(["gen", "--profile", "edgar", "--scale", "0.002", "--output"])
        .arg(&data)
        .output()
        .expect("spdist runs");
    assert!(out.status.success());

    let out = spdist()
        .arg("profile")
        .arg("--input")
        .arg(&data)
        .arg("--replica")
        .arg(&replica)
        .output()
        .expect("spdist runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("lognormal"), "{stdout}");
    assert!(replica.exists());

    let _ = std::fs::remove_file(&data);
    let _ = std::fs::remove_file(&replica);
}

#[test]
fn bad_inputs_produce_clean_errors() {
    // Unknown command.
    let out = spdist().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Unknown metric.
    let data = tmp("err-data.mtx");
    std::fs::write(
        &data,
        "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1.0\n",
    )
    .expect("write");
    let out = spdist()
        .args(["knn", "--metric", "nope", "--input"])
        .arg(&data)
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown metric"));

    // Missing file.
    let out = spdist()
        .args(["info", "--input", "/nonexistent/x.mtx"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));

    let _ = std::fs::remove_file(&data);
}

#[test]
fn unknown_and_malformed_flags_exit_with_config_code() {
    let data = tmp("strict-data.mtx");
    std::fs::write(
        &data,
        "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n2 2 1.0\n",
    )
    .expect("write");

    // A misspelled flag must be a config error (exit 2), not a silently
    // applied default: `--host-thread 8` used to run serially with no
    // warning at all.
    let out = spdist()
        .args(["knn", "--host-thread", "8", "--input"])
        .arg(&data)
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2), "misspelled flag");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown flag --host-thread"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A value flag swallowing the next flag is a config error too:
    // `--metric --k` used to parse "--k" as the metric's value.
    let out = spdist()
        .args(["knn", "--metric", "--k", "3", "--input"])
        .arg(&data)
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2), "flag missing its value");
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing value for --metric"));

    // Flags valid for one command are rejected on another.
    let out = spdist()
        .args(["info", "--k", "3", "--input"])
        .arg(&data)
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2), "knn flag on info");

    // Stray positional arguments are rejected.
    let out = spdist()
        .args(["knn", "extra", "--input"])
        .arg(&data)
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2), "stray positional");

    let _ = std::fs::remove_file(&data);
}

#[test]
fn serve_replays_queries_and_matches_knn_output() {
    let data = tmp("serve-data.mtx");
    let out = spdist()
        .args([
            "gen",
            "--profile",
            "nytimes",
            "--scale",
            "0.003",
            "--seed",
            "7",
            "--output",
        ])
        .arg(&data)
        .output()
        .expect("runs");
    assert!(out.status.success());

    let knn = spdist()
        .args(["knn", "--metric", "cosine", "--k", "3", "--input"])
        .arg(&data)
        .output()
        .expect("runs");
    assert!(knn.status.success());

    let serve = spdist()
        .args([
            "serve",
            "--metric",
            "cosine",
            "--k",
            "3",
            "--devices",
            "2",
            "--max-batch",
            "4",
            "--queries",
        ])
        .arg(&data)
        .arg("--input")
        .arg(&data)
        .output()
        .expect("runs");
    let stderr = String::from_utf8_lossy(&serve.stderr);
    assert!(serve.status.success(), "{stderr}");
    // Served answers are byte-identical to the one-shot knn TSV.
    assert_eq!(
        String::from_utf8_lossy(&knn.stdout),
        String::from_utf8_lossy(&serve.stdout),
        "serve output must match knn"
    );
    assert!(stderr.contains("qps"), "{stderr}");
    assert!(
        stderr.contains("cache 0 hit(s)") || stderr.contains("hit(s)"),
        "{stderr}"
    );

    // Unknown serve flag exits 2.
    let out = spdist()
        .args(["serve", "--max-batches", "4", "--queries"])
        .arg(&data)
        .arg("--input")
        .arg(&data)
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));

    let _ = std::fs::remove_file(&data);
}
