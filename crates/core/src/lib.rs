//! **sparse-dist** — GPU semiring primitives for sparse neighborhood
//! methods (Rust reproduction of the MLSys 2022 paper).
//!
//! This crate is the public face of the reproduction, mirroring the two
//! API surfaces the paper shows:
//!
//! * **Figure 2** (the Python one-liners): [`pairwise_distances`] and the
//!   re-exported [`NearestNeighbors`] estimator.
//! * **Figure 3** (the C++ semiring-construction API): [`api`] — build a
//!   custom [`Semiring`] from two monoids and run it through the hybrid
//!   kernel, with the optional second pass for non-annihilating products.
//!
//! # Quickstart
//!
//! ```
//! use sparse_dist::{pairwise_distances, Device, Distance};
//! use sparse_dist::sparse::CsrMatrix;
//!
//! // Two documents over a 6-term vocabulary.
//! let x = CsrMatrix::<f32>::from_dense(
//!     2,
//!     6,
//!     &[0.8, 0.0, 0.3, 0.0, 0.0, 0.1, 0.0, 0.9, 0.3, 0.0, 0.2, 0.0],
//! );
//! let dists = pairwise_distances(&Device::volta(), &x, &x, Distance::Cosine)?;
//! assert!(dists.distances.get(0, 0).abs() < 1e-6); // self-distance 0
//! assert!(dists.distances.get(0, 1) > 0.5); // mostly disjoint docs
//! # Ok::<(), sparse_dist::KernelError>(())
//! ```

#![deny(missing_docs)]

pub mod api;
pub mod validate;

pub use gpu_sim::{
    chrome_trace, chrome_trace_envelope, CheckerKind, Device, DeviceSpec, FaultPlan, LaunchProfile,
    LaunchStats, SanitizerMode, SanitizerReport, SimError,
};
pub use kernels::{
    FallbackCascade, KernelError, MemoryFootprint, PairwiseOptions, PairwiseResult,
    ResiliencePolicy, ResilienceReport, SmemMode, Strategy,
};
pub use neighbors::{
    kneighbors_graph, GraphMode, IvfAnswer, IvfIndex, IvfParams, IvfPrepared, IvfQueryStats,
    KnnResult, MultiDevice, NearestNeighbors, PreparedShards, Selection,
};
pub use semiring::{Distance, DistanceParams, Family, Monoid, Semiring};
pub use serve::metrics::{HIST_GROWTH, HIST_MIN};
pub use serve::{
    chaos_drill, fingerprint, fingerprint_with_generation, nearest_rank, replay_rows,
    request_chrome_trace, AdmissionConfig, CacheOutcome, CacheStats, ChaosPlan, CompactionRecord,
    DrillOutcome, Fleet, FleetConfig, FleetReport, IndexMode, IngestReport, LogHistogram, Manifest,
    MetricsRegistry, MetricsSnapshot, MutableDataset, PreparedCache, Rejection, Request,
    RequestSpan, RequestTraces, Response, ScaleEvent, ServeConfig, ServeEngine, ServeReport,
    ShedReason, SloBudget, SloReport, SpanEvent, TimedRecord, Wal, WalCounts, WalError, WalRecord,
    WindowOutcome, Workload,
};
pub use validate::{validate_input, InputError};

/// Re-export of the sparse-format substrate.
pub use sparse;

use sparse::{CsrMatrix, Real};

/// Computes the dense pairwise distance matrix `d(A_i, B_j)` with the
/// default strategy (the paper's hybrid CSR+COO kernel) — the analog of
/// `cuml.metrics.pairwise_distances(X, metric=...)` in Figure 2.
///
/// For parameterized distances or a specific strategy, use
/// [`pairwise_distances_with`].
///
/// # Errors
///
/// Returns an error on dimensionality mismatch or when the strategy
/// cannot satisfy its shared-memory requirements.
pub fn pairwise_distances<T: Real>(
    device: &Device,
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    distance: Distance,
) -> Result<PairwiseResult<T>, KernelError> {
    pairwise_distances_with(
        device,
        a,
        b,
        distance,
        &DistanceParams::default(),
        &PairwiseOptions::default(),
    )
}

/// [`pairwise_distances`] with explicit parameters and kernel options.
///
/// # Errors
///
/// Returns an error on dimensionality mismatch or when the strategy
/// cannot satisfy its shared-memory requirements.
pub fn pairwise_distances_with<T: Real>(
    device: &Device,
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    distance: Distance,
    params: &DistanceParams,
    options: &PairwiseOptions,
) -> Result<PairwiseResult<T>, KernelError> {
    kernels::pairwise_distances(device, a, b, distance, params, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::reference::dense_pairwise;

    #[test]
    fn convenience_wrapper_matches_reference() {
        let x = CsrMatrix::<f64>::from_dense(
            3,
            4,
            &[1.0, 0.0, 2.0, 0.0, 0.0, 1.0, 0.0, 2.0, 1.0, 1.0, 1.0, 1.0],
        );
        let dev = Device::volta();
        let got = pairwise_distances(&dev, &x, &x, Distance::Euclidean).expect("ok");
        let want = dense_pairwise(&x, &x, Distance::Euclidean, &DistanceParams::default());
        assert!(got.distances.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn with_variant_honors_minkowski_p() {
        let x = CsrMatrix::<f64>::from_dense(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        let dev = Device::volta();
        let params = DistanceParams { minkowski_p: 3.0 };
        let got = pairwise_distances_with(
            &dev,
            &x,
            &x,
            Distance::Minkowski,
            &params,
            &PairwiseOptions::default(),
        )
        .expect("ok");
        // (1 + 1)^(1/3)
        assert!((got.distances.get(0, 1) - 2.0f64.powf(1.0 / 3.0)).abs() < 1e-9);
    }
}
