//! `spdist` — command-line front end for the sparse distance primitive.
//!
//! Operates on Matrix Market (`.mtx`) files:
//!
//! ```text
//! spdist knn      --input data.mtx --metric cosine --k 10 [--output out.tsv]
//! spdist pairwise --input a.mtx [--index b.mtx] --metric manhattan [--output d.mtx]
//! spdist info     --input data.mtx
//! spdist gen      --profile movielens --scale 0.01 --output data.mtx [--seed 1]
//! spdist profile  --input data.mtx [--replica out.mtx --seed 2]
//! ```
//!
//! Common flags: `--metric <name>` (any Table 1 distance plus
//! `braycurtis`; see `Distance::from_name`), `--p <f>` (Minkowski
//! degree), `--strategy hybrid|naive|esc`, `--smem auto|dense|hash|bloom`,
//! `--device volta|ampere`, `--fused` (knn only: fused
//! distance+selection kernel), `--profile[=trace.json]` (knn/pairwise:
//! enable the per-range profiler, print a hot-spot report per launch,
//! and optionally export a chrome://tracing file loadable in Perfetto).

use semiring::{Distance, DistanceParams};
use sparse::{read_matrix_market, write_matrix_market, CsrMatrix, DegreeStats};
use sparse_dist::{
    chrome_trace, kneighbors_graph, Device, GraphMode, LaunchStats, NearestNeighbors,
    PairwiseOptions, SmemMode, Strategy,
};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::process::ExitCode;

struct Args(Vec<String>);

impl Args {
    fn flag(&self, name: &str) -> Option<&str> {
        self.0
            .windows(2)
            .find(|w| w[0] == name)
            .map(|w| w[1].as_str())
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.flag(name)
            .ok_or_else(|| format!("missing {name} <value>"))
    }

    /// `--profile` / `--profile=trace.json`: `None` = profiler off,
    /// `Some(None)` = report only, `Some(Some(path))` = report + trace.
    fn profile(&self) -> Option<Option<String>> {
        for a in &self.0 {
            if a == "--profile" {
                return Some(None);
            }
            if let Some(path) = a.strip_prefix("--profile=") {
                return Some(Some(path.to_string()));
            }
        }
        None
    }
}

/// Prints each profiled launch's hot-spot report and, when a trace path
/// was requested, writes the chrome://tracing JSON for all launches.
fn emit_profiles(launches: &[LaunchStats], trace_path: Option<&str>) -> Result<(), String> {
    for stats in launches {
        if let Some(profile) = &stats.profile {
            eprintln!("profile: {} ({} blocks)", stats.name, stats.config.blocks);
            eprintln!("{profile}");
        }
    }
    if let Some(path) = trace_path {
        let json = chrome_trace(launches);
        std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!(
            "spdist: wrote chrome-trace with {} profiled launches to {path} \
             (load in Perfetto / chrome://tracing)",
            launches.iter().filter(|l| l.profile.is_some()).count()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        eprintln!("usage: spdist <knn|pairwise|info> --input <file.mtx> [options]");
        return ExitCode::FAILURE;
    };
    let args = Args(argv);
    let result = match cmd.as_str() {
        "knn" => cmd_knn(&args),
        "pairwise" => cmd_pairwise(&args),
        "info" => cmd_info(&args),
        "gen" => cmd_gen(&args),
        "profile" => cmd_profile(&args),
        other => Err(format!("unknown command {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("spdist: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn load(path: &str) -> Result<CsrMatrix<f32>, String> {
    let f = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_matrix_market(f).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn parse_common(
    args: &Args,
) -> Result<(Distance, DistanceParams, PairwiseOptions, Device), String> {
    let metric = args.flag("--metric").unwrap_or("euclidean");
    let distance = Distance::from_name(metric).ok_or_else(|| format!("unknown metric {metric}"))?;
    let params = DistanceParams {
        minkowski_p: args
            .flag("--p")
            .map(|p| p.parse().map_err(|_| format!("bad --p {p}")))
            .transpose()?
            .unwrap_or(2.0),
    };
    let strategy = match args.flag("--strategy").unwrap_or("hybrid") {
        "hybrid" => Strategy::HybridCooSpmv,
        "naive" => Strategy::NaiveCsr,
        "esc" => Strategy::ExpandSortContract,
        other => return Err(format!("unknown strategy {other}")),
    };
    let smem_mode = match args.flag("--smem").unwrap_or("auto") {
        "auto" => SmemMode::Auto,
        "dense" => SmemMode::Dense,
        "hash" => SmemMode::Hash,
        "bloom" => SmemMode::Bloom,
        other => return Err(format!("unknown smem mode {other}")),
    };
    let device = match args.flag("--device").unwrap_or("volta") {
        "volta" | "v100" => Device::volta(),
        "ampere" | "a100" => Device::ampere(),
        other => return Err(format!("unknown device {other}")),
    };
    let device = if args.profile().is_some() {
        device.with_profiler(true)
    } else {
        device
    };
    Ok((
        distance,
        params,
        PairwiseOptions {
            strategy,
            smem_mode,
        },
        device,
    ))
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let name = args.required("--profile")?;
    let profile = match name.to_ascii_lowercase().as_str() {
        "movielens" => datasets::DatasetProfile::movielens(),
        "edgar" | "sec-edgar" => datasets::DatasetProfile::sec_edgar(),
        "scrna" => datasets::DatasetProfile::scrna(),
        "nytimes" | "nyt" => datasets::DatasetProfile::nytimes_bow(),
        other => {
            return Err(format!(
                "unknown profile {other} (movielens|edgar|scrna|nytimes)"
            ))
        }
    };
    let scale: f64 = args
        .flag("--scale")
        .unwrap_or("0.01")
        .parse()
        .map_err(|_| "bad --scale".to_string())?;
    let seed: u64 = args
        .flag("--seed")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --seed".to_string())?;
    let m = profile.scaled(scale).generate(seed);
    let out = args.required("--output")?;
    let f = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    write_matrix_market(&m, BufWriter::new(f)).map_err(|e| format!("write failed: {e}"))?;
    eprintln!(
        "spdist: wrote {} ({} x {}, {} nonzeros, density {:.4}%)",
        out,
        m.rows(),
        m.cols(),
        m.nnz(),
        m.density() * 100.0
    );
    Ok(())
}

/// Prints a line to stdout, exiting quietly when the consumer (e.g.
/// `| head`) has closed the pipe.
fn out(line: String) {
    use std::io::Write as _;
    if writeln!(std::io::stdout(), "{line}").is_err() {
        std::process::exit(0);
    }
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    let m = load(args.required("--input")?)?;
    let p = datasets::fit_profile(&m, "fitted", datasets::ValueDist::TfIdf);
    out("fitted profile:".into());
    out(format!("  shape:     {} x {}", p.rows, p.cols));
    out(format!(
        "  degrees:   lognormal(mu={:.3}, sigma={:.3}), clamp [{}, {}], p_empty={:.3}",
        p.degree.mu, p.degree.sigma, p.degree.min, p.degree.max, p.degree.p_empty
    ));
    out(format!("  col skew:  {:.2}", p.col_skew));
    if let Some(out) = args.flag("--replica") {
        let seed: u64 = args
            .flag("--seed")
            .unwrap_or("2")
            .parse()
            .map_err(|_| "bad --seed".to_string())?;
        let replica = p.generate(seed);
        let f = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
        write_matrix_market(&replica, BufWriter::new(f))
            .map_err(|e| format!("write failed: {e}"))?;
        eprintln!(
            "spdist: wrote shape-matched replica to {out} ({} nonzeros, density {:.4}%)",
            replica.nnz(),
            replica.density() * 100.0
        );
    }
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let m = load(args.required("--input")?)?;
    let s = DegreeStats::of(&m);
    out(format!("shape:      {} x {}", s.rows, s.cols));
    out(format!("nonzeros:   {}", s.nnz));
    out(format!("density:    {:.6}%", s.density * 100.0));
    out(format!(
        "degrees:    min {} / mean {:.1} / max {}",
        s.min_degree, s.mean_degree, s.max_degree
    ));
    let cdf = sparse::degree_cdf(&m);
    out(format!(
        "degree cdf: p50={} p90={} p99={}",
        cdf[50], cdf[90], cdf[99]
    ));
    Ok(())
}

fn cmd_knn(args: &Args) -> Result<(), String> {
    let (distance, params, options, device) = parse_common(args)?;
    let query = load(args.required("--input")?)?;
    let index = match args.flag("--index") {
        Some(p) => load(p)?,
        None => query.clone(),
    };
    let k: usize = args
        .flag("--k")
        .unwrap_or("10")
        .parse()
        .map_err(|_| "bad --k".to_string())?;
    let fused = args.0.iter().any(|a| a == "--fused");
    let nn = NearestNeighbors::new(device, distance)
        .with_params(params)
        .with_options(options)
        .with_fused(fused)
        .fit(index.clone());
    let result = nn
        .kneighbors(&query, k)
        .map_err(|e| format!("query failed: {e}"))?;

    eprintln!(
        "spdist: {} queries x {} index rows, {} tiles, {:.3} ms simulated GPU time",
        query.rows(),
        index.rows(),
        result.batches,
        result.sim_seconds * 1e3
    );
    if let Some(trace) = args.profile() {
        emit_profiles(&result.launches, trace.as_deref())?;
    }

    match args.flag("--graph") {
        Some(mode) => {
            let gm = match mode {
                "connectivity" => GraphMode::Connectivity,
                "distance" => GraphMode::Distance,
                other => return Err(format!("unknown graph mode {other}")),
            };
            let g = kneighbors_graph(&result, index.rows(), gm)
                .map_err(|e| format!("graph build failed: {e}"))?;
            let out = args.flag("--output").unwrap_or("knn_graph.mtx");
            let f = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
            write_matrix_market(&g, BufWriter::new(f)).map_err(|e| format!("write failed: {e}"))?;
            eprintln!("spdist: wrote {} edges to {out}", g.nnz());
        }
        None => {
            let mut sink: Box<dyn Write> = match args.flag("--output") {
                Some(p) => Box::new(BufWriter::new(
                    File::create(p).map_err(|e| format!("cannot create {p}: {e}"))?,
                )),
                None => Box::new(std::io::stdout().lock()),
            };
            for (q, (idx, dist)) in result.indices.iter().zip(&result.distances).enumerate() {
                let cols: Vec<String> = idx
                    .iter()
                    .zip(dist)
                    .map(|(i, d)| format!("{i}:{d:.6}"))
                    .collect();
                writeln!(sink, "{q}\t{}", cols.join("\t"))
                    .map_err(|e| format!("write failed: {e}"))?;
            }
        }
    }
    Ok(())
}

fn cmd_pairwise(args: &Args) -> Result<(), String> {
    let (distance, params, options, device) = parse_common(args)?;
    let a = load(args.required("--input")?)?;
    let b = match args.flag("--index") {
        Some(p) => load(p)?,
        None => a.clone(),
    };
    let r = sparse_dist::pairwise_distances_with(&device, &a, &b, distance, &params, &options)
        .map_err(|e| format!("pairwise failed: {e}"))?;
    eprintln!(
        "spdist: {}x{} distances, {:.3} ms simulated across {} launches",
        a.rows(),
        b.rows(),
        r.sim_seconds() * 1e3,
        r.launches.len()
    );
    if let Some(trace) = args.profile() {
        emit_profiles(&r.launches, trace.as_deref())?;
    }
    // Dense output as mtx (store all cells, including zeros, as explicit
    // entries would be wasteful — convert through CSR, dropping exact
    // zeros, which for distances means self-pairs and exact ties only).
    let csr = CsrMatrix::from_dense(a.rows(), b.rows(), r.distances.as_slice());
    let mut sink: Box<dyn Write> = match args.flag("--output") {
        Some(p) => Box::new(BufWriter::new(
            File::create(p).map_err(|e| format!("cannot create {p}: {e}"))?,
        )),
        None => Box::new(std::io::stdout().lock()),
    };
    write_matrix_market(&csr, &mut sink).map_err(|e| format!("write failed: {e}"))?;
    Ok(())
}
