//! `spdist` — command-line front end for the sparse distance primitive.
//!
//! Operates on Matrix Market (`.mtx`) files:
//!
//! ```text
//! spdist knn      --input data.mtx --metric cosine --k 10 [--output out.tsv]
//! spdist knn      --input data.mtx --index ivf --nlist 32 --nprobe 4 --k 10
//! spdist pairwise --input a.mtx [--index b.mtx] --metric manhattan [--output d.mtx]
//! spdist serve    --input index.mtx --queries q.mtx --k 10 [--max-batch 8 ...]
//! spdist serve    --input index.mtx --queries q.mtx --index ivf --nprobe 4
//! spdist serve    --input base.mtx --queries q.mtx --ingest wal.tsv --compact-threshold 64
//! spdist wal      --input data.mtx --base-rows 100 --output wal.tsv [--rebuilt r.mtx]
//! spdist info     --input data.mtx
//! spdist gen      --profile movielens --scale 0.01 --output data.mtx [--seed 1]
//! spdist profile  --input data.mtx [--replica out.mtx --seed 2]
//! ```
//!
//! `serve` replays the query rows as a simulated request stream against
//! a prepared-index cache and micro-batching engine: `--arrival-gap-us`
//! spaces arrivals, `--max-batch`/`--max-wait-us` bound each batch,
//! `--max-queue` rejects arrivals past that backlog,
//! `--cache-budget-mb` caps the prepared-index cache, and
//! `--per-query-prepare` disables the cache (the baseline the cache is
//! measured against). Answers are byte-identical to `spdist knn` on the
//! same operands; throughput and latency percentiles go to stderr.
//!
//! Serving under overload (DESIGN §14): `--workload <qps>` replaces the
//! fixed arrival gap with a deterministic generated stream (Zipf row
//! popularity, diurnal rate, seeded by `--seed`, lasting
//! `--duration-ms`); `--admit-qps <r>`/`--admit-burst <b>` arm a
//! token-bucket admission controller and
//! `--degrade-watermark`/`--shed-watermark` set the backlog depths at
//! which batches execute degraded (reduced shared-memory footprint,
//! byte-identical answers) or arrivals shed outright. `--fleet min:max`
//! serves through an autoscaled replica fleet (window length
//! `--window-ms`) and reports scale events; adding `--chaos` runs a
//! chaos drill instead — the same traffic with and without a seeded
//! mid-run fault plan — prints the recovery summary, and exits 4 if any
//! surviving request diverges by a byte.
//!
//! Serving telemetry (DESIGN §13): `--metrics` prints a
//! Prometheus-style snapshot of the engine's deterministic metrics
//! registry to stderr, `--metrics=out.json` writes the self-validating
//! `metrics.v1` document instead; `--trace-requests[=trace.json]`
//! summarizes (or exports as chrome://tracing JSON) the per-request
//! spans — enqueue → batch-admit → cache hit/miss → prepare →
//! per-shard launch → retry/degrade → merge → reply. `--slo-p99-us <f>`
//! sets a p99 latency SLO on the served dataset; breach counts and
//! error-budget burn land in the summary and the snapshot.
//!
//! Mutable datasets (DESIGN §16): `--ingest wal.tsv` on `serve` replays
//! a `wal.v1` write-ahead log (checksummed insert/delete records, see
//! `spdist wal`) into the base index before the query stream — every
//! write lands at t=0, so each query is answered against the fully
//! applied log, exactly as if the index had been rebuilt from scratch.
//! `--compact-threshold <n>` arms background compaction (0 = off):
//! once that many fresh rows + tombstones accumulate, the live rows are
//! re-prepared as the next generation off the serving lane and swapped
//! in atomically. `--manifest <path>` writes the generation-stamped
//! `manifest.v1` line after the replay. A torn or corrupt WAL is an
//! input error (exit 3), never a partial apply. `--ingest` serves the
//! exact tier on a single engine (no `--fleet`/`--chaos`/`--index ivf`).
//! Served indices are live-rank positions: row `r` of the rebuilt
//! matrix (base minus deletes, then surviving inserts, in id order).
//!
//! `spdist wal` derives a WAL fixture from a matrix: the first
//! `--base-rows` rows form the base (written with `--base`), every
//! later row becomes an insert, and every `--delete-every`-th operation
//! deletes a deterministically chosen live row. `--prefix <n>` keeps
//! only the first `n` records; `--rebuilt <path>` writes the matrix the
//! log rebuilds to — the oracle the ingest-smoke CI job byte-compares
//! mutable serving against.
//!
//! Approximate tier (DESIGN §15): `--index ivf` on `knn` and `serve`
//! routes candidate generation through a seeded IVF index —
//! `--nlist <n>` posting lists (0 or omitted = `ceil(sqrt(rows))`),
//! `--nprobe <p>` lists probed per query — with every shortlist
//! reranked by the exact kernels, so returned distances are always
//! exact and `--nprobe` = nlist reproduces the exact path byte for
//! byte. On `knn`, the literal values `ivf`/`exact` select the tier;
//! any other `--index` value remains the index-matrix path.
//!
//! Unknown flags, misspelled flags, and flags missing their value are
//! config errors (exit 2) — never silently ignored.
//!
//! Common flags: `--metric <name>` (any Table 1 distance plus
//! `braycurtis`; see `Distance::from_name`), `--p <f>` (Minkowski
//! degree), `--strategy hybrid|naive|esc`, `--smem auto|dense|hash|bloom`,
//! `--device volta|ampere`, `--host-threads <m>` (execute each
//! launch's blocks on `m` host threads; results are bit-identical to
//! serial, and `GPU_SIM_HOST_THREADS` overrides the flag),
//! `--devices <n>` (knn only: shard index slabs round-robin across `n`
//! simulated devices, merging per-slab top-k), `--fused` (knn only:
//! fused distance+selection kernel), `--profile[=trace.json]` (knn/pairwise:
//! enable the per-range profiler, print a hot-spot report per launch,
//! and optionally export a chrome://tracing file loadable in Perfetto).
//!
//! Resilience flags (knn/pairwise): `--resilience` enables the retry +
//! fallback-cascade policy and prints its report to stderr;
//! `--retries <n>` sets the transient-retry budget (implies
//! `--resilience`); `--no-fallback` keeps retries but disables the
//! strategy-degradation cascade.
//!
//! Failures are typed and mapped to exit codes so scripts can
//! distinguish them: bad flags or unknown names exit 2, unreadable or
//! unwritable files exit 3, and kernel/launch failures (including an
//! exhausted fallback cascade) exit 4.

use semiring::{Distance, DistanceParams};
use sparse::{read_matrix_market, write_matrix_market, CsrMatrix, DegreeStats};
use sparse_dist::{
    chaos_drill, chrome_trace, fingerprint_with_generation, kneighbors_graph, replay_rows,
    request_chrome_trace, AdmissionConfig, ChaosPlan, Device, FaultPlan, Fleet, FleetConfig,
    GraphMode, IndexMode, IvfIndex, IvfParams, LaunchStats, Manifest, MultiDevice, MutableDataset,
    NearestNeighbors, PairwiseOptions, ResiliencePolicy, ResilienceReport, ServeConfig,
    ServeEngine, ServeReport, SloBudget, SmemMode, Strategy, TimedRecord, Wal, Workload,
};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::process::ExitCode;

/// A typed CLI failure, carrying its exit code.
enum CliError {
    /// Unusable command line: unknown command/metric/strategy, bad or
    /// missing flag values. Exit code 2.
    Config(String),
    /// Unreadable, unparsable, or unwritable files. Exit code 3.
    Input(String),
    /// The simulated device rejected the work: kernel errors, sanitizer
    /// findings, or an exhausted fallback cascade. Exit code 4.
    Launch(String),
}

impl CliError {
    fn config(msg: impl Into<String>) -> Self {
        Self::Config(msg.into())
    }

    fn input(msg: impl Into<String>) -> Self {
        Self::Input(msg.into())
    }

    fn launch(msg: impl Into<String>) -> Self {
        Self::Launch(msg.into())
    }

    fn exit_code(&self) -> ExitCode {
        match self {
            Self::Config(_) => ExitCode::from(2),
            Self::Input(_) => ExitCode::from(3),
            Self::Launch(_) => ExitCode::from(4),
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(m) => write!(f, "config error: {m}"),
            Self::Input(m) => write!(f, "input error: {m}"),
            Self::Launch(m) => write!(f, "launch error: {m}"),
        }
    }
}

/// Per-command flag grammar: which `--flag <value>` and bare `--switch`
/// names a command accepts, and whether it takes the profiler's
/// `--profile[=trace.json]` form.
struct FlagSpec {
    values: &'static [&'static str],
    switches: &'static [&'static str],
    /// Flags taking an *optional* `=value` (`--metrics` or
    /// `--metrics=out.json`), like the profiler's `--profile` form.
    optionals: &'static [&'static str],
    profiler: bool,
}

/// Value flags shared by every kernel-running command (`knn`,
/// `pairwise`, `serve`).
const COMMON_VALUES: &[&str] = &[
    "--metric",
    "--p",
    "--strategy",
    "--smem",
    "--device",
    "--host-threads",
    "--retries",
];
const COMMON_SWITCHES: &[&str] = &["--resilience", "--no-fallback"];

impl FlagSpec {
    fn for_command(cmd: &str) -> Option<Self> {
        let (values, switches, optionals, profiler): (&[&str], &[&str], &[&str], bool) = match cmd {
            "knn" => (
                &[
                    "--input",
                    "--index",
                    "--k",
                    "--devices",
                    "--output",
                    "--graph",
                    "--nlist",
                    "--nprobe",
                ],
                &["--fused"],
                &[],
                true,
            ),
            "pairwise" => (&["--input", "--index", "--output"], &[], &[], true),
            "serve" => (
                &[
                    "--input",
                    "--index",
                    "--nlist",
                    "--nprobe",
                    "--queries",
                    "--k",
                    "--devices",
                    "--max-batch",
                    "--max-wait-us",
                    "--max-queue",
                    "--arrival-gap-us",
                    "--cache-budget-mb",
                    "--slo-p99-us",
                    "--admit-qps",
                    "--admit-burst",
                    "--degrade-watermark",
                    "--shed-watermark",
                    "--workload",
                    "--duration-ms",
                    "--seed",
                    "--fleet",
                    "--window-ms",
                    "--ingest",
                    "--compact-threshold",
                    "--manifest",
                    "--output",
                ],
                &["--per-query-prepare", "--chaos"],
                &["--metrics", "--trace-requests"],
                false,
            ),
            "wal" => (
                &[
                    "--input",
                    "--base-rows",
                    "--delete-every",
                    "--prefix",
                    "--output",
                    "--base",
                    "--rebuilt",
                ],
                &[],
                &[],
                false,
            ),
            "info" => (&["--input"], &[], &[], false),
            "gen" => (
                &["--profile", "--scale", "--seed", "--output"],
                &[],
                &[],
                false,
            ),
            "profile" => (&["--input", "--replica", "--seed"], &[], &[], false),
            _ => return None,
        };
        Some(Self {
            values,
            switches,
            optionals,
            profiler,
        })
    }
}

/// Parsed command line: every flag validated against the command's
/// [`FlagSpec`] up front, so a typo is a config error (exit 2) instead
/// of a silently applied default.
struct Args {
    values: Vec<(String, String)>,
    switches: Vec<String>,
    optionals: Vec<(String, Option<String>)>,
    profile: Option<Option<String>>,
}

impl Args {
    fn parse(cmd: &str, argv: &[String]) -> Result<Self, CliError> {
        let spec = FlagSpec::for_command(cmd)
            .ok_or_else(|| CliError::config(format!("unknown command {cmd}")))?;
        let kernel_cmd = matches!(cmd, "knn" | "pairwise" | "serve");
        let accepts_value = |name: &str| {
            spec.values.contains(&name) || (kernel_cmd && COMMON_VALUES.contains(&name))
        };
        let accepts_switch = |name: &str| {
            spec.switches.contains(&name) || (kernel_cmd && COMMON_SWITCHES.contains(&name))
        };
        let mut args = Self {
            values: Vec::new(),
            switches: Vec::new(),
            optionals: Vec::new(),
            profile: None,
        };
        let mut i = 0;
        while i < argv.len() {
            let tok = &argv[i];
            if spec.profiler && tok == "--profile" {
                args.profile = Some(None);
                i += 1;
                continue;
            }
            if let Some(path) = tok.strip_prefix("--profile=") {
                if spec.profiler {
                    args.profile = Some(Some(path.to_string()));
                    i += 1;
                    continue;
                }
                return Err(CliError::config(format!(
                    "unknown flag --profile= for {cmd}"
                )));
            }
            if let Some(name) = spec
                .optionals
                .iter()
                .find(|n| tok == **n || tok.strip_prefix(**n).is_some_and(|r| r.starts_with('=')))
            {
                let value = tok.strip_prefix(*name).and_then(|r| r.strip_prefix('='));
                if value == Some("") {
                    return Err(CliError::config(format!(
                        "empty path in {name}= (use bare {name} or {name}=<file>)"
                    )));
                }
                args.optionals
                    .push((name.to_string(), value.map(str::to_string)));
                i += 1;
                continue;
            }
            if !tok.starts_with("--") {
                return Err(CliError::config(format!(
                    "unexpected argument {tok} (flags start with --)"
                )));
            }
            if accepts_value(tok) {
                match argv.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        args.values.push((tok.clone(), v.clone()));
                        i += 2;
                    }
                    _ => return Err(CliError::config(format!("missing value for {tok}"))),
                }
                continue;
            }
            if accepts_switch(tok) {
                args.switches.push(tok.clone());
                i += 1;
                continue;
            }
            return Err(CliError::config(format!(
                "unknown flag {tok} for {cmd} (run with no arguments for usage)"
            )));
        }
        Ok(args)
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|a| a == name)
    }

    fn required(&self, name: &str) -> Result<&str, CliError> {
        self.flag(name)
            .ok_or_else(|| CliError::config(format!("missing {name} <value>")))
    }

    /// `--profile` / `--profile=trace.json`: `None` = profiler off,
    /// `Some(None)` = report only, `Some(Some(path))` = report + trace.
    fn profile(&self) -> Option<Option<String>> {
        self.profile.clone()
    }

    /// An optional-value flag (`--metrics[=path]` shape): `None` = flag
    /// absent, `Some(None)` = bare form, `Some(Some(path))` = with a
    /// destination path.
    fn optional(&self, name: &str) -> Option<Option<&str>> {
        self.optionals
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_deref())
    }
}

/// Prints each profiled launch's hot-spot report and, when a trace path
/// was requested, writes the chrome://tracing JSON for all launches.
fn emit_profiles(launches: &[LaunchStats], trace_path: Option<&str>) -> Result<(), CliError> {
    for stats in launches {
        if let Some(profile) = &stats.profile {
            eprintln!("profile: {} ({} blocks)", stats.name, stats.config.blocks);
            eprintln!("{profile}");
        }
    }
    if let Some(path) = trace_path {
        let json = chrome_trace(launches);
        std::fs::write(path, &json)
            .map_err(|e| CliError::input(format!("cannot write {path}: {e}")))?;
        eprintln!(
            "spdist: wrote chrome-trace with {} profiled launches to {path} \
             (load in Perfetto / chrome://tracing)",
            launches.iter().filter(|l| l.profile.is_some()).count()
        );
    }
    Ok(())
}

/// Renders resilience reports to stderr (one per distance tile).
fn emit_resilience(reports: &[ResilienceReport]) {
    for r in reports {
        eprintln!(
            "resilience: {} attempt(s), final plan {}/{:?}{}{}",
            r.attempts,
            r.final_strategy.name(),
            r.final_smem,
            if r.downgraded { " (downgraded)" } else { "" },
            if r.backoff_seconds > 0.0 {
                format!(", {:.1} us simulated backoff", r.backoff_seconds * 1e6)
            } else {
                String::new()
            },
        );
        for fault in &r.faults_absorbed {
            eprintln!("  absorbed: {fault}");
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        eprintln!(
            "usage: spdist <knn|pairwise|serve|wal|info|gen|profile> --input <file.mtx> [options]"
        );
        return ExitCode::from(2);
    };
    let result = Args::parse(&cmd, &argv[1..]).and_then(|args| match cmd.as_str() {
        "knn" => cmd_knn(&args),
        "pairwise" => cmd_pairwise(&args),
        "serve" => cmd_serve(&args),
        "wal" => cmd_wal(&args),
        "info" => cmd_info(&args),
        "gen" => cmd_gen(&args),
        "profile" => cmd_profile(&args),
        other => Err(CliError::config(format!("unknown command {other}"))),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("spdist: {e}");
            e.exit_code()
        }
    }
}

fn load(path: &str) -> Result<CsrMatrix<f32>, CliError> {
    let f = File::open(path).map_err(|e| CliError::input(format!("cannot open {path}: {e}")))?;
    read_matrix_market(f).map_err(|e| CliError::input(format!("cannot parse {path}: {e}")))
}

/// Parsed resilience flags: the policy for the kernels plus whether the
/// report should be rendered.
fn parse_resilience(args: &Args) -> Result<(Option<ResiliencePolicy>, bool), CliError> {
    let show = args.switch("--resilience");
    let retries = args
        .flag("--retries")
        .map(|r| {
            r.parse::<u32>()
                .map_err(|_| CliError::config(format!("bad --retries {r}")))
        })
        .transpose()?;
    let no_fallback = args.switch("--no-fallback");
    if !show && retries.is_none() && !no_fallback {
        return Ok((None, false));
    }
    let mut policy = match retries {
        Some(r) => ResiliencePolicy::with_retries(r),
        None => ResiliencePolicy::default(),
    };
    if no_fallback {
        policy = policy.without_fallback();
    }
    Ok((Some(policy), show))
}

fn parse_common(
    args: &Args,
) -> Result<(Distance, DistanceParams, PairwiseOptions, Device, bool), CliError> {
    let metric = args.flag("--metric").unwrap_or("euclidean");
    let distance = Distance::from_name(metric)
        .ok_or_else(|| CliError::config(format!("unknown metric {metric}")))?;
    let params = DistanceParams {
        minkowski_p: args
            .flag("--p")
            .map(|p| {
                p.parse()
                    .map_err(|_| CliError::config(format!("bad --p {p}")))
            })
            .transpose()?
            .unwrap_or(2.0),
    };
    let strategy = match args.flag("--strategy").unwrap_or("hybrid") {
        "hybrid" => Strategy::HybridCooSpmv,
        "naive" => Strategy::NaiveCsr,
        "esc" => Strategy::ExpandSortContract,
        other => return Err(CliError::config(format!("unknown strategy {other}"))),
    };
    let smem_mode = match args.flag("--smem").unwrap_or("auto") {
        "auto" => SmemMode::Auto,
        "dense" => SmemMode::Dense,
        "hash" => SmemMode::Hash,
        "bloom" => SmemMode::Bloom,
        other => return Err(CliError::config(format!("unknown smem mode {other}"))),
    };
    let device = match args.flag("--device").unwrap_or("volta") {
        "volta" | "v100" => Device::volta(),
        "ampere" | "a100" => Device::ampere(),
        other => return Err(CliError::config(format!("unknown device {other}"))),
    };
    // Same CI hook the fault-matrix tests honor: run every launch under
    // the requested sanitizer mode (the chaos-smoke job sets `fail`).
    let device = match std::env::var("RESILIENCE_SANITIZER").as_deref() {
        Ok("fail") => device.with_sanitizer(sparse_dist::SanitizerMode::Fail),
        Ok("warn") => device.with_sanitizer(sparse_dist::SanitizerMode::Warn),
        _ => device,
    };
    let device = if args.profile().is_some() {
        device.with_profiler(true)
    } else {
        device
    };
    let device = match args.flag("--host-threads") {
        Some(m) => {
            let m: usize = m
                .parse()
                .map_err(|_| CliError::config(format!("bad --host-threads {m}")))?;
            device.with_host_threads(m.max(1))
        }
        None => device,
    };
    let (resilience, show_resilience) = parse_resilience(args)?;
    Ok((
        distance,
        params,
        PairwiseOptions {
            strategy,
            smem_mode,
            resilience,
        },
        device,
        show_resilience,
    ))
}

fn cmd_gen(args: &Args) -> Result<(), CliError> {
    let name = args.required("--profile")?;
    let profile = match name.to_ascii_lowercase().as_str() {
        "movielens" => datasets::DatasetProfile::movielens(),
        "edgar" | "sec-edgar" => datasets::DatasetProfile::sec_edgar(),
        "scrna" => datasets::DatasetProfile::scrna(),
        "nytimes" | "nyt" => datasets::DatasetProfile::nytimes_bow(),
        other => {
            return Err(CliError::config(format!(
                "unknown profile {other} (movielens|edgar|scrna|nytimes)"
            )))
        }
    };
    let scale: f64 = args
        .flag("--scale")
        .unwrap_or("0.01")
        .parse()
        .map_err(|_| CliError::config("bad --scale"))?;
    let seed: u64 = args
        .flag("--seed")
        .unwrap_or("1")
        .parse()
        .map_err(|_| CliError::config("bad --seed"))?;
    let m = profile.scaled(scale).generate(seed);
    let out = args.required("--output")?;
    let f = File::create(out).map_err(|e| CliError::input(format!("cannot create {out}: {e}")))?;
    write_matrix_market(&m, BufWriter::new(f))
        .map_err(|e| CliError::input(format!("write failed: {e}")))?;
    eprintln!(
        "spdist: wrote {} ({} x {}, {} nonzeros, density {:.4}%)",
        out,
        m.rows(),
        m.cols(),
        m.nnz(),
        m.density() * 100.0
    );
    Ok(())
}

/// Prints a line to stdout, exiting quietly when the consumer (e.g.
/// `| head`) has closed the pipe.
fn out(line: String) {
    use std::io::Write as _;
    if writeln!(std::io::stdout(), "{line}").is_err() {
        std::process::exit(0);
    }
}

fn cmd_profile(args: &Args) -> Result<(), CliError> {
    let m = load(args.required("--input")?)?;
    let p = datasets::fit_profile(&m, "fitted", datasets::ValueDist::TfIdf);
    out("fitted profile:".into());
    out(format!("  shape:     {} x {}", p.rows, p.cols));
    out(format!(
        "  degrees:   lognormal(mu={:.3}, sigma={:.3}), clamp [{}, {}], p_empty={:.3}",
        p.degree.mu, p.degree.sigma, p.degree.min, p.degree.max, p.degree.p_empty
    ));
    out(format!("  col skew:  {:.2}", p.col_skew));
    if let Some(out) = args.flag("--replica") {
        let seed: u64 = args
            .flag("--seed")
            .unwrap_or("2")
            .parse()
            .map_err(|_| CliError::config("bad --seed"))?;
        let replica = p.generate(seed);
        let f =
            File::create(out).map_err(|e| CliError::input(format!("cannot create {out}: {e}")))?;
        write_matrix_market(&replica, BufWriter::new(f))
            .map_err(|e| CliError::input(format!("write failed: {e}")))?;
        eprintln!(
            "spdist: wrote shape-matched replica to {out} ({} nonzeros, density {:.4}%)",
            replica.nnz(),
            replica.density() * 100.0
        );
    }
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), CliError> {
    let m = load(args.required("--input")?)?;
    let s = DegreeStats::of(&m);
    out(format!("shape:      {} x {}", s.rows, s.cols));
    out(format!("nonzeros:   {}", s.nnz));
    out(format!("density:    {:.6}%", s.density * 100.0));
    out(format!(
        "degrees:    min {} / mean {:.1} / max {}",
        s.min_degree, s.mean_degree, s.max_degree
    ));
    let cdf = sparse::degree_cdf(&m);
    out(format!(
        "degree cdf: p50={} p90={} p99={}",
        cdf[50], cdf[90], cdf[99]
    ));
    Ok(())
}

fn cmd_knn(args: &Args) -> Result<(), CliError> {
    let (distance, params, options, device, show_resilience) = parse_common(args)?;
    let query = load(args.required("--input")?)?;
    // `--index` doubles as the candidate-tier selector: the literal
    // values `ivf` / `exact` pick a tier over the self-index, anything
    // else is the historical index-matrix path.
    let (ivf_mode, index) = match args.flag("--index") {
        Some("ivf") => (true, query.clone()),
        Some("exact") | None => (false, query.clone()),
        Some(p) => (false, load(p)?),
    };
    let (nlist, nprobe) = parse_ivf_knobs(args, ivf_mode)?;
    let k: usize = args
        .flag("--k")
        .unwrap_or("10")
        .parse()
        .map_err(|_| CliError::config("bad --k"))?;
    let fused = args.switch("--fused");
    if fused && ivf_mode {
        return Err(CliError::config(
            "--fused cannot be combined with --index ivf",
        ));
    }
    let devices: usize = args
        .flag("--devices")
        .unwrap_or("1")
        .parse()
        .map_err(|_| CliError::config("bad --devices"))?;
    if devices > 1 && fused {
        return Err(CliError::config(
            "--fused cannot be combined with --devices",
        ));
    }
    let nn = NearestNeighbors::new(device.clone(), distance)
        .with_params(params)
        .with_options(options)
        .with_fused(fused)
        .fit(index.clone());
    let result = if ivf_mode {
        let nlist = resolve_nlist(nlist, index.rows());
        let ivf = IvfIndex::fit(
            &nn,
            IvfParams {
                nlist,
                nprobe,
                ..IvfParams::default()
            },
        )
        .map_err(|e| CliError::launch(format!("ivf fit failed: {e}")))?;
        let ans = if devices > 1 {
            let multi = MultiDevice::replicate(&device, devices);
            ivf.search_sharded(&multi, &query, k, nprobe)
        } else {
            ivf.search_with_nprobe(&query, k, nprobe)
        }
        .map_err(|e| CliError::launch(format!("ivf query failed: {e}")))?;
        eprintln!(
            "spdist: ivf tier: {} list(s), nprobe {} -> {} probe(s), \
             {} shortlist row(s) reranked exactly, fit {:.3} ms simulated",
            ivf.nlist(),
            ans.stats.nprobe,
            ans.stats.probes,
            ans.stats.shortlist_rows,
            ivf.fit_sim_seconds() * 1e3,
        );
        ans.knn
    } else if devices > 1 {
        let multi = MultiDevice::replicate(&device, devices);
        nn.kneighbors_sharded(&multi, &query, k)
            .map_err(|e| CliError::launch(format!("query failed: {e}")))?
    } else {
        nn.kneighbors(&query, k)
            .map_err(|e| CliError::launch(format!("query failed: {e}")))?
    };

    eprintln!(
        "spdist: {} queries x {} index rows, {} tiles on {} device(s), \
         {:.3} ms simulated GPU time",
        query.rows(),
        index.rows(),
        result.batches,
        result.devices,
        result.sim_seconds * 1e3
    );
    if show_resilience {
        emit_resilience(&result.resilience);
    }
    if let Some(trace) = args.profile() {
        emit_profiles(&result.launches, trace.as_deref())?;
    }

    match args.flag("--graph") {
        Some(mode) => {
            let gm = match mode {
                "connectivity" => GraphMode::Connectivity,
                "distance" => GraphMode::Distance,
                other => return Err(CliError::config(format!("unknown graph mode {other}"))),
            };
            let g = kneighbors_graph(&result, index.rows(), gm)
                .map_err(|e| CliError::launch(format!("graph build failed: {e}")))?;
            let out = args.flag("--output").unwrap_or("knn_graph.mtx");
            let f = File::create(out)
                .map_err(|e| CliError::input(format!("cannot create {out}: {e}")))?;
            write_matrix_market(&g, BufWriter::new(f))
                .map_err(|e| CliError::input(format!("write failed: {e}")))?;
            eprintln!("spdist: wrote {} edges to {out}", g.nnz());
        }
        None => {
            let mut sink: Box<dyn Write> = match args.flag("--output") {
                Some(p) => {
                    Box::new(BufWriter::new(File::create(p).map_err(|e| {
                        CliError::input(format!("cannot create {p}: {e}"))
                    })?))
                }
                None => Box::new(std::io::stdout().lock()),
            };
            for (q, (idx, dist)) in result.indices.iter().zip(&result.distances).enumerate() {
                let cols: Vec<String> = idx
                    .iter()
                    .zip(dist)
                    .map(|(i, d)| format!("{i}:{d:.6}"))
                    .collect();
                writeln!(sink, "{q}\t{}", cols.join("\t"))
                    .map_err(|e| CliError::input(format!("write failed: {e}")))?;
            }
        }
    }
    Ok(())
}

fn parse_num<T: std::str::FromStr>(args: &Args, name: &str, default: &str) -> Result<T, CliError> {
    args.flag(name)
        .unwrap_or(default)
        .parse()
        .map_err(|_| CliError::config(format!("bad {name} {}", args.flag(name).unwrap_or(default))))
}

/// Parses `--nlist`/`--nprobe` for the IVF tier. `nlist` defaults to 0
/// (auto: `ceil(sqrt(index rows))`), `nprobe` to the [`IvfParams`]
/// default. Both flags are config errors unless the IVF tier is
/// selected — misreading an approximate-index knob as a no-op would
/// silently change answers.
fn parse_ivf_knobs(args: &Args, ivf: bool) -> Result<(usize, usize), CliError> {
    if !ivf {
        for knob in ["--nlist", "--nprobe"] {
            if args.flag(knob).is_some() {
                return Err(CliError::config(format!("{knob} requires --index ivf")));
            }
        }
        return Ok((0, 0));
    }
    let nlist: usize = parse_num(args, "--nlist", "0")?;
    let default_nprobe = IvfParams::default().nprobe.to_string();
    let nprobe: usize = parse_num(args, "--nprobe", &default_nprobe)?;
    if nprobe == 0 {
        return Err(CliError::config("bad --nprobe 0 (must probe at least 1)"));
    }
    Ok((nlist, nprobe))
}

/// Auto `nlist` (the IVF sweet spot `ceil(sqrt(n))`) when the flag was
/// 0/omitted, clamped to the index size.
fn resolve_nlist(nlist: usize, index_rows: usize) -> usize {
    let n = if nlist == 0 {
        (index_rows as f64).sqrt().ceil() as usize
    } else {
        nlist
    };
    n.clamp(1, index_rows.max(1))
}

/// Parses the serve admission flags into an [`AdmissionConfig`], or
/// `None` when none are present (admit everything, queue cliff only).
fn parse_admission(args: &Args) -> Result<Option<AdmissionConfig>, CliError> {
    let mut admission = None;
    if let Some(r) = args.flag("--admit-qps") {
        let rate: f64 = r
            .parse()
            .map_err(|_| CliError::config(format!("bad --admit-qps {r}")))?;
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(CliError::config(format!("bad --admit-qps {r}")));
        }
        let burst: f64 = parse_num(args, "--admit-burst", "8")?;
        if !(burst >= 1.0 && burst.is_finite()) {
            return Err(CliError::config(format!("bad --admit-burst {burst}")));
        }
        admission = Some(AdmissionConfig::default().with_rate(rate, burst));
    }
    let degrade = args
        .flag("--degrade-watermark")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| CliError::config(format!("bad --degrade-watermark {v}")))
        })
        .transpose()?;
    let shed = args
        .flag("--shed-watermark")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| CliError::config(format!("bad --shed-watermark {v}")))
        })
        .transpose()?;
    if degrade.is_some() || shed.is_some() {
        let degrade = degrade.unwrap_or(usize::MAX);
        let shed = shed.unwrap_or(usize::MAX);
        if degrade > shed {
            return Err(CliError::config(format!(
                "--degrade-watermark {degrade} must not exceed --shed-watermark {shed}"
            )));
        }
        admission = Some(admission.unwrap_or_default().with_watermarks(degrade, shed));
    }
    Ok(admission)
}

/// Writes served `id\tindex:distance...` rows to `--output` or stdout,
/// sorted by request id — shared by the engine and fleet serve paths.
fn write_responses<T: sparse::Real>(
    args: &Args,
    responses: &[sparse_dist::Response<T>],
) -> Result<(), CliError> {
    let mut responses: Vec<_> = responses.iter().collect();
    responses.sort_by_key(|r| r.id);
    let mut sink: Box<dyn Write> = match args.flag("--output") {
        Some(p) => {
            Box::new(BufWriter::new(File::create(p).map_err(|e| {
                CliError::input(format!("cannot create {p}: {e}"))
            })?))
        }
        None => Box::new(std::io::stdout().lock()),
    };
    for r in responses {
        let cols: Vec<String> = r
            .indices
            .iter()
            .zip(&r.distances)
            .map(|(i, d)| format!("{i}:{d:.6}"))
            .collect();
        writeln!(sink, "{}\t{}", r.id, cols.join("\t"))
            .map_err(|e| CliError::input(format!("write failed: {e}")))?;
    }
    Ok(())
}

/// The serve request stream: `--workload <qps>` generates deterministic
/// Zipf/diurnal traffic over the query rows; otherwise the query rows
/// replay once at a fixed `--arrival-gap-us`.
fn serve_requests<T: sparse::Real>(
    args: &Args,
    queries: &CsrMatrix<T>,
) -> Result<Vec<sparse_dist::Request<T>>, CliError> {
    match args.flag("--workload") {
        Some(q) => {
            let qps: f64 = q
                .parse()
                .map_err(|_| CliError::config(format!("bad --workload {q}")))?;
            if !(qps > 0.0 && qps.is_finite()) {
                return Err(CliError::config(format!("bad --workload {q}")));
            }
            let duration_ms: f64 = parse_num(args, "--duration-ms", "5")?;
            if !(duration_ms > 0.0 && duration_ms.is_finite()) {
                return Err(CliError::config(format!("bad --duration-ms {duration_ms}")));
            }
            let seed: u64 = parse_num(args, "--seed", "1")?;
            let duration_s = duration_ms * 1e-3;
            let workload = Workload::steady(seed, qps, duration_s)
                .with_zipf(1.1)
                .with_diurnal(0.3, duration_s / 2.0);
            Ok(workload.generate(std::slice::from_ref(queries)))
        }
        None => {
            let gap_us: f64 = parse_num(args, "--arrival-gap-us", "50")?;
            Ok(replay_rows(queries, gap_us * 1e-6))
        }
    }
}

/// Serves through the autoscaled replica fleet (`--fleet min:max`),
/// optionally as a chaos drill (`--chaos`): the same traffic runs with
/// and without a seeded mid-run fault plan, surviving responses are
/// byte-compared, and any divergence is a launch error (exit 4).
fn cmd_serve_fleet<T: sparse::Real>(
    args: &Args,
    spec: &str,
    device: &Device,
    nn: NearestNeighbors<T>,
    config: ServeConfig,
    requests: &[sparse_dist::Request<T>],
) -> Result<(), CliError> {
    let (min, max) = spec
        .split_once(':')
        .and_then(|(a, b)| Some((a.parse::<usize>().ok()?, b.parse::<usize>().ok()?)))
        .filter(|&(min, max)| min >= 1 && min <= max)
        .ok_or_else(|| CliError::config(format!("bad --fleet {spec} (expected min:max)")))?;
    let window_ms: f64 = parse_num(args, "--window-ms", "1")?;
    if !(window_ms > 0.0 && window_ms.is_finite()) {
        return Err(CliError::config(format!("bad --window-ms {window_ms}")));
    }
    let fleet_config = FleetConfig {
        min_replicas: min,
        max_replicas: max,
        window_s: window_ms * 1e-3,
        serve: config,
        ..FleetConfig::default()
    };
    let mut slos = Vec::new();
    if let Some(us) = args.flag("--slo-p99-us") {
        let us: f64 = us
            .parse()
            .map_err(|_| CliError::config(format!("bad --slo-p99-us {us}")))?;
        if !(us > 0.0 && us.is_finite()) {
            return Err(CliError::config(format!("bad --slo-p99-us {us}")));
        }
        slos.push((0usize, SloBudget::p99(us * 1e-6)));
    }

    if args.switch("--chaos") {
        let seed: u64 = parse_num(args, "--seed", "1")?;
        let span_s = requests.iter().map(|r| r.arrival_s).fold(0.0, f64::max);
        let chaos = ChaosPlan {
            start_s: span_s * 0.25,
            end_s: (span_s * 0.5).max(span_s * 0.25 + fleet_config.window_s),
            fault: FaultPlan::seeded(seed).with_transient_launch_failures(100),
        };
        eprintln!(
            "spdist: chaos drill: 10% transient launch faults over \
             [{:.2} ms, {:.2} ms) (seed {seed})",
            chaos.start_s * 1e3,
            chaos.end_s * 1e3,
        );
        let outcome = chaos_drill(device, fleet_config, &slos, &[nn], requests, chaos, 1.0)
            .map_err(|e| CliError::launch(format!("chaos drill failed: {e}")))?;
        eprintln!(
            "spdist: chaos drill: {} common response(s), {} divergent, \
             baseline shed {:.1}% vs chaos shed {:.1}%",
            outcome.common,
            outcome.divergent,
            outcome.baseline.shed_fraction() * 100.0,
            outcome.chaos.shed_fraction() * 100.0,
        );
        match outcome.recovery_window {
            Some(w) => {
                let win = &outcome.chaos.windows[w];
                eprintln!(
                    "spdist: chaos drill: recovered in window {w} \
                     (t={:.2} ms, burn {:.2} within envelope 1.0)",
                    win.start_s * 1e3,
                    win.worst_burn,
                );
            }
            None => eprintln!("spdist: chaos drill: no post-chaos window re-entered the envelope"),
        }
        if outcome.divergent > 0 {
            return Err(CliError::launch(format!(
                "chaos drill diverged on {} of {} surviving request(s)",
                outcome.divergent, outcome.common,
            )));
        }
        if args.optional("--metrics").is_some() {
            eprintln!(
                "spdist: note: --metrics is ignored under --chaos (the drill \
                 runs two fleets; rerun without --chaos for a snapshot)"
            );
        }
        write_request_trace(args, &outcome.chaos.spans)?;
        return write_responses(args, &outcome.chaos.responses);
    }

    let mut fleet = Fleet::new(device.clone(), fleet_config);
    for (dataset, budget) in slos {
        fleet = fleet.with_slo(dataset, budget);
    }
    let report = fleet
        .run(&[nn], requests)
        .map_err(|e| CliError::launch(format!("fleet serve failed: {e}")))?;
    eprintln!(
        "spdist: fleet served {}/{} request(s) over {} window(s), \
         shed {:.1}%, p50 {:.1} us / p99 {:.1} us, worst burn {:.2}, \
         {} replica(s) final",
        report.responses.len(),
        requests.len(),
        report.windows.len(),
        report.shed_fraction() * 100.0,
        report.latency_percentile(50.0) * 1e6,
        report.latency_percentile(99.0) * 1e6,
        report.worst_burn(),
        report.replicas_final,
    );
    for e in &report.scale_events {
        eprintln!(
            "spdist: fleet scale {} -> {} at window {} (t={:.2} ms, burn {:.2})",
            e.from,
            e.to,
            e.window,
            e.at_s * 1e3,
            e.burn,
        );
    }
    if let Some(dest) = args.optional("--metrics") {
        let snap = fleet.metrics().snapshot("spdist_fleet");
        match dest {
            Some(path) => {
                std::fs::write(path, snap.to_json())
                    .map_err(|e| CliError::input(format!("cannot write {path}: {e}")))?;
                eprintln!(
                    "spdist: wrote metrics.v1 snapshot ({} counters, {} gauges, \
                     {} histograms) to {path}",
                    snap.counters.len(),
                    snap.gauges.len(),
                    snap.histograms.len()
                );
            }
            None => eprint!("{}", snap.to_prometheus()),
        }
    }
    write_request_trace(args, &report.spans)?;
    write_responses(args, &report.responses)
}

/// Honors `--trace-requests[=path]` for a fleet or drill run's spans.
fn write_request_trace(args: &Args, spans: &[sparse_dist::RequestSpan]) -> Result<(), CliError> {
    if let Some(dest) = args.optional("--trace-requests") {
        match dest {
            Some(path) => {
                std::fs::write(path, request_chrome_trace(spans))
                    .map_err(|e| CliError::input(format!("cannot write {path}: {e}")))?;
                eprintln!(
                    "spdist: wrote request trace with {} span(s) to {path} \
                     (load in Perfetto / chrome://tracing)",
                    spans.len()
                );
            }
            None => {
                let terminal = spans.iter().filter(|s| s.is_terminal()).count();
                eprintln!(
                    "spdist: traced {} request span(s), {} terminal \
                     (pass --trace-requests=trace.json to export)",
                    spans.len(),
                    terminal
                );
            }
        }
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), CliError> {
    let (distance, params, mut options, device, show_resilience) = parse_common(args)?;
    let index = load(args.required("--input")?)?;
    let queries = load(args.required("--queries")?)?;
    let k: usize = parse_num(args, "--k", "10")?;
    let devices: usize = parse_num(args, "--devices", "1")?;
    let max_batch: usize = parse_num(args, "--max-batch", "8")?;
    let max_wait_us: f64 = parse_num(args, "--max-wait-us", "200")?;
    let max_queue: usize = parse_num(args, "--max-queue", "1024")?;

    let mut selection = sparse_dist::Selection::Device;
    if args.switch("--chaos") {
        // The chaos drill injects transient launch faults mid-run; they
        // are only absorbable through the retry policy, which covers the
        // distance kernels but not the device top-k kernel — force
        // host-side selection and a retry budget so the drill measures
        // degradation and recovery instead of dying on the first fault.
        if options.resilience.is_none() {
            options.resilience = Some(ResiliencePolicy::with_retries(8));
            eprintln!("spdist: --chaos implies --resilience (retry budget 8)");
        }
        selection = sparse_dist::Selection::Host;
    }
    let ivf_mode = match args.flag("--index") {
        Some("ivf") => true,
        Some("exact") | None => false,
        Some(other) => {
            return Err(CliError::config(format!(
                "bad --index {other} (serve accepts exact or ivf; \
                 the index matrix is --input)"
            )))
        }
    };
    let (nlist, nprobe) = parse_ivf_knobs(args, ivf_mode)?;
    let nn = NearestNeighbors::new(device.clone(), distance)
        .with_params(params)
        .with_selection(selection)
        .with_options(options)
        .fit(index.clone());
    let config = ServeConfig {
        k,
        max_batch: max_batch.max(1),
        max_wait_s: max_wait_us * 1e-6,
        max_queue: max_queue.max(1),
        per_query_prepare: args.switch("--per-query-prepare"),
        admission: parse_admission(args)?,
        index: if ivf_mode {
            IndexMode::Ivf { nlist, nprobe }
        } else {
            IndexMode::Exact
        },
    };
    let requests = serve_requests(args, &queries)?;

    if args.flag("--ingest").is_some() {
        if args.flag("--fleet").is_some() || args.switch("--chaos") {
            return Err(CliError::config(
                "--ingest serves a single mutable engine (drop --fleet/--chaos)",
            ));
        }
        if ivf_mode {
            return Err(CliError::config(
                "--ingest serves the exact tier (drop --index ivf)",
            ));
        }
    } else {
        for knob in ["--compact-threshold", "--manifest"] {
            if args.flag(knob).is_some() {
                return Err(CliError::config(format!("{knob} requires --ingest")));
            }
        }
    }

    if let Some(spec) = args.flag("--fleet") {
        return cmd_serve_fleet(args, spec, &device, nn, config, &requests);
    }
    if args.switch("--chaos") {
        return Err(CliError::config(
            "--chaos requires --fleet min:max (the drill runs through the fleet)",
        ));
    }

    let multi = MultiDevice::replicate(&device, devices.max(1));
    let mut engine = ServeEngine::new(multi, config);
    if let Some(mb) = args.flag("--cache-budget-mb") {
        let mb: usize = mb
            .parse()
            .map_err(|_| CliError::config(format!("bad --cache-budget-mb {mb}")))?;
        engine = engine.with_cache_budget(mb * 1024 * 1024);
    }
    if let Some(us) = args.flag("--slo-p99-us") {
        let us: f64 = us
            .parse()
            .map_err(|_| CliError::config(format!("bad --slo-p99-us {us}")))?;
        if !(us > 0.0 && us.is_finite()) {
            return Err(CliError::config(format!("bad --slo-p99-us {us}")));
        }
        engine.set_slo(0, SloBudget::p99(us * 1e-6));
    }
    let report = match args.flag("--ingest") {
        Some(wal_path) => serve_ingest_replay(args, wal_path, &mut engine, &nn, &index, &requests)?,
        None => engine
            .replay(std::slice::from_ref(&nn), &requests)
            .map_err(|e| CliError::launch(format!("serve failed: {e}")))?,
    };

    eprintln!(
        "spdist: served {}/{} requests in {} batches on {} device(s), \
         {:.1} qps (sim), p50 {:.1} us / p99 {:.1} us, busy {:.3} ms",
        report.responses.len(),
        requests.len(),
        report.batches,
        devices.max(1),
        report.qps(),
        report.latency_percentile(50.0) * 1e6,
        report.latency_percentile(99.0) * 1e6,
        report.busy_seconds * 1e3,
    );
    // Typed shed breakdown (only non-zero reasons, to keep the summary
    // line stable for scripts when admission control is off).
    let sheds: Vec<String> = report
        .shed_counts()
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(reason, n)| format!("{n} {}", reason.name()))
        .collect();
    eprintln!(
        "spdist: cache {} hit(s) / {} miss(es) / {} eviction(s); {} rejected{}",
        report.cache.hits,
        report.cache.misses,
        report.cache.evictions,
        report.rejected.len(),
        if sheds.is_empty() {
            String::new()
        } else {
            format!(" ({})", sheds.join(", "))
        }
    );
    if report.degraded_requests > 0 {
        eprintln!(
            "spdist: admission degraded {} request(s) in {} batch(es) \
             (reduced smem footprint, byte-identical answers)",
            report.degraded_requests, report.degraded_batches,
        );
    }
    if show_resilience {
        eprintln!("resilience: policy active on every served batch");
    }
    for s in &report.slo {
        eprintln!(
            "spdist: slo d{}: target p99 {:.1} us, {}/{} breach(es), \
             burn {:.2} (worst window {:.2})",
            s.dataset,
            s.budget.target_p99_s * 1e6,
            s.breaches,
            s.requests,
            s.budget_burn(),
            s.worst_window_burn(),
        );
    }
    if ivf_mode {
        let m = engine.metrics();
        eprintln!(
            "spdist: ivf tier: {} search(es), {} probe(s), {} shortlist \
             row(s) reranked exactly, {} fit(s), {} degraded-nprobe batch(es)",
            m.counter("ann.searches_total"),
            m.counter("ann.probes_total"),
            m.counter("ann.shortlist_rows_total"),
            m.counter("ann.fits_total"),
            m.counter("ann.degraded_nprobe_total"),
        );
    }
    if let Some(dest) = args.optional("--metrics") {
        let snap = engine.metrics().snapshot("spdist_serve");
        match dest {
            Some(path) => {
                std::fs::write(path, snap.to_json())
                    .map_err(|e| CliError::input(format!("cannot write {path}: {e}")))?;
                eprintln!(
                    "spdist: wrote metrics.v1 snapshot ({} counters, {} gauges, \
                     {} histograms) to {path}",
                    snap.counters.len(),
                    snap.gauges.len(),
                    snap.histograms.len()
                );
            }
            None => eprint!("{}", snap.to_prometheus()),
        }
    }
    if let Some(dest) = args.optional("--trace-requests") {
        match dest {
            Some(path) => {
                std::fs::write(path, request_chrome_trace(&report.spans))
                    .map_err(|e| CliError::input(format!("cannot write {path}: {e}")))?;
                eprintln!(
                    "spdist: wrote request trace with {} span(s) to {path} \
                     (load in Perfetto / chrome://tracing)",
                    report.spans.len()
                );
            }
            None => {
                let terminal = report.spans.iter().filter(|s| s.is_terminal()).count();
                eprintln!(
                    "spdist: traced {} request span(s), {} terminal \
                     (pass --trace-requests=trace.json to export)",
                    report.spans.len(),
                    terminal
                );
            }
        }
    }

    write_responses(args, &report.responses)
}

/// Replays `--ingest wal.tsv` through the mutable-dataset engine
/// (DESIGN §16): strict parse (a torn log is exit 3), every write at
/// t=0 so each query sees the fully applied log, optional background
/// compaction and `manifest.v1` emission. Returns the serving-side
/// report so the shared summary/telemetry/output paths apply unchanged.
fn serve_ingest_replay(
    args: &Args,
    wal_path: &str,
    engine: &mut ServeEngine<f32>,
    proto: &NearestNeighbors<f32>,
    index: &CsrMatrix<f32>,
    requests: &[sparse_dist::Request<f32>],
) -> Result<ServeReport<f32>, CliError> {
    let text = std::fs::read_to_string(wal_path)
        .map_err(|e| CliError::input(format!("cannot open {wal_path}: {e}")))?;
    let wal = Wal::<f32>::parse(&text)
        .map_err(|e| CliError::input(format!("torn or corrupt WAL {wal_path}: {e}")))?;
    if wal.cols() != index.cols() {
        return Err(CliError::input(format!(
            "WAL {wal_path} has {} column(s) but the base index has {}",
            wal.cols(),
            index.cols()
        )));
    }
    let threshold: usize = parse_num(args, "--compact-threshold", "0")?;
    let mut ds = MutableDataset::new(index.clone());
    let writes: Vec<TimedRecord<f32>> = wal
        .records()
        .iter()
        .map(|record| TimedRecord {
            at_s: 0.0,
            record: record.clone(),
        })
        .collect();
    let report = engine
        .replay_ingest(proto, &mut ds, &writes, requests, threshold)
        .map_err(|e| CliError::launch(format!("ingest serve failed: {e}")))?;
    eprintln!(
        "spdist: ingest applied {}/{} WAL record(s) ({} insert(s), {} delete(s), \
         {} rejected), {}/{} compaction(s) landed, generation {}, \
         {} live row(s) ({} fresh, {} tombstone(s))",
        report.wal.applied,
        report.wal.appended,
        report.wal.inserts,
        report.wal.deletes,
        report.wal.rejected,
        report.compactions.len(),
        report.compactions_started,
        report.final_generation,
        ds.live_rows(),
        ds.fresh_rows(),
        ds.tombstone_count(),
    );
    for (seq, err) in &report.wal_errors {
        eprintln!("spdist: ingest rejected record {seq}: {err}");
    }
    if let Some(path) = args.flag("--manifest") {
        let manifest = Manifest {
            generation: ds.generation(),
            base_rows: ds.base().rows(),
            base_fingerprint: fingerprint_with_generation(ds.base(), ds.generation()),
            log_position: ds.log_position(),
            cols: ds.cols(),
        };
        std::fs::write(path, manifest.render() + "\n")
            .map_err(|e| CliError::input(format!("cannot write {path}: {e}")))?;
        eprintln!(
            "spdist: wrote manifest (generation {}) to {path}",
            ds.generation()
        );
    }
    Ok(report.serve)
}

/// Derives a deterministic WAL fixture from a matrix (DESIGN §16): the
/// first `--base-rows` rows form the base, every later row becomes an
/// insert, and every `--delete-every`-th operation also deletes a
/// deterministically chosen live row. `--rebuilt` writes the oracle
/// matrix the log rebuilds to; `--prefix` truncates the log first so CI
/// can replay any prefix against its own oracle.
fn cmd_wal(args: &Args) -> Result<(), CliError> {
    let m = load(args.required("--input")?)?;
    if m.rows() == 0 {
        return Err(CliError::input("--input matrix has no rows"));
    }
    let default_base = (m.rows() / 2).max(1).to_string();
    let base_rows: usize = parse_num(args, "--base-rows", &default_base)?;
    if base_rows == 0 || base_rows > m.rows() {
        return Err(CliError::config(format!(
            "bad --base-rows {base_rows} (need 1..={} for this matrix)",
            m.rows()
        )));
    }
    let delete_every: usize = parse_num(args, "--delete-every", "4")?;
    let base = m.slice_rows(0..base_rows);
    let mut wal: Wal<f32> = Wal::new(m.cols());
    let mut live: Vec<u64> = (0..base_rows as u64).collect();
    for r in base_rows..m.rows() {
        let i = r - base_rows;
        if delete_every > 0 && i % delete_every == delete_every - 1 && !live.is_empty() {
            let victim = live.remove((i * 7 + 3) % live.len());
            wal.append_delete(victim);
        }
        wal.append_insert(m.row_indices(r), m.row_values(r));
        // Deletes never consume logical ids: insert i is id base_rows + i.
        live.push((base_rows + i) as u64);
    }
    if let Some(p) = args.flag("--prefix") {
        let n: usize = p
            .parse()
            .map_err(|_| CliError::config(format!("bad --prefix {p}")))?;
        if n > wal.len() {
            return Err(CliError::config(format!(
                "bad --prefix {n} (the log has {} record(s))",
                wal.len()
            )));
        }
        wal.truncate(n);
    }
    let out_path = args.required("--output")?;
    std::fs::write(out_path, wal.render())
        .map_err(|e| CliError::input(format!("cannot write {out_path}: {e}")))?;
    // Replay the (possibly truncated) log so the written oracle always
    // corresponds to exactly the records in the written WAL.
    let mut ds = MutableDataset::new(base.clone());
    for rec in wal.records() {
        ds.apply(rec)
            .map_err(|e| CliError::input(format!("derived log does not replay: {e}")))?;
    }
    eprintln!(
        "spdist: wrote {} WAL record(s) over {} column(s) to {out_path} \
         (base {} row(s), rebuild {} live row(s))",
        wal.len(),
        wal.cols(),
        base_rows,
        ds.live_rows(),
    );
    if let Some(path) = args.flag("--base") {
        let f = File::create(path)
            .map_err(|e| CliError::input(format!("cannot create {path}: {e}")))?;
        write_matrix_market(&base, BufWriter::new(f))
            .map_err(|e| CliError::input(format!("write failed: {e}")))?;
    }
    if let Some(path) = args.flag("--rebuilt") {
        let f = File::create(path)
            .map_err(|e| CliError::input(format!("cannot create {path}: {e}")))?;
        write_matrix_market(&ds.rebuild(), BufWriter::new(f))
            .map_err(|e| CliError::input(format!("write failed: {e}")))?;
    }
    Ok(())
}

fn cmd_pairwise(args: &Args) -> Result<(), CliError> {
    let (distance, params, options, device, show_resilience) = parse_common(args)?;
    let a = load(args.required("--input")?)?;
    let b = match args.flag("--index") {
        Some(p) => load(p)?,
        None => a.clone(),
    };
    let r = sparse_dist::pairwise_distances_with(&device, &a, &b, distance, &params, &options)
        .map_err(|e| CliError::launch(format!("pairwise failed: {e}")))?;
    eprintln!(
        "spdist: {}x{} distances, {:.3} ms simulated across {} launches",
        a.rows(),
        b.rows(),
        r.sim_seconds() * 1e3,
        r.launches.len()
    );
    if show_resilience {
        if let Some(report) = &r.resilience {
            emit_resilience(std::slice::from_ref(report));
        }
    }
    if let Some(trace) = args.profile() {
        emit_profiles(&r.launches, trace.as_deref())?;
    }
    // Dense output as mtx (store all cells, including zeros, as explicit
    // entries would be wasteful — convert through CSR, dropping exact
    // zeros, which for distances means self-pairs and exact ties only).
    let csr = CsrMatrix::from_dense(a.rows(), b.rows(), r.distances.as_slice());
    let mut sink: Box<dyn Write> = match args.flag("--output") {
        Some(p) => {
            Box::new(BufWriter::new(File::create(p).map_err(|e| {
                CliError::input(format!("cannot create {p}: {e}"))
            })?))
        }
        None => Box::new(std::io::stdout().lock()),
    };
    write_matrix_market(&csr, &mut sink)
        .map_err(|e| CliError::input(format!("write failed: {e}")))?;
    Ok(())
}
