//! Input-domain validation for the distance primitive.
//!
//! Several Table 1 distances take square roots or logarithms of the
//! cell values (Hellinger, Jensen-Shannon, KL divergence) and are only
//! defined on non-negative data; feeding them signed values produces
//! NaNs deep inside a kernel. This module front-loads that check with a
//! precise, typed error.

use semiring::Distance;
use sparse::{CsrMatrix, Real};

/// A rejected input, naming the offending cell.
#[derive(Debug, Clone, PartialEq)]
pub struct InputError {
    /// The distance whose domain was violated.
    pub distance: Distance,
    /// Row of the first offending value.
    pub row: usize,
    /// Column of the first offending value.
    pub col: u32,
    /// The value itself (as `f64`).
    pub value: f64,
}

impl std::fmt::Display for InputError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let need = if self.value.is_finite() {
            "non-negative"
        } else {
            "finite"
        };
        write!(
            f,
            "{} requires {need} input but cell ({}, {}) holds {}",
            self.distance, self.row, self.col, self.value
        )
    }
}

impl std::error::Error for InputError {}

/// Validates that `m` lies in `distance`'s domain.
///
/// Currently checks non-negativity for the distances that need it
/// ([`Distance::requires_nonnegative`]); all other distances accept any
/// real data. Non-finite values (NaN and ±∞) are rejected for every
/// distance — an infinity survives the semiring passes and poisons the
/// whole output row, so it is caught here instead.
///
/// # Errors
///
/// Returns the first offending cell.
pub fn validate_input<T: Real>(distance: Distance, m: &CsrMatrix<T>) -> Result<(), InputError> {
    let need_nonneg = distance.requires_nonnegative();
    for (r, c, v) in m.iter() {
        if !v.is_finite() || (need_nonneg && v < T::ZERO) {
            return Err(InputError {
                distance,
                row: r as usize,
                col: c,
                value: v.to_f64(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_data_passes_for_unrestricted_distances() {
        let m = CsrMatrix::<f64>::from_dense(1, 3, &[-1.0, 2.0, -0.5]);
        for d in [Distance::Euclidean, Distance::Cosine, Distance::Manhattan] {
            assert!(validate_input(d, &m).is_ok(), "{d}");
        }
    }

    #[test]
    fn signed_data_is_rejected_for_log_sqrt_distances() {
        let m = CsrMatrix::<f64>::from_dense(2, 3, &[1.0, 0.0, 0.5, 0.0, -0.25, 0.0]);
        for d in [
            Distance::Hellinger,
            Distance::JensenShannon,
            Distance::KlDivergence,
        ] {
            let err = validate_input(d, &m).expect_err("must reject");
            assert_eq!((err.row, err.col), (1, 1));
            assert_eq!(err.value, -0.25);
            assert!(err.to_string().contains("non-negative"));
        }
    }

    #[test]
    fn nan_is_rejected_everywhere() {
        let m = CsrMatrix::<f32>::from_dense(1, 2, &[1.0, f32::NAN]);
        for d in semiring::Distance::ALL {
            assert!(validate_input(d, &m).is_err(), "{d}");
        }
    }

    #[test]
    fn infinities_are_rejected_everywhere() {
        for bad in [f64::INFINITY, f64::NEG_INFINITY] {
            let m = CsrMatrix::<f64>::from_dense(2, 2, &[1.0, 0.0, bad, 2.0]);
            for d in semiring::Distance::ALL {
                let err = validate_input(d, &m).expect_err("must reject");
                assert_eq!((err.row, err.col), (1, 0), "{d}");
                assert_eq!(err.value, bad, "{d}");
            }
        }
    }

    #[test]
    fn clean_probability_rows_pass() {
        let m = CsrMatrix::<f64>::from_dense(1, 4, &[0.25, 0.25, 0.5, 0.0]);
        assert!(validate_input(Distance::KlDivergence, &m).is_ok());
    }
}
