//! The semiring-construction API (the paper's Figure 3).
//!
//! Figure 3 shows the C++ entry points: dot-product-based semirings
//! invoke one function (a single SPMV pass over the nonzero
//! intersection), while NAMMs invoke a second (the commuted
//! symmetric-difference pass). [`SemiringRunner`] is the Rust analog:
//! construct a [`Semiring`] from monoids, then run one or both passes
//! over a pair of CSR matrices on the simulated device.
//!
//! # Example: a custom "count shared nonzero columns" semiring
//!
//! ```
//! use sparse_dist::api::SemiringRunner;
//! use sparse_dist::{Device, Monoid, Semiring};
//! use sparse_dist::sparse::CsrMatrix;
//!
//! // ⊗ = "both sides nonzero → 1", ⊕ = +  ⇒ |nz(a) ∩ nz(b)|.
//! let overlap = Semiring::annihilating(
//!     Monoid::new(|a: f32, b: f32| if a != 0.0 && b != 0.0 { 1.0 } else { 0.0 }, 1.0),
//!     Monoid::plus(),
//! );
//! let x = CsrMatrix::from_dense(2, 4, &[1.0, 0.0, 2.0, 3.0, 0.5, 0.0, 1.0, 0.0]);
//! let runner = SemiringRunner::new(Device::volta());
//! let out = runner.run(&x, &x, &overlap)?;
//! assert_eq!(out.inner_terms.get(0, 1), 2.0); // columns 0 and 2 shared
//! # Ok::<(), sparse_dist::KernelError>(())
//! ```

use gpu_sim::{Device, LaunchStats};
use kernels::hybrid::{hybrid_inner_terms, SmemVecKind};
use kernels::{DeviceCsr, KernelError};
use semiring::Semiring;
use sparse::{CsrMatrix, DenseMatrix, Real};

/// Output of a raw semiring execution: the `m × n` inner-term matrix,
/// before any expansion function.
#[derive(Debug)]
pub struct SemiringOutput<T> {
    /// `C_ij = ⊕_k ⊗(A_ik, B_jk)` over the intersection (annihilating)
    /// or union (NAMM) of nonzero columns.
    pub inner_terms: DenseMatrix<T>,
    /// Per-pass launch statistics (one entry for annihilating semirings,
    /// two for NAMMs).
    pub launches: Vec<LaunchStats>,
}

impl<T> SemiringOutput<T> {
    /// Total simulated seconds.
    pub fn sim_seconds(&self) -> f64 {
        self.launches.iter().map(LaunchStats::sim_seconds).sum()
    }
}

/// Executes user-constructed semirings through the hybrid kernel.
#[derive(Debug, Clone)]
pub struct SemiringRunner {
    device: Device,
    forced_mode: Option<SmemVecKind>,
}

impl SemiringRunner {
    /// Creates a runner on the given device with automatic shared-memory
    /// mode selection.
    pub fn new(device: Device) -> Self {
        Self {
            device,
            forced_mode: None,
        }
    }

    /// Forces a shared-memory representation (dense / hash / bloom).
    pub fn with_smem_mode(mut self, kind: SmemVecKind) -> Self {
        self.forced_mode = Some(kind);
        self
    }

    /// Runs the semiring over all row pairs: one pass for annihilating
    /// semirings, the additional commuted pass for NAMMs — exactly the
    /// two Figure 3 entry points.
    ///
    /// # Errors
    ///
    /// Returns an error on dimensionality mismatch or when the forced
    /// shared-memory mode cannot represent the input.
    pub fn run<T: Real>(
        &self,
        a: &CsrMatrix<T>,
        b: &CsrMatrix<T>,
        semiring: &Semiring<T>,
    ) -> Result<SemiringOutput<T>, KernelError> {
        if a.cols() != b.cols() {
            return Err(KernelError::ShapeMismatch {
                a_cols: a.cols(),
                b_cols: b.cols(),
            });
        }
        let a_dev = DeviceCsr::upload(&self.device, a);
        let b_dev = DeviceCsr::upload(&self.device, b);
        let (buf, launches) = hybrid_inner_terms(
            &self.device,
            a,
            b,
            &a_dev,
            &b_dev,
            semiring,
            self.forced_mode,
        )?;
        Ok(SemiringOutput {
            inner_terms: DenseMatrix::from_vec(a.rows(), b.rows(), buf.to_vec()),
            launches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::{apply_semiring_union, Monoid};

    fn sample() -> CsrMatrix<f64> {
        CsrMatrix::from_dense(
            3,
            5,
            &[
                1.0, 0.0, 2.0, 0.0, 3.0, //
                0.0, 1.0, 2.0, 0.0, 0.0, //
                4.0, 0.0, 0.0, 1.0, 0.0,
            ],
        )
    }

    #[test]
    fn custom_namm_runs_two_passes_and_matches_reference() {
        // Squared-difference NAMM: ⊗ = (a-b)², ⊕ = + ⇒ squared Euclidean.
        let sq = Semiring::namm(
            Monoid::new(|a: f64, b: f64| (a - b) * (a - b), 0.0),
            Monoid::plus(),
        );
        let x = sample();
        let out = SemiringRunner::new(Device::volta())
            .run(&x, &x, &sq)
            .expect("ok");
        assert_eq!(out.launches.len(), 2);
        for i in 0..3 {
            for j in 0..3 {
                let ai: Vec<_> = x.row(i).collect();
                let bj: Vec<_> = x.row(j).collect();
                let want = apply_semiring_union(&ai, &bj, &sq);
                assert!((out.inner_terms.get(i, j) - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn tropical_semiring_runs_single_pass() {
        let tropical = Semiring::<f64>::tropical();
        let x = sample();
        let out = SemiringRunner::new(Device::volta())
            .run(&x, &x, &tropical)
            .expect("ok");
        assert_eq!(out.launches.len(), 1);
        assert!(out.sim_seconds() > 0.0);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = CsrMatrix::<f32>::zeros(1, 3);
        let b = CsrMatrix::<f32>::zeros(1, 4);
        let err = SemiringRunner::new(Device::volta()).run(&a, &b, &Semiring::dot_product());
        assert!(matches!(err, Err(KernelError::ShapeMismatch { .. })));
    }
}
