//! Named conversion helpers between formats.
//!
//! The `From` impls on the format types are the canonical conversions;
//! the free functions here exist for call sites where turbofishing a
//! `From` is awkward (e.g. inside generic kernels) and to host the
//! round-trip property tests.

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::real::Real;

/// Expands a CSR matrix into COO (adds the explicit row-index array the
/// hybrid kernel's load balancing needs).
pub fn csr_to_coo<T: Real>(m: &CsrMatrix<T>) -> CooMatrix<T> {
    CooMatrix::from(m)
}

/// Compacts a row-major-sorted COO matrix back into CSR.
pub fn coo_to_csr<T: Real>(m: &CooMatrix<T>) -> CsrMatrix<T> {
    CsrMatrix::from(m)
}

/// Materializes the compressed-sparse-column form (the explicit transpose
/// copy a `csrgemm()`-style baseline performs).
pub fn csr_to_csc<T: Real>(m: &CsrMatrix<T>) -> CscMatrix<T> {
    CscMatrix::from(m)
}

/// Scatters a CSR matrix into a dense row-major matrix.
pub fn csr_to_dense<T: Real>(m: &CsrMatrix<T>) -> DenseMatrix<T> {
    DenseMatrix::from(m)
}

/// Compresses a dense matrix into CSR, dropping exact zeros.
pub fn dense_to_csr<T: Real>(m: &DenseMatrix<T>) -> CsrMatrix<T> {
    CsrMatrix::from_dense(m.rows(), m.cols(), m.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy producing an arbitrary CSR matrix with up to 12x12 shape
    /// and ~30% fill, values avoiding exact zero so dense round trips are
    /// lossless.
    fn arb_csr() -> impl Strategy<Value = CsrMatrix<f32>> {
        (1usize..12, 1usize..12)
            .prop_flat_map(|(rows, cols)| {
                let cells = rows * cols;
                (
                    Just(rows),
                    Just(cols),
                    proptest::collection::vec(
                        prop_oneof![
                            3 => Just(0.0f32),
                            1 => (1u32..1000).prop_map(|v| v as f32 / 100.0 + 0.01),
                        ],
                        cells,
                    ),
                )
            })
            .prop_map(|(rows, cols, data)| CsrMatrix::from_dense(rows, cols, &data))
    }

    proptest! {
        #[test]
        fn csr_coo_round_trip(m in arb_csr()) {
            prop_assert_eq!(coo_to_csr(&csr_to_coo(&m)), m);
        }

        #[test]
        fn csr_csc_round_trip(m in arb_csr()) {
            prop_assert_eq!(CsrMatrix::from(&csr_to_csc(&m)), m);
        }

        #[test]
        fn csr_dense_round_trip(m in arb_csr()) {
            prop_assert_eq!(dense_to_csr(&csr_to_dense(&m)), m);
        }

        #[test]
        fn transpose_round_trip(m in arb_csr()) {
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn nnz_preserved_by_all_conversions(m in arb_csr()) {
            prop_assert_eq!(csr_to_coo(&m).nnz(), m.nnz());
            prop_assert_eq!(csr_to_csc(&m).nnz(), m.nnz());
            prop_assert_eq!(m.transpose().nnz(), m.nnz());
        }

        #[test]
        fn coo_rows_are_sorted_row_major(m in arb_csr()) {
            let coo = csr_to_coo(&m);
            for w in coo.row_indices().windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }
    }
}
