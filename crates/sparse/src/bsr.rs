//! Block compressed sparse row matrices.
//!
//! §5.1 of the paper: "block compressed sparse formats have become
//! widely popular ... they can improve load balancing by grouping
//! nonzeros into fixed-sized tiles ... While we do hope to someday
//! support block-sparse formats, it is most often assumed that users
//! will be calling code that invokes our primitive with matrices in the
//! standard compressed sparse row (CSR) format and so a conversion would
//! be necessary."
//!
//! This module provides that future-work piece: the format, the CSR
//! round-trip conversion the paper says callers would need, and the
//! *fill-in* accounting that explains why the paper's skewed datasets
//! are a poor fit for blocks (a mostly-empty tile still stores
//! `B × B` values).

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::real::Real;
use crate::Idx;

/// A block compressed sparse row matrix with square `B × B` blocks
/// stored dense in row-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct BsrMatrix<T> {
    rows: usize,
    cols: usize,
    block: usize,
    /// Row pointers over block rows (`block_rows + 1` entries).
    indptr: Vec<usize>,
    /// Block-column index of each stored block.
    indices: Vec<Idx>,
    /// Dense `block × block` tiles, concatenated.
    values: Vec<T>,
}

impl<T: Real> BsrMatrix<T> {
    /// Converts a CSR matrix into BSR with `block`-sized tiles; any tile
    /// containing at least one nonzero is stored dense.
    ///
    /// # Panics
    ///
    /// Panics if `block` is zero.
    pub fn from_csr(m: &CsrMatrix<T>, block: usize) -> Self {
        assert!(block > 0, "block size must be positive");
        let block_rows = m.rows().div_ceil(block);
        let block_cols = m.cols().div_ceil(block);
        let mut indptr = vec![0usize; block_rows + 1];
        let mut indices: Vec<Idx> = Vec::new();
        let mut values: Vec<T> = Vec::new();

        for br in 0..block_rows {
            // Which block columns does this block row touch?
            let mut touched: Vec<Idx> = Vec::new();
            for r in (br * block)..((br + 1) * block).min(m.rows()) {
                for &c in m.row_indices(r) {
                    let bc = c / block as Idx;
                    if !touched.contains(&bc) {
                        touched.push(bc);
                    }
                }
            }
            touched.sort_unstable();
            // Materialize each touched tile.
            for &bc in &touched {
                let base = values.len();
                values.resize(base + block * block, T::ZERO);
                for r in (br * block)..((br + 1) * block).min(m.rows()) {
                    for (c, v) in m.row(r) {
                        if c / block as Idx == bc {
                            let lr = r - br * block;
                            let lc = (c - bc * block as Idx) as usize;
                            values[base + lr * block + lc] = v;
                        }
                    }
                }
                indices.push(bc);
            }
            indptr[br + 1] = indices.len();
            let _ = block_cols;
        }
        Self {
            rows: m.rows(),
            cols: m.cols(),
            block,
            indptr,
            indices,
            values,
        }
    }

    /// Expands back into CSR, dropping the explicit zeros of partially
    /// filled tiles.
    ///
    /// # Errors
    ///
    /// Currently infallible (the structure is valid by construction) but
    /// fallible for signature stability with the other converters.
    pub fn to_csr(&self) -> Result<CsrMatrix<T>, SparseError> {
        let mut b =
            crate::builder::CsrBuilder::with_capacity(self.rows, self.cols, self.values.len());
        for br in 0..self.indptr.len() - 1 {
            for slot in self.indptr[br]..self.indptr[br + 1] {
                let bc = self.indices[slot] as usize;
                let tile = &self.values
                    [slot * self.block * self.block..(slot + 1) * self.block * self.block];
                for lr in 0..self.block {
                    let r = br * self.block + lr;
                    if r >= self.rows {
                        break;
                    }
                    for lc in 0..self.block {
                        let c = bc * self.block + lc;
                        if c >= self.cols {
                            break;
                        }
                        let v = tile[lr * self.block + lc];
                        if v != T::ZERO {
                            b = b.push(r as Idx, c as Idx, v)?;
                        }
                    }
                }
            }
        }
        b.build()
    }

    /// Number of rows of the logical matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the logical matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Tile side length.
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// Number of stored tiles.
    pub fn num_blocks(&self) -> usize {
        self.indices.len()
    }

    /// Stored scalar values, including the explicit zeros of partial
    /// tiles.
    pub fn stored_values(&self) -> usize {
        self.values.len()
    }

    /// Logical nonzeros (excluding tile padding).
    pub fn nnz(&self) -> usize {
        self.values.iter().filter(|&&v| v != T::ZERO).count()
    }

    /// Fill-in ratio: stored scalars per logical nonzero (1.0 = perfect
    /// blocks, `B²` = worst case of one nonzero per tile). This is the
    /// quantity that decides whether block formats pay off on a dataset
    /// — the paper's skewed text corpora sit near the worst case.
    pub fn fill_in(&self) -> f64 {
        let nnz = self.nnz();
        if nnz == 0 {
            1.0
        } else {
            self.stored_values() as f64 / nnz as f64
        }
    }

    /// Bytes of device memory: block pointers + block indices + dense
    /// tiles.
    pub fn device_bytes(&self) -> usize {
        (self.indptr.len()) * 4
            + self.indices.len() * 4
            + self.values.len() * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> CsrMatrix<f32> {
        CsrMatrix::from_dense(
            4,
            6,
            &[
                1.0, 2.0, 0.0, 0.0, 0.0, 0.0, //
                3.0, 4.0, 0.0, 0.0, 0.0, 5.0, //
                0.0, 0.0, 0.0, 0.0, 0.0, 0.0, //
                0.0, 0.0, 0.0, 0.0, 6.0, 0.0,
            ],
        )
    }

    #[test]
    fn blocks_cover_touched_tiles_only() {
        let bsr = BsrMatrix::from_csr(&sample(), 2);
        // Tiles: (0,0) dense-ish, (0,2) one value, (1,2) one value.
        assert_eq!(bsr.num_blocks(), 3);
        assert_eq!(bsr.stored_values(), 12);
        assert_eq!(bsr.nnz(), 6);
        assert!((bsr.fill_in() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn round_trip_preserves_matrix() {
        let m = sample();
        for block in [1, 2, 3, 4, 7] {
            let back = BsrMatrix::from_csr(&m, block).to_csr().expect("valid");
            assert_eq!(back, m, "block size {block}");
        }
    }

    #[test]
    fn block_aligned_dense_data_has_no_fill_in() {
        // A fully dense 4x4 with block 2: 4 full tiles.
        let m = CsrMatrix::from_dense(4, 4, &[1.0f64; 16]);
        let bsr = BsrMatrix::from_csr(&m, 2);
        assert_eq!(bsr.num_blocks(), 4);
        assert!((bsr.fill_in() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scattered_nonzeros_hit_worst_case_fill_in() {
        // One nonzero per 4x4 tile: fill-in = 16.
        let m = CsrMatrix::from_triplets(8, 8, &[(0, 0, 1.0f32), (4, 4, 1.0), (0, 4, 1.0)])
            .expect("valid");
        let bsr = BsrMatrix::from_csr(&m, 4);
        assert_eq!(bsr.num_blocks(), 3);
        assert!((bsr.fill_in() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_converts_cleanly() {
        let m = CsrMatrix::<f64>::zeros(5, 5);
        let bsr = BsrMatrix::from_csr(&m, 2);
        assert_eq!(bsr.num_blocks(), 0);
        assert_eq!(bsr.fill_in(), 1.0);
        assert_eq!(bsr.to_csr().expect("valid"), m);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_is_rejected() {
        BsrMatrix::from_csr(&sample(), 0);
    }

    proptest! {
        #[test]
        fn csr_bsr_round_trip(
            rows in 1usize..10,
            cols in 1usize..10,
            block in 1usize..5,
            seed in 0u64..1000,
        ) {
            // Deterministic pseudo-random fill from the seed.
            let data: Vec<f32> = (0..rows * cols)
                .map(|i| {
                    let h = (i as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ seed;
                    if h.is_multiple_of(3) { ((h >> 8) % 100) as f32 / 10.0 + 0.1 } else { 0.0 }
                })
                .collect();
            let m = CsrMatrix::from_dense(rows, cols, &data);
            let bsr = BsrMatrix::from_csr(&m, block);
            prop_assert_eq!(bsr.to_csr().expect("valid"), m.clone());
            prop_assert_eq!(bsr.nnz(), m.nnz());
            prop_assert!(bsr.fill_in() >= 1.0 - 1e-12);
            prop_assert!(bsr.fill_in() <= (block * block) as f64 + 1e-12);
        }
    }
}
