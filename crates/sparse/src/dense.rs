//! Row-major dense matrices.

use crate::csr::CsrMatrix;
use crate::real::Real;

/// A row-major dense matrix.
///
/// Pairwise-distance outputs are dense by nature (§4.3: the cuSPARSE
/// output "still needs to be converted to a dense format"), so kernels and
/// baselines alike produce a `DenseMatrix`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Real> DenseMatrix<T> {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "dense data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Value at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> T {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the value at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning the flat data vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Applies `f` to every element in place (the element-wise primitive
    /// expansion functions run through, §3.4).
    pub fn map_inplace<F: FnMut(T) -> T>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Largest absolute difference to another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// Bytes of device memory the dense matrix occupies.
    pub fn device_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }
}

impl<T: Real> From<&CsrMatrix<T>> for DenseMatrix<T> {
    fn from(csr: &CsrMatrix<T>) -> Self {
        let mut d = DenseMatrix::zeros(csr.rows(), csr.cols());
        for (r, c, v) in csr.iter() {
            d.set(r as usize, c as usize, v);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_then_set_get() {
        let mut m = DenseMatrix::<f32>::zeros(2, 3);
        assert_eq!(m.get(1, 2), 0.0);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn get_out_of_bounds_panics() {
        DenseMatrix::<f32>::zeros(1, 1).get(0, 1);
    }

    #[test]
    fn from_csr_places_every_nonzero() {
        let csr =
            CsrMatrix::<f64>::from_triplets(2, 2, &[(0, 1, 3.0), (1, 0, -1.0)]).expect("valid");
        let d = DenseMatrix::from(&csr);
        assert_eq!(d.as_slice(), &[0.0, 3.0, -1.0, 0.0]);
    }

    #[test]
    fn map_inplace_applies_elementwise() {
        let mut m = DenseMatrix::from_vec(1, 3, vec![1.0f32, 2.0, 3.0]);
        m.map_inplace(|v| v * v);
        assert_eq!(m.as_slice(), &[1.0, 4.0, 9.0]);
    }

    #[test]
    fn max_abs_diff_finds_worst_cell() {
        let a = DenseMatrix::from_vec(1, 3, vec![1.0f32, 2.0, 3.0]);
        let b = DenseMatrix::from_vec(1, 3, vec![1.0f32, 2.5, 2.0]);
        assert!((a.max_abs_diff(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn device_bytes_is_rows_cols_scalar() {
        let m = DenseMatrix::<f32>::zeros(10, 20);
        assert_eq!(m.device_bytes(), 800);
    }
}
