//! Error type shared by all sparse-matrix constructors and conversions.

use std::error::Error;
use std::fmt;

/// Error produced when constructing or validating a sparse matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// A column index was out of bounds for the matrix shape.
    ColumnOutOfBounds {
        /// Offending column index.
        col: u32,
        /// Number of columns in the matrix.
        cols: usize,
    },
    /// A row index was out of bounds for the matrix shape.
    RowOutOfBounds {
        /// Offending row index.
        row: u32,
        /// Number of rows in the matrix.
        rows: usize,
    },
    /// The row-pointer array is malformed (wrong length, not monotone, or
    /// its final entry disagrees with the index/value array length).
    InvalidIndptr(String),
    /// The `indices` and `values` arrays have different lengths.
    LengthMismatch {
        /// Length of the index array.
        indices: usize,
        /// Length of the value array.
        values: usize,
    },
    /// Column indices within a row are not strictly increasing.
    UnsortedRow {
        /// Row in which the violation occurred.
        row: usize,
    },
    /// A duplicate (row, col) coordinate was supplied where duplicates are
    /// not allowed.
    DuplicateEntry {
        /// Row of the duplicate.
        row: u32,
        /// Column of the duplicate.
        col: u32,
    },
    /// Two matrices have incompatible shapes for the requested operation.
    ShapeMismatch(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::ColumnOutOfBounds { col, cols } => {
                write!(f, "column index {col} out of bounds for {cols} columns")
            }
            SparseError::RowOutOfBounds { row, rows } => {
                write!(f, "row index {row} out of bounds for {rows} rows")
            }
            SparseError::InvalidIndptr(msg) => write!(f, "invalid indptr: {msg}"),
            SparseError::LengthMismatch { indices, values } => write!(
                f,
                "indices length {indices} does not match values length {values}"
            ),
            SparseError::UnsortedRow { row } => {
                write!(f, "column indices in row {row} are not strictly increasing")
            }
            SparseError::DuplicateEntry { row, col } => {
                write!(f, "duplicate entry at ({row}, {col})")
            }
            SparseError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
        }
    }
}

impl Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = SparseError::ColumnOutOfBounds { col: 7, cols: 3 };
        assert_eq!(e.to_string(), "column index 7 out of bounds for 3 columns");
        let e = SparseError::LengthMismatch {
            indices: 2,
            values: 3,
        };
        assert!(e.to_string().contains("does not match"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SparseError>();
    }
}
