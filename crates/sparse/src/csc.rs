//! Compressed sparse column matrices.

use crate::csr::CsrMatrix;
use crate::real::Real;
use crate::Idx;

/// A compressed-sparse-column matrix.
///
/// Produced by the cuSPARSE-like baseline when it materializes the explicit
/// transpose of `B` that `csrgemm()` requires — the allocation the paper
/// criticizes: "the explicit transposition of B ... requires a full copy of
/// B, since no elements can be shared between the original and transposed
/// versions in the CSR data format."
///
/// Internally a CSC of `M` is stored as the CSR of `Mᵀ`, which makes the
/// equivalence (and the memory cost) explicit.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix<T> {
    /// CSR representation of the transpose.
    t: CsrMatrix<T>,
}

impl<T: Real> CscMatrix<T> {
    /// Number of rows of the logical (un-transposed) matrix.
    #[inline]
    pub fn rows(&self) -> usize {
        self.t.cols()
    }

    /// Number of columns of the logical matrix.
    #[inline]
    pub fn cols(&self) -> usize {
        self.t.rows()
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.t.nnz()
    }

    /// Column-pointer array (length `cols + 1`).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        self.t.indptr()
    }

    /// Row indices, concatenated column by column.
    #[inline]
    pub fn indices(&self) -> &[Idx] {
        self.t.indices()
    }

    /// Stored values, parallel to [`Self::indices`].
    #[inline]
    pub fn values(&self) -> &[T] {
        self.t.values()
    }

    /// Row indices of the nonzeros in column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    #[inline]
    pub fn col_indices(&self, j: usize) -> &[Idx] {
        self.t.row_indices(j)
    }

    /// Values of the nonzeros in column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    #[inline]
    pub fn col_values(&self, j: usize) -> &[T] {
        self.t.row_values(j)
    }

    /// Value at `(row, col)`, `T::ZERO` when not stored.
    ///
    /// # Panics
    ///
    /// Panics if `col >= cols`.
    pub fn get(&self, row: Idx, col: usize) -> T {
        self.t.get(col, row)
    }

    /// Bytes of device memory this copy occupies; by construction equal to
    /// the transposed CSR's footprint.
    pub fn device_bytes(&self) -> usize {
        self.t.device_bytes()
    }
}

impl<T: Real> From<&CsrMatrix<T>> for CscMatrix<T> {
    fn from(csr: &CsrMatrix<T>) -> Self {
        Self { t: csr.transpose() }
    }
}

impl<T: Real> From<&CscMatrix<T>> for CsrMatrix<T> {
    fn from(csc: &CscMatrix<T>) -> Self {
        csc.t.transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix<f32> {
        CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (1, 2, 4.0)])
            .expect("valid")
    }

    #[test]
    fn csc_views_columns() {
        let csc = CscMatrix::from(&sample());
        assert_eq!(csc.rows(), 2);
        assert_eq!(csc.cols(), 3);
        assert_eq!(csc.col_indices(2), &[0, 1]);
        assert_eq!(csc.col_values(2), &[2.0, 4.0]);
        assert_eq!(csc.col_indices(1), &[1]);
    }

    #[test]
    fn get_agrees_with_csr() {
        let csr = sample();
        let csc = CscMatrix::from(&csr);
        for r in 0..2u32 {
            for c in 0..3usize {
                assert_eq!(csc.get(r, c), csr.get(r as usize, c as Idx));
            }
        }
    }

    #[test]
    fn round_trip_preserves_matrix() {
        let csr = sample();
        let back = CsrMatrix::from(&CscMatrix::from(&csr));
        assert_eq!(csr, back);
    }

    #[test]
    fn csc_is_a_full_copy() {
        // The paper's point: the transpose shares nothing with the source.
        let csr = sample();
        let csc = CscMatrix::from(&csr);
        assert_eq!(csc.nnz(), csr.nnz());
        assert!(csc.device_bytes() > 0);
    }
}
