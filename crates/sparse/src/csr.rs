//! Compressed sparse row matrices.

use crate::error::SparseError;
use crate::real::Real;
use crate::Idx;

/// A compressed-sparse-row matrix.
///
/// Rows are stored contiguously: row `i` occupies
/// `indices[indptr[i]..indptr[i+1]]` / `values[indptr[i]..indptr[i+1]]`.
/// Column indices are strictly increasing within each row — the invariant
/// both the paper's "iterating sorted nonzeros" kernel (Alg 2) and the
/// segmented reduction of the hybrid kernel (Alg 3) rely on.
///
/// # Example
///
/// ```
/// use sparse::CsrMatrix;
/// let m = CsrMatrix::<f32>::from_triplets(2, 4, &[(0, 1, 2.0), (1, 0, 1.0), (1, 3, 4.0)])?;
/// assert_eq!(m.row(1).collect::<Vec<_>>(), vec![(0, 1.0), (3, 4.0)]);
/// # Ok::<(), sparse::SparseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T> {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<Idx>,
    values: Vec<T>,
}

impl<T: Real> CsrMatrix<T> {
    /// Creates a CSR matrix from raw parts, validating every invariant.
    ///
    /// # Errors
    ///
    /// Returns an error when `indptr` is not a monotone array of length
    /// `rows + 1` ending at `indices.len()`, when `indices` and `values`
    /// disagree in length, when a column index exceeds `cols`, or when a
    /// row's column indices are not strictly increasing.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<Idx>,
        values: Vec<T>,
    ) -> Result<Self, SparseError> {
        if indptr.len() != rows + 1 {
            return Err(SparseError::InvalidIndptr(format!(
                "expected length {} got {}",
                rows + 1,
                indptr.len()
            )));
        }
        if indices.len() != values.len() {
            return Err(SparseError::LengthMismatch {
                indices: indices.len(),
                values: values.len(),
            });
        }
        if indptr[0] != 0 {
            return Err(SparseError::InvalidIndptr("must start at 0".into()));
        }
        if *indptr.last().expect("non-empty") != indices.len() {
            return Err(SparseError::InvalidIndptr(format!(
                "last entry {} does not equal nnz {}",
                indptr.last().expect("non-empty"),
                indices.len()
            )));
        }
        for w in indptr.windows(2) {
            if w[1] < w[0] {
                return Err(SparseError::InvalidIndptr("not monotone".into()));
            }
        }
        for (row, w) in indptr.windows(2).enumerate() {
            let row_cols = &indices[w[0]..w[1]];
            for pair in row_cols.windows(2) {
                if pair[1] <= pair[0] {
                    return Err(SparseError::UnsortedRow { row });
                }
            }
            if let Some(&last) = row_cols.last() {
                if last as usize >= cols {
                    return Err(SparseError::ColumnOutOfBounds { col: last, cols });
                }
            }
        }
        Ok(Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Creates a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Triplets may arrive in any order; duplicates are summed, and
    /// explicit zeros are dropped, matching SciPy's `coo_matrix.tocsr()`
    /// semantics that the paper's Python callers rely on.
    ///
    /// # Errors
    ///
    /// Returns an error if any coordinate is out of bounds.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(Idx, Idx, T)],
    ) -> Result<Self, SparseError> {
        crate::builder::CsrBuilder::with_capacity(rows, cols, triplets.len())
            .extend_triplets(triplets.iter().copied())?
            .build()
    }

    /// Creates an all-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a CSR matrix from a row-major dense slice, dropping zeros.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_dense(rows: usize, cols: usize, data: &[T]) -> Self {
        assert_eq!(data.len(), rows * cols, "dense data length mismatch");
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for r in 0..rows {
            for c in 0..cols {
                let v = data[r * cols + c];
                if v != T::ZERO {
                    indices.push(c as Idx);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of explicitly stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Fraction of cells that are stored (`nnz / (rows*cols)`), 0 for an
    /// empty shape.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// Row-pointer array of length `rows + 1`.
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column indices, concatenated row by row.
    #[inline]
    pub fn indices(&self) -> &[Idx] {
        &self.indices
    }

    /// Stored values, parallel to [`Self::indices`].
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable access to stored values (structure stays fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Degree (number of nonzeros) of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_degree(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Column indices of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_indices(&self, i: usize) -> &[Idx] {
        &self.indices[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Values of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_values(&self, i: usize) -> &[T] {
        &self.values[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Iterator over the `(col, value)` pairs of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (Idx, T)> + '_ {
        self.row_indices(i)
            .iter()
            .copied()
            .zip(self.row_values(i).iter().copied())
    }

    /// Iterator over all `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Idx, Idx, T)> + '_ {
        (0..self.rows).flat_map(move |r| self.row(r).map(move |(c, v)| (r as Idx, c, v)))
    }

    /// Value at `(row, col)`; `T::ZERO` when not stored.
    ///
    /// Performs a binary search within the row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn get(&self, row: usize, col: Idx) -> T {
        match self.row_indices(row).binary_search(&col) {
            Ok(pos) => self.row_values(row)[pos],
            Err(_) => T::ZERO,
        }
    }

    /// Returns a new matrix containing rows `range` of `self`.
    ///
    /// Used by the batching layer so the dense pairwise-distance output can
    /// be produced in slabs that fit device memory (§4 "allow scaling to
    /// datasets where the dense pairwise distance matrix may not otherwise
    /// fit in the memory of the GPU").
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice_rows(&self, range: std::ops::Range<usize>) -> Self {
        assert!(range.end <= self.rows, "row range out of bounds");
        let start = self.indptr[range.start];
        let end = self.indptr[range.end];
        let indptr = self.indptr[range.start..=range.end]
            .iter()
            .map(|p| p - start)
            .collect();
        Self {
            rows: range.len(),
            cols: self.cols,
            indptr,
            indices: self.indices[start..end].to_vec(),
            values: self.values[start..end].to_vec(),
        }
    }

    /// Maximum row degree, 0 for an empty matrix.
    pub fn max_degree(&self) -> usize {
        (0..self.rows)
            .map(|i| self.row_degree(i))
            .max()
            .unwrap_or(0)
    }

    /// Transposes the matrix, producing a new CSR (a full copy — the cost
    /// the paper calls out for `csrgemm()`-style baselines: "the explicit
    /// transposition of B ... requires a full copy").
    pub fn transpose(&self) -> Self {
        // Counting sort by column.
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut indices = vec![0 as Idx; self.nnz()];
        let mut values = vec![T::ZERO; self.nnz()];
        let mut next = counts;
        for (r, c, v) in self.iter() {
            let slot = next[c as usize];
            indices[slot] = r;
            values[slot] = v;
            next[c as usize] += 1;
        }
        Self {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Bytes of device memory a faithful copy of this matrix occupies:
    /// `indptr` as 4-byte ints, plus `nnz` 4-byte indices and `nnz`
    /// values. Used by the §4.3 memory-footprint harness.
    pub fn device_bytes(&self) -> usize {
        (self.rows + 1) * 4 + self.nnz() * (4 + std::mem::size_of::<T>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix<f32> {
        CsrMatrix::from_parts(
            3,
            4,
            vec![0, 2, 2, 4],
            vec![0, 2, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .expect("valid")
    }

    #[test]
    fn from_parts_accepts_valid_input() {
        let m = sample();
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_degree(1), 0);
    }

    #[test]
    fn from_parts_rejects_bad_indptr_length() {
        let err = CsrMatrix::<f32>::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]);
        assert!(matches!(err, Err(SparseError::InvalidIndptr(_))));
    }

    #[test]
    fn from_parts_rejects_nonzero_start() {
        let err = CsrMatrix::<f32>::from_parts(1, 2, vec![1, 1], vec![], vec![]);
        assert!(matches!(err, Err(SparseError::InvalidIndptr(_))));
    }

    #[test]
    fn from_parts_rejects_non_monotone_indptr() {
        let err = CsrMatrix::<f32>::from_parts(2, 3, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]);
        assert!(matches!(err, Err(SparseError::InvalidIndptr(_))));
    }

    #[test]
    fn from_parts_rejects_length_mismatch() {
        let err = CsrMatrix::<f32>::from_parts(1, 3, vec![0, 2], vec![0, 1], vec![1.0]);
        assert!(matches!(err, Err(SparseError::LengthMismatch { .. })));
    }

    #[test]
    fn from_parts_rejects_column_out_of_bounds() {
        let err = CsrMatrix::<f32>::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
        assert!(matches!(err, Err(SparseError::ColumnOutOfBounds { .. })));
    }

    #[test]
    fn from_parts_rejects_unsorted_row() {
        let err = CsrMatrix::<f32>::from_parts(1, 4, vec![0, 2], vec![2, 1], vec![1.0, 2.0]);
        assert_eq!(err, Err(SparseError::UnsortedRow { row: 0 }));
    }

    #[test]
    fn from_parts_rejects_duplicate_column_in_row() {
        let err = CsrMatrix::<f32>::from_parts(1, 4, vec![0, 2], vec![1, 1], vec![1.0, 2.0]);
        assert_eq!(err, Err(SparseError::UnsortedRow { row: 0 }));
    }

    #[test]
    fn dense_round_trip() {
        let data = [0.0, 1.0, 0.0, 2.0, 0.0, 3.0];
        let m = CsrMatrix::<f64>::from_dense(2, 3, &data);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.get(1, 2), 3.0);
    }

    #[test]
    fn triplets_sum_duplicates_and_drop_zeros() {
        let m = CsrMatrix::<f32>::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 0.0)])
            .expect("valid");
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 3.0);
    }

    #[test]
    fn slice_rows_preserves_content() {
        let m = sample();
        let s = m.slice_rows(1..3);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.get(1, 1), 3.0);
        assert_eq!(s.get(1, 3), 4.0);
        assert_eq!(s.row_degree(0), 0);
    }

    #[test]
    fn transpose_is_involution() {
        let m = sample();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (4, 3));
        for (r, c, v) in m.iter() {
            assert_eq!(t.get(c as usize, r), v);
        }
    }

    #[test]
    fn zeros_has_no_storage() {
        let z = CsrMatrix::<f32>::zeros(5, 7);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.density(), 0.0);
        assert_eq!(z.max_degree(), 0);
    }

    #[test]
    fn density_and_device_bytes() {
        let m = sample();
        assert!((m.density() - 4.0 / 12.0).abs() < 1e-12);
        // indptr: 4 entries * 4B; nnz=4 * (4B idx + 4B f32)
        assert_eq!(m.device_bytes(), 4 * 4 + 4 * 8);
    }

    #[test]
    fn iter_visits_in_row_major_order() {
        let m = sample();
        let trips: Vec<_> = m.iter().collect();
        assert_eq!(
            trips,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 1, 3.0), (2, 3, 4.0)]
        );
    }
}
