//! Sparse and dense matrix substrate for the semiring distance reproduction.
//!
//! This crate provides the storage formats the paper's kernels operate on:
//!
//! * [`CsrMatrix`] — compressed sparse row, the input format the paper
//!   assumes callers use ("it is most often assumed that users will be
//!   calling code that invokes our primitive with matrices in the standard
//!   compressed sparse row (CSR) format").
//! * [`CooMatrix`] — coordinate format; the hybrid kernel of §3.3 walks the
//!   `B` operand through an explicit COO row-index array for load balance.
//! * [`CscMatrix`] — compressed sparse column; used by the cuSPARSE-like
//!   baseline to materialize the explicit transpose of `B` that
//!   `csrgemm()` requires.
//! * [`DenseMatrix`] — row-major dense output for pairwise distance
//!   matrices and reference computations.
//!
//! All formats are generic over a [`Real`] scalar (`f32` in the paper's
//! kernels, `f64` for high-precision references) and use `u32` column
//! indices, matching the 32-bit index types GPU kernels use in practice.
//!
//! # Example
//!
//! ```
//! use sparse::{CsrMatrix, CooMatrix};
//!
//! // 2x3 matrix [[1, 0, 2], [0, 3, 0]]
//! let csr = CsrMatrix::<f32>::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)])
//!     .expect("valid triplets");
//! assert_eq!(csr.nnz(), 3);
//! let coo = CooMatrix::from(&csr);
//! assert_eq!(coo.row_indices(), &[0, 0, 1]);
//! ```

#![deny(missing_docs)]

pub mod batch;
pub mod bsr;
pub mod builder;
pub mod convert;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod error;
pub mod io;
pub mod norms;
pub mod real;
pub mod stats;

pub use batch::RowBatches;
pub use bsr::BsrMatrix;
pub use builder::CsrBuilder;
pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::SparseError;
pub use io::{read_matrix_market, write_matrix_market, MmError};
pub use norms::{row_norms, NormKind, RowNorms};
pub use real::Real;
pub use stats::{degree_cdf, DegreeStats};

/// Column/row index type used by all sparse formats.
///
/// 32-bit indices match what GPU sparse kernels use in practice and keep
/// the memory-footprint accounting of §4.3 honest.
pub type Idx = u32;
