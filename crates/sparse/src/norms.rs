//! Row-wise norms over CSR matrices (§3.4).
//!
//! Distances in the *expanded* family combine a dot-product pass with one
//! or more vectors of row norms (Table 1's "Norm" column). On the GPU the
//! paper computes these "using a row-wise reduction ... each row can be
//! mapped to a single block or warp"; here the host-side reference lives in
//! this module and the simulated-kernel version in `kernels::norms`.

use crate::csr::CsrMatrix;
use crate::real::Real;

/// Which row norm to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NormKind {
    /// Number of nonzeros in the row (`L0`, used by Dice and Jaccard).
    L0,
    /// Sum of absolute values (`L1`, used by Correlation's mean terms).
    L1,
    /// Euclidean norm (`L2`).
    L2,
    /// Squared Euclidean norm (`‖x‖²`, used by Euclidean / Cosine
    /// expansions without a redundant square root).
    L2Squared,
    /// Plain sum of values (used by Correlation / Dice where the formula
    /// sums signed values).
    Sum,
}

/// Per-row norms of a matrix, tagged with the kind that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct RowNorms<T> {
    kind: NormKind,
    values: Vec<T>,
}

impl<T: Real> RowNorms<T> {
    /// The norm kind these values hold.
    pub fn kind(&self) -> NormKind {
        self.kind
    }

    /// Norm of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> T {
        self.values[i]
    }

    /// All norms, one per row.
    pub fn as_slice(&self) -> &[T] {
        &self.values
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the matrix had no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Computes the requested row norm for every row of `m`.
///
/// # Example
///
/// ```
/// use sparse::{CsrMatrix, NormKind, row_norms};
/// let m = CsrMatrix::<f64>::from_triplets(1, 3, &[(0, 0, 3.0), (0, 2, -4.0)])?;
/// assert_eq!(row_norms(&m, NormKind::L2).get(0), 5.0);
/// assert_eq!(row_norms(&m, NormKind::L1).get(0), 7.0);
/// assert_eq!(row_norms(&m, NormKind::L0).get(0), 2.0);
/// # Ok::<(), sparse::SparseError>(())
/// ```
pub fn row_norms<T: Real>(m: &CsrMatrix<T>, kind: NormKind) -> RowNorms<T> {
    let values = (0..m.rows())
        .map(|i| {
            let vals = m.row_values(i);
            match kind {
                NormKind::L0 => T::from_usize(vals.len()),
                NormKind::L1 => vals.iter().map(|v| v.abs()).sum(),
                NormKind::L2 => vals.iter().map(|&v| v * v).sum::<T>().sqrt(),
                NormKind::L2Squared => vals.iter().map(|&v| v * v).sum(),
                NormKind::Sum => vals.iter().copied().sum(),
            }
        })
        .collect();
    RowNorms { kind, values }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix<f64> {
        CsrMatrix::from_triplets(3, 4, &[(0, 0, 1.0), (0, 1, -2.0), (1, 3, 3.0), (2, 2, 0.5)])
            .expect("valid")
    }

    #[test]
    fn l0_counts_nonzeros() {
        let n = row_norms(&sample(), NormKind::L0);
        assert_eq!(n.as_slice(), &[2.0, 1.0, 1.0]);
        assert_eq!(n.kind(), NormKind::L0);
    }

    #[test]
    fn l1_sums_absolute_values() {
        let n = row_norms(&sample(), NormKind::L1);
        assert_eq!(n.as_slice(), &[3.0, 3.0, 0.5]);
    }

    #[test]
    fn l2_is_sqrt_of_l2_squared() {
        let m = sample();
        let l2 = row_norms(&m, NormKind::L2);
        let l2sq = row_norms(&m, NormKind::L2Squared);
        for i in 0..m.rows() {
            assert!((l2.get(i) * l2.get(i) - l2sq.get(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn sum_keeps_sign() {
        let n = row_norms(&sample(), NormKind::Sum);
        assert_eq!(n.get(0), -1.0);
    }

    #[test]
    fn empty_rows_have_zero_norms() {
        let m = CsrMatrix::<f32>::zeros(2, 2);
        for kind in [
            NormKind::L0,
            NormKind::L1,
            NormKind::L2,
            NormKind::L2Squared,
            NormKind::Sum,
        ] {
            let n = row_norms(&m, kind);
            assert_eq!(n.as_slice(), &[0.0, 0.0]);
        }
    }
}
