//! Matrix Market (`.mtx`) input/output.
//!
//! The coordinate real/integer/pattern general format — the lingua
//! franca sparse datasets (including the SuiteSparse collections the
//! sparse-kernel literature benchmarks on) ship in. Supports reading
//! into [`CsrMatrix`] and writing back, so the CLI and examples can
//! operate on real files.

use crate::builder::CsrBuilder;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::real::Real;
use std::io::{BufRead, BufReader, Read, Write};

/// Error reading a Matrix Market stream.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream is not valid Matrix Market.
    Parse(String),
    /// The triplets violate the declared shape.
    Sparse(SparseError),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "i/o error: {e}"),
            MmError::Parse(msg) => write!(f, "invalid matrix market data: {msg}"),
            MmError::Sparse(e) => write!(f, "inconsistent matrix: {e}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

impl From<SparseError> for MmError {
    fn from(e: SparseError) -> Self {
        MmError::Sparse(e)
    }
}

/// Reads a Matrix Market *coordinate* stream into a CSR matrix.
///
/// Supported header variants: `real`, `integer` or `pattern` fields
/// (pattern entries get value 1), `general` or `symmetric` symmetry
/// (symmetric streams are expanded, with diagonal entries emitted once).
///
/// # Errors
///
/// Returns [`MmError`] on malformed headers, non-numeric entries,
/// out-of-range coordinates, or I/O failure.
pub fn read_matrix_market<T: Real, R: Read>(reader: R) -> Result<CsrMatrix<T>, MmError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| MmError::Parse("empty stream".into()))??;
    let h: Vec<String> = header.split_whitespace().map(str::to_lowercase).collect();
    if h.len() < 5 || h[0] != "%%matrixmarket" || h[1] != "matrix" {
        return Err(MmError::Parse(format!("unrecognized header: {header}")));
    }
    if h[2] != "coordinate" {
        return Err(MmError::Parse(format!(
            "only coordinate format is supported, got {}",
            h[2]
        )));
    }
    let pattern = match h[3].as_str() {
        "real" | "integer" => false,
        "pattern" => true,
        other => {
            return Err(MmError::Parse(format!("unsupported field type {other}")));
        }
    };
    let symmetric = match h[4].as_str() {
        "general" => false,
        "symmetric" => true,
        other => {
            return Err(MmError::Parse(format!("unsupported symmetry {other}")));
        }
    };

    // Skip comments, read the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(line);
        break;
    }
    let size_line = size_line.ok_or_else(|| MmError::Parse("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse()
                .map_err(|_| MmError::Parse(format!("bad size token {t}")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(MmError::Parse(format!("bad size line: {size_line}")));
    }
    let (rows, cols, nnz) = (dims[0], dims[1], dims[2]);

    let mut builder =
        CsrBuilder::<T>::with_capacity(rows, cols, if symmetric { nnz * 2 } else { nnz });
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let toks: Vec<&str> = t.split_whitespace().collect();
        let want = if pattern { 2 } else { 3 };
        if toks.len() < want {
            return Err(MmError::Parse(format!("short entry line: {t}")));
        }
        let r: usize = toks[0]
            .parse()
            .map_err(|_| MmError::Parse(format!("bad row index {}", toks[0])))?;
        let c: usize = toks[1]
            .parse()
            .map_err(|_| MmError::Parse(format!("bad column index {}", toks[1])))?;
        if r == 0 || c == 0 {
            return Err(MmError::Parse("matrix market indices are 1-based".into()));
        }
        let v = if pattern {
            T::ONE
        } else {
            T::from_f64(
                toks[2]
                    .parse::<f64>()
                    .map_err(|_| MmError::Parse(format!("bad value {}", toks[2])))?,
            )
        };
        builder = builder.push((r - 1) as u32, (c - 1) as u32, v)?;
        if symmetric && r != c {
            builder = builder.push((c - 1) as u32, (r - 1) as u32, v)?;
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(MmError::Parse(format!(
            "size line declared {nnz} entries but the stream held {seen}"
        )));
    }
    Ok(builder.build()?)
}

/// Writes a CSR matrix as Matrix Market `coordinate real general`.
///
/// # Errors
///
/// Returns the underlying I/O error on write failure.
pub fn write_matrix_market<T: Real, W: Write>(
    m: &CsrMatrix<T>,
    mut writer: W,
) -> std::io::Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% written by sparse-dist")?;
    writeln!(writer, "{} {} {}", m.rows(), m.cols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(writer, "{} {} {}", r + 1, c + 1, v.to_f64())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "%%MatrixMarket matrix coordinate real general\n\
        % a comment\n\
        3 4 4\n\
        1 1 1.5\n\
        1 3 -2\n\
        2 4 3.25\n\
        3 2 7\n";

    #[test]
    fn reads_general_real() {
        let m: CsrMatrix<f64> = read_matrix_market(SAMPLE.as_bytes()).expect("valid");
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(0, 2), -2.0);
        assert_eq!(m.get(2, 1), 7.0);
    }

    #[test]
    fn round_trips_through_write() {
        let m: CsrMatrix<f64> = read_matrix_market(SAMPLE.as_bytes()).expect("valid");
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).expect("write ok");
        let back: CsrMatrix<f64> = read_matrix_market(&buf[..]).expect("valid");
        assert_eq!(back, m);
    }

    #[test]
    fn reads_pattern_matrices_as_ones() {
        let data = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n";
        let m: CsrMatrix<f32> = read_matrix_market(data.as_bytes()).expect("valid");
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn expands_symmetric_matrices() {
        let data = "%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n1 1 5\n2 1 1\n3 2 2\n";
        let m: CsrMatrix<f64> = read_matrix_market(data.as_bytes()).expect("valid");
        assert_eq!(m.nnz(), 5); // diagonal once, off-diagonals mirrored
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(1, 2), 2.0);
    }

    #[test]
    fn rejects_malformed_headers_and_counts() {
        assert!(read_matrix_market::<f32, _>("garbage\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market::<f32, _>(
            "%%MatrixMarket matrix array real general\n1 1 1\n1\n".as_bytes()
        )
        .is_err());
        // Declared 2 entries, provided 1.
        let bad = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(matches!(
            read_matrix_market::<f32, _>(bad.as_bytes()),
            Err(MmError::Parse(_))
        ));
        // 0-based index.
        let bad = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market::<f32, _>(bad.as_bytes()).is_err());
        // Out-of-range index surfaces the sparse error.
        let bad = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(matches!(
            read_matrix_market::<f32, _>(bad.as_bytes()),
            Err(MmError::Sparse(_))
        ));
    }

    #[test]
    fn duplicate_entries_sum() {
        let data = "%%MatrixMarket matrix coordinate real general\n1 1 2\n1 1 1.0\n1 1 2.0\n";
        let m: CsrMatrix<f64> = read_matrix_market(data.as_bytes()).expect("valid");
        assert_eq!(m.get(0, 0), 3.0);
    }
}
