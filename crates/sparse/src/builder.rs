//! Incremental construction of CSR matrices from unordered triplets.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::real::Real;
use crate::Idx;

/// Builder that accumulates `(row, col, value)` triplets in any order and
/// produces a canonical [`CsrMatrix`] (rows sorted, columns strictly
/// increasing within a row, duplicates summed, explicit zeros dropped).
///
/// # Example
///
/// ```
/// use sparse::CsrBuilder;
/// let m = CsrBuilder::<f32>::new(2, 3)
///     .push(1, 2, 4.0)?
///     .push(0, 0, 1.0)?
///     .push(1, 2, -4.0)? // cancels to zero and is dropped
///     .build()?;
/// assert_eq!(m.nnz(), 1);
/// # Ok::<(), sparse::SparseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CsrBuilder<T> {
    rows: usize,
    cols: usize,
    triplets: Vec<(Idx, Idx, T)>,
}

impl<T: Real> CsrBuilder<T> {
    /// Creates a builder for a `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self::with_capacity(rows, cols, 0)
    }

    /// Creates a builder with preallocated space for `cap` triplets.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        Self {
            rows,
            cols,
            triplets: Vec::with_capacity(cap),
        }
    }

    /// Adds one triplet.
    ///
    /// # Errors
    ///
    /// Returns an error if the coordinate is out of bounds for the shape
    /// given at construction.
    pub fn push(mut self, row: Idx, col: Idx, value: T) -> Result<Self, SparseError> {
        if row as usize >= self.rows {
            return Err(SparseError::RowOutOfBounds {
                row,
                rows: self.rows,
            });
        }
        if col as usize >= self.cols {
            return Err(SparseError::ColumnOutOfBounds {
                col,
                cols: self.cols,
            });
        }
        self.triplets.push((row, col, value));
        Ok(self)
    }

    /// Adds every triplet from an iterator.
    ///
    /// # Errors
    ///
    /// Returns the first out-of-bounds error encountered; triplets before
    /// the failure are retained.
    pub fn extend_triplets<I>(mut self, iter: I) -> Result<Self, SparseError>
    where
        I: IntoIterator<Item = (Idx, Idx, T)>,
    {
        for (r, c, v) in iter {
            self = self.push(r, c, v)?;
        }
        Ok(self)
    }

    /// Number of triplets currently buffered (before dedup).
    pub fn len(&self) -> usize {
        self.triplets.len()
    }

    /// True when no triplets are buffered.
    pub fn is_empty(&self) -> bool {
        self.triplets.is_empty()
    }

    /// Finalizes the builder into a canonical CSR matrix.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice (bounds were checked at `push`
    /// time) but kept fallible so the signature survives future stricter
    /// validation.
    pub fn build(mut self) -> Result<CsrMatrix<T>, SparseError> {
        self.triplets.sort_by_key(|t| (t.0, t.1));

        let mut indptr = vec![0usize; self.rows + 1];
        let mut indices: Vec<Idx> = Vec::with_capacity(self.triplets.len());
        let mut values: Vec<T> = Vec::with_capacity(self.triplets.len());

        let mut i = 0;
        while i < self.triplets.len() {
            let (r, c, mut v) = self.triplets[i];
            let mut j = i + 1;
            while j < self.triplets.len() && self.triplets[j].0 == r && self.triplets[j].1 == c {
                v += self.triplets[j].2;
                j += 1;
            }
            if v != T::ZERO {
                indices.push(c);
                values.push(v);
                indptr[r as usize + 1] += 1;
            }
            i = j;
        }
        for r in 0..self.rows {
            indptr[r + 1] += indptr[r];
        }
        CsrMatrix::from_parts(self.rows, self.cols, indptr, indices, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unordered_triplets_become_canonical() {
        let m = CsrBuilder::<f32>::new(3, 3)
            .push(2, 1, 1.0)
            .and_then(|b| b.push(0, 2, 2.0))
            .and_then(|b| b.push(0, 0, 3.0))
            .and_then(|b| b.build())
            .expect("valid");
        assert_eq!(m.row_indices(0), &[0, 2]);
        assert_eq!(m.row_values(0), &[3.0, 2.0]);
        assert_eq!(m.row_indices(2), &[1]);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrBuilder::<f64>::new(1, 1)
            .extend_triplets(vec![(0, 0, 1.0), (0, 0, 2.5)])
            .and_then(|b| b.build())
            .expect("valid");
        assert_eq!(m.get(0, 0), 3.5);
    }

    #[test]
    fn cancellation_drops_entry() {
        let m = CsrBuilder::<f32>::new(1, 2)
            .extend_triplets(vec![(0, 1, 5.0), (0, 1, -5.0)])
            .and_then(|b| b.build())
            .expect("valid");
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn out_of_bounds_row_is_rejected() {
        let err = CsrBuilder::<f32>::new(1, 1).push(1, 0, 1.0);
        assert!(matches!(err, Err(SparseError::RowOutOfBounds { .. })));
    }

    #[test]
    fn out_of_bounds_col_is_rejected() {
        let err = CsrBuilder::<f32>::new(1, 1).push(0, 1, 1.0);
        assert!(matches!(err, Err(SparseError::ColumnOutOfBounds { .. })));
    }

    #[test]
    fn empty_builder_builds_zero_matrix() {
        let b = CsrBuilder::<f32>::new(4, 5);
        assert!(b.is_empty());
        let m = b.build().expect("valid");
        assert_eq!(m.shape(), (4, 5));
        assert_eq!(m.nnz(), 0);
    }
}
