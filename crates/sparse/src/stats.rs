//! Degree statistics and distribution summaries (Table 2 / Figure 1).

use crate::csr::CsrMatrix;
use crate::real::Real;

/// Summary statistics of a matrix's row-degree distribution, matching the
/// columns of the paper's Table 2 (size, density, min degree, max degree).
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// `nnz / (rows * cols)`.
    pub density: f64,
    /// Smallest row degree.
    pub min_degree: usize,
    /// Largest row degree.
    pub max_degree: usize,
    /// Mean row degree.
    pub mean_degree: f64,
}

impl DegreeStats {
    /// Computes degree statistics for a CSR matrix.
    pub fn of<T: Real>(m: &CsrMatrix<T>) -> Self {
        let degrees: Vec<usize> = (0..m.rows()).map(|i| m.row_degree(i)).collect();
        let min_degree = degrees.iter().copied().min().unwrap_or(0);
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let mean_degree = if m.rows() == 0 {
            0.0
        } else {
            m.nnz() as f64 / m.rows() as f64
        };
        Self {
            rows: m.rows(),
            cols: m.cols(),
            nnz: m.nnz(),
            density: m.density(),
            min_degree,
            max_degree,
            mean_degree,
        }
    }
}

/// Empirical CDF of row degrees evaluated at each percentile `0..=99`,
/// reproducing the x-axis of the paper's Figure 1 ("CDFs of Degree
/// Distributions ... on the interval 0-99%").
///
/// Returns `cdf[p]` = the degree at or below which `p` percent of rows
/// fall. Returns all zeros for an empty matrix.
pub fn degree_cdf<T: Real>(m: &CsrMatrix<T>) -> [usize; 100] {
    let mut degrees: Vec<usize> = (0..m.rows()).map(|i| m.row_degree(i)).collect();
    degrees.sort_unstable();
    let mut cdf = [0usize; 100];
    if degrees.is_empty() {
        return cdf;
    }
    for (p, slot) in cdf.iter_mut().enumerate() {
        // Index of the p-th percentile row (nearest-rank definition).
        let idx = (p * degrees.len()) / 100;
        *slot = degrees[idx.min(degrees.len() - 1)];
    }
    cdf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_simple_matrix() {
        let m = CsrMatrix::<f32>::from_triplets(
            3,
            4,
            &[(0, 0, 1.0), (0, 1, 1.0), (0, 2, 1.0), (2, 0, 1.0)],
        )
        .expect("valid");
        let s = DegreeStats::of(&m);
        assert_eq!(s.rows, 3);
        assert_eq!(s.cols, 4);
        assert_eq!(s.nnz, 4);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.max_degree, 3);
        assert!((s.mean_degree - 4.0 / 3.0).abs() < 1e-12);
        assert!((s.density - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_matrix() {
        let m = CsrMatrix::<f32>::zeros(0, 0);
        let s = DegreeStats::of(&m);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.mean_degree, 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_spans_min_to_below_max() {
        // 100 rows with degree == row index.
        let trips: Vec<(u32, u32, f32)> = (0..100u32)
            .flat_map(|r| (0..r).map(move |c| (r, c, 1.0)))
            .collect();
        let m = CsrMatrix::from_triplets(100, 100, &trips).expect("valid");
        let cdf = degree_cdf(&m);
        assert_eq!(cdf[0], 0);
        assert_eq!(cdf[50], 50);
        assert_eq!(cdf[99], 99);
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0], "cdf must be monotone");
        }
    }

    #[test]
    fn cdf_of_uniform_degrees_is_flat() {
        let trips: Vec<(u32, u32, f32)> = (0..10u32)
            .flat_map(|r| [(r, 0, 1.0), (r, 1, 1.0)])
            .collect();
        let m = CsrMatrix::from_triplets(10, 2, &trips).expect("valid");
        let cdf = degree_cdf(&m);
        assert!(cdf.iter().all(|&d| d == 2));
    }

    #[test]
    fn cdf_of_empty_matrix_is_zero() {
        let m = CsrMatrix::<f64>::zeros(0, 5);
        assert!(degree_cdf(&m).iter().all(|&d| d == 0));
    }
}
