//! Coordinate-format matrices.

use crate::csr::CsrMatrix;
use crate::real::Real;
use crate::Idx;

/// A coordinate-format sparse matrix with entries sorted row-major.
///
/// The hybrid kernel of the paper (§3.3) keeps `B` in COO specifically
/// because the explicit row-index array lets nonzeros — rather than rows —
/// be distributed uniformly across threads: "using a row index array in
/// coordinate format (COO) for B enabled load balancing".
///
/// Constructed from a [`CsrMatrix`] (the canonical source of truth) so the
/// sorted-row invariant the segmented reduction relies on always holds.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix<T> {
    rows: usize,
    cols: usize,
    row_indices: Vec<Idx>,
    col_indices: Vec<Idx>,
    values: Vec<T>,
}

impl<T: Real> CooMatrix<T> {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row index of every nonzero, in row-major order.
    #[inline]
    pub fn row_indices(&self) -> &[Idx] {
        &self.row_indices
    }

    /// Column index of every nonzero, parallel to [`Self::row_indices`].
    #[inline]
    pub fn col_indices(&self) -> &[Idx] {
        &self.col_indices
    }

    /// Value of every nonzero.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Iterator over `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Idx, Idx, T)> + '_ {
        self.row_indices
            .iter()
            .zip(&self.col_indices)
            .zip(&self.values)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Bytes of device memory this COO copy occupies (two index arrays
    /// plus values — the extra row array is COO's cost relative to CSR).
    pub fn device_bytes(&self) -> usize {
        self.nnz() * (4 + 4 + std::mem::size_of::<T>())
    }
}

impl<T: Real> From<&CsrMatrix<T>> for CooMatrix<T> {
    fn from(csr: &CsrMatrix<T>) -> Self {
        let mut row_indices = Vec::with_capacity(csr.nnz());
        for r in 0..csr.rows() {
            row_indices.extend(std::iter::repeat_n(r as Idx, csr.row_degree(r)));
        }
        Self {
            rows: csr.rows(),
            cols: csr.cols(),
            row_indices,
            col_indices: csr.indices().to_vec(),
            values: csr.values().to_vec(),
        }
    }
}

impl<T: Real> From<&CooMatrix<T>> for CsrMatrix<T> {
    fn from(coo: &CooMatrix<T>) -> Self {
        let mut indptr = vec![0usize; coo.rows + 1];
        for &r in &coo.row_indices {
            indptr[r as usize + 1] += 1;
        }
        for r in 0..coo.rows {
            indptr[r + 1] += indptr[r];
        }
        CsrMatrix::from_parts(
            coo.rows,
            coo.cols,
            indptr,
            coo.col_indices.clone(),
            coo.values.clone(),
        )
        .expect("CooMatrix invariants imply a valid CSR")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_csr() -> CsrMatrix<f32> {
        CsrMatrix::from_triplets(3, 4, &[(0, 0, 1.0), (0, 3, 2.0), (2, 1, 3.0), (2, 2, 4.0)])
            .expect("valid")
    }

    #[test]
    fn csr_to_coo_expands_row_indices() {
        let coo = CooMatrix::from(&sample_csr());
        assert_eq!(coo.row_indices(), &[0, 0, 2, 2]);
        assert_eq!(coo.col_indices(), &[0, 3, 1, 2]);
        assert_eq!(coo.values(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(coo.shape(), (3, 4));
    }

    #[test]
    fn round_trip_csr_coo_csr() {
        let csr = sample_csr();
        let coo = CooMatrix::from(&csr);
        let back = CsrMatrix::from(&coo);
        assert_eq!(csr, back);
    }

    #[test]
    fn empty_matrix_round_trips() {
        let csr = CsrMatrix::<f64>::zeros(2, 2);
        let coo = CooMatrix::from(&csr);
        assert_eq!(coo.nnz(), 0);
        assert_eq!(CsrMatrix::from(&coo), csr);
    }

    #[test]
    fn device_bytes_counts_both_index_arrays() {
        let coo = CooMatrix::from(&sample_csr());
        // 4 nnz * (4 + 4 + 4) bytes for f32
        assert_eq!(coo.device_bytes(), 48);
    }

    #[test]
    fn iter_yields_row_major_triplets() {
        let coo = CooMatrix::from(&sample_csr());
        let trips: Vec<_> = coo.iter().collect();
        assert_eq!(
            trips,
            vec![(0, 0, 1.0), (0, 3, 2.0), (2, 1, 3.0), (2, 2, 4.0)]
        );
    }
}
