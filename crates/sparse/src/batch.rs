//! Row batching for memory-bounded pairwise computation.
//!
//! The paper's benchmarks run a k-NN query precisely because batching is
//! required "to allow scaling to datasets where the dense pairwise
//! distance matrix may not otherwise fit in the memory of the GPU" (§4.2).
//! [`RowBatches`] plans the row slabs of `A` so each `batch × n` dense
//! output tile fits a byte budget.

use crate::csr::CsrMatrix;
use crate::real::Real;
use std::ops::Range;

/// Iterator over contiguous row ranges of a query matrix such that each
/// `rows_in_batch × out_cols` dense output tile fits `max_output_bytes`.
///
/// # Example
///
/// ```
/// use sparse::RowBatches;
/// // 10 query rows against 1000 index rows, budget of 16 KiB of f32 output
/// let batches: Vec<_> = RowBatches::plan(10, 1000, 4, 16 * 1024).collect();
/// assert_eq!(batches.first(), Some(&(0..4)));
/// assert_eq!(batches.last().map(|r| r.end), Some(10));
/// ```
#[derive(Debug, Clone)]
pub struct RowBatches {
    total_rows: usize,
    batch_rows: usize,
    next: usize,
}

impl RowBatches {
    /// Plans batches of rows for a `total_rows × out_cols` output of
    /// `scalar_bytes`-wide scalars under a `max_output_bytes` budget.
    ///
    /// At least one row per batch is always emitted, even when a single
    /// output row exceeds the budget (the caller cannot subdivide a row).
    pub fn plan(
        total_rows: usize,
        out_cols: usize,
        scalar_bytes: usize,
        max_output_bytes: usize,
    ) -> Self {
        let row_bytes = out_cols.max(1) * scalar_bytes.max(1);
        let batch_rows = (max_output_bytes / row_bytes).max(1);
        Self {
            total_rows,
            batch_rows,
            next: 0,
        }
    }

    /// Plans batches for a concrete query matrix.
    pub fn for_matrix<T: Real>(a: &CsrMatrix<T>, out_cols: usize, max_output_bytes: usize) -> Self {
        Self::plan(
            a.rows(),
            out_cols,
            std::mem::size_of::<T>(),
            max_output_bytes,
        )
    }

    /// Number of rows each full batch carries.
    pub fn batch_rows(&self) -> usize {
        self.batch_rows
    }

    /// Total number of batches that will be produced.
    pub fn num_batches(&self) -> usize {
        self.total_rows.div_ceil(self.batch_rows)
    }
}

impl Iterator for RowBatches {
    type Item = Range<usize>;

    fn next(&mut self) -> Option<Range<usize>> {
        if self.next >= self.total_rows {
            return None;
        }
        let start = self.next;
        let end = (start + self.batch_rows).min(self.total_rows);
        self.next = end;
        Some(start..end)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.total_rows - self.next).div_ceil(self.batch_rows);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for RowBatches {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_cover_all_rows_without_overlap() {
        let batches: Vec<_> = RowBatches::plan(17, 100, 4, 2000).collect();
        // 2000 / 400 = 5 rows per batch
        assert_eq!(batches.len(), 4);
        let mut expected_start = 0;
        for b in &batches {
            assert_eq!(b.start, expected_start);
            expected_start = b.end;
        }
        assert_eq!(expected_start, 17);
    }

    #[test]
    fn tiny_budget_still_emits_one_row_per_batch() {
        let batches: Vec<_> = RowBatches::plan(3, 1_000_000, 8, 1).collect();
        assert_eq!(batches, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn zero_rows_yields_no_batches() {
        assert_eq!(RowBatches::plan(0, 10, 4, 100).count(), 0);
    }

    #[test]
    fn exact_size_iterator_agrees_with_num_batches() {
        let rb = RowBatches::plan(10, 10, 4, 160);
        assert_eq!(rb.len(), rb.num_batches());
        assert_eq!(rb.num_batches(), 3); // 4 rows per batch
    }

    #[test]
    fn for_matrix_uses_scalar_width() {
        let m = CsrMatrix::<f64>::zeros(8, 4);
        let rb = RowBatches::for_matrix(&m, 4, 64);
        assert_eq!(rb.batch_rows(), 2); // 64 / (4 * 8)
    }
}
