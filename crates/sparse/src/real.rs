//! Scalar abstraction over `f32`/`f64`.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Real scalar usable as a matrix value and semiring element.
///
/// Implemented for `f32` (the precision the paper's GPU kernels use) and
/// `f64` (used by the exact dense references in the test suite). The trait
/// is sealed by construction — all methods have no default and mirror the
/// subset of `std` float intrinsics the fifteen distance measures need.
pub trait Real:
    Copy
    + PartialOrd
    + PartialEq
    + Debug
    + Display
    + Default
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Positive infinity (identity of the `min` monoid in tropical semirings).
    const INFINITY: Self;
    /// Machine epsilon.
    const EPSILON: Self;

    /// Lossy conversion from `f64` (used by generators and expansion
    /// functions that mix counts with values).
    fn from_f64(v: f64) -> Self;
    /// Lossless widening to `f64` for accumulation and reporting.
    fn to_f64(self) -> f64;
    /// Conversion from a usize count (e.g. the `k` term of Russel-Rao).
    fn from_usize(v: usize) -> Self;

    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// `self` raised to a real power.
    fn powf(self, p: Self) -> Self;
    /// Larger of two values (NaN-propagating like `f32::max` is *not*
    /// required; ties resolve to either operand).
    fn max(self, other: Self) -> Self;
    /// Smaller of two values.
    fn min(self, other: Self) -> Self;
    /// True when the value is NaN.
    fn is_nan(self) -> bool;
    /// True when the value is finite.
    fn is_finite(self) -> bool;
}

macro_rules! impl_real {
    ($t:ty) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const INFINITY: Self = <$t>::INFINITY;
            const EPSILON: Self = <$t>::EPSILON;

            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn from_usize(v: usize) -> Self {
                v as $t
            }
            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }
            #[inline]
            fn powf(self, p: Self) -> Self {
                <$t>::powf(self, p)
            }
            #[inline]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline]
            fn is_nan(self) -> bool {
                <$t>::is_nan(self)
            }
            #[inline]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_real!(f32);
impl_real!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn check_constants<T: Real>() {
        assert_eq!(T::ZERO + T::ONE, T::ONE);
        assert!(T::INFINITY > T::from_f64(1e30));
        assert!(T::EPSILON > T::ZERO);
    }

    #[test]
    fn constants_hold_for_both_precisions() {
        check_constants::<f32>();
        check_constants::<f64>();
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(f32::from_usize(42).to_f64(), 42.0);
        assert_eq!(f64::from_f64(1.5), 1.5);
    }

    #[test]
    fn math_ops_match_std() {
        assert_eq!(Real::abs(-2.0f32), 2.0);
        assert_eq!(Real::sqrt(9.0f64), 3.0);
        assert_eq!(Real::max(1.0f32, 2.0), 2.0);
        assert_eq!(Real::min(1.0f32, 2.0), 1.0);
        assert!((Real::powf(2.0f64, 10.0) - 1024.0).abs() < 1e-9);
        assert!(Real::is_nan(f32::NAN));
        assert!(!Real::is_finite(f64::INFINITY));
    }
}
