//! The brute-force `NearestNeighbors` estimator.

use crate::topk::{cmp_dist_idx, top_k_smallest};
use gpu_sim::{Device, LaunchStats};
use kernels::{
    fused_knn, pairwise_distances_prepared, radius_filter_kernel, top_k_kernel, KernelError,
    MemoryFootprint, PairwiseOptions, PreparedIndex, ResilienceReport,
};
use semiring::{Distance, DistanceParams};
use sparse::{CsrMatrix, Real, RowBatches};
use std::sync::Arc;

/// Default device-memory budget for one batch's dense output tile
/// (256 MiB, comfortably under a V100's 16 GB alongside the inputs).
const DEFAULT_BATCH_BYTES: usize = 256 * 1024 * 1024;

/// Where the k-smallest selection runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Selection {
    /// A faiss-style selection kernel on the device (cuML's
    /// configuration; default). The dense tile never leaves device
    /// memory.
    #[default]
    Device,
    /// Copy the tile back and select on the host (useful for validating
    /// the device kernel).
    Host,
}

/// Result of a k-NN query.
#[derive(Debug, Clone)]
pub struct KnnResult<T> {
    /// For each query row, the indices of its `k` nearest index rows,
    /// ascending by distance.
    pub indices: Vec<Vec<usize>>,
    /// The corresponding distances.
    pub distances: Vec<Vec<T>>,
    /// Total simulated GPU seconds across all batches and kernels.
    pub sim_seconds: f64,
    /// Number of (query batch × index slab) tiles executed.
    pub batches: usize,
    /// Peak per-batch device memory accounting.
    pub peak_memory: MemoryFootprint,
    /// Every kernel launch, in execution order (distance tiles,
    /// selection/filter kernels, norm passes). Carries per-range
    /// profiles when the device profiler is enabled.
    pub launches: Vec<LaunchStats>,
    /// One resilience report per distance tile when the estimator runs
    /// with a [`kernels::ResiliencePolicy`] (empty otherwise). A fault on
    /// one tile is retried or degraded in place, so a single poisoned
    /// tile does not fail the whole neighborhood graph.
    pub resilience: Vec<ResilienceReport>,
    /// Number of simulated devices the query was sharded across
    /// (1 for single-device queries; see [`crate::MultiDevice`]).
    pub devices: usize,
    /// Simulated seconds attributed to each device. Devices execute
    /// concurrently in simulated time, so `sim_seconds` is the maximum
    /// of these entries on sharded queries (and equal to the single
    /// entry otherwise).
    pub per_device_seconds: Vec<f64>,
}

/// Brute-force k-nearest-neighbors estimator over the sparse pairwise
/// distance primitive (the cuML `NearestNeighbors` analog of Figure 2).
///
/// Queries run in batches along both axes: query rows are batched so the
/// dense output tile fits a byte budget (§4.2's motivation for
/// benchmarking through k-NN), and the index can additionally be split
/// into row slabs whose per-slab top-k results are merged — the
/// mechanism that lets a fixed-memory GPU answer queries against an
/// index of unbounded size.
#[derive(Debug, Clone)]
pub struct NearestNeighbors<T> {
    device: Device,
    distance: Distance,
    params: DistanceParams,
    options: PairwiseOptions,
    batch_bytes: usize,
    index_batch_rows: Option<usize>,
    selection: Selection,
    fused: bool,
    index: Option<CsrMatrix<T>>,
}

impl<T: Real> NearestNeighbors<T> {
    /// Creates an unfitted estimator for `distance` on `device`.
    pub fn new(device: Device, distance: Distance) -> Self {
        Self {
            device,
            distance,
            params: DistanceParams::default(),
            options: PairwiseOptions::default(),
            batch_bytes: DEFAULT_BATCH_BYTES,
            index_batch_rows: None,
            selection: Selection::default(),
            fused: false,
            index: None,
        }
    }

    /// Sets distance parameters (Minkowski `p`).
    pub fn with_params(mut self, params: DistanceParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the kernel strategy / shared-memory mode.
    pub fn with_options(mut self, options: PairwiseOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the per-batch output budget in bytes (controls how many query
    /// rows are processed per kernel launch).
    pub fn with_batch_bytes(mut self, bytes: usize) -> Self {
        self.batch_bytes = bytes.max(1);
        self
    }

    /// Splits the index into slabs of at most `rows` rows, merging the
    /// per-slab top-k results. Unset = the whole index per tile.
    pub fn with_index_batch_rows(mut self, rows: usize) -> Self {
        self.index_batch_rows = Some(rows.max(1));
        self
    }

    /// Chooses where the k-selection runs.
    pub fn with_selection(mut self, selection: Selection) -> Self {
        self.selection = selection;
        self
    }

    /// Uses the fused distance+selection kernel: the dense distance tile
    /// is never materialized, so device output memory is `m × k` instead
    /// of `m × n`. Overrides the strategy/selection/index-batching
    /// options; query rows must fit shared memory.
    pub fn with_fused(mut self, fused: bool) -> Self {
        self.fused = fused;
        self
    }

    /// Stores the index matrix (brute force has no training step).
    pub fn fit(mut self, index: CsrMatrix<T>) -> Self {
        self.index = Some(index);
        self
    }

    /// The configured distance metric.
    pub fn metric(&self) -> Distance {
        self.distance
    }

    /// The simulated device this estimator launches kernels on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The pairwise execution options (strategy, smem mode, resilience
    /// policy) this estimator runs its distance tiles with.
    pub fn pairwise_options(&self) -> &PairwiseOptions {
        &self.options
    }

    /// The explicit index slab-rows override, if one was set with
    /// [`NearestNeighbors::with_index_batch_rows`] (part of a prepared
    /// shard set's cache identity: different slab geometry means a
    /// different artifact).
    pub fn index_slab_rows(&self) -> Option<usize> {
        self.index_batch_rows
    }

    /// The fitted index matrix, if any.
    pub fn index(&self) -> Option<&CsrMatrix<T>> {
        self.index.as_ref()
    }

    /// Rows per index slab when sharding across `devices` devices: the
    /// explicit [`NearestNeighbors::with_index_batch_rows`] setting, or
    /// one contiguous slab per device.
    pub(crate) fn shard_slab_rows(&self, index_rows: usize, devices: usize) -> usize {
        self.index_batch_rows
            .unwrap_or_else(|| index_rows.div_ceil(devices.max(1)).max(1))
            .max(1)
    }

    fn kneighbors_fused(
        &self,
        query: &CsrMatrix<T>,
        k: usize,
        index: &CsrMatrix<T>,
    ) -> Result<KnnResult<T>, KernelError> {
        let prepared = PreparedIndex::new(&self.device, index.clone());
        let r = fused_knn(
            &self.device,
            query,
            &prepared,
            k,
            self.distance,
            &self.params,
        )?;
        let kk = k.min(index.rows().max(1));
        let fi = r.indices.to_vec();
        let fv = r.distances.to_vec();
        let mut indices = Vec::with_capacity(query.rows());
        let mut distances = Vec::with_capacity(query.rows());
        for q in 0..query.rows() {
            let mut row_i = Vec::with_capacity(kk);
            let mut row_d = Vec::with_capacity(kk);
            for s in 0..kk {
                let ci = fi[q * kk + s];
                if ci != u32::MAX {
                    row_i.push(ci as usize);
                    row_d.push(fv[q * kk + s]);
                }
            }
            indices.push(row_i);
            distances.push(row_d);
        }
        let sim_seconds = r.sim_seconds();
        Ok(KnnResult {
            indices,
            distances,
            sim_seconds,
            batches: 1,
            peak_memory: MemoryFootprint {
                input_bytes: query.device_bytes() + index.device_bytes(),
                output_bytes: r.output_bytes,
                workspace_bytes: 0,
            },
            launches: r.launches,
            resilience: Vec::new(),
            devices: 1,
            per_device_seconds: vec![sim_seconds],
        })
    }

    /// Returns, for every query row, all index rows within `radius`
    /// (inclusive), sorted ascending by distance — the
    /// `radius_neighbors` counterpart of [`NearestNeighbors::kneighbors`]
    /// used for ε-neighborhood graphs and DBSCAN-style clustering.
    ///
    /// # Errors
    ///
    /// Returns a kernel error on dimensionality mismatch or
    /// unsatisfiable strategy requirements.
    ///
    /// # Panics
    ///
    /// Panics if the estimator has not been [`NearestNeighbors::fit`].
    pub fn radius_neighbors(
        &self,
        query: &CsrMatrix<T>,
        radius: T,
    ) -> Result<KnnResult<T>, KernelError> {
        let index = self
            .index
            .as_ref()
            .expect("call fit() before radius_neighbors()");
        let n = index.rows();
        let slab_rows = self.index_batch_rows.unwrap_or(n.max(1));
        let mut indices = Vec::with_capacity(query.rows());
        let mut distances = Vec::with_capacity(query.rows());
        let mut sim_seconds = 0.0;
        let mut batches = 0;
        let mut peak = MemoryFootprint::default();
        let mut launches = Vec::new();
        let mut resilience = Vec::new();

        let mut prepared: Vec<(usize, PreparedIndex<T>)> = Vec::new();
        let mut off = 0;
        while off < n {
            let end = (off + slab_rows).min(n);
            prepared.push((
                off,
                PreparedIndex::new(&self.device, index.slice_rows(off..end)),
            ));
            off = end;
        }

        for q_range in RowBatches::for_matrix(query, slab_rows.min(n.max(1)), self.batch_bytes) {
            let slab = query.slice_rows(q_range);
            let mut pool: Vec<Vec<(usize, T)>> = vec![Vec::new(); slab.rows()];
            for (off, islab) in &prepared {
                let mut tile = pairwise_distances_prepared(
                    &self.device,
                    &slab,
                    islab,
                    self.distance,
                    &self.params,
                    &self.options,
                )?;
                sim_seconds += tile.sim_seconds();
                batches += 1;
                if let Some(r) = tile.resilience.take() {
                    resilience.push(r);
                }
                peak.output_bytes = peak.output_bytes.max(tile.memory.output_bytes);
                match self.selection {
                    Selection::Device => {
                        // Stream-compact on the device; only survivors
                        // cross back to the host.
                        let f = radius_filter_kernel(
                            &self.device,
                            &tile.buffer,
                            tile.rows,
                            tile.cols,
                            radius,
                        )?;
                        sim_seconds += f.stats.sim_seconds();
                        let counts = f.counts.to_vec();
                        let idx = f.indices.to_vec();
                        let val = f.values.to_vec();
                        for (r, cand) in pool.iter_mut().enumerate() {
                            for s in 0..counts[r] as usize {
                                cand.push((
                                    off + idx[r * tile.cols + s] as usize,
                                    val[r * tile.cols + s],
                                ));
                            }
                        }
                        launches.push(f.stats);
                    }
                    Selection::Host => {
                        let host = tile.buffer.to_vec();
                        for (r, cand) in pool.iter_mut().enumerate() {
                            for (c, &d) in
                                host[r * tile.cols..(r + 1) * tile.cols].iter().enumerate()
                            {
                                if d <= radius {
                                    cand.push((off + c, d));
                                }
                            }
                        }
                    }
                }
                launches.extend(tile.launches);
            }
            for mut cand in pool {
                cand.sort_by(cmp_dist_idx);
                indices.push(cand.iter().map(|&(i, _)| i).collect());
                distances.push(cand.into_iter().map(|(_, d)| d).collect());
            }
        }
        Ok(KnnResult {
            indices,
            distances,
            sim_seconds,
            batches,
            peak_memory: peak,
            launches,
            resilience,
            devices: 1,
            per_device_seconds: vec![sim_seconds],
        })
    }

    /// Queries the `k` nearest index rows for every row of `query`.
    ///
    /// # Errors
    ///
    /// Returns a kernel error on dimensionality mismatch or unsatisfiable
    /// strategy requirements.
    ///
    /// # Panics
    ///
    /// Panics if the estimator has not been [`NearestNeighbors::fit`].
    pub fn kneighbors(&self, query: &CsrMatrix<T>, k: usize) -> Result<KnnResult<T>, KernelError> {
        let index = self.index.as_ref().expect("call fit() before kneighbors()");
        if self.fused {
            return self.kneighbors_fused(query, k, index);
        }
        let n = index.rows();
        let slab_rows = self.index_batch_rows.unwrap_or(n.max(1));

        // Prepare each index slab once: the CSR/COO uploads and the norm
        // reductions are then shared by every query batch instead of
        // being redone per tile.
        let mut prepared: Vec<(usize, Arc<PreparedIndex<T>>)> = Vec::new();
        let mut off = 0;
        while off < n {
            let end = (off + slab_rows).min(n);
            prepared.push((
                off,
                Arc::new(PreparedIndex::new(&self.device, index.slice_rows(off..end))),
            ));
            off = end;
        }
        self.kneighbors_core(&self.device, &prepared, n, query, k)
    }

    /// The shared k-NN execution core: runs the query (in row batches)
    /// against an already-prepared list of `(row_offset, slab)` pairs
    /// covering `n` index rows on `device`, merging per-slab candidates
    /// under the canonical [`crate::topk::cmp_dist_idx`] order.
    ///
    /// Both the one-shot paths ([`NearestNeighbors::kneighbors`],
    /// [`NearestNeighbors::kneighbors_sharded`]) and the serving layer's
    /// cached [`crate::PreparedShards`] path funnel through this
    /// function, which is what makes "served results are byte-identical
    /// to the batch path" true by construction rather than by test.
    pub(crate) fn kneighbors_core(
        &self,
        device: &Device,
        prepared: &[(usize, Arc<PreparedIndex<T>>)],
        n: usize,
        query: &CsrMatrix<T>,
        k: usize,
    ) -> Result<KnnResult<T>, KernelError> {
        let slab_rows = self.index_batch_rows.unwrap_or(n.max(1));
        let mut indices = Vec::with_capacity(query.rows());
        let mut distances = Vec::with_capacity(query.rows());
        let mut sim_seconds = 0.0;
        let mut batches = 0;
        let mut peak = MemoryFootprint::default();
        let mut launches = Vec::new();
        let mut resilience = Vec::new();

        for q_range in RowBatches::for_matrix(query, slab_rows.min(n.max(1)), self.batch_bytes) {
            let q0 = q_range.start;
            let slab = query.slice_rows(q_range);
            // Per-query candidate pools, merged across index slabs.
            let mut pool: Vec<Vec<(usize, T)>> = vec![Vec::new(); slab.rows()];

            for (off, islab) in prepared {
                let off = *off;
                let mut tile = pairwise_distances_prepared(
                    device,
                    &slab,
                    islab,
                    self.distance,
                    &self.params,
                    &self.options,
                )?;
                sim_seconds += tile.sim_seconds();
                batches += 1;
                if let Some(r) = tile.resilience.take() {
                    resilience.push(r);
                }
                peak.input_bytes = peak.input_bytes.max(tile.memory.input_bytes);
                peak.output_bytes = peak.output_bytes.max(tile.memory.output_bytes);
                peak.workspace_bytes = peak.workspace_bytes.max(tile.memory.workspace_bytes);

                match self.selection {
                    Selection::Device => {
                        let kk = k.min(tile.cols.max(1));
                        let (didx, dval, sel_stats) =
                            top_k_kernel(device, &tile.buffer, tile.rows, tile.cols, kk)?;
                        sim_seconds += sel_stats.sim_seconds();
                        let didx = didx.to_vec();
                        let dval = dval.to_vec();
                        for (r, cand) in pool.iter_mut().enumerate() {
                            for s in 0..kk {
                                let ci = didx[r * kk + s];
                                if ci != u32::MAX {
                                    cand.push((off + ci as usize, dval[r * kk + s]));
                                }
                            }
                        }
                        launches.push(sel_stats);
                    }
                    Selection::Host => {
                        let host = tile.buffer.to_vec();
                        for (r, cand) in pool.iter_mut().enumerate() {
                            let row = &host[r * tile.cols..(r + 1) * tile.cols];
                            cand.extend(
                                top_k_smallest(row, k)
                                    .into_iter()
                                    .map(|(i, d)| (off + i, d)),
                            );
                        }
                    }
                }
                launches.extend(tile.launches);
            }

            // Merge slab candidates under the canonical total order and
            // keep k. `cmp_dist_idx` (not `partial_cmp().unwrap_or(Equal)`)
            // matters here: a NaN candidate from one slab must not be
            // able to displace a finite candidate from another just
            // because of slab insertion order.
            for (r, mut cand) in pool.into_iter().enumerate() {
                let _ = q0 + r;
                cand.sort_by(cmp_dist_idx);
                cand.truncate(k);
                indices.push(cand.iter().map(|&(i, _)| i).collect());
                distances.push(cand.into_iter().map(|(_, d)| d).collect());
            }
        }
        Ok(KnnResult {
            indices,
            distances,
            sim_seconds,
            batches,
            peak_memory: peak,
            launches,
            resilience,
            devices: 1,
            per_device_seconds: vec![sim_seconds],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baseline::CpuBruteForce;

    fn dataset() -> CsrMatrix<f64> {
        // 8 rows over 10 dims with varied overlaps.
        let mut data = vec![0.0; 80];
        for r in 0..8 {
            for c in 0..10 {
                if (r + c) % 3 == 0 {
                    data[r * 10 + c] = 1.0 + (r as f64) / 10.0 + (c as f64) / 100.0;
                }
            }
        }
        CsrMatrix::from_dense(8, 10, &data)
    }

    #[test]
    fn gpu_knn_matches_cpu_brute_force() {
        let m = dataset();
        let params = DistanceParams::default();
        for d in [
            Distance::Euclidean,
            Distance::Cosine,
            Distance::Manhattan,
            Distance::Chebyshev,
        ] {
            for selection in [Selection::Device, Selection::Host] {
                let nn = NearestNeighbors::new(Device::volta(), d)
                    .with_selection(selection)
                    .fit(m.clone());
                let got = nn.kneighbors(&m, 3).expect("query ok");
                let want = CpuBruteForce::new(2).knn(&m, &m, 3, d, &params);
                for (i, want_row) in want.iter().enumerate() {
                    assert_eq!(
                        got.indices[i],
                        want_row.iter().map(|&(j, _)| j).collect::<Vec<_>>(),
                        "{d} ({selection:?}) row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn self_query_returns_self_first_for_metrics() {
        let m = dataset();
        let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(m.clone());
        let got = nn.kneighbors(&m, 1).expect("query ok");
        for (i, row) in got.indices.iter().enumerate() {
            assert_eq!(row[0], i, "row {i} must be its own nearest neighbor");
            assert!(got.distances[i][0].abs() < 1e-9);
        }
    }

    #[test]
    fn query_batching_does_not_change_results() {
        let m = dataset();
        let big = NearestNeighbors::new(Device::volta(), Distance::Manhattan)
            .fit(m.clone())
            .kneighbors(&m, 4)
            .expect("ok");
        // Budget of one output row per batch → 8 batches.
        let small = NearestNeighbors::new(Device::volta(), Distance::Manhattan)
            .fit(m.clone())
            .with_batch_bytes(8 * 8)
            .kneighbors(&m, 4)
            .expect("ok");
        assert_eq!(big.batches, 1);
        assert_eq!(small.batches, 8);
        assert_eq!(big.indices, small.indices);
        for (a, b) in big.distances.iter().zip(&small.distances) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-9);
            }
        }
        assert!(small.sim_seconds > 0.0);
    }

    #[test]
    fn index_batching_merges_slab_topk_correctly() {
        let m = dataset();
        let whole = NearestNeighbors::new(Device::volta(), Distance::Euclidean)
            .fit(m.clone())
            .kneighbors(&m, 5)
            .expect("ok");
        for slab in [1, 3, 5, 8] {
            let split = NearestNeighbors::new(Device::volta(), Distance::Euclidean)
                .with_index_batch_rows(slab)
                .fit(m.clone())
                .kneighbors(&m, 5)
                .expect("ok");
            assert_eq!(whole.indices, split.indices, "slab size {slab}");
            for (a, b) in whole.distances.iter().zip(&split.distances) {
                for (x, y) in a.iter().zip(b) {
                    assert!((x - y).abs() < 1e-9, "slab size {slab}");
                }
            }
        }
    }

    #[test]
    fn index_batching_counts_tiles() {
        let m = dataset();
        let r = NearestNeighbors::new(Device::volta(), Distance::Cosine)
            .with_index_batch_rows(3)
            .fit(m.clone())
            .kneighbors(&m, 2)
            .expect("ok");
        assert_eq!(r.batches, 3); // 8 index rows / 3 per slab
    }

    #[test]
    fn fused_knn_matches_tiled_and_shrinks_output_memory() {
        let m = dataset();
        for d in [Distance::Cosine, Distance::Manhattan, Distance::Correlation] {
            let tiled = NearestNeighbors::new(Device::volta(), d)
                .fit(m.clone())
                .kneighbors(&m, 3)
                .expect("ok");
            let fused = NearestNeighbors::new(Device::volta(), d)
                .with_fused(true)
                .fit(m.clone())
                .kneighbors(&m, 3)
                .expect("ok");
            assert_eq!(tiled.indices, fused.indices, "{d}");
            for (a, b) in tiled.distances.iter().zip(&fused.distances) {
                for (x, y) in a.iter().zip(b) {
                    assert!((x - y).abs() < 1e-7, "{d}");
                }
            }
            assert!(
                fused.peak_memory.output_bytes < tiled.peak_memory.output_bytes,
                "{d}: fused {} vs tiled {}",
                fused.peak_memory.output_bytes,
                tiled.peak_memory.output_bytes
            );
        }
    }

    #[test]
    fn radius_neighbors_matches_filtered_brute_force() {
        let m = dataset();
        let params = DistanceParams::default();
        let radius = 1.5;
        let full = CpuBruteForce::new(2).pairwise(&m, &m, Distance::Euclidean, &params);
        for selection in [Selection::Device, Selection::Host] {
            let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean)
                .with_selection(selection)
                .fit(m.clone());
            let got = nn.radius_neighbors(&m, radius).expect("ok");
            for i in 0..m.rows() {
                let mut want: Vec<(usize, f64)> = full
                    .row(i)
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|&(_, d)| d <= radius)
                    .collect();
                want.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN").then(a.0.cmp(&b.0)));
                assert_eq!(
                    got.indices[i],
                    want.iter().map(|&(j, _)| j).collect::<Vec<_>>(),
                    "row {i}"
                );
                for (g, (_, w)) in got.distances[i].iter().zip(&want) {
                    assert!((g - w).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn radius_neighbors_respects_index_batching() {
        let m = dataset();
        let whole = NearestNeighbors::new(Device::volta(), Distance::Manhattan)
            .fit(m.clone())
            .radius_neighbors(&m, 5.0)
            .expect("ok");
        let split = NearestNeighbors::new(Device::volta(), Distance::Manhattan)
            .with_index_batch_rows(3)
            .fit(m.clone())
            .radius_neighbors(&m, 5.0)
            .expect("ok");
        assert_eq!(whole.indices, split.indices);
    }

    #[test]
    #[should_panic(expected = "call fit()")]
    fn unfitted_query_panics() {
        let nn = NearestNeighbors::<f32>::new(Device::volta(), Distance::Cosine);
        let q = CsrMatrix::<f32>::zeros(1, 4);
        let _ = nn.kneighbors(&q, 1);
    }

    #[test]
    fn peak_memory_reports_largest_batch() {
        let m = dataset();
        let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean)
            .fit(m.clone())
            .with_batch_bytes(8 * 8 * 2);
        let r = nn.kneighbors(&m, 2).expect("ok");
        assert!(r.peak_memory.output_bytes > 0);
        assert!(r.peak_memory.input_bytes > 0);
    }

    #[test]
    fn index_norms_are_cached_across_query_batches() {
        // Cosine needs one L2 norm pass per side. With the whole index
        // per tile and two query batches, the prepared index computes
        // its norm once — so the batched run spends *less* simulated
        // time than 2x the single-batch run.
        let m = dataset();
        let one = NearestNeighbors::new(Device::volta(), Distance::Cosine)
            .fit(m.clone())
            .kneighbors(&m, 2)
            .expect("ok");
        let two = NearestNeighbors::new(Device::volta(), Distance::Cosine)
            .with_batch_bytes(4 * 8 * 8) // 4 query rows per batch
            .fit(m.clone())
            .kneighbors(&m, 2)
            .expect("ok");
        assert_eq!(two.batches, 2);
        assert_eq!(one.indices, two.indices);
        assert!(
            two.sim_seconds < 2.0 * one.sim_seconds,
            "index-side work must not be duplicated: {} vs 2x{}",
            two.sim_seconds,
            one.sim_seconds
        );
    }

    #[test]
    fn device_selection_adds_a_launch_but_same_results() {
        let m = dataset();
        let dev = NearestNeighbors::new(Device::volta(), Distance::Manhattan)
            .with_selection(Selection::Device)
            .fit(m.clone())
            .kneighbors(&m, 3)
            .expect("ok");
        let host = NearestNeighbors::new(Device::volta(), Distance::Manhattan)
            .with_selection(Selection::Host)
            .fit(m.clone())
            .kneighbors(&m, 3)
            .expect("ok");
        assert_eq!(dev.indices, host.indices);
        // The device path spends simulated time on the selection kernel.
        assert!(dev.sim_seconds > host.sim_seconds);
    }
}
