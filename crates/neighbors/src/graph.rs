//! Sparse k-NN connectivity graphs.
//!
//! The paper frames its benchmark datasets as "the objective of creating
//! connectivities graphs from bipartite graphs" (§4.1) — the k-NN graph
//! UMAP, t-SNE and graph-based clustering consume. This module converts
//! a [`crate::KnnResult`] into that CSR adjacency matrix, matching
//! scikit-learn's `kneighbors_graph` semantics.

use crate::knn::KnnResult;
use sparse::{CsrBuilder, CsrMatrix, Real, SparseError};

/// What the graph's edge weights carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GraphMode {
    /// Edge weight 1 for every neighbor (an unweighted adjacency).
    #[default]
    Connectivity,
    /// Edge weight = the distance to the neighbor.
    Distance,
}

/// Builds the `queries × index_rows` CSR adjacency matrix of a k-NN
/// result.
///
/// Self-loops are kept when present in the result (scikit-learn's
/// `include_self=True` behaviour); filter the query row from its own
/// candidates beforehand if undesired. In `Connectivity` mode a
/// zero-distance neighbor still yields an explicit `1.0` edge; in
/// `Distance` mode zero-distance edges are dropped by CSR's implicit-
/// zero convention, matching scikit-learn.
///
/// # Errors
///
/// Returns an error if a neighbor index exceeds `index_rows`.
pub fn kneighbors_graph<T: Real>(
    result: &KnnResult<T>,
    index_rows: usize,
    mode: GraphMode,
) -> Result<CsrMatrix<T>, SparseError> {
    let nnz = result.indices.iter().map(Vec::len).sum();
    let mut b = CsrBuilder::with_capacity(result.indices.len(), index_rows, nnz);
    for (q, (idx, dist)) in result.indices.iter().zip(&result.distances).enumerate() {
        for (&j, &d) in idx.iter().zip(dist) {
            let w = match mode {
                GraphMode::Connectivity => T::ONE,
                GraphMode::Distance => d,
            };
            b = b.push(q as u32, j as u32, w)?;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::NearestNeighbors;
    use gpu_sim::Device;
    use semiring::Distance;

    fn knn_fixture() -> (KnnResult<f64>, usize) {
        let m = CsrMatrix::from_dense(
            4,
            3,
            &[
                1.0, 0.0, 0.0, //
                0.9, 0.1, 0.0, //
                0.0, 1.0, 0.0, //
                0.0, 0.0, 1.0,
            ],
        );
        let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(m.clone());
        (nn.kneighbors(&m, 2).expect("ok"), m.rows())
    }

    #[test]
    fn connectivity_graph_has_k_edges_per_row() {
        let (res, n) = knn_fixture();
        let g = kneighbors_graph(&res, n, GraphMode::Connectivity).expect("valid");
        assert_eq!(g.shape(), (4, 4));
        for r in 0..4 {
            assert_eq!(g.row_degree(r), 2, "row {r}");
            assert!(g.row_values(r).iter().all(|&v| v == 1.0));
        }
        // Rows 0 and 1 are each other's nearest non-self neighbors.
        assert_eq!(g.get(0, 1), 1.0);
        assert_eq!(g.get(1, 0), 1.0);
    }

    #[test]
    fn distance_graph_carries_distances_and_drops_zero_self_loops() {
        let (res, n) = knn_fixture();
        let g = kneighbors_graph(&res, n, GraphMode::Distance).expect("valid");
        // Self-distance 0 becomes an implicit zero in CSR.
        for r in 0..4 {
            assert_eq!(g.get(r, r as u32), 0.0);
        }
        let d01 = g.get(0, 1);
        assert!(d01 > 0.0 && d01 < 0.2, "d(0,1) = {d01}");
    }

    #[test]
    fn out_of_range_neighbor_is_rejected() {
        let res = KnnResult {
            indices: vec![vec![9]],
            distances: vec![vec![1.0f32]],
            sim_seconds: 0.0,
            batches: 1,
            peak_memory: Default::default(),
            launches: Vec::new(),
            resilience: Vec::new(),
            devices: 1,
            per_device_seconds: vec![0.0],
        };
        assert!(kneighbors_graph(&res, 3, GraphMode::Connectivity).is_err());
    }

    #[test]
    fn empty_result_builds_empty_graph() {
        let res = KnnResult::<f32> {
            indices: vec![vec![], vec![]],
            distances: vec![vec![], vec![]],
            sim_seconds: 0.0,
            batches: 0,
            peak_memory: Default::default(),
            launches: Vec::new(),
            resilience: Vec::new(),
            devices: 1,
            per_device_seconds: vec![0.0],
        };
        let g = kneighbors_graph(&res, 5, GraphMode::Connectivity).expect("valid");
        assert_eq!(g.shape(), (2, 5));
        assert_eq!(g.nnz(), 0);
    }
}
