//! Brute-force k-nearest-neighbors on the sparse distance primitive.
//!
//! The paper's end-to-end benchmark (§4.2) is a brute-force k-NN query —
//! "Each benchmark performs a k-nearest neighbors query to test our
//! primitives end-to-end and allow scaling to datasets where the dense
//! pairwise distance matrix may not otherwise fit in the memory of the
//! GPU" — using RAPIDS cuML's `NearestNeighbors` estimator on top of the
//! distance primitive. [`NearestNeighbors`] is that estimator: fit on an
//! index matrix, query in batches sized to a device-memory budget, select
//! the top-k per query row.
//!
//! # Example
//!
//! ```
//! use gpu_sim::Device;
//! use neighbors::NearestNeighbors;
//! use semiring::Distance;
//! use sparse::CsrMatrix;
//!
//! let index = CsrMatrix::<f32>::from_dense(
//!     3,
//!     4,
//!     &[1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.9, 0.0, 0.0],
//! );
//! let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(index);
//! let query = CsrMatrix::<f32>::from_dense(1, 4, &[1.0, 0.8, 0.0, 0.0]);
//! let result = nn.kneighbors(&query, 2)?;
//! assert_eq!(result.indices[0][0], 2); // row 2 is closest
//! # Ok::<(), kernels::KernelError>(())
//! ```

#![deny(missing_docs)]

pub mod graph;
pub mod ivf;
pub mod knn;
pub mod multi;
pub mod prepared;
pub mod topk;

pub use graph::{kneighbors_graph, GraphMode};
pub use ivf::{IvfAnswer, IvfIndex, IvfParams, IvfPrepared, IvfQueryStats, IvfShard};
pub use knn::{KnnResult, NearestNeighbors, Selection};
pub use multi::MultiDevice;
pub use prepared::{PreparedShard, PreparedShards};
pub use topk::{cmp_dist_idx, top_k_smallest};
