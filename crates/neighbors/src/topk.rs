//! Top-k selection over a distance row.

use sparse::Real;

/// Returns the indices and values of the `k` smallest entries of `row`,
/// sorted ascending by value (ties broken by lower index, which keeps
/// results deterministic across batch splits).
///
/// Uses a bounded max-heap: `O(n log k)` instead of the `O(n log n)` of
/// a full sort, which matters when `n` is the full index size and `k` is
/// a handful of neighbors.
pub fn top_k_smallest<T: Real>(row: &[T], k: usize) -> Vec<(usize, T)> {
    let k = k.min(row.len());
    if k == 0 {
        return Vec::new();
    }
    // Bounded selection buffer kept in descending order; last = current
    // cut-off. NaNs sort last (never selected unless unavoidable).
    let worse = |x: &(usize, T), y: &(usize, T)| -> bool {
        // true when x is worse (greater) than y
        match x.1.partial_cmp(&y.1) {
            Some(std::cmp::Ordering::Greater) => true,
            Some(std::cmp::Ordering::Less) => false,
            _ => x.1.is_nan() && !y.1.is_nan() || (!x.1.is_nan() && !y.1.is_nan() && x.0 > y.0),
        }
    };
    let mut heap: Vec<(usize, T)> = Vec::with_capacity(k + 1);
    for (i, &v) in row.iter().enumerate() {
        let cand = (i, v);
        if heap.len() < k {
            heap.push(cand);
            heap.sort_by(|a, b| {
                if worse(a, b) {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Less
                }
            });
        } else if worse(heap.last().expect("non-empty"), &cand) {
            heap.pop();
            let pos = heap.partition_point(|e| !worse(e, &cand));
            heap.insert(pos, cand);
        }
    }
    heap
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn selects_smallest_sorted() {
        let row = [5.0f32, 1.0, 4.0, 2.0, 3.0];
        let got = top_k_smallest(&row, 3);
        assert_eq!(got, vec![(1, 1.0), (3, 2.0), (4, 3.0)]);
    }

    #[test]
    fn k_larger_than_row_returns_all() {
        let row = [2.0f64, 1.0];
        let got = top_k_smallest(&row, 10);
        assert_eq!(got, vec![(1, 1.0), (0, 2.0)]);
    }

    #[test]
    fn k_zero_returns_empty() {
        assert!(top_k_smallest::<f32>(&[1.0], 0).is_empty());
    }

    #[test]
    fn ties_break_by_lower_index() {
        let row = [1.0f32, 1.0, 1.0, 0.5];
        let got = top_k_smallest(&row, 2);
        assert_eq!(got, vec![(3, 0.5), (0, 1.0)]);
    }

    #[test]
    fn nans_are_selected_last() {
        let row = [f32::NAN, 2.0, 1.0];
        let got = top_k_smallest(&row, 2);
        assert_eq!(got[0], (2, 1.0));
        assert_eq!(got[1], (1, 2.0));
    }

    proptest! {
        #[test]
        fn matches_full_sort(row in proptest::collection::vec(0u32..1000, 1..200), k in 1usize..20) {
            let row: Vec<f64> = row.into_iter().map(|v| v as f64 / 10.0).collect();
            let got = top_k_smallest(&row, k);
            let mut want: Vec<(usize, f64)> = row.iter().copied().enumerate().collect();
            want.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN").then(a.0.cmp(&b.0)));
            want.truncate(k.min(row.len()));
            prop_assert_eq!(got, want);
        }
    }
}
