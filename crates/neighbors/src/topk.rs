//! Top-k selection over a distance row, and the canonical candidate
//! ordering shared by every merge path.

use sparse::Real;
use std::cmp::Ordering;

/// The canonical total order on `(index, distance)` candidates: ascending
/// by distance, NaNs after every finite value, and *all* ties — equal
/// values and NaN–NaN pairs alike — broken by lower index.
///
/// Every candidate merge in this crate (per-row top-k, slab merges,
/// multi-device shard merges, the serving layer's micro-batch path) must
/// sort with this comparator: it is a total order, so the k smallest
/// candidates of a row are a pure function of the row's contents,
/// independent of how the row was split into batches or shards. That is
/// the determinism contract of DESIGN.md §10 extended to selection.
pub fn cmp_dist_idx<T: Real>(a: &(usize, T), b: &(usize, T)) -> Ordering {
    match a.1.partial_cmp(&b.1) {
        Some(Ordering::Equal) => a.0.cmp(&b.0),
        Some(o) => o,
        // At least one NaN: NaNs sort last, NaN–NaN ties by index.
        None => match (a.1.is_nan(), b.1.is_nan()) {
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            _ => a.0.cmp(&b.0),
        },
    }
}

/// Returns the indices and values of the `k` smallest entries of `row`,
/// sorted ascending by value (ties broken by lower index, which keeps
/// results deterministic across batch splits).
///
/// Uses a bounded selection buffer: `O(n log k)` comparisons instead of
/// the `O(n log n)` of a full sort, which matters when `n` is the full
/// index size and `k` is a handful of neighbors.
pub fn top_k_smallest<T: Real>(row: &[T], k: usize) -> Vec<(usize, T)> {
    let k = k.min(row.len());
    if k == 0 {
        return Vec::new();
    }
    // Selection buffer kept ascending under `cmp_dist_idx`; the last
    // element is the current cut-off. NaNs sort last (never selected
    // unless unavoidable), and NaN–NaN ties break by index — the old
    // comparator returned "not worse" for every NaN–NaN pair, which is
    // not a total order: sorts were free to emit NaNs in arbitrary
    // (observed: reverse) index order and the cut-off test kept whichever
    // NaN happened to sit last.
    let worse =
        |x: &(usize, T), y: &(usize, T)| -> bool { cmp_dist_idx(x, y) == Ordering::Greater };
    let mut heap: Vec<(usize, T)> = Vec::with_capacity(k + 1);
    for (i, &v) in row.iter().enumerate() {
        let cand = (i, v);
        if heap.len() < k {
            // Ordered insert: O(log k) search + O(k) shift, instead of
            // re-sorting the whole buffer on every fill-phase push.
            let pos = heap.partition_point(|e| !worse(e, &cand));
            heap.insert(pos, cand);
        } else if worse(heap.last().expect("non-empty"), &cand) {
            heap.pop();
            let pos = heap.partition_point(|e| !worse(e, &cand));
            heap.insert(pos, cand);
        }
    }
    heap
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn selects_smallest_sorted() {
        let row = [5.0f32, 1.0, 4.0, 2.0, 3.0];
        let got = top_k_smallest(&row, 3);
        assert_eq!(got, vec![(1, 1.0), (3, 2.0), (4, 3.0)]);
    }

    #[test]
    fn k_larger_than_row_returns_all() {
        let row = [2.0f64, 1.0];
        let got = top_k_smallest(&row, 10);
        assert_eq!(got, vec![(1, 1.0), (0, 2.0)]);
    }

    #[test]
    fn k_zero_returns_empty() {
        assert!(top_k_smallest::<f32>(&[1.0], 0).is_empty());
    }

    #[test]
    fn ties_break_by_lower_index() {
        let row = [1.0f32, 1.0, 1.0, 0.5];
        let got = top_k_smallest(&row, 2);
        assert_eq!(got, vec![(3, 0.5), (0, 1.0)]);
    }

    #[test]
    fn nans_are_selected_last() {
        let row = [f32::NAN, 2.0, 1.0];
        let got = top_k_smallest(&row, 2);
        assert_eq!(got[0], (2, 1.0));
        assert_eq!(got[1], (1, 2.0));
    }

    #[test]
    fn nan_ties_break_by_lower_index() {
        // Regression: the pre-fix comparator treated every NaN–NaN pair
        // as "not worse" in both directions (not a total order), so runs
        // of NaNs came out in arbitrary order and selection kept the
        // wrong ones. Observed pre-fix on exactly this row: NaNs in
        // reverse index order.
        let row = [f64::NAN, f64::NAN, 1.0, 2.0, 6.0, f64::NAN, 5.0, f64::NAN];
        let got = top_k_smallest(&row, 7);
        let idx: Vec<usize> = got.iter().map(|&(i, _)| i).collect();
        assert_eq!(idx, vec![2, 3, 6, 4, 0, 1, 5]);
    }

    #[test]
    fn cmp_dist_idx_is_a_total_order_over_nans() {
        let cands = [(0, f64::NAN), (1, 0.5), (2, f64::NAN), (3, 0.5)];
        for a in &cands {
            assert_eq!(cmp_dist_idx(a, a), std::cmp::Ordering::Equal);
            for b in &cands {
                assert_eq!(cmp_dist_idx(a, b), cmp_dist_idx(b, a).reverse());
            }
        }
        let mut sorted = cands.to_vec();
        sorted.sort_by(cmp_dist_idx);
        let idx: Vec<usize> = sorted.iter().map(|&(i, _)| i).collect();
        assert_eq!(idx, vec![1, 3, 0, 2]);
    }

    /// Reference implementation: full sort under the canonical order.
    fn full_sort_reference(row: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut want: Vec<(usize, f64)> = row.iter().copied().enumerate().collect();
        want.sort_by(cmp_dist_idx);
        want.truncate(k.min(row.len()));
        want
    }

    proptest! {
        #[test]
        fn matches_full_sort(row in proptest::collection::vec(0u32..1000, 1..200), k in 1usize..20) {
            let row: Vec<f64> = row.into_iter().map(|v| v as f64 / 10.0).collect();
            let got = top_k_smallest(&row, k);
            let mut want: Vec<(usize, f64)> = row.iter().copied().enumerate().collect();
            want.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN").then(a.0.cmp(&b.0)));
            want.truncate(k.min(row.len()));
            prop_assert_eq!(got, want);
        }

        /// NaN-bearing rows (reachable via KL/JS divergence on valid
        /// inputs) must still select deterministically: smallest first,
        /// NaNs last, every tie — including NaN–NaN — by lower index.
        /// Fails on the pre-fix comparator (~25% of random cases).
        #[test]
        fn matches_full_sort_with_nans(
            cells in proptest::collection::vec((0u32..8, 0u32..10), 1..60),
            k in 1usize..30,
        ) {
            let row: Vec<f64> = cells
                .into_iter()
                .map(|(v, nan)| if nan < 3 { f64::NAN } else { v as f64 })
                .collect();
            let got = top_k_smallest(&row, k);
            let want = full_sort_reference(&row, k);
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.0, w.0);
                prop_assert_eq!(g.1.to_bits(), w.1.to_bits());
            }
        }
    }
}
