//! Multi-device sharding for batched k-NN queries.
//!
//! Related SpGEMM-on-semirings work scales past one accelerator by
//! sharding the computation across devices and merging partial results;
//! the same shape applies to our batched k-NN tiles. A [`MultiDevice`]
//! holds N simulated device replicas; a sharded query splits the index
//! into contiguous row slabs, assigns slab `j` to device `j % N`
//! (round-robin), runs each slab's pairwise-distance + top-k tiles on
//! its device, and merges the per-slab candidates with the same
//! canonical `(distance, index)` sort the single-device slab path uses —
//! so sharded results are identical to unsharded ones.
//!
//! Simulated time models the devices running concurrently:
//! [`KnnResult::sim_seconds`] for a sharded query is the *maximum* of
//! the per-device totals, while [`KnnResult::per_device_seconds`] keeps
//! the full vector for scaling studies (the `shard_scaling` bench bin).
//! Host wall-clock still executes devices in turn; combine `--devices`
//! with `--host-threads` (or `GPU_SIM_HOST_THREADS`) to parallelize the
//! blocks of each launch on the host.

use crate::knn::{KnnResult, NearestNeighbors};
use gpu_sim::Device;
use kernels::KernelError;
use sparse::{CsrMatrix, Real};

/// A fixed-size pool of simulated devices used to shard k-NN queries.
#[derive(Debug, Clone)]
pub struct MultiDevice {
    devices: Vec<Device>,
}

impl MultiDevice {
    /// Builds a pool of `n` replicas of `proto` (spec, sanitizer,
    /// profiler, watchdog). A fault plan on `proto` is re-armed per
    /// replica with an independent launch-ordinal counter, so each
    /// device sees the same deterministic fault sequence it would see
    /// running alone — sharding does not reshuffle injected faults.
    pub fn replicate(proto: &Device, n: usize) -> Self {
        let devices = (0..n.max(1))
            .map(|_| {
                let replica = proto.clone();
                match proto.fault_plan() {
                    Some(plan) => replica.with_fault_plan(plan.clone()),
                    None => replica,
                }
            })
            .collect();
        Self { devices }
    }

    /// The devices in the pool.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Number of devices in the pool (at least 1).
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Always false: [`MultiDevice::replicate`] clamps the pool to at
    /// least one device.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// A pool of `n` replicas cloned from this pool's first device —
    /// the replica-lifecycle primitive the serving fleet's autoscaler
    /// uses to grow or shrink deterministically. Fault plans, sanitizer
    /// and watchdog settings carry over exactly as in
    /// [`MultiDevice::replicate`]; each replica gets an independent
    /// launch-ordinal counter, so scaling never reshuffles injected
    /// faults on surviving replicas' workloads.
    pub fn resized(&self, n: usize) -> Self {
        Self::replicate(&self.devices[0], n)
    }
}

impl<T: Real> NearestNeighbors<T> {
    /// [`NearestNeighbors::kneighbors`], sharded across a device pool.
    ///
    /// The index is split into contiguous slabs
    /// ([`NearestNeighbors::with_index_batch_rows`], defaulting to one
    /// slab per device) assigned round-robin; per-slab top-k candidates
    /// are merged by `(distance, index)` and truncated to `k`, exactly
    /// like the single-device index-batching path, so results are
    /// identical to [`NearestNeighbors::kneighbors`] on one device.
    /// Per-device [`kernels::ResilienceReport`]s are concatenated in
    /// slab order.
    ///
    /// # Errors
    ///
    /// Returns the first kernel error any shard produces.
    ///
    /// # Panics
    ///
    /// Panics if the estimator has not been [`NearestNeighbors::fit`].
    pub fn kneighbors_sharded(
        &self,
        multi: &MultiDevice,
        query: &CsrMatrix<T>,
        k: usize,
    ) -> Result<KnnResult<T>, KernelError> {
        // One-shot: prepare the shard set fresh, query it once, drop it.
        // The serving layer builds the same [`crate::PreparedShards`]
        // once and keeps it cached across queries; both funnel through
        // the same execution core, so results are byte-identical.
        let shards = self.prepare_shards(multi);
        self.kneighbors_prepared(&shards, query, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::Distance;

    fn dataset() -> CsrMatrix<f64> {
        let mut data = vec![0.0; 120];
        for r in 0..12 {
            for c in 0..10 {
                if (r + 2 * c) % 4 == 0 {
                    data[r * 10 + c] = 1.0 + (r as f64) / 7.0 + (c as f64) / 31.0;
                }
            }
        }
        CsrMatrix::from_dense(12, 10, &data)
    }

    #[test]
    fn sharded_results_match_single_device() {
        let m = dataset();
        for d in [Distance::Euclidean, Distance::Cosine] {
            let single = NearestNeighbors::new(Device::volta(), d)
                .fit(m.clone())
                .kneighbors(&m, 4)
                .expect("ok");
            for devices in [1usize, 2, 3, 5] {
                let multi = MultiDevice::replicate(&Device::volta(), devices);
                let sharded = NearestNeighbors::new(Device::volta(), d)
                    .fit(m.clone())
                    .kneighbors_sharded(&multi, &m, 4)
                    .expect("ok");
                assert_eq!(single.indices, sharded.indices, "{d} x{devices}");
                for (a, b) in single.distances.iter().zip(&sharded.distances) {
                    for (x, y) in a.iter().zip(b) {
                        assert!((x - y).abs() < 1e-9, "{d} x{devices}");
                    }
                }
            }
        }
    }

    #[test]
    fn sharding_attributes_time_per_device_and_takes_the_max() {
        let m = dataset();
        let multi = MultiDevice::replicate(&Device::volta(), 3);
        let r = NearestNeighbors::new(Device::volta(), Distance::Manhattan)
            .fit(m.clone())
            .kneighbors_sharded(&multi, &m, 3)
            .expect("ok");
        assert_eq!(r.devices, 3);
        assert_eq!(r.per_device_seconds.len(), 3);
        assert!(r.per_device_seconds.iter().all(|&s| s > 0.0));
        let max = r.per_device_seconds.iter().cloned().fold(0.0, f64::max);
        assert_eq!(r.sim_seconds, max);
        let sum: f64 = r.per_device_seconds.iter().sum();
        assert!(r.sim_seconds < sum, "concurrent devices overlap in time");
    }

    #[test]
    fn round_robin_respects_explicit_slab_rows() {
        let m = dataset();
        // 12 rows / slabs of 2 = 6 slabs over 2 devices (3 each).
        let multi = MultiDevice::replicate(&Device::volta(), 2);
        let r = NearestNeighbors::new(Device::volta(), Distance::Euclidean)
            .with_index_batch_rows(2)
            .fit(m.clone())
            .kneighbors_sharded(&multi, &m, 4)
            .expect("ok");
        assert_eq!(r.batches, 6);
        let whole = NearestNeighbors::new(Device::volta(), Distance::Euclidean)
            .fit(m.clone())
            .kneighbors(&m, 4)
            .expect("ok");
        assert_eq!(whole.indices, r.indices);
    }

    #[test]
    fn resized_pools_preserve_proto_and_results() {
        let m = dataset();
        let multi = MultiDevice::replicate(&Device::volta(), 2);
        let grown = multi.resized(4);
        assert_eq!(grown.len(), 4);
        let shrunk = grown.resized(1);
        assert_eq!(shrunk.len(), 1);
        // Results are pool-size independent (the determinism contract
        // the autoscaler leans on).
        let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(m.clone());
        let a = nn.kneighbors_sharded(&multi, &m, 3).expect("ok");
        let b = nn.kneighbors_sharded(&grown, &m, 3).expect("ok");
        assert_eq!(a.indices, b.indices);
    }

    #[test]
    fn single_device_pool_delegates_to_plain_path() {
        let m = dataset();
        let multi = MultiDevice::replicate(&Device::volta(), 1);
        let r = NearestNeighbors::new(Device::volta(), Distance::Cosine)
            .fit(m.clone())
            .kneighbors_sharded(&multi, &m, 2)
            .expect("ok");
        assert_eq!(r.devices, 1);
        assert_eq!(r.per_device_seconds.len(), 1);
    }
}
