//! Seeded, deterministic IVF (inverted-file) approximate index with
//! exact rerank.
//!
//! The brute-force estimator answers a query by scanning every index
//! row. An [`IvfIndex`] makes candidate generation sublinear: a seeded
//! k-means-style pass clusters the index rows into `nlist` posting
//! lists (centroid assignment is itself a semiring distance
//! computation, run through the same pairwise kernels as every query),
//! and a query only visits the `nprobe` lists whose centroids are
//! nearest. Every visited list is then scanned *exactly* — the same
//! `pairwise_distances_prepared` tiles and the same per-slab top-k the
//! brute-force path uses — and the per-list candidates are merged
//! under the canonical [`cmp_dist_idx`] total order.
//!
//! Two properties follow by construction rather than by tuning:
//!
//! * **Exact rerank, deterministic bits.** Distances are computed by
//!   the same exact kernel tiles the brute-force path runs, never
//!   estimated, so a partial probe can only *omit* neighbors (those
//!   whose posting list was not probed), never invent them. Every
//!   search is byte-reproducible: the same (index, fit params, query
//!   set, `nprobe`) yields identical bytes across host-thread counts
//!   and device-pool sizes. Pair distances agree with the exact
//!   oracle's entry for the same row to floating-point re-association
//!   precision — the identical ulp-level re-tiling effect `kneighbors`
//!   itself exhibits across `with_index_batch_rows` geometries
//!   (DESIGN §10): the hybrid COO sweep folds a streamed row's terms
//!   at 32-lane chunk boundaries measured from the slab's start, so
//!   re-slabbing re-associates the sum. For annihilating /
//!   expansion-based families (Euclidean, Cosine, dot-product — one
//!   pass, only the posting-list side streamed) a pair's bits are
//!   additionally independent of `nprobe` and of which query rows
//!   share the probe; NAMM families stream the gathered query rows in
//!   their second pass, so their bits re-associate like any re-tiling
//!   when the visitor set changes.
//! * **Byte-identity at `nprobe == nlist` — by construction.** A full
//!   probe would scan every posting list, so the search degenerates to
//!   the exact estimator itself: the same slab geometry, the same
//!   `kneighbors_core` tiles, the same canonical [`cmp_dist_idx`]
//!   merge. The answer is therefore byte-identical to the exact
//!   oracle's for any distance family, kernel strategy, or host-thread
//!   count — structural, not a numerical coincidence.
//!
//! Fitting and search are deterministic: the only randomness is the
//! seeded Fisher–Yates centroid initialization, host-side reductions
//! run in fixed ascending-row order, and cluster tiles are visited in
//! ascending cluster order (per-device attribution keeps simulated
//! time shard-count independent, exactly like [`crate::MultiDevice`]).

use crate::knn::{KnnResult, NearestNeighbors};
use crate::multi::MultiDevice;
use crate::topk::cmp_dist_idx;
use gpu_sim::Device;
use kernels::{KernelError, MemoryFootprint, PreparedIndex};
use sparse::{CsrMatrix, Idx, Real};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Fitting and probing parameters for an [`IvfIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvfParams {
    /// Number of posting lists (clusters). Clamped to the number of
    /// index rows at fit time.
    pub nlist: usize,
    /// Default number of lists probed per query. Clamped to
    /// `[1, nlist]` at query time; `nprobe == nlist` degenerates to
    /// the exact path.
    pub nprobe: usize,
    /// Lloyd refinement iterations after the seeded initialization
    /// (0 = keep the sampled rows as centroids).
    pub iters: usize,
    /// Seed for the deterministic centroid initialization.
    pub seed: u64,
}

impl Default for IvfParams {
    fn default() -> Self {
        Self {
            nlist: 16,
            nprobe: 4,
            iters: 3,
            seed: 0x5EED_0009,
        }
    }
}

/// Per-query-batch probe accounting, surfaced so the serving layer can
/// export `ann.*` counters without re-deriving them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IvfQueryStats {
    /// The clamped `nprobe` this search ran with.
    pub nprobe: usize,
    /// Total (query row × probed list) pairs.
    pub probes: usize,
    /// Total shortlist rows scanned across all probed lists (the
    /// exact-rerank work; `query rows × index rows` for the
    /// brute-force path).
    pub shortlist_rows: usize,
}

/// An IVF search result: the k-NN answer plus probe accounting.
#[derive(Debug, Clone)]
pub struct IvfAnswer<T> {
    /// The merged k-NN result (same shape as the brute-force paths).
    pub knn: KnnResult<T>,
    /// Probe accounting for this call.
    pub stats: IvfQueryStats,
}

/// One non-empty posting list prepared on a device: the gathered
/// sub-CSR uploads plus lazily cached norms, pinned round-robin like
/// [`crate::PreparedShard`].
#[derive(Debug, Clone)]
pub struct IvfShard<T> {
    /// Cluster (posting list) id this slab covers.
    pub cluster: usize,
    /// Rows in the list.
    pub rows: usize,
    /// Position of the owning device in the pool.
    pub device_slot: usize,
    /// The device this list's uploads live on.
    pub device: Device,
    /// The list's uploads and cached norms.
    pub index: Arc<PreparedIndex<T>>,
}

/// Posting lists and centroids prepared for repeated queries against a
/// device pool — the IVF analog of [`crate::PreparedShards`], built
/// once with [`IvfIndex::prepare`] and reused by every search.
#[derive(Debug, Clone)]
pub struct IvfPrepared<T> {
    pool: Vec<Device>,
    centroid: Arc<PreparedIndex<T>>,
    shards: Vec<IvfShard<T>>,
}

impl<T: Real> IvfPrepared<T> {
    /// Number of devices in the pool.
    pub fn devices(&self) -> usize {
        self.pool.len()
    }

    /// The prepared non-empty posting lists, ascending by cluster id.
    pub fn shards(&self) -> &[IvfShard<T>] {
        &self.shards
    }

    /// Simulated device bytes held by the prepared uploads (centroid
    /// slab + every posting-list slab, plus one norm vector per row) —
    /// what a prepared-artifact cache charges against its budget.
    pub fn device_bytes(&self) -> usize {
        let lists: usize = self
            .shards
            .iter()
            .map(|s| s.index.upload_bytes() + s.rows * std::mem::size_of::<T>())
            .sum();
        lists + self.centroid.upload_bytes() + self.centroid.rows() * std::mem::size_of::<T>()
    }
}

/// A fitted IVF index over a [`NearestNeighbors`] estimator's data:
/// seeded centroids, ascending posting lists, and a prepared
/// single-device artifact for immediate querying.
#[derive(Debug, Clone)]
pub struct IvfIndex<T> {
    nn: NearestNeighbors<T>,
    params: IvfParams,
    nlist: usize,
    centroids: CsrMatrix<T>,
    lists: Vec<Vec<usize>>,
    slabs: Vec<CsrMatrix<T>>,
    index_rows: usize,
    fit_sim_seconds: f64,
    fit_assign_passes: usize,
    home: IvfPrepared<T>,
}

/// `splitmix64` step — the only PRNG the fit needs, inlined so the
/// index has no dependency on a random crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Gathers `ids` (any order, duplicates allowed) of `m` into a new CSR
/// matrix, one output row per id.
fn gather_rows<T: Real>(m: &CsrMatrix<T>, ids: &[usize]) -> CsrMatrix<T> {
    let mut indptr = Vec::with_capacity(ids.len() + 1);
    indptr.push(0);
    let mut indices: Vec<Idx> = Vec::new();
    let mut values: Vec<T> = Vec::new();
    for &r in ids {
        indices.extend_from_slice(m.row_indices(r));
        values.extend_from_slice(m.row_values(r));
        indptr.push(indices.len());
    }
    CsrMatrix::from_parts(ids.len(), m.cols(), indptr, indices, values)
        .expect("gathered rows of a valid CSR form a valid CSR")
}

/// Mean-update step: each non-empty cluster's centroid becomes the
/// arithmetic mean of its members (accumulated in `f64`, ascending row
/// order, sorted columns — fully deterministic); empty clusters keep
/// their previous centroid so `nlist` never shrinks mid-fit.
fn update_centroids<T: Real>(
    x: &CsrMatrix<T>,
    lists: &[Vec<usize>],
    prev: &CsrMatrix<T>,
) -> CsrMatrix<T> {
    let mut indptr = Vec::with_capacity(lists.len() + 1);
    indptr.push(0);
    let mut indices: Vec<Idx> = Vec::new();
    let mut values: Vec<T> = Vec::new();
    for (c, members) in lists.iter().enumerate() {
        if members.is_empty() {
            indices.extend_from_slice(prev.row_indices(c));
            values.extend_from_slice(prev.row_values(c));
        } else {
            let mut acc: BTreeMap<Idx, f64> = BTreeMap::new();
            for &r in members {
                for (&col, &v) in x.row_indices(r).iter().zip(x.row_values(r)) {
                    *acc.entry(col).or_insert(0.0) += v.to_f64();
                }
            }
            let inv = 1.0 / members.len() as f64;
            for (col, sum) in acc {
                let mean = sum * inv;
                if mean != 0.0 {
                    indices.push(col);
                    values.push(T::from_f64(mean));
                }
            }
        }
        indptr.push(indices.len());
    }
    CsrMatrix::from_parts(lists.len(), x.cols(), indptr, indices, values)
        .expect("means over sorted columns form a valid CSR")
}

fn merge_stats<T>(
    peak: &mut MemoryFootprint,
    launches: &mut Vec<gpu_sim::LaunchStats>,
    resilience: &mut Vec<kernels::ResilienceReport>,
    batches: &mut usize,
    r: KnnResult<T>,
) -> (Vec<Vec<usize>>, Vec<Vec<T>>, f64) {
    peak.input_bytes = peak.input_bytes.max(r.peak_memory.input_bytes);
    peak.output_bytes = peak.output_bytes.max(r.peak_memory.output_bytes);
    peak.workspace_bytes = peak.workspace_bytes.max(r.peak_memory.workspace_bytes);
    launches.extend(r.launches);
    resilience.extend(r.resilience);
    *batches += r.batches;
    (r.indices, r.distances, r.sim_seconds)
}

impl<T: Real> IvfIndex<T> {
    /// Fits an IVF index over `nn`'s fitted data: seeded Fisher–Yates
    /// centroid initialization, `params.iters` Lloyd refinements where
    /// assignment runs through the estimator's own distance kernels
    /// (so "nearest centroid" means nearest under the metric being
    /// served, not silently Euclidean), then a final assignment that
    /// freezes the posting lists ascending by row id.
    ///
    /// # Errors
    ///
    /// Returns a kernel error if an assignment pass fails.
    ///
    /// # Panics
    ///
    /// Panics if `nn` has not been [`NearestNeighbors::fit`], the index
    /// is empty, or `params.nlist == 0`.
    pub fn fit(nn: &NearestNeighbors<T>, params: IvfParams) -> Result<Self, KernelError> {
        // The rerank estimator reuses every kernel setting of `nn` but
        // never the fused path: IVF's whole point is tiling over
        // posting-list slabs, which the fused kernel bypasses.
        let base = nn.clone().with_fused(false);
        let x = base
            .index()
            .expect("call fit() on the estimator before IvfIndex::fit()")
            .clone();
        let n = x.rows();
        assert!(n > 0, "IVF requires a non-empty index");
        assert!(params.nlist > 0, "nlist must be >= 1");
        let nlist = params.nlist.min(n);

        let mut ids: Vec<usize> = (0..n).collect();
        let mut state = params.seed ^ 0x5EED_5EED_5EED_5EED;
        for i in (1..n).rev() {
            let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
            ids.swap(i, j);
        }
        ids.truncate(nlist);
        ids.sort_unstable();
        let mut centroids = gather_rows(&x, &ids);

        let device = base.device().clone();
        let mut fit_sim_seconds = 0.0;
        let mut fit_assign_passes = 0;
        let mut lists: Vec<Vec<usize>> = vec![Vec::new(); nlist];
        for iter in 0..=params.iters {
            let prep = Arc::new(PreparedIndex::new(&device, centroids.clone()));
            let assign = base.kneighbors_core(&device, &[(0, prep)], nlist, &x, 1)?;
            fit_sim_seconds += assign.sim_seconds;
            fit_assign_passes += 1;
            lists = vec![Vec::new(); nlist];
            for (row, nearest) in assign.indices.iter().enumerate() {
                // k=1 against a non-empty centroid set always yields a
                // candidate; the fallback keeps degenerate inputs (all
                // distances NaN on every centroid) deterministic.
                let c = nearest.first().copied().unwrap_or(row % nlist);
                lists[c.min(nlist - 1)].push(row);
            }
            if iter == params.iters {
                break;
            }
            centroids = update_centroids(&x, &lists, &centroids);
        }

        let slabs: Vec<CsrMatrix<T>> = lists.iter().map(|l| gather_rows(&x, l)).collect();
        let home = Self::prepare_on(std::slice::from_ref(&device), &centroids, &lists, &slabs);
        Ok(Self {
            nn: base,
            params,
            nlist,
            centroids,
            lists,
            slabs,
            index_rows: n,
            fit_sim_seconds,
            fit_assign_passes,
            home,
        })
    }

    /// The parameters this index was fitted with.
    pub fn params(&self) -> IvfParams {
        self.params
    }

    /// Effective number of posting lists (`params.nlist` clamped to the
    /// index row count).
    pub fn nlist(&self) -> usize {
        self.nlist
    }

    /// The distance metric queries run under.
    pub fn metric(&self) -> semiring::Distance {
        self.nn.metric()
    }

    /// Rows in the indexed dataset.
    pub fn index_rows(&self) -> usize {
        self.index_rows
    }

    /// The posting lists, ascending by cluster id; each list is
    /// ascending by original row id and the lists partition
    /// `0..index_rows`.
    pub fn lists(&self) -> &[Vec<usize>] {
        &self.lists
    }

    /// The fitted centroid matrix (`nlist` rows).
    pub fn centroids(&self) -> &CsrMatrix<T> {
        &self.centroids
    }

    /// Simulated seconds the assignment passes of the fit spent.
    pub fn fit_sim_seconds(&self) -> f64 {
        self.fit_sim_seconds
    }

    /// Assignment passes executed during the fit (`iters + 1`).
    pub fn fit_assign_passes(&self) -> usize {
        self.fit_assign_passes
    }

    /// Simulated device bytes held by the resident single-device
    /// prepared artifact (what a serving cache charges for this index).
    pub fn device_bytes(&self) -> usize {
        self.home.device_bytes()
    }

    fn prepare_on(
        pool: &[Device],
        centroids: &CsrMatrix<T>,
        lists: &[Vec<usize>],
        slabs: &[CsrMatrix<T>],
    ) -> IvfPrepared<T> {
        let nd = pool.len().max(1);
        let centroid = Arc::new(PreparedIndex::new(&pool[0], centroids.clone()));
        let mut shards = Vec::new();
        let mut slot = 0;
        for (cluster, slab) in slabs.iter().enumerate() {
            if lists[cluster].is_empty() {
                continue;
            }
            let device_slot = slot % nd;
            let device = pool[device_slot].clone();
            shards.push(IvfShard {
                cluster,
                rows: slab.rows(),
                device_slot,
                device: device.clone(),
                index: Arc::new(PreparedIndex::new(&device, slab.clone())),
            });
            slot += 1;
        }
        IvfPrepared {
            pool: pool.to_vec(),
            centroid,
            shards,
        }
    }

    /// Builds the prepared posting-list shard set for a device pool:
    /// non-empty lists are assigned round-robin (list `j` of the
    /// non-empty sequence → device `j % N`), each uploaded to its
    /// device exactly once, with the centroid slab pinned to the first
    /// device. The serving layer builds this once per pool shape and
    /// caches it.
    pub fn prepare(&self, multi: &MultiDevice) -> IvfPrepared<T> {
        Self::prepare_on(multi.devices(), &self.centroids, &self.lists, &self.slabs)
    }

    /// Searches with the fitted default `nprobe` on the estimator's own
    /// device (see [`IvfIndex::search_prepared`]).
    ///
    /// # Errors
    ///
    /// Returns the first kernel error any tile produces.
    pub fn search(&self, query: &CsrMatrix<T>, k: usize) -> Result<IvfAnswer<T>, KernelError> {
        self.search_with_nprobe(query, k, self.params.nprobe)
    }

    /// Searches with an explicit `nprobe` on the estimator's own device
    /// (see [`IvfIndex::search_prepared`]).
    ///
    /// # Errors
    ///
    /// Returns the first kernel error any tile produces.
    pub fn search_with_nprobe(
        &self,
        query: &CsrMatrix<T>,
        k: usize,
        nprobe: usize,
    ) -> Result<IvfAnswer<T>, KernelError> {
        self.search_prepared(&self.home, query, k, nprobe)
    }

    /// Searches against a device pool: probe once, then rerank each
    /// probed posting list on the device its slab is pinned to, exactly
    /// like [`IvfIndex::search_prepared`] over [`IvfIndex::prepare`].
    /// Partial-probe results are byte-identical across pool sizes; a
    /// full probe (`nprobe >= nlist`) degenerates to
    /// [`NearestNeighbors::kneighbors_sharded`] on the pool, matching
    /// the sharded exact oracle byte for byte.
    ///
    /// # Errors
    ///
    /// Returns the first kernel error any tile produces.
    pub fn search_sharded(
        &self,
        multi: &MultiDevice,
        query: &CsrMatrix<T>,
        k: usize,
        nprobe: usize,
    ) -> Result<IvfAnswer<T>, KernelError> {
        if nprobe.clamp(1, self.nlist) == self.nlist {
            let knn = self.nn.kneighbors_sharded(multi, query, k)?;
            return Ok(IvfAnswer {
                knn,
                stats: self.full_probe_stats(query.rows()),
            });
        }
        let prep = self.prepare(multi);
        self.search_prepared(&prep, query, k, nprobe)
    }

    /// Probe accounting for a degenerate full probe: every list visited
    /// by every query row, the whole index reranked.
    fn full_probe_stats(&self, query_rows: usize) -> IvfQueryStats {
        IvfQueryStats {
            nprobe: self.nlist,
            probes: query_rows * self.nlist,
            shortlist_rows: query_rows * self.index_rows,
        }
    }

    /// The IVF query core: probe → shortlist → exact rerank → merge.
    ///
    /// 0. **Degenerate full probe.** `nprobe >= nlist` means every
    ///    posting list would be scanned, so the call runs the exact
    ///    estimator directly ([`NearestNeighbors::kneighbors`] — same
    ///    slab geometry, same execution core) instead of re-deriving
    ///    the oracle through gathered slabs whose stream alignment
    ///    would re-associate the sums. Byte-identity with the exact
    ///    path is structural, not numerical.
    /// 1. **Probe.** One k-NN pass of the query rows against the
    ///    centroid slab (`k = nprobe`) on the pool's first device —
    ///    the same `kneighbors_core` every exact path uses, so probe
    ///    ordering inherits the canonical tie-breaking.
    /// 2. **Rerank.** For each posting list probed by at least one
    ///    query row (ascending cluster order), the probing query rows
    ///    are gathered and scanned against the list's prepared slab
    ///    with the exact distance tiles + per-slab top-k.
    /// 3. **Merge.** Per-list candidates are mapped back to original
    ///    row ids and merged under [`cmp_dist_idx`], truncated to `k`.
    ///
    /// Simulated time is attributed per device and the total is the
    /// maximum (devices run concurrently), matching the sharded exact
    /// path's accounting.
    ///
    /// # Errors
    ///
    /// Returns the first kernel error any tile produces.
    pub fn search_prepared(
        &self,
        prep: &IvfPrepared<T>,
        query: &CsrMatrix<T>,
        k: usize,
        nprobe: usize,
    ) -> Result<IvfAnswer<T>, KernelError> {
        let nprobe = nprobe.clamp(1, self.nlist);
        if nprobe == self.nlist {
            let knn = self.nn.kneighbors(query, k)?;
            return Ok(IvfAnswer {
                knn,
                stats: self.full_probe_stats(query.rows()),
            });
        }
        let nd = prep.pool.len().max(1);
        let mut per_device_seconds = vec![0.0f64; nd];
        let mut peak = MemoryFootprint::default();
        let mut launches = Vec::new();
        let mut resilience = Vec::new();
        let mut batches = 0;

        let probe = self.nn.kneighbors_core(
            &prep.pool[0],
            &[(0, Arc::clone(&prep.centroid))],
            self.nlist,
            query,
            nprobe,
        )?;
        let (probed_lists, _, probe_seconds) = merge_stats(
            &mut peak,
            &mut launches,
            &mut resilience,
            &mut batches,
            probe,
        );
        per_device_seconds[0] += probe_seconds;

        // Invert the probe result: which query rows visit each list.
        // Query rows are pushed in ascending order, so the gathered
        // sub-queries and the scatter back are both deterministic.
        let mut visitors: Vec<Vec<usize>> = vec![Vec::new(); self.nlist];
        let mut probes = 0;
        for (q, clusters) in probed_lists.iter().enumerate() {
            for &c in clusters {
                visitors[c].push(q);
                probes += 1;
            }
        }

        let mut pool: Vec<Vec<(usize, T)>> = vec![Vec::new(); query.rows()];
        let mut shortlist_rows = 0;
        for shard in &prep.shards {
            let qids = &visitors[shard.cluster];
            if qids.is_empty() {
                continue;
            }
            shortlist_rows += qids.len() * shard.rows;
            let sub_query = gather_rows(query, qids);
            let r = self.nn.kneighbors_core(
                &shard.device,
                &[(0, Arc::clone(&shard.index))],
                shard.rows,
                &sub_query,
                k,
            )?;
            let (indices, distances, seconds) =
                merge_stats(&mut peak, &mut launches, &mut resilience, &mut batches, r);
            per_device_seconds[shard.device_slot] += seconds;
            let ids = &self.lists[shard.cluster];
            for (local, (ri, rd)) in indices.iter().zip(&distances).enumerate() {
                pool[qids[local]].extend(ri.iter().zip(rd).map(|(&i, &d)| (ids[i], d)));
            }
        }

        let mut indices = Vec::with_capacity(query.rows());
        let mut distances = Vec::with_capacity(query.rows());
        for mut cand in pool {
            cand.sort_by(cmp_dist_idx);
            cand.truncate(k);
            indices.push(cand.iter().map(|&(i, _)| i).collect());
            distances.push(cand.into_iter().map(|(_, d)| d).collect());
        }
        let sim_seconds = per_device_seconds.iter().cloned().fold(0.0, f64::max);
        Ok(IvfAnswer {
            knn: KnnResult {
                indices,
                distances,
                sim_seconds,
                batches,
                peak_memory: peak,
                launches,
                resilience,
                devices: nd,
                per_device_seconds,
            },
            stats: IvfQueryStats {
                nprobe,
                probes,
                shortlist_rows,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::Distance;

    fn dataset(rows: usize, cols: usize) -> CsrMatrix<f64> {
        let mut data = vec![0.0; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                if (r * 7 + c * 3) % 5 == 0 {
                    data[r * cols + c] = 1.0 + (r as f64) / 9.0 + (c as f64) / 41.0;
                }
            }
        }
        CsrMatrix::from_dense(rows, cols, &data)
    }

    fn bits(rows: &[Vec<f64>]) -> Vec<Vec<u64>> {
        rows.iter()
            .map(|r| r.iter().map(|d| d.to_bits()).collect())
            .collect()
    }

    #[test]
    fn full_probe_is_byte_identical_to_exact() {
        let m = dataset(24, 12);
        for d in [Distance::Euclidean, Distance::Cosine, Distance::Manhattan] {
            let nn = NearestNeighbors::new(Device::volta(), d).fit(m.clone());
            let exact = nn.kneighbors(&m, 5).expect("exact ok");
            let ivf = IvfIndex::fit(
                &nn,
                IvfParams {
                    nlist: 6,
                    nprobe: 6,
                    ..IvfParams::default()
                },
            )
            .expect("fit ok");
            let got = ivf.search(&m, 5).expect("search ok");
            assert_eq!(exact.indices, got.knn.indices, "{d}");
            assert_eq!(bits(&exact.distances), bits(&got.knn.distances), "{d}");
        }
    }

    #[test]
    fn partial_probe_pairs_agree_with_the_oracle_and_are_nprobe_stable() {
        let m = dataset(30, 10);
        let nn = NearestNeighbors::new(Device::volta(), Distance::Cosine).fit(m.clone());
        // Full ranking as the oracle: every id a partial probe serves
        // must appear in it, with the distance agreeing to re-tiling
        // (ulp) precision — the rerank is exact, only coverage is
        // approximate. Bits may differ from the oracle's by the slab
        // re-association documented in the module header, but they are
        // a pure function of the fitted lists: the same pair served at
        // a different (partial) nprobe carries identical bits.
        let oracle = nn.kneighbors(&m, m.rows()).expect("oracle ok");
        let ivf = IvfIndex::fit(
            &nn,
            IvfParams {
                nlist: 8,
                nprobe: 2,
                ..IvfParams::default()
            },
        )
        .expect("fit ok");
        let mut seen: std::collections::BTreeMap<(usize, usize), u64> =
            std::collections::BTreeMap::new();
        for nprobe in [2usize, 3, 5] {
            let got = ivf.search_with_nprobe(&m, 4, nprobe).expect("search ok");
            for q in 0..m.rows() {
                for (i, d) in got.knn.indices[q].iter().zip(&got.knn.distances[q]) {
                    let pos = oracle.indices[q]
                        .iter()
                        .position(|x| x == i)
                        .unwrap_or_else(|| panic!("row {q}: id {i} not in oracle"));
                    assert!(
                        (oracle.distances[q][pos] - d).abs() < 1e-9,
                        "row {q} id {i}: {} vs oracle {}",
                        d,
                        oracle.distances[q][pos]
                    );
                    let prev = seen.insert((q, *i), d.to_bits());
                    if let Some(bits) = prev {
                        assert_eq!(bits, d.to_bits(), "row {q} id {i}: bits drift with nprobe");
                    }
                }
            }
        }
    }

    #[test]
    fn recall_is_monotone_in_nprobe() {
        let m = dataset(40, 14);
        let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(m.clone());
        let exact = nn.kneighbors(&m, 5).expect("exact ok");
        let ivf = IvfIndex::fit(
            &nn,
            IvfParams {
                nlist: 10,
                nprobe: 1,
                ..IvfParams::default()
            },
        )
        .expect("fit ok");
        let mut prev = 0.0;
        for nprobe in 1..=ivf.nlist() {
            let got = ivf.search_with_nprobe(&m, 5, nprobe).expect("search ok");
            let mut hits = 0;
            let mut total = 0;
            for q in 0..m.rows() {
                total += exact.indices[q].len();
                hits += exact.indices[q]
                    .iter()
                    .filter(|i| got.knn.indices[q].contains(i))
                    .count();
            }
            let recall = hits as f64 / total as f64;
            assert!(
                recall >= prev,
                "recall must not drop: {prev} -> {recall} at nprobe {nprobe}"
            );
            prev = recall;
        }
        assert!((prev - 1.0).abs() < 1e-12, "full probe must reach recall 1");
    }

    #[test]
    fn sharded_search_is_byte_identical_across_pool_sizes() {
        let m = dataset(26, 11);
        let nn = NearestNeighbors::new(Device::volta(), Distance::Manhattan).fit(m.clone());
        let ivf = IvfIndex::fit(
            &nn,
            IvfParams {
                nlist: 7,
                nprobe: 3,
                ..IvfParams::default()
            },
        )
        .expect("fit ok");
        let single = ivf.search(&m, 4).expect("search ok");
        for devices in [1usize, 2, 4] {
            let multi = MultiDevice::replicate(&Device::volta(), devices);
            let sharded = ivf.search_sharded(&multi, &m, 4, 3).expect("sharded ok");
            assert_eq!(single.knn.indices, sharded.knn.indices, "x{devices}");
            assert_eq!(
                bits(&single.knn.distances),
                bits(&sharded.knn.distances),
                "x{devices}"
            );
            assert_eq!(sharded.knn.devices, devices.max(1));
        }
    }

    #[test]
    fn lists_partition_the_index_and_stay_sorted() {
        let m = dataset(33, 9);
        let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(m.clone());
        let ivf = IvfIndex::fit(&nn, IvfParams::default()).expect("fit ok");
        let mut seen = vec![false; m.rows()];
        for list in ivf.lists() {
            for w in list.windows(2) {
                assert!(w[0] < w[1], "lists must be ascending");
            }
            for &id in list {
                assert!(!seen[id], "row {id} assigned twice");
                seen[id] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every row must be assigned");
    }

    #[test]
    fn fit_is_deterministic_for_a_fixed_seed() {
        let m = dataset(28, 13);
        let nn = NearestNeighbors::new(Device::volta(), Distance::Cosine).fit(m.clone());
        let p = IvfParams {
            nlist: 5,
            nprobe: 2,
            iters: 2,
            seed: 42,
        };
        let a = IvfIndex::fit(&nn, p).expect("fit ok");
        let b = IvfIndex::fit(&nn, p).expect("fit ok");
        assert_eq!(a.lists(), b.lists());
        assert_eq!(a.centroids(), b.centroids());
    }

    #[test]
    fn nlist_larger_than_index_clamps() {
        let m = dataset(4, 6);
        let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(m.clone());
        let ivf = IvfIndex::fit(
            &nn,
            IvfParams {
                nlist: 64,
                nprobe: 64,
                ..IvfParams::default()
            },
        )
        .expect("fit ok");
        assert_eq!(ivf.nlist(), 4);
        let exact = nn.kneighbors(&m, 2).expect("exact ok");
        let got = ivf.search(&m, 2).expect("search ok");
        assert_eq!(exact.indices, got.knn.indices);
    }

    #[test]
    fn stats_count_probes_and_shortlist_rows() {
        let m = dataset(20, 8);
        let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(m.clone());
        let ivf = IvfIndex::fit(
            &nn,
            IvfParams {
                nlist: 5,
                nprobe: 2,
                ..IvfParams::default()
            },
        )
        .expect("fit ok");
        let got = ivf.search(&m, 3).expect("search ok");
        assert_eq!(got.stats.nprobe, 2);
        assert_eq!(got.stats.probes, m.rows() * 2);
        assert!(got.stats.shortlist_rows > 0);
        assert!(
            got.stats.shortlist_rows < m.rows() * m.rows(),
            "partial probe must scan less than brute force"
        );
        let full = ivf
            .search_with_nprobe(&m, 3, ivf.nlist())
            .expect("search ok");
        assert_eq!(full.stats.shortlist_rows, m.rows() * m.rows());
    }
}
