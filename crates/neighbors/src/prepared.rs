//! Prepared, device-resident shard sets reused across queries.
//!
//! A one-shot [`NearestNeighbors::kneighbors_sharded`] call validates,
//! slices, and uploads the index every time it runs — fine for a batch
//! job, wasteful for a serving loop answering many small queries against
//! the same index. [`PreparedShards`] captures everything that per-query
//! work produces: the slab decomposition (identical to the one the
//! sharded path computes), the round-robin device assignment, and one
//! [`kernels::PreparedIndex`] per slab (device CSR + COO uploads plus
//! lazily cached row norms). Build it once with
//! [`NearestNeighbors::prepare_shards`], then answer any number of
//! queries with [`NearestNeighbors::kneighbors_prepared`].
//!
//! Because both the one-shot paths and this one funnel through the same
//! `kneighbors_core` (same slab geometry, same query row-batching, same
//! canonical [`crate::topk::cmp_dist_idx`] merge), results from a
//! prepared query are byte-identical to
//! [`NearestNeighbors::kneighbors_sharded`] on the same pool — the
//! DESIGN §10 determinism contract extended to the serving layer.

use crate::knn::{KnnResult, NearestNeighbors};
use crate::multi::MultiDevice;
use crate::topk::cmp_dist_idx;
use gpu_sim::Device;
use kernels::{KernelError, MemoryFootprint, PreparedIndex};
use sparse::Real;
use std::sync::Arc;

/// One contiguous index slab, pinned to a device in the pool.
#[derive(Debug, Clone)]
pub struct PreparedShard<T> {
    /// First index row covered by this slab.
    pub offset: usize,
    /// Rows in this slab.
    pub rows: usize,
    /// Position of the owning device in the pool (`slab % devices`).
    pub device_slot: usize,
    /// The device this slab's uploads live on.
    pub device: Device,
    /// The slab's uploads and cached norms.
    pub index: Arc<PreparedIndex<T>>,
}

/// An index prepared for repeated sharded queries: slab decomposition,
/// device assignment, and per-slab uploads, built once and reused.
#[derive(Debug, Clone)]
pub struct PreparedShards<T> {
    pool: Vec<Device>,
    shards: Vec<PreparedShard<T>>,
    index_rows: usize,
    cols: usize,
}

impl<T: Real> PreparedShards<T> {
    /// Number of devices in the pool the shards are pinned to.
    pub fn devices(&self) -> usize {
        self.pool.len()
    }

    /// Total index rows covered by the shards.
    pub fn index_rows(&self) -> usize {
        self.index_rows
    }

    /// Index dimensionality.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The prepared slabs, in index-row order.
    pub fn shards(&self) -> &[PreparedShard<T>] {
        &self.shards
    }

    /// Simulated device bytes held by the prepared uploads (CSR + COO
    /// per slab, plus one norm vector per warmed norm kind). This is
    /// what a prepared-index cache charges against its memory budget.
    pub fn device_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.index.upload_bytes() + s.rows * std::mem::size_of::<T>())
            .sum()
    }
}

impl<T: Real> NearestNeighbors<T> {
    /// Builds the prepared shard set for this estimator's fitted index
    /// over `multi`: the same contiguous slab decomposition and
    /// round-robin device assignment
    /// [`NearestNeighbors::kneighbors_sharded`] would compute, with each
    /// slab uploaded to its device exactly once.
    ///
    /// Uploads are free in simulated time; the first query against each
    /// slab additionally pays one norm launch per norm kind the distance
    /// needs (or pre-pay it with [`NearestNeighbors::warm_shards`]).
    ///
    /// # Panics
    ///
    /// Panics if the estimator has not been [`NearestNeighbors::fit`].
    pub fn prepare_shards(&self, multi: &MultiDevice) -> PreparedShards<T> {
        let index = self
            .index()
            .expect("call fit() before prepare_shards()")
            .clone();
        let pool: Vec<Device> = multi.devices().to_vec();
        let nd = pool.len().max(1);
        let n = index.rows();
        let slab_rows = self.shard_slab_rows(n, nd);
        let mut shards = Vec::new();
        let mut off = 0;
        let mut slab = 0;
        while off < n {
            let end = (off + slab_rows).min(n);
            let device_slot = slab % nd;
            let device = pool[device_slot].clone();
            shards.push(PreparedShard {
                offset: off,
                rows: end - off,
                device_slot,
                device: device.clone(),
                index: Arc::new(PreparedIndex::new(&device, index.slice_rows(off..end))),
            });
            off = end;
            slab += 1;
        }
        PreparedShards {
            pool,
            shards,
            index_rows: n,
            cols: index.cols(),
        }
    }

    /// Pre-computes every norm kind this estimator's distance needs on
    /// every shard, so no query pays the first-use norm launches.
    /// Returns the simulated seconds spent and the number of norm
    /// launches executed (zero when the distance is norm-free or the
    /// norms were already cached).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Launch`] when a norm kernel's launch is
    /// rejected by the simulator.
    pub fn warm_shards(&self, shards: &PreparedShards<T>) -> Result<(f64, usize), KernelError> {
        // Transient faults on the warming launches honor the estimator's
        // resilience retry budget, the same absorption the norm launches
        // get when they run lazily inside the tile cascade.
        let retries = self
            .pairwise_options()
            .resilience
            .map(|p| p.retries)
            .unwrap_or(0);
        let mut seconds = 0.0;
        let mut launches = 0;
        for shard in &shards.shards {
            for &kind in self.metric().norms() {
                let mut left = retries;
                let stats = loop {
                    match shard.index.norm(&shard.device, kind) {
                        Ok((_, stats)) => break stats,
                        Err(e @ KernelError::Launch(gpu_sim::SimError::TransientFault { .. }))
                            if left > 0 =>
                        {
                            left -= 1;
                            let _ = e;
                        }
                        Err(e) => return Err(e),
                    }
                };
                if let Some(stats) = stats {
                    seconds += stats.sim_seconds();
                    launches += 1;
                }
            }
        }
        Ok((seconds, launches))
    }

    /// [`NearestNeighbors::kneighbors_sharded`] against an already
    /// prepared shard set: identical results (the two share their
    /// execution core), but uploads, slab slicing, and — once warmed —
    /// norm reductions are skipped entirely.
    ///
    /// # Errors
    ///
    /// Returns the first kernel error any shard produces.
    pub fn kneighbors_prepared(
        &self,
        shards: &PreparedShards<T>,
        query: &sparse::CsrMatrix<T>,
        k: usize,
    ) -> Result<KnnResult<T>, KernelError> {
        let nd = shards.devices();
        if nd <= 1 {
            // Single device: run all slabs in one core pass, exactly like
            // the plain kneighbors() slab loop.
            let device = shards.pool.first().cloned().unwrap_or_else(Device::volta);
            let prepared: Vec<(usize, Arc<PreparedIndex<T>>)> = shards
                .shards
                .iter()
                .map(|s| (s.offset, Arc::clone(&s.index)))
                .collect();
            return self.kneighbors_core(&device, &prepared, shards.index_rows, query, k);
        }

        let mut per_device_seconds = vec![0.0f64; nd];
        let mut batches = 0;
        let mut peak = MemoryFootprint::default();
        let mut launches = Vec::new();
        let mut resilience = Vec::new();
        let mut pool: Vec<Vec<(usize, T)>> = vec![Vec::new(); query.rows()];

        for shard in &shards.shards {
            let prepared = [(0usize, Arc::clone(&shard.index))];
            let r = self.kneighbors_core(&shard.device, &prepared, shard.rows, query, k)?;
            per_device_seconds[shard.device_slot] += r.sim_seconds;
            batches += r.batches;
            peak.input_bytes = peak.input_bytes.max(r.peak_memory.input_bytes);
            peak.output_bytes = peak.output_bytes.max(r.peak_memory.output_bytes);
            peak.workspace_bytes = peak.workspace_bytes.max(r.peak_memory.workspace_bytes);
            launches.extend(r.launches);
            resilience.extend(r.resilience);
            for (q, (ri, rd)) in r.indices.iter().zip(&r.distances).enumerate() {
                pool[q].extend(ri.iter().zip(rd).map(|(&i, &d)| (shard.offset + i, d)));
            }
        }

        let mut indices = Vec::with_capacity(query.rows());
        let mut distances = Vec::with_capacity(query.rows());
        for mut cand in pool {
            cand.sort_by(cmp_dist_idx);
            cand.truncate(k);
            indices.push(cand.iter().map(|&(i, _)| i).collect());
            distances.push(cand.into_iter().map(|(_, d)| d).collect());
        }
        let sim_seconds = per_device_seconds.iter().cloned().fold(0.0, f64::max);
        Ok(KnnResult {
            indices,
            distances,
            sim_seconds,
            batches,
            peak_memory: peak,
            launches,
            resilience,
            devices: nd,
            per_device_seconds,
        })
    }
}
