//! Pins for sharded k-NN edge cases: device pools larger than the
//! index, `k == 0`, empty operands, and the `KnnResult` invariant that
//! `devices` always equals `per_device_seconds.len()`.

use gpu_sim::Device;
use neighbors::{KnnResult, MultiDevice, NearestNeighbors};
use semiring::Distance;
use sparse::CsrMatrix;

fn dataset(rows: usize) -> CsrMatrix<f64> {
    let mut data = vec![0.0; rows * 10];
    for r in 0..rows {
        for c in 0..10 {
            if (r + 2 * c) % 4 == 0 {
                data[r * 10 + c] = 1.0 + (r as f64) / 7.0 + (c as f64) / 31.0;
            }
        }
    }
    CsrMatrix::from_dense(rows, 10, &data)
}

fn assert_consistent<T>(r: &KnnResult<T>, queries: usize, ctx: &str) {
    assert_eq!(
        r.devices,
        r.per_device_seconds.len(),
        "{ctx}: devices field vs time vector"
    );
    assert_eq!(r.indices.len(), queries, "{ctx}: one result row per query");
    assert_eq!(r.distances.len(), queries, "{ctx}");
    let max = r.per_device_seconds.iter().cloned().fold(0.0, f64::max);
    assert_eq!(
        r.sim_seconds, max,
        "{ctx}: sim_seconds is the per-device max"
    );
}

#[test]
fn more_devices_than_index_rows() {
    let m = dataset(3);
    let multi = MultiDevice::replicate(&Device::volta(), 5);
    let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(m.clone());
    let sharded = nn.kneighbors_sharded(&multi, &m, 2).expect("ok");
    assert_consistent(&sharded, 3, "5 devices x 3 rows");
    assert_eq!(sharded.devices, 5);
    // Only 3 single-row slabs exist; devices 3 and 4 stay idle.
    assert!(sharded.per_device_seconds[3] == 0.0 && sharded.per_device_seconds[4] == 0.0);
    let single = nn.kneighbors(&m, 2).expect("ok");
    assert_eq!(single.indices, sharded.indices);
}

#[test]
fn k_zero_yields_empty_rows_everywhere() {
    let m = dataset(3);
    let multi = MultiDevice::replicate(&Device::volta(), 5);
    for (label, r) in [
        (
            "plain/device-sel",
            NearestNeighbors::new(Device::volta(), Distance::Euclidean)
                .fit(m.clone())
                .kneighbors(&m, 0),
        ),
        (
            "plain/host-sel",
            NearestNeighbors::new(Device::volta(), Distance::Euclidean)
                .with_selection(neighbors::Selection::Host)
                .fit(m.clone())
                .kneighbors(&m, 0),
        ),
        (
            "fused",
            NearestNeighbors::new(Device::volta(), Distance::Euclidean)
                .with_fused(true)
                .fit(m.clone())
                .kneighbors(&m, 0),
        ),
        (
            "sharded",
            NearestNeighbors::new(Device::volta(), Distance::Euclidean)
                .fit(m.clone())
                .kneighbors_sharded(&multi, &m, 0),
        ),
    ] {
        let r = r.expect(label);
        assert_consistent(&r, 3, label);
        assert!(
            r.indices.iter().all(Vec::is_empty),
            "{label}: k=0 rows are empty"
        );
        assert!(r.distances.iter().all(Vec::is_empty), "{label}");
    }
}

#[test]
fn empty_index_yields_empty_rows() {
    let m = dataset(3);
    let empty = CsrMatrix::<f64>::zeros(0, 10);
    let multi = MultiDevice::replicate(&Device::volta(), 4);
    let r = NearestNeighbors::new(Device::volta(), Distance::Euclidean)
        .fit(empty)
        .kneighbors_sharded(&multi, &m, 2)
        .expect("ok");
    assert_consistent(&r, 3, "empty index");
    assert_eq!(r.devices, 4);
    assert_eq!(r.batches, 0, "no slabs to execute");
    assert!(r.indices.iter().all(Vec::is_empty));
}

#[test]
fn empty_query_yields_no_rows() {
    let m = dataset(3);
    let q = CsrMatrix::<f64>::zeros(0, 10);
    let multi = MultiDevice::replicate(&Device::volta(), 4);
    let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(m);
    let r = nn.kneighbors_sharded(&multi, &q, 2).expect("ok");
    assert_consistent(&r, 0, "empty query sharded");
    let r = nn.kneighbors(&q, 2).expect("ok");
    assert_consistent(&r, 0, "empty query plain");
}

#[test]
fn prepared_shards_reuse_is_byte_identical_to_one_shot() {
    let m = dataset(9);
    for devices in [1usize, 3, 5] {
        let multi = MultiDevice::replicate(&Device::volta(), devices);
        let nn = NearestNeighbors::new(Device::volta(), Distance::Cosine).fit(m.clone());
        let oneshot = nn.kneighbors_sharded(&multi, &m, 4).expect("ok");
        let shards = nn.prepare_shards(&multi);
        nn.warm_shards(&shards).expect("warm");
        // Query the same prepared set twice: cached norms must not
        // change a single bit of the answers.
        for pass in 0..2 {
            let served = nn.kneighbors_prepared(&shards, &m, 4).expect("ok");
            assert_eq!(oneshot.indices, served.indices, "x{devices} pass {pass}");
            for (a, b) in oneshot.distances.iter().zip(&served.distances) {
                let a: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
                let b: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
                assert_eq!(a, b, "x{devices} pass {pass}");
            }
        }
    }
}

#[test]
fn warming_shards_moves_norm_launches_out_of_the_query() {
    let m = dataset(9);
    let multi = MultiDevice::replicate(&Device::volta(), 3);
    let nn = NearestNeighbors::new(Device::volta(), Distance::Euclidean).fit(m.clone());
    let shards = nn.prepare_shards(&multi);
    let (warm_s, warm_launches) = nn.warm_shards(&shards).expect("warm");
    assert!(
        warm_launches > 0 && warm_s > 0.0,
        "euclidean needs L2 norms"
    );
    let (again_s, again_launches) = nn.warm_shards(&shards).expect("warm twice");
    assert_eq!(
        (again_launches, again_s),
        (0, 0.0),
        "norms cached after first warm"
    );
    let cold = nn.kneighbors_sharded(&multi, &m, 3).expect("ok");
    let warm = nn.kneighbors_prepared(&shards, &m, 3).expect("ok");
    assert!(
        warm.sim_seconds < cold.sim_seconds,
        "warmed queries skip norm launches"
    );
    assert_eq!(cold.indices, warm.indices);
}
