//! Multithreaded CPU brute-force baseline.
//!
//! The paper's CPU comparator is scikit-learn's brute-force
//! `NearestNeighbors` "configured to use all the available CPU cores"
//! (§4.2). This module is its Rust analog: exact pairwise distances over
//! sparse rows, with query rows parallelized across std scoped threads. The per-pair arithmetic reuses the same semiring
//! pipeline as the reference oracle, so the CPU baseline, the GPU
//! kernels, and the dense formulas agree by construction.

use semiring::reference::sparse_distance;
use semiring::{Distance, DistanceParams};
use sparse::{CsrMatrix, DenseMatrix, Idx, Real};

/// Exact brute-force pairwise/k-NN engine.
#[derive(Debug, Clone)]
pub struct CpuBruteForce {
    threads: usize,
}

impl Default for CpuBruteForce {
    fn default() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }
}

impl CpuBruteForce {
    /// Creates an engine using `threads` worker threads (at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Computes the dense `m × n` pairwise distance matrix.
    ///
    /// # Panics
    ///
    /// Panics if the operands' dimensionalities differ.
    pub fn pairwise<T: Real>(
        &self,
        a: &CsrMatrix<T>,
        b: &CsrMatrix<T>,
        distance: Distance,
        params: &DistanceParams,
    ) -> DenseMatrix<T> {
        assert_eq!(a.cols(), b.cols(), "operands must share dimensionality");
        let (m, n, k) = (a.rows(), b.rows(), a.cols());
        let mut out = vec![T::ZERO; m * n];

        // Pre-gather B rows once; every thread reads them.
        let b_rows: Vec<Vec<(Idx, T)>> = (0..n).map(|j| b.row(j).collect()).collect();

        let chunk = m.div_ceil(self.threads).max(1);
        std::thread::scope(|scope| {
            for (t, slab) in out.chunks_mut(chunk * n).enumerate() {
                let b_rows = &b_rows;
                let row0 = t * chunk;
                scope.spawn(move || {
                    for (r, dst) in slab.chunks_mut(n).enumerate() {
                        let i = row0 + r;
                        let ai: Vec<(Idx, T)> = a.row(i).collect();
                        for (j, cell) in dst.iter_mut().enumerate() {
                            *cell = sparse_distance(&ai, &b_rows[j], k, distance, params);
                        }
                    }
                });
            }
        });
        DenseMatrix::from_vec(m, n, out)
    }

    /// Brute-force k-nearest-neighbors query: for each row of `a`,
    /// returns the `k` index-matrix rows with the smallest distance, as
    /// `(index, distance)` sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if the operands' dimensionalities differ.
    pub fn knn<T: Real>(
        &self,
        a: &CsrMatrix<T>,
        b: &CsrMatrix<T>,
        k_neighbors: usize,
        distance: Distance,
        params: &DistanceParams,
    ) -> Vec<Vec<(usize, T)>> {
        let d = self.pairwise(a, b, distance, params);
        (0..a.rows())
            .map(|i| {
                let mut row: Vec<(usize, T)> = d.row(i).iter().copied().enumerate().collect();
                row.sort_by(|x, y| x.1.partial_cmp(&y.1).unwrap_or(std::cmp::Ordering::Equal));
                row.truncate(k_neighbors);
                row
            })
            .collect()
    }
}

/// One-shot convenience wrapper over [`CpuBruteForce::pairwise`] with all
/// available cores.
pub fn cpu_pairwise<T: Real>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    distance: Distance,
    params: &DistanceParams,
) -> DenseMatrix<T> {
    CpuBruteForce::default().pairwise(a, b, distance, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::reference::dense_pairwise;

    fn sample() -> (CsrMatrix<f64>, CsrMatrix<f64>) {
        let a = CsrMatrix::from_dense(
            5,
            6,
            &[
                0.4, 0.0, 0.2, 0.0, 0.1, 0.0, //
                0.0, 0.0, 0.0, 0.0, 0.0, 0.0, //
                0.1, 0.2, 0.0, 0.3, 0.0, 0.4, //
                1.0, 1.0, 1.0, 0.0, 0.0, 0.0, //
                0.0, 0.0, 1.0, 1.0, 1.0, 0.5,
            ],
        );
        let b = a.slice_rows(1..5);
        (a, b)
    }

    #[test]
    fn multithreaded_matches_dense_reference() {
        let (a, b) = sample();
        let params = DistanceParams { minkowski_p: 2.5 };
        for threads in [1, 2, 7] {
            let engine = CpuBruteForce::new(threads);
            for d in Distance::ALL {
                let got = engine.pairwise(&a, &b, d, &params);
                let want = dense_pairwise(&a, &b, d, &params);
                let diff = got.max_abs_diff(&want);
                assert!(diff < 1e-7, "{d} with {threads} threads: diff {diff}");
            }
        }
    }

    #[test]
    fn knn_returns_sorted_nearest() {
        let (a, b) = sample();
        let engine = CpuBruteForce::new(2);
        let res = engine.knn(&a, &b, 2, Distance::Euclidean, &DistanceParams::default());
        assert_eq!(res.len(), 5);
        for neighbors in &res {
            assert_eq!(neighbors.len(), 2);
            assert!(neighbors[0].1 <= neighbors[1].1);
        }
        // Row 2 of a equals row 1 of b → self-match at distance 0.
        assert_eq!(res[2][0].0, 1);
        assert!(res[2][0].1.abs() < 1e-12);
    }

    #[test]
    fn thread_count_is_clamped_to_one() {
        let engine = CpuBruteForce::new(0);
        assert_eq!(engine.threads(), 1);
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let (a, b) = sample();
        let engine = CpuBruteForce::new(64);
        let got = engine.pairwise(&a, &b, Distance::Cosine, &DistanceParams::default());
        let want = dense_pairwise(&a, &b, Distance::Cosine, &DistanceParams::default());
        assert!(got.max_abs_diff(&want) < 1e-9);
    }
}
