//! A `csrgemm()`-style SpGEMM baseline with cuSPARSE's memory behaviour.
//!
//! The paper's baseline for the expanded ("dot product based") distances
//! is cuSPARSE's CSR×CSR multiply. Structurally that requires, per §2
//! and §4.3:
//!
//! 1. an **explicit transposition of `B`** — "a full copy of B, since no
//!    elements can be shared between the original and transposed versions
//!    in the CSR data format";
//! 2. an **internal temporary workspace** (the accumulator state; the
//!    paper measured 300–550 MB per batch);
//! 3. a **sparse CSR output** whose density depends entirely on the data
//!    ("a density of 50% would require the same amount of space as the
//!    full dense pairwise distance matrix. A density of 100% requires
//!    2x"); and
//! 4. a **densification pass** into a separate dense allocation.
//!
//! [`csrgemm_pairwise`] reproduces that pipeline (Gustavson row-wise
//! multiply with a dense accumulator), reports every allocation, and
//! derives a simulated GPU time through the same roofline model the
//! kernels use, from the multiply's structural work counts.

mod gemm;
mod transform;

pub use gemm::{csrgemm, SpGemmOutput};
pub use transform::transform_for_dot;

use gpu_sim::{Counters, Device};
use semiring::{Distance, DistanceParams, ExpansionInputs, Family};
use sparse::{row_norms, CscMatrix, CsrMatrix, DenseMatrix, Real};

/// Memory and cost report of one csrgemm-based pairwise computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsrGemmReport {
    /// Nonzeros in the sparse dot-product output.
    pub output_nnz: usize,
    /// Density of the sparse output (`nnz / (m·n)`).
    pub output_density: f64,
    /// Bytes of the explicit `Bᵀ` copy.
    pub transpose_bytes: usize,
    /// Bytes of the internal accumulator workspace.
    pub workspace_bytes: usize,
    /// Bytes of the sparse CSR output (2 arrays of nnz + indptr).
    pub output_csr_bytes: usize,
    /// Bytes of the dense matrix the output must still be converted to.
    pub densified_bytes: usize,
    /// Simulated GPU seconds for the multiply + densification, via the
    /// shared roofline model.
    pub sim_seconds: f64,
}

/// Result of [`csrgemm_pairwise`].
#[derive(Debug)]
pub struct CsrGemmPairwise<T> {
    /// The final dense distance matrix.
    pub distances: DenseMatrix<T>,
    /// Memory/cost accounting.
    pub report: CsrGemmReport,
}

/// True when the paper's baseline computes this distance via cuSPARSE
/// (the "Dot Product Based" group of Table 3): the expanded family minus
/// KL divergence, whose `x·ln(x/y)` product is not expressible as a dot
/// of transformed vectors. KL and the NAMM distances fall back to the
/// naive full-union kernel, exactly as in the paper ("the naive CSR
/// full-union semiring implementation ... for the distances which
/// cuSPARSE does not support").
pub fn baseline_supports(distance: Distance) -> bool {
    distance.family() == Family::Expanded && distance != Distance::KlDivergence
}

/// Computes pairwise distances for an expanded-family distance through
/// the csrgemm pipeline: value transform → explicit `Bᵀ` → SpGEMM →
/// densify → host norms + expansion.
///
/// # Panics
///
/// Panics if `distance` is a NAMM-family distance (cuSPARSE "fixes the
/// inner product to the dot product"; check [`baseline_supports`]) or if
/// the operand dimensionalities differ.
pub fn csrgemm_pairwise<T: Real>(
    dev: &Device,
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    distance: Distance,
    params: &DistanceParams,
) -> CsrGemmPairwise<T> {
    assert!(
        baseline_supports(distance),
        "{distance} requires the NAMM; csrgemm only evaluates dot-product semirings"
    );
    assert_eq!(a.cols(), b.cols(), "operands must share dimensionality");
    let _ = params;
    let (m, n) = (a.rows(), b.rows());

    // 1. Pre-transform values so the fixed dot product computes the
    //    distance's inner term (√x for Hellinger; identity otherwise).
    let ta = transform_for_dot(a, distance);
    let tb = transform_for_dot(b, distance);

    // 2. Explicit transpose copy of B.
    let bt = CscMatrix::from(&tb);
    let transpose_bytes = bt.device_bytes();

    // 3. The multiply itself.
    let gemm = csrgemm(&ta, &bt, distance);

    // 4. Densify (requires a fresh dense allocation even at 99.9%
    //    density).
    let mut dots = DenseMatrix::zeros(m, n);
    for (i, j, v) in gemm.output.iter() {
        dots.set(i as usize, j as usize, v);
    }
    let densified_bytes = dots.device_bytes();

    // 5. Norms + expansion on the host side of the baseline.
    let kinds = distance.norms();
    let a_norms: Vec<_> = kinds.iter().map(|&k| row_norms(a, k)).collect();
    let b_norms: Vec<_> = kinds.iter().map(|&k| row_norms(b, k)).collect();
    let k = a.cols();
    for i in 0..m {
        for j in 0..n {
            let mut an = [T::ZERO; 2];
            let mut bn = [T::ZERO; 2];
            for (s, _) in kinds.iter().enumerate() {
                an[s] = a_norms[s].get(i);
                bn[s] = b_norms[s].get(j);
            }
            let d = distance.expand(ExpansionInputs {
                dot: dots.get(i, j),
                a_norms: an,
                b_norms: bn,
                k,
            });
            dots.set(i, j, d);
        }
    }

    // Simulated time from the multiply's structural counters plus the
    // densification and expansion traffic.
    let mut counters: Counters = gemm.counters;
    counters.global_bytes += 2 * densified_bytes as u64; // densify write + expansion rw
    counters.global_bytes_unique += densified_bytes as u64;
    counters.global_transactions += (densified_bytes as u64) / 64;
    let occupancy = dev.spec().occupancy(256, 0);
    let blocks = m.max(1);
    let cost = gpu_sim::cost::estimate(dev.spec(), blocks, &occupancy, &counters);

    let output_csr_bytes = gemm.output.device_bytes();
    CsrGemmPairwise {
        distances: dots,
        report: CsrGemmReport {
            output_nnz: gemm.output.nnz(),
            output_density: gemm.output.density(),
            transpose_bytes,
            workspace_bytes: gemm.workspace_bytes,
            output_csr_bytes,
            densified_bytes,
            sim_seconds: cost.total_seconds,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::reference::dense_pairwise;

    fn sample() -> (CsrMatrix<f64>, CsrMatrix<f64>) {
        let a = CsrMatrix::from_dense(
            3,
            5,
            &[
                0.4, 0.0, 0.2, 0.0, 0.1, //
                0.0, 0.0, 0.0, 0.0, 0.0, //
                0.1, 0.2, 0.0, 0.3, 0.0,
            ],
        );
        let b = CsrMatrix::from_dense(
            2,
            5,
            &[
                0.0, 0.5, 0.2, 0.0, 0.0, //
                0.4, 0.0, 0.2, 0.0, 0.1,
            ],
        );
        (a, b)
    }

    #[test]
    fn matches_dense_reference_for_every_expanded_distance() {
        let (a, b) = sample();
        let dev = Device::volta();
        let params = DistanceParams::default();
        for d in Distance::ALL.into_iter().filter(|d| baseline_supports(*d)) {
            let got = csrgemm_pairwise(&dev, &a, &b, d, &params);
            let want = dense_pairwise(&a, &b, d, &params);
            // Hellinger's √-transform computes √x·√y instead of √(x·y),
            // which differs by a few ulps — hence the 1e-7 tolerance.
            let diff = got.distances.max_abs_diff(&want);
            assert!(diff < 1e-7, "{d}: max diff {diff}");
        }
    }

    #[test]
    #[should_panic(expected = "requires the NAMM")]
    fn namm_distances_are_rejected() {
        let (a, b) = sample();
        let dev = Device::volta();
        csrgemm_pairwise(
            &dev,
            &a,
            &b,
            Distance::Manhattan,
            &DistanceParams::default(),
        );
    }

    #[test]
    fn report_accounts_for_every_allocation() {
        let (a, b) = sample();
        let dev = Device::volta();
        let r = csrgemm_pairwise(&dev, &a, &b, Distance::Cosine, &DistanceParams::default());
        assert!(r.report.transpose_bytes > 0, "explicit Bᵀ copy");
        assert!(r.report.workspace_bytes > 0, "internal workspace");
        assert_eq!(r.report.densified_bytes, 3 * 2 * 8);
        assert!(r.report.sim_seconds > 0.0);
        // Dot output here: rows 0 and 2 of a intersect both rows of b
        // except (0, b0)? — just check density bookkeeping is coherent.
        assert!((r.report.output_density - r.report.output_nnz as f64 / 6.0).abs() < 1e-12);
    }
}
