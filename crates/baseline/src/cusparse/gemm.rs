//! Row-wise (Gustavson) SpGEMM with structural cost accounting.

use gpu_sim::Counters;
use semiring::Distance;
use sparse::{CscMatrix, CsrBuilder, CsrMatrix, Real};

/// Concurrent row pipelines the modeled GPU keeps in flight; sizes the
/// internal accumulator workspace the way cuSPARSE's batch buffers do.
const ROWS_IN_FLIGHT: usize = 256;

/// Output of [`csrgemm`]: the sparse product plus the cost accounting
/// needed for §4.3 and the Table 3 baseline timings.
#[derive(Debug)]
pub struct SpGemmOutput<T> {
    /// The sparse `m × n` dot-product matrix `A · Bᵀ`.
    pub output: CsrMatrix<T>,
    /// Bytes of internal accumulator workspace the multiply holds.
    pub workspace_bytes: usize,
    /// Multiply-add operations performed (Gustavson work).
    pub flops: u64,
    /// Structural hardware counters fed to the shared roofline model.
    pub counters: Counters,
}

/// Multiplies `a` (`m × k`) by the explicitly transposed `bt` (the CSC of
/// a `n × k` matrix `B`), producing the sparse `m × n` dot-product
/// matrix.
///
/// Row-wise Gustavson with a dense accumulator: for each nonzero
/// `(c, v)` of `A_i`, scatter `v · Bᵀ[c, :]` into the accumulator. This
/// is the structure cuSPARSE's `csrgemm()` uses, and the work count
/// (`Σ_i Σ_{c∈A_i} deg(B[:, c])`) drives the simulated baseline time.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn csrgemm<T: Real>(
    a: &CsrMatrix<T>,
    bt: &CscMatrix<T>,
    _distance: Distance,
) -> SpGemmOutput<T> {
    assert_eq!(
        a.cols(),
        bt.cols(),
        "inner dimensions must agree (A is m×k, Bᵀ is supplied as the CSC of an n×k B)"
    );
    let m = a.rows();
    let n = bt.rows();

    let mut flops: u64 = 0;
    let mut row_flops: Vec<u64> = Vec::with_capacity(m);
    let mut acc: Vec<T> = vec![T::ZERO; n];
    let mut touched: Vec<u32> = Vec::new();
    let mut builder = CsrBuilder::<T>::with_capacity(m, n, a.nnz());

    for i in 0..m {
        touched.clear();
        let mut this_row = 0u64;
        for (c, va) in a.row(i) {
            let js = bt.col_indices(c as usize);
            let vs = bt.col_values(c as usize);
            this_row += js.len() as u64;
            for (&j, &vb) in js.iter().zip(vs) {
                if acc[j as usize] == T::ZERO {
                    touched.push(j);
                }
                acc[j as usize] += va * vb;
            }
        }
        flops += this_row;
        row_flops.push(this_row);
        for &j in &touched {
            let v = acc[j as usize];
            acc[j as usize] = T::ZERO;
            if v != T::ZERO {
                builder = builder
                    .push(i as u32, j, v)
                    .expect("indices in range by construction");
            }
        }
    }
    let output = builder.build().expect("valid accumulation");

    // Structural counters for a cuSPARSE-style *two-phase* hash SpGEMM:
    // a symbolic pass counts each row's output nonzeros, a numeric pass
    // recomputes the products and fills the CSR — both stream A and the
    // Bᵀ rows, and every MAC performs a hash-accumulator probe (~2 extra
    // issue slots) whose address pattern is data-dependent, touching the
    // workspace with poor locality (one 32-byte sector per few MACs).
    let esz = std::mem::size_of::<T>() as u64;
    let stream_bytes = a.nnz() as u64 * (4 + esz) + flops * (4 + esz);
    let read_bytes = 2 * stream_bytes; // both phases
    let write_bytes = output.nnz() as u64 * (4 + esz);
    let workspace_bytes = n * (std::mem::size_of::<T>() + 4) * ROWS_IN_FLIGHT.min(m.max(1));
    // Hash-accumulator traffic: every MAC read-modify-writes a workspace
    // slot; assume a quarter of them miss the cache sector.
    let accum_bytes = flops * (esz + 4) / 2;
    // SIMT load imbalance: csrgemm parallelizes over A rows, so a warp's
    // 32 lanes finish together only when their rows carry similar work.
    // With skewed degree distributions (the paper's §1 motivation), the
    // warp pays for its heaviest row — `simd_flops` is that bill, and
    // the surplus over the useful work is divergence serialization.
    let simd_flops: u64 = row_flops
        .chunks(32)
        .map(|w| 32 * w.iter().copied().max().unwrap_or(0))
        .sum();
    // Distinct data touched once: the A slab, the Bᵀ copy, the CSR
    // output, and one accumulator stripe — everything else is re-read
    // traffic the L2 model may discount.
    let unique_bytes = a.nnz() as u64 * (4 + esz)
        + bt.nnz() as u64 * (4 + esz)
        + write_bytes
        + (n as u64) * (esz + 4);
    let counters = Counters {
        // per 32 MACs and phase: load + 2 probe steps + MAC = 4 issues.
        issues: flops.div_ceil(32) * 8,
        divergence_extra: simd_flops.saturating_sub(flops).div_ceil(32) * 8,
        global_transactions: (read_bytes + write_bytes) / 128 + flops / 4,
        global_bytes: read_bytes + write_bytes + accum_bytes,
        global_bytes_requested: read_bytes + write_bytes + accum_bytes,
        global_bytes_unique: unique_bytes.min(read_bytes + write_bytes + accum_bytes),
        atomics: output.nnz() as u64,
        ..Counters::default()
    };
    SpGemmOutput {
        output,
        workspace_bytes,
        flops,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::DenseMatrix;

    fn dense_ab_t(a: &CsrMatrix<f64>, b: &CsrMatrix<f64>) -> DenseMatrix<f64> {
        let da = DenseMatrix::from(a);
        let db = DenseMatrix::from(b);
        let mut out = DenseMatrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let dot = (0..a.cols())
                    .map(|c| da.get(i, c) * db.get(j, c))
                    .sum::<f64>();
                out.set(i, j, dot);
            }
        }
        out
    }

    #[test]
    fn product_matches_dense_multiply() {
        let a = CsrMatrix::from_dense(
            3,
            4,
            &[1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 0.0, 1.0, 0.5, 0.5, 0.5, 0.5],
        );
        let b = CsrMatrix::from_dense(2, 4, &[0.0, 1.0, 4.0, 0.0, 2.0, 0.0, 0.0, 3.0]);
        let bt = CscMatrix::from(&b);
        let got = csrgemm(&a, &bt, Distance::DotProduct);
        let want = dense_ab_t(&a, &b);
        let got_dense = DenseMatrix::from(&got.output);
        assert!(got_dense.max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn output_is_sparse_when_rows_do_not_intersect() {
        // Disjoint supports → empty product.
        let a = CsrMatrix::from_dense(1, 4, &[1.0, 1.0, 0.0, 0.0]);
        let b = CsrMatrix::from_dense(1, 4, &[0.0, 0.0, 1.0, 1.0]);
        let got = csrgemm(&a, &CscMatrix::from(&b), Distance::DotProduct);
        assert_eq!(got.output.nnz(), 0);
        assert_eq!(got.output.density(), 0.0);
    }

    #[test]
    fn flops_count_gustavson_work() {
        // A row has 2 nonzeros in columns with B-degrees 1 and 2 → 3 MACs.
        let a = CsrMatrix::from_dense(1, 3, &[1.0, 1.0, 0.0]);
        let b = CsrMatrix::from_dense(2, 3, &[1.0, 1.0, 0.0, 0.0, 1.0, 0.0]);
        let got = csrgemm(&a, &CscMatrix::from(&b), Distance::DotProduct);
        assert_eq!(got.flops, 3);
        assert!(got.workspace_bytes > 0);
        assert!(got.counters.global_bytes > 0);
    }

    #[test]
    fn cancellation_to_zero_is_dropped() {
        let a = CsrMatrix::from_dense(1, 2, &[1.0, 1.0]);
        let b = CsrMatrix::from_dense(1, 2, &[1.0, -1.0]);
        let got = csrgemm(&a, &CscMatrix::from(&b), Distance::DotProduct);
        assert_eq!(got.output.nnz(), 0);
    }
}
