//! Value pre-transforms that let a fixed dot product compute non-dot
//! inner terms.

use semiring::Distance;
use sparse::{CsrMatrix, Real};

/// Transforms a matrix's values so that the plain dot product of the
/// transformed operands equals the distance's semiring inner term.
///
/// Only Hellinger needs a transform (`x → √x`, so that
/// `⟨√x, √y⟩` falls out of the ordinary multiply); all other
/// csrgemm-supported distances use the raw values.
pub fn transform_for_dot<T: Real>(m: &CsrMatrix<T>, distance: Distance) -> CsrMatrix<T> {
    let mut out = m.clone();
    if distance == Distance::Hellinger {
        for v in out.values_mut() {
            *v = v.sqrt();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hellinger_takes_square_roots() {
        let m = CsrMatrix::<f64>::from_dense(1, 3, &[4.0, 0.0, 9.0]);
        let t = transform_for_dot(&m, Distance::Hellinger);
        assert_eq!(t.values(), &[2.0, 3.0]);
    }

    #[test]
    fn other_distances_pass_through() {
        let m = CsrMatrix::<f64>::from_dense(1, 3, &[4.0, 0.0, 9.0]);
        for d in [Distance::Cosine, Distance::Euclidean, Distance::Jaccard] {
            assert_eq!(transform_for_dot(&m, d), m);
        }
    }
}
