//! Baseline implementations the paper compares against (§4).
//!
//! * [`cusparse`] — a faithful-in-structure `csrgemm()`-style SpGEMM:
//!   explicit transposition of `B` (a full copy), a hash-accumulator
//!   multiply producing a *sparse* CSR output, an internal temporary
//!   workspace, and a densification pass — the memory behaviour §4.3
//!   dissects. Combined with host-side norms and expansion functions it
//!   provides the paper's baseline for the expanded distance family.
//! * [`cpu`] — a multithreaded exact brute-force pairwise/k-NN engine in
//!   the spirit of scikit-learn's `NearestNeighbors(algorithm="brute")`,
//!   the CPU baseline behind the paper's 28.78×/29.17× speedup claims.

#![deny(missing_docs)]

pub mod cpu;
pub mod cusparse;

pub use cpu::{cpu_pairwise, CpuBruteForce};
pub use cusparse::{csrgemm_pairwise, CsrGemmReport};
