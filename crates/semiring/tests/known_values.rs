//! Known-value tests: every Table 1 distance evaluated on one fixed
//! vector pair, compared against constants computed independently (by a
//! Python script following the textbook formulas — not by this crate),
//! through both the dense reference and the sparse semiring pipeline.
//!
//! Fixed pair (both probability vectors, so the divergence-family
//! distances are well-defined):
//!
//! ```text
//! x = [0.2, 0.0, 0.4, 0.4]
//! y = [0.1, 0.3, 0.6, 0.0]
//! ```

use semiring::reference::{dense_distance, sparse_distance};
use semiring::{Distance, DistanceParams};
use sparse::Idx;

const X: [f64; 4] = [0.2, 0.0, 0.4, 0.4];
const Y: [f64; 4] = [0.1, 0.3, 0.6, 0.0];

fn sparse(v: &[f64]) -> Vec<(Idx, f64)> {
    v.iter()
        .enumerate()
        .filter(|(_, &x)| x != 0.0)
        .map(|(i, &x)| (i as Idx, x))
        .collect()
}

fn check(distance: Distance, p: f64, expected: f64) {
    let params = DistanceParams { minkowski_p: p };
    let dense = dense_distance(&X, &Y, distance, &params);
    assert!(
        (dense - expected).abs() < 1e-12,
        "{distance} dense: got {dense}, expected {expected}"
    );
    let sp = sparse_distance(&sparse(&X), &sparse(&Y), 4, distance, &params);
    assert!(
        (sp - expected).abs() < 1e-12,
        "{distance} sparse pipeline: got {sp}, expected {expected}"
    );
}

#[test]
fn correlation_known_value() {
    check(Distance::Correlation, 2.0, 0.9342048305040231);
}

#[test]
fn cosine_known_value() {
    check(Distance::Cosine, 2.0, 0.36108485666211254);
}

#[test]
fn dice_known_value() {
    check(Distance::DiceSorensen, 2.0, 0.36585365853658536);
}

#[test]
fn dot_product_known_value() {
    check(Distance::DotProduct, 2.0, 0.26);
}

#[test]
fn euclidean_known_value() {
    check(Distance::Euclidean, 2.0, 0.5477225575051662);
}

#[test]
fn canberra_known_value() {
    check(Distance::Canberra, 2.0, 2.533333333333333);
}

#[test]
fn chebyshev_known_value() {
    check(Distance::Chebyshev, 2.0, 0.4);
}

#[test]
fn hamming_known_value() {
    // Every coordinate differs.
    check(Distance::Hamming, 2.0, 1.0);
}

#[test]
fn hellinger_known_value() {
    check(Distance::Hellinger, 2.0, 0.6071908227287818);
}

#[test]
fn jaccard_known_value() {
    check(Distance::Jaccard, 2.0, 0.5357142857142858);
}

#[test]
fn jensen_shannon_known_value() {
    check(Distance::JensenShannon, 2.0, 0.5110422896503723);
}

#[test]
fn kl_divergence_known_value() {
    // Shared-support convention: the y-only coordinate contributes
    // nothing, and the x-only coordinate (x₃ > 0, y₃ = 0) is likewise
    // excluded, leaving a slightly *negative* partial divergence — a
    // documented property of the paper's intersection-only ⊗.
    check(Distance::KlDivergence, 2.0, -0.023556607131276663);
}

#[test]
fn manhattan_known_value() {
    check(Distance::Manhattan, 2.0, 1.0);
}

#[test]
fn minkowski_p3_known_value() {
    check(Distance::Minkowski, 3.0, 0.4641588833612779);
}

#[test]
fn russel_rao_known_value() {
    check(Distance::RusselRao, 2.0, 0.935);
}

#[test]
fn minkowski_degenerates_to_manhattan_and_euclidean() {
    check(Distance::Minkowski, 1.0, 1.0); // = Manhattan
    check(Distance::Minkowski, 2.0, 0.5477225575051662); // = Euclidean
}

#[test]
fn bray_curtis_known_value() {
    // Σ|x−y| = 1.0, Σ(x+y) = 2.0 → 0.5 (extension distance, not Table 1).
    check(Distance::BrayCurtis, 2.0, 0.5);
}
