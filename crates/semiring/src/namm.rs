//! Union/intersection evaluation of semirings over sparse vectors
//! (§2.2, Equation 3, Appendix A.1).
//!
//! A union of nonzero columns decomposes as
//! `a ∪ b = {a ∩ b} ∪ {ā ∩ b} ∪ {a ∩ b̄}`. Annihilating semirings only
//! need the intersection term; NAMMs need all three, which the hybrid
//! kernel computes in two passes. The functions here are the *sequential
//! reference* for those passes: exact two-pointer merges over sorted
//! sparse vectors that the kernel implementations are property-tested
//! against.

use crate::semiring::Semiring;
use sparse::{Idx, Real};

/// Applies the semiring over the **intersection** of nonzero columns:
/// `⊕_{i ∈ nz(a) ∩ nz(b)} ⊗(a_i, b_i)`.
///
/// This is the evaluation an annihilating (dot-product-like) semiring
/// needs; both inputs must be sorted by column index.
pub fn apply_semiring_intersection<T: Real>(a: &[(Idx, T)], b: &[(Idx, T)], sr: &Semiring<T>) -> T {
    let mut acc = sr.reduce_identity();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc = sr.reduce(acc, sr.product(a[i].1, b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

/// Applies the semiring over the **union** of nonzero columns:
/// `⊕_{i ∈ nz(a) ∪ nz(b)} ⊗(a_i, b_i)` where a missing side contributes
/// the product identity `id⊗ = 0`.
///
/// This is the full-union evaluation NAMM distances require. Both inputs
/// must be sorted by column index.
pub fn apply_semiring_union<T: Real>(a: &[(Idx, T)], b: &[(Idx, T)], sr: &Semiring<T>) -> T {
    // A column missing from one vector is an implicit zero. For a NAMM
    // (id⊗ = 0) the term is ⊗(x, 0); for an annihilating semiring the
    // missing side is the annihilator, so the term is id⊕ and is skipped
    // outright — this keeps relaxed semirings like the tropical one
    // (where the annihilator is +∞, not the stored 0) correct.
    let zero = T::ZERO;
    let skip_single = sr.is_annihilating();
    let mut acc = sr.reduce_identity();
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let ca = if i < a.len() { a[i].0 } else { Idx::MAX };
        let cb = if j < b.len() { b[j].0 } else { Idx::MAX };
        match ca.cmp(&cb) {
            std::cmp::Ordering::Less => {
                if !skip_single {
                    acc = sr.reduce(acc, sr.product(a[i].1, zero));
                }
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                if !skip_single {
                    acc = sr.reduce(acc, sr.product(zero, b[j].1));
                }
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                acc = sr.reduce(acc, sr.product(a[i].1, b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

/// Applies the semiring over one **symmetric difference**,
/// `⊕_{i ∈ nz(a), i ∉ nz(b)} ⊗(a_i, 0)` — the term the hybrid kernel's
/// second pass adds after pass one has covered `a ∩ b` and `ā ∩ b`
/// (§3.3.1: "a second pass can compute the remaining symmetric
/// difference ... by commuting A and B and skipping the application of
/// id⊗ in B").
pub fn apply_semiring_difference<T: Real>(a: &[(Idx, T)], b: &[(Idx, T)], sr: &Semiring<T>) -> T {
    let zero = T::ZERO;
    let mut acc = sr.reduce_identity();
    if sr.is_annihilating() {
        // Every term here has a missing side → all annihilate.
        return acc;
    }
    let mut j = 0;
    for &(ca, va) in a {
        while j < b.len() && b[j].0 < ca {
            j += 1;
        }
        if j >= b.len() || b[j].0 != ca {
            acc = sr.reduce(acc, sr.product(va, zero));
        }
    }
    acc
}

/// Applies the semiring the way a one-sided SPMV pass does: over all
/// nonzeros of `b`, looking the column up in `a` (covering `a ∩ b` and
/// `ā ∩ b` but *missing* `a ∩ b̄`). The two-pass decomposition is then
/// `union = pass(a, b) ⊕ difference(a, b)`.
pub fn apply_semiring_pass<T: Real>(a: &[(Idx, T)], b: &[(Idx, T)], sr: &Semiring<T>) -> T {
    let zero = T::ZERO;
    let mut acc = sr.reduce_identity();
    let mut i = 0;
    for &(cb, vb) in b {
        while i < a.len() && a[i].0 < cb {
            i += 1;
        }
        if i < a.len() && a[i].0 == cb {
            acc = sr.reduce(acc, sr.product(a[i].1, vb));
        } else if !sr.is_annihilating() {
            acc = sr.reduce(acc, sr.product(zero, vb));
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{Distance, DistanceParams};
    use crate::monoid::Monoid;
    use proptest::prelude::*;

    /// Appendix A.1 worked example: a = [1,0,1], b = [0,1,0] under the
    /// Manhattan NAMM must give 3, while a (wrong) annihilating reading
    /// gives 0.
    #[test]
    fn appendix_a1_manhattan_example() {
        let a = [(0u32, 1.0f64), (2, 1.0)];
        let b = [(1u32, 1.0f64)];
        let sr = Distance::Manhattan.semiring(&DistanceParams::default());
        assert_eq!(apply_semiring_union(&a, &b, &sr), 3.0);
        // Intersection-only (the annihilating mistake) yields 0.
        assert_eq!(apply_semiring_intersection(&a, &b, &sr), 0.0);
    }

    #[test]
    fn appendix_a1_spmv_two_pass() {
        // A = [[1, 0, 1]], b = [0, 1, 1]: pass covers columns of b
        // (giving |0-1| + |1-1| = 1), difference adds column 0 of A.
        let a = [(0u32, 1.0f64), (2, 1.0)];
        let b = [(1u32, 1.0f64), (2, 1.0)];
        let sr = Distance::Manhattan.semiring(&DistanceParams::default());
        let pass1 = apply_semiring_pass(&a, &b, &sr);
        let pass2 = apply_semiring_difference(&a, &b, &sr);
        assert_eq!(pass1, 1.0);
        assert_eq!(pass2, 1.0);
        assert_eq!(sr.reduce(pass1, pass2), apply_semiring_union(&a, &b, &sr));
    }

    #[test]
    fn dot_product_union_equals_intersection() {
        // For an annihilating semiring the extra union terms are all 0.
        let a = [(0u32, 2.0f64), (3, 1.0), (7, 4.0)];
        let b = [(0u32, 1.0f64), (2, 5.0), (7, 2.0)];
        let sr = Semiring::dot_product();
        assert_eq!(apply_semiring_intersection(&a, &b, &sr), 10.0);
        assert_eq!(apply_semiring_union(&a, &b, &sr), 10.0);
    }

    #[test]
    fn difference_skips_shared_columns() {
        let a = [(0u32, 1.0f64), (1, 2.0), (5, 3.0)];
        let b = [(1u32, 9.0f64)];
        let sr = Distance::Manhattan.semiring(&DistanceParams::default());
        // Only columns 0 and 5 of a are outside b.
        assert_eq!(apply_semiring_difference(&a, &b, &sr), 4.0);
    }

    #[test]
    fn empty_vectors_reduce_to_identity() {
        let sr = Semiring::<f64>::dot_product();
        let empty: [(Idx, f64); 0] = [];
        assert_eq!(apply_semiring_union(&empty, &empty, &sr), 0.0);
        assert_eq!(apply_semiring_intersection(&empty, &empty, &sr), 0.0);
        let max_sr = Semiring::namm(
            Monoid::new(|a: f64, b: f64| (a - b).abs(), 0.0),
            Monoid::max(),
        );
        assert_eq!(apply_semiring_union(&empty, &empty, &max_sr), 0.0);
    }

    fn arb_sparse_vec() -> impl Strategy<Value = Vec<(Idx, f64)>> {
        proptest::collection::btree_map(0u32..32, 1u32..100, 0..12)
            .prop_map(|m| m.into_iter().map(|(c, v)| (c, v as f64 / 10.0)).collect())
    }

    proptest! {
        /// Equation 3: union = pass(a,b) ⊕ difference(a,b) for every NAMM
        /// distance (the correctness contract of two-pass execution).
        #[test]
        fn two_pass_decomposition_equals_union(
            a in arb_sparse_vec(),
            b in arb_sparse_vec(),
        ) {
            let params = DistanceParams { minkowski_p: 3.0 };
            for d in Distance::ALL {
                if d.family() == crate::distance::Family::Namm {
                    let sr = d.semiring::<f64>(&params);
                    let union = apply_semiring_union(&a, &b, &sr);
                    let two_pass = sr.reduce(
                        apply_semiring_pass(&a, &b, &sr),
                        apply_semiring_difference(&a, &b, &sr),
                    );
                    prop_assert!((union - two_pass).abs() < 1e-9, "{}: {} vs {}", d, union, two_pass);
                }
            }
        }

        /// Annihilating semirings: intersection evaluation is complete.
        #[test]
        fn annihilating_union_equals_intersection(
            a in arb_sparse_vec(),
            b in arb_sparse_vec(),
        ) {
            let params = DistanceParams::default();
            for d in Distance::ALL {
                if d.family() == crate::distance::Family::Expanded {
                    let sr = d.semiring::<f64>(&params);
                    let u = apply_semiring_union(&a, &b, &sr);
                    let i = apply_semiring_intersection(&a, &b, &sr);
                    prop_assert!((u - i).abs() < 1e-9, "{}: {} vs {}", d, u, i);
                }
            }
        }

        /// NAMM products commute, the requirement §2.2 states for metric
        /// spaces evaluated over unions.
        #[test]
        fn namm_union_is_symmetric(
            a in arb_sparse_vec(),
            b in arb_sparse_vec(),
        ) {
            let params = DistanceParams { minkowski_p: 1.5 };
            for d in Distance::ALL {
                if d.family() == crate::distance::Family::Namm {
                    let sr = d.semiring::<f64>(&params);
                    let ab = apply_semiring_union(&a, &b, &sr);
                    let ba = apply_semiring_union(&b, &a, &sr);
                    prop_assert!((ab - ba).abs() < 1e-9, "{}", d);
                }
            }
        }
    }
}
