//! The fifteen distance measures of Table 1 and their semirings.

use crate::expansion::ExpansionInputs;
use crate::monoid::Monoid;
use crate::semiring::Semiring;
use sparse::{NormKind, Real};

/// How a distance is computed over sparse inputs (§2.1/§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Computable in *expanded form*: one pass of an annihilating
    /// (dot-product-like) semiring over the nonzero column intersection,
    /// combined with row norms by an element-wise expansion function.
    Expanded,
    /// Requires the *non-annihilating multiplicative monoid*: the product
    /// must be applied over the full union of nonzero columns, which the
    /// kernels realize with a second pass over the commuted inputs.
    Namm,
}

/// Parameters threaded into parameterized distances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceParams {
    /// The degree `p` of the Minkowski distance. Must be `>= 1` for the
    /// distance to be a metric.
    pub minkowski_p: f64,
}

impl Default for DistanceParams {
    /// Defaults to `p = 2`, which makes Minkowski-via-NAMM an exact
    /// cross-check of the expanded Euclidean path.
    fn default() -> Self {
        Self { minkowski_p: 2.0 }
    }
}

/// One of the fifteen distance measures of the paper's Table 1.
///
/// Each variant knows its [`Family`], the [`Semiring`] that computes its
/// inner term, the row [`NormKind`]s its expansion function consumes, and
/// the expansion / finalization arithmetic.
///
/// # Example
///
/// ```
/// use semiring::{Distance, Family};
/// assert_eq!(Distance::Cosine.family(), Family::Expanded);
/// assert_eq!(Distance::Manhattan.family(), Family::Namm);
/// assert_eq!(Distance::ALL.len(), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distance {
    /// `1 - Pearson correlation` between the two vectors.
    Correlation,
    /// `1 - cos(x, y)`.
    Cosine,
    /// Dice-Sørensen dissimilarity `1 - 2⟨x,y⟩ / (‖x‖² + ‖y‖²)`.
    DiceSorensen,
    /// Raw inner product `⟨x, y⟩` (a similarity; kept for completeness as
    /// in Table 1).
    DotProduct,
    /// `‖x - y‖₂`.
    Euclidean,
    /// `Σ |x−y| / (|x|+|y|)` over the nonzero union.
    Canberra,
    /// `max |x − y|`.
    Chebyshev,
    /// Fraction of coordinates that differ.
    Hamming,
    /// `1/√2 · ‖√x − √y‖₂`.
    Hellinger,
    /// Jaccard/Tanimoto dissimilarity `1 − ⟨x,y⟩/(‖x‖²+‖y‖²−⟨x,y⟩)`.
    Jaccard,
    /// Square root of half the Jensen-Shannon divergence.
    JensenShannon,
    /// Kullback-Leibler divergence restricted to the shared support,
    /// `Σ_{x_i>0, y_i>0} x_i log(x_i / y_i)` (the paper's asymmetric
    /// dot-product replacement).
    KlDivergence,
    /// `Σ |x − y|` (Minkowski degree 1).
    Manhattan,
    /// `(Σ |x − y|^p)^{1/p}`.
    Minkowski,
    /// Russel-Rao dissimilarity `(k − ⟨x,y⟩)/k`.
    RusselRao,
    /// Bray-Curtis dissimilarity `Σ|x−y| / (Σx + Σy)` — **not** in the
    /// paper's Table 1; included to demonstrate the framework's
    /// extensibility: a NAMM whose post-processing consumes row norms, a
    /// combination no Table 1 distance exercises.
    BrayCurtis,
}

impl Distance {
    /// Every distance **plus** the extension distances beyond Table 1.
    pub const EXTENDED: [Distance; 16] = [
        Distance::Correlation,
        Distance::Cosine,
        Distance::DiceSorensen,
        Distance::DotProduct,
        Distance::Euclidean,
        Distance::Hellinger,
        Distance::Jaccard,
        Distance::KlDivergence,
        Distance::RusselRao,
        Distance::Canberra,
        Distance::Chebyshev,
        Distance::Hamming,
        Distance::JensenShannon,
        Distance::Manhattan,
        Distance::Minkowski,
        Distance::BrayCurtis,
    ];

    /// Every supported distance, in Table 1 order (expanded family first,
    /// then the NAMM family, matching the paper's benchmark grouping).
    pub const ALL: [Distance; 15] = [
        Distance::Correlation,
        Distance::Cosine,
        Distance::DiceSorensen,
        Distance::DotProduct,
        Distance::Euclidean,
        Distance::Hellinger,
        Distance::Jaccard,
        Distance::KlDivergence,
        Distance::RusselRao,
        Distance::Canberra,
        Distance::Chebyshev,
        Distance::Hamming,
        Distance::JensenShannon,
        Distance::Manhattan,
        Distance::Minkowski,
    ];

    /// Human-readable name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Distance::Correlation => "Correlation",
            Distance::Cosine => "Cosine",
            Distance::DiceSorensen => "Dice",
            Distance::DotProduct => "Dot Product",
            Distance::Euclidean => "Euclidean",
            Distance::Canberra => "Canberra",
            Distance::Chebyshev => "Chebyshev",
            Distance::Hamming => "Hamming",
            Distance::Hellinger => "Hellinger",
            Distance::Jaccard => "Jaccard",
            Distance::JensenShannon => "Jensen-Shannon",
            Distance::KlDivergence => "KL Divergence",
            Distance::Manhattan => "Manhattan",
            Distance::Minkowski => "Minkowski",
            Distance::RusselRao => "Russel-Rao",
            Distance::BrayCurtis => "Bray-Curtis",
        }
    }

    /// Parses a (case-insensitive) distance name.
    ///
    /// Accepts both the display names ("Jensen-Shannon") and compact
    /// aliases ("jensenshannon", "l1", "l2").
    pub fn from_name(name: &str) -> Option<Distance> {
        let n: String = name
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        Some(match n.as_str() {
            "correlation" => Distance::Correlation,
            "cosine" => Distance::Cosine,
            "dice" | "dicesorensen" => Distance::DiceSorensen,
            "dot" | "dotproduct" | "innerproduct" => Distance::DotProduct,
            "euclidean" | "l2" => Distance::Euclidean,
            "canberra" => Distance::Canberra,
            "chebyshev" | "linf" => Distance::Chebyshev,
            "hamming" => Distance::Hamming,
            "hellinger" => Distance::Hellinger,
            "jaccard" | "tanimoto" => Distance::Jaccard,
            "jensenshannon" | "js" => Distance::JensenShannon,
            "kldivergence" | "kl" => Distance::KlDivergence,
            "manhattan" | "l1" | "cityblock" => Distance::Manhattan,
            "minkowski" => Distance::Minkowski,
            "russelrao" | "russellrao" => Distance::RusselRao,
            "braycurtis" => Distance::BrayCurtis,
            _ => return None,
        })
    }

    /// Whether the distance is computed in expanded form or needs the
    /// NAMM (Table 1: rows with a NAMM column entry are `Family::Namm`).
    pub fn family(self) -> Family {
        match self {
            Distance::Correlation
            | Distance::Cosine
            | Distance::DiceSorensen
            | Distance::DotProduct
            | Distance::Euclidean
            | Distance::Hellinger
            | Distance::Jaccard
            | Distance::KlDivergence
            | Distance::RusselRao => Family::Expanded,
            Distance::Canberra
            | Distance::Chebyshev
            | Distance::Hamming
            | Distance::JensenShannon
            | Distance::Manhattan
            | Distance::Minkowski
            | Distance::BrayCurtis => Family::Namm,
        }
    }

    /// Row norms the expansion function consumes, per input matrix
    /// (Table 1's "Norm" column). Empty for NAMM distances and for
    /// expansions that need no norms (Dot Product, Russel-Rao, KL).
    pub fn norms(self) -> &'static [NormKind] {
        match self {
            Distance::Correlation => &[NormKind::Sum, NormKind::L2Squared],
            Distance::Cosine => &[NormKind::L2],
            // Table 1 lists L0 for Dice/Jaccard assuming binary data; we
            // use ‖·‖₂² which equals L0 on binary input and extends the
            // formula to real-valued data (see DESIGN.md).
            Distance::DiceSorensen => &[NormKind::L2Squared],
            Distance::Euclidean => &[NormKind::L2Squared],
            // Hellinger needs Σx = L1 on the non-negative inputs it is
            // defined for, so the expansion is exact without assuming the
            // rows are probability distributions.
            Distance::Hellinger => &[NormKind::L1],
            Distance::Jaccard => &[NormKind::L2Squared],
            // A NAMM with norms: the union pass accumulates Σ|x−y| and
            // the norm-fed post-pass divides by Σx + Σy.
            Distance::BrayCurtis => &[NormKind::Sum],
            _ => &[],
        }
    }

    /// The semiring whose single (expanded) or two-pass (NAMM) execution
    /// computes this distance's inner term.
    pub fn semiring<T: Real>(self, params: &DistanceParams) -> Semiring<T> {
        match self {
            // Expanded family: annihilating semirings over the nonzero
            // intersection.
            Distance::Correlation
            | Distance::Cosine
            | Distance::DiceSorensen
            | Distance::DotProduct
            | Distance::Euclidean
            | Distance::Jaccard
            | Distance::RusselRao => Semiring::dot_product(),
            Distance::Hellinger => {
                Semiring::annihilating(Monoid::new(|a, b| (a * b).sqrt(), T::ONE), Monoid::plus())
            }
            Distance::KlDivergence => {
                Semiring::annihilating(Monoid::new(kl_term::<T>, T::ONE), Monoid::plus())
            }
            // NAMM family: non-annihilating products with id⊗ = 0 over the
            // nonzero union.
            Distance::Canberra => {
                Semiring::namm(Monoid::new(canberra_term::<T>, T::ZERO), Monoid::plus())
            }
            Distance::Chebyshev => {
                Semiring::namm(Monoid::new(|a, b| (a - b).abs(), T::ZERO), Monoid::max())
            }
            Distance::Hamming => Semiring::namm(
                Monoid::new(|a: T, b: T| if a == b { T::ZERO } else { T::ONE }, T::ZERO),
                Monoid::plus(),
            ),
            Distance::JensenShannon => {
                Semiring::namm(Monoid::new(js_term::<T>, T::ZERO), Monoid::plus())
            }
            Distance::Manhattan | Distance::BrayCurtis => {
                Semiring::namm(Monoid::new(|a, b| (a - b).abs(), T::ZERO), Monoid::plus())
            }
            Distance::Minkowski => Semiring::namm(
                Monoid::with_param(
                    |a: T, b: T, p: T| (a - b).abs().powf(p),
                    T::ZERO,
                    T::from_f64(params.minkowski_p),
                ),
                Monoid::plus(),
            ),
        }
    }

    /// Element-wise expansion function combining the semiring output with
    /// row norms (expanded family, §3.4 / Table 1's "Expansion" column).
    ///
    /// For NAMM distances this is not used; call [`Distance::finalize`]
    /// instead.
    pub fn expand<T: Real>(self, inputs: ExpansionInputs<T>) -> T {
        crate::expansion::expand(self, inputs)
    }

    /// Post-reduction scalar transform for NAMM distances (e.g. the
    /// `(·)^{1/p}` of Minkowski, the `/k` of Hamming). Identity for
    /// distances that need none.
    pub fn finalize<T: Real>(self, acc: T, k: usize, params: &DistanceParams) -> T {
        match self {
            Distance::Hamming => acc / T::from_usize(k.max(1)),
            Distance::JensenShannon => (acc.max(T::ZERO) / T::from_f64(2.0)).sqrt(),
            Distance::Minkowski => {
                let p = T::from_f64(params.minkowski_p);
                acc.max(T::ZERO).powf(T::ONE / p)
            }
            _ => acc,
        }
    }

    /// True when the distance is only defined for non-negative inputs
    /// (square roots and logarithms of the values appear in the
    /// formula). Callers can enforce this with
    /// `sparse_dist::validate_input`.
    pub fn requires_nonnegative(self) -> bool {
        matches!(
            self,
            Distance::Hellinger
                | Distance::JensenShannon
                | Distance::KlDivergence
                | Distance::BrayCurtis
        )
    }

    /// True for distances whose finalized value satisfies the metric
    /// axioms on non-negative inputs (used by the metric-property test
    /// suite; similarity-like measures such as Dot Product and asymmetric
    /// divergences are excluded).
    pub fn is_metric(self) -> bool {
        matches!(
            self,
            Distance::Euclidean
                | Distance::Canberra
                | Distance::Chebyshev
                | Distance::Hamming
                | Distance::Manhattan
                | Distance::Minkowski
                | Distance::JensenShannon
                | Distance::Hellinger
        )
    }
}

impl std::fmt::Display for Distance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Canberra term `|a−b| / (|a|+|b|)`, defined as 0 when both inputs are 0
/// (the NAMM identity case).
fn canberra_term<T: Real>(a: T, b: T) -> T {
    let denom = a.abs() + b.abs();
    if denom == T::ZERO {
        T::ZERO
    } else {
        (a - b).abs() / denom
    }
}

/// KL term `a·ln(a/b)`, guarded to 0 whenever either side is 0. The
/// annihilating execution only evaluates it on the nonzero intersection,
/// matching the paper's "directly replaces ⊗ with aᵢ log(aᵢ/bᵢ)".
fn kl_term<T: Real>(a: T, b: T) -> T {
    if a == T::ZERO || b == T::ZERO {
        T::ZERO
    } else {
        a * (a / b).ln()
    }
}

/// Jensen-Shannon term `a·ln(a/m) + b·ln(b/m)` with `m = (a+b)/2` and the
/// convention `0·ln(0/m) = 0`.
fn js_term<T: Real>(a: T, b: T) -> T {
    let m = (a + b) / T::from_f64(2.0);
    if m == T::ZERO {
        return T::ZERO;
    }
    let mut t = T::ZERO;
    if a > T::ZERO {
        t += a * (a / m).ln();
    }
    if b > T::ZERO {
        t += b * (b / m).ln();
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_each_variant_once() {
        for (i, a) in Distance::ALL.iter().enumerate() {
            for (j, b) in Distance::ALL.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b);
                }
            }
        }
    }

    #[test]
    fn families_match_table_1() {
        // Distances with a NAMM column entry in Table 1:
        for d in [
            Distance::Canberra,
            Distance::Chebyshev,
            Distance::Hamming,
            Distance::JensenShannon,
            Distance::Manhattan,
            Distance::Minkowski,
        ] {
            assert_eq!(d.family(), Family::Namm, "{d}");
            assert!(!d
                .semiring::<f64>(&DistanceParams::default())
                .is_annihilating());
        }
        for d in [
            Distance::Correlation,
            Distance::Cosine,
            Distance::DiceSorensen,
            Distance::DotProduct,
            Distance::Euclidean,
            Distance::Hellinger,
            Distance::Jaccard,
            Distance::KlDivergence,
            Distance::RusselRao,
        ] {
            assert_eq!(d.family(), Family::Expanded, "{d}");
            assert!(d
                .semiring::<f64>(&DistanceParams::default())
                .is_annihilating());
        }
    }

    #[test]
    fn namm_products_have_zero_identity() {
        let p = DistanceParams::default();
        for d in Distance::ALL {
            if d.family() == Family::Namm {
                let sr = d.semiring::<f64>(&p);
                assert_eq!(sr.product_identity(), 0.0, "{d}");
                // XOR-like behaviour: ⊗(x, 0) = ⊗(0, x) for these ops.
                let x = 0.75;
                assert_eq!(sr.product(x, 0.0), sr.product(0.0, x), "{d}");
            }
        }
    }

    #[test]
    fn from_name_round_trips_display_names() {
        for d in Distance::ALL {
            assert_eq!(Distance::from_name(d.name()), Some(d), "{d}");
        }
        assert_eq!(Distance::from_name("l1"), Some(Distance::Manhattan));
        assert_eq!(Distance::from_name("L2"), Some(Distance::Euclidean));
        assert_eq!(Distance::from_name("no-such"), None);
    }

    #[test]
    fn canberra_term_handles_double_zero() {
        assert_eq!(canberra_term(0.0f64, 0.0), 0.0);
        assert_eq!(canberra_term(1.0f64, 0.0), 1.0);
        assert_eq!(canberra_term(0.0f64, 2.0), 1.0);
        assert!((canberra_term(1.0f64, 3.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn js_term_is_symmetric_and_nonnegative() {
        for (a, b) in [(0.2f64, 0.5), (0.0, 0.3), (0.7, 0.0), (0.4, 0.4)] {
            assert!((js_term(a, b) - js_term(b, a)).abs() < 1e-12);
            assert!(js_term(a, b) >= -1e-12);
        }
        assert_eq!(js_term(0.0f64, 0.0), 0.0);
    }

    #[test]
    fn kl_term_matches_closed_form() {
        assert!((kl_term(0.5f64, 0.25) - 0.5 * (2.0f64).ln()).abs() < 1e-12);
        assert_eq!(kl_term(0.0f64, 0.5), 0.0);
        assert_eq!(kl_term(0.5f64, 0.0), 0.0);
    }

    #[test]
    fn minkowski_p2_finalize_matches_sqrt() {
        let p = DistanceParams { minkowski_p: 2.0 };
        let acc = 9.0f64;
        assert!((Distance::Minkowski.finalize(acc, 10, &p) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_finalize_divides_by_dimensionality() {
        let p = DistanceParams::default();
        assert_eq!(Distance::Hamming.finalize(3.0f64, 4, &p), 0.75);
        // k = 0 is degenerate; guard avoids division by zero.
        assert_eq!(Distance::Hamming.finalize(0.0f64, 0, &p), 0.0);
    }

    #[test]
    fn nonnegative_domain_flags_the_log_and_sqrt_distances() {
        for d in Distance::ALL {
            let expect = matches!(
                d,
                Distance::Hellinger | Distance::JensenShannon | Distance::KlDivergence
            );
            assert_eq!(d.requires_nonnegative(), expect, "{d}");
        }
    }

    #[test]
    fn chebyshev_uses_max_reduction() {
        let sr = Distance::Chebyshev.semiring::<f64>(&DistanceParams::default());
        let mut acc = sr.reduce_identity();
        for (a, b) in [(1.0, 4.0), (10.0, 2.0), (5.0, 5.0)] {
            acc = sr.reduce(acc, sr.product(a, b));
        }
        assert_eq!(acc, 8.0);
    }
}
