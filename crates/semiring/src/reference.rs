//! Exact reference implementations of every distance, straight from the
//! "Formula" column of Table 1.
//!
//! [`dense_distance`] evaluates the textbook formula on dense slices with
//! no semiring machinery — the independent ground truth every kernel and
//! baseline is tested against. [`sparse_distance`] runs the paper's full
//! sparse pipeline (semiring pass → norms → expansion/finalization) on a
//! single vector pair; agreement between the two is the Table 1
//! correctness contract.

use crate::distance::{Distance, DistanceParams, Family};
use crate::expansion::ExpansionInputs;
use crate::namm::{apply_semiring_intersection, apply_semiring_union};
use sparse::{CsrMatrix, DenseMatrix, Idx, NormKind, Real};

/// Evaluates `distance` between two dense vectors using the closed-form
/// formula (no semirings, no expansions).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn dense_distance<T: Real>(x: &[T], y: &[T], distance: Distance, params: &DistanceParams) -> T {
    assert_eq!(x.len(), y.len(), "vectors must share dimensionality");
    let k = x.len();
    let two = T::from_f64(2.0);
    match distance {
        Distance::DotProduct => dot(x, y),
        Distance::Euclidean => x
            .iter()
            .zip(y)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<T>()
            .sqrt(),
        Distance::Manhattan => x.iter().zip(y).map(|(&a, &b)| (a - b).abs()).sum(),
        Distance::Chebyshev => x
            .iter()
            .zip(y)
            .map(|(&a, &b)| (a - b).abs())
            .fold(T::ZERO, |m, v| m.max(v)),
        Distance::Minkowski => {
            let p = T::from_f64(params.minkowski_p);
            x.iter()
                .zip(y)
                .map(|(&a, &b)| (a - b).abs().powf(p))
                .sum::<T>()
                .powf(T::ONE / p)
        }
        Distance::Canberra => x
            .iter()
            .zip(y)
            .map(|(&a, &b)| {
                let denom = a.abs() + b.abs();
                if denom == T::ZERO {
                    T::ZERO
                } else {
                    (a - b).abs() / denom
                }
            })
            .sum(),
        Distance::Hamming => {
            let diff: T = x
                .iter()
                .zip(y)
                .map(|(&a, &b)| if a == b { T::ZERO } else { T::ONE })
                .sum();
            diff / T::from_usize(k.max(1))
        }
        Distance::Hellinger => {
            let s: T = x
                .iter()
                .zip(y)
                .map(|(&a, &b)| {
                    let d = a.sqrt() - b.sqrt();
                    d * d
                })
                .sum();
            (s / two).sqrt()
        }
        Distance::JensenShannon => {
            let s: T = x
                .iter()
                .zip(y)
                .map(|(&a, &b)| {
                    let m = (a + b) / two;
                    if m == T::ZERO {
                        return T::ZERO;
                    }
                    let mut t = T::ZERO;
                    if a > T::ZERO {
                        t += a * (a / m).ln();
                    }
                    if b > T::ZERO {
                        t += b * (b / m).ln();
                    }
                    t
                })
                .sum();
            (s.max(T::ZERO) / two).sqrt()
        }
        Distance::KlDivergence => x
            .iter()
            .zip(y)
            .map(|(&a, &b)| {
                if a == T::ZERO || b == T::ZERO {
                    T::ZERO
                } else {
                    a * (a / b).ln()
                }
            })
            .sum(),
        Distance::Cosine => {
            let na = dot(x, x).sqrt();
            let nb = dot(y, y).sqrt();
            if na == T::ZERO && nb == T::ZERO {
                T::ZERO
            } else if na == T::ZERO || nb == T::ZERO {
                T::ONE
            } else {
                T::ONE - dot(x, y) / (na * nb)
            }
        }
        Distance::Correlation => {
            let kk = T::from_usize(k);
            let (sa, sb) = (x.iter().copied().sum::<T>(), y.iter().copied().sum::<T>());
            let (ma, mb) = (sa / kk, sb / kk);
            let cov: T = x.iter().zip(y).map(|(&a, &b)| (a - ma) * (b - mb)).sum();
            let va: T = x.iter().map(|&a| (a - ma) * (a - ma)).sum();
            let vb: T = y.iter().map(|&b| (b - mb) * (b - mb)).sum();
            let (da, db) = (va.sqrt(), vb.sqrt());
            if da == T::ZERO && db == T::ZERO {
                T::ZERO
            } else if da == T::ZERO || db == T::ZERO {
                T::ONE
            } else {
                T::ONE - cov / (da * db)
            }
        }
        Distance::DiceSorensen => {
            let denom = dot(x, x) + dot(y, y);
            if denom == T::ZERO {
                T::ZERO
            } else {
                T::ONE - two * dot(x, y) / denom
            }
        }
        Distance::Jaccard => {
            let d = dot(x, y);
            let denom = dot(x, x) + dot(y, y) - d;
            if denom == T::ZERO {
                T::ZERO
            } else {
                T::ONE - d / denom
            }
        }
        Distance::RusselRao => {
            let kk = T::from_usize(k.max(1));
            (kk - dot(x, y)) / kk
        }
        Distance::BrayCurtis => {
            let num: T = x.iter().zip(y).map(|(&a, &b)| (a - b).abs()).sum();
            let denom: T = x.iter().zip(y).map(|(&a, &b)| a + b).sum();
            if denom == T::ZERO {
                T::ZERO
            } else {
                num / denom
            }
        }
    }
}

fn dot<T: Real>(x: &[T], y: &[T]) -> T {
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

/// Norm of a sorted sparse vector, matching [`sparse::row_norms`].
pub fn sparse_norm<T: Real>(v: &[(Idx, T)], kind: NormKind) -> T {
    match kind {
        NormKind::L0 => T::from_usize(v.len()),
        NormKind::L1 => v.iter().map(|&(_, x)| x.abs()).sum(),
        NormKind::L2 => v.iter().map(|&(_, x)| x * x).sum::<T>().sqrt(),
        NormKind::L2Squared => v.iter().map(|&(_, x)| x * x).sum(),
        NormKind::Sum => v.iter().map(|&(_, x)| x).sum(),
    }
}

/// Runs the paper's full sparse pipeline on one vector pair: semiring
/// pass (intersection for the expanded family, union for NAMMs), then the
/// expansion function or finalization.
///
/// This is the sequential oracle the GPU kernels and batched estimators
/// are validated against, and the inner loop of the CPU baseline.
pub fn sparse_distance<T: Real>(
    a: &[(Idx, T)],
    b: &[(Idx, T)],
    k: usize,
    distance: Distance,
    params: &DistanceParams,
) -> T {
    let sr = distance.semiring::<T>(params);
    match distance.family() {
        Family::Expanded => {
            let dot = apply_semiring_intersection(a, b, &sr);
            let norms = distance.norms();
            let mut a_norms = [T::ZERO; 2];
            let mut b_norms = [T::ZERO; 2];
            for (slot, &kind) in norms.iter().enumerate() {
                a_norms[slot] = sparse_norm(a, kind);
                b_norms[slot] = sparse_norm(b, kind);
            }
            distance.expand(ExpansionInputs {
                dot,
                a_norms,
                b_norms,
                k,
            })
        }
        Family::Namm => {
            let acc = apply_semiring_union(a, b, &sr);
            let norms = distance.norms();
            if norms.is_empty() {
                distance.finalize(acc, k, params)
            } else {
                // Norm-fed NAMM (Bray-Curtis family): the union result
                // combines with row norms exactly like an expansion.
                let mut a_norms = [T::ZERO; 2];
                let mut b_norms = [T::ZERO; 2];
                for (slot, &kind) in norms.iter().enumerate() {
                    a_norms[slot] = sparse_norm(a, kind);
                    b_norms[slot] = sparse_norm(b, kind);
                }
                distance.expand(ExpansionInputs {
                    dot: acc,
                    a_norms,
                    b_norms,
                    k,
                })
            }
        }
    }
}

/// Dense pairwise distance matrix `d(A_i, B_j)` computed entirely from
/// the closed-form formulas — the ground-truth comparator for every
/// kernel and baseline in the workspace.
pub fn dense_pairwise<T: Real>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    distance: Distance,
    params: &DistanceParams,
) -> DenseMatrix<T> {
    assert_eq!(
        a.cols(),
        b.cols(),
        "operands must share dimensionality for pairwise distances"
    );
    let da = DenseMatrix::from(a);
    let db = DenseMatrix::from(b);
    let mut out = DenseMatrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        for j in 0..b.rows() {
            out.set(i, j, dense_distance(da.row(i), db.row(j), distance, params));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const TOL: f64 = 1e-9;

    fn to_sparse(x: &[f64]) -> Vec<(Idx, f64)> {
        x.iter()
            .enumerate()
            .filter(|(_, &v)| v != 0.0)
            .map(|(i, &v)| (i as Idx, v))
            .collect()
    }

    #[test]
    fn euclidean_three_four_five() {
        let d = dense_distance(
            &[3.0, 0.0],
            &[0.0, 4.0],
            Distance::Euclidean,
            &DistanceParams::default(),
        );
        assert!((d - 5.0).abs() < TOL);
    }

    #[test]
    fn manhattan_hand_example() {
        let d = dense_distance(
            &[1.0, 0.0, 1.0],
            &[0.0, 1.0, 0.0],
            Distance::Manhattan,
            &DistanceParams::default(),
        );
        assert_eq!(d, 3.0);
    }

    #[test]
    fn chebyshev_takes_max_coordinate() {
        let d = dense_distance(
            &[1.0, 5.0, 2.0],
            &[2.0, 1.0, 2.0],
            Distance::Chebyshev,
            &DistanceParams::default(),
        );
        assert_eq!(d, 4.0);
    }

    #[test]
    fn hamming_counts_disagreements() {
        let d = dense_distance(
            &[1.0, 0.0, 2.0, 3.0],
            &[1.0, 1.0, 2.0, 0.0],
            Distance::Hamming,
            &DistanceParams::default(),
        );
        assert_eq!(d, 0.5);
    }

    #[test]
    fn kl_of_identical_distributions_is_zero() {
        let p = [0.25, 0.25, 0.5];
        let d = dense_distance(&p, &p, Distance::KlDivergence, &DistanceParams::default());
        assert!(d.abs() < TOL);
    }

    #[test]
    fn js_is_bounded_by_sqrt_ln2() {
        // Disjoint distributions maximize JS distance at sqrt(ln 2).
        let d = dense_distance(
            &[1.0, 0.0],
            &[0.0, 1.0],
            Distance::JensenShannon,
            &DistanceParams::default(),
        );
        assert!((d - (2.0f64).ln().sqrt()).abs() < TOL);
    }

    #[test]
    fn minkowski_p1_equals_manhattan_p2_equals_euclidean() {
        let x = [1.0, 2.0, 0.0, 4.0];
        let y = [0.5, 0.0, 3.0, 4.0];
        let p1 = DistanceParams { minkowski_p: 1.0 };
        let p2 = DistanceParams { minkowski_p: 2.0 };
        let mink1 = dense_distance(&x, &y, Distance::Minkowski, &p1);
        let manh = dense_distance(&x, &y, Distance::Manhattan, &p1);
        assert!((mink1 - manh).abs() < TOL);
        let mink2 = dense_distance(&x, &y, Distance::Minkowski, &p2);
        let eucl = dense_distance(&x, &y, Distance::Euclidean, &p2);
        assert!((mink2 - eucl).abs() < TOL);
    }

    #[test]
    fn russel_rao_binary_case() {
        // k=4, one shared 1.
        let d = dense_distance(
            &[1.0, 0.0, 1.0, 0.0],
            &[1.0, 1.0, 0.0, 0.0],
            Distance::RusselRao,
            &DistanceParams::default(),
        );
        assert_eq!(d, 0.75);
    }

    /// Strategy: pairs of dense non-negative vectors with zeros mixed in
    /// (non-negative so Hellinger/JS/KL are well-defined).
    fn arb_vec_pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
        (1usize..24).prop_flat_map(|k| {
            let elem = prop_oneof![
                2 => Just(0.0),
                3 => (1u32..500).prop_map(|v| v as f64 / 100.0),
            ];
            (
                proptest::collection::vec(elem.clone(), k),
                proptest::collection::vec(elem, k),
            )
        })
    }

    proptest! {
        /// The Table 1 contract: the sparse semiring pipeline equals the
        /// closed-form formula for all fifteen distances.
        #[test]
        fn sparse_pipeline_matches_dense_formula((x, y) in arb_vec_pair()) {
            let params = DistanceParams { minkowski_p: 3.0 };
            let (sx, sy) = (to_sparse(&x), to_sparse(&y));
            for d in Distance::ALL {
                let dense = dense_distance(&x, &y, d, &params);
                let sparse = sparse_distance(&sx, &sy, x.len(), d, &params);
                prop_assert!(
                    (dense - sparse).abs() < 1e-7,
                    "{}: dense={} sparse={}", d, dense, sparse
                );
            }
        }

        /// Metric axioms (identity, symmetry, triangle inequality) for the
        /// distances that claim them.
        #[test]
        fn metric_axioms_hold((x, y) in arb_vec_pair(), seed in 0u64..1000) {
            let params = DistanceParams { minkowski_p: 2.5 };
            // Third vector derived deterministically from the pair.
            let z: Vec<f64> = x
                .iter()
                .zip(&y)
                .enumerate()
                .map(|(i, (&a, &b))| if (i as u64 + seed).is_multiple_of(3) { a } else { b })
                .collect();
            for d in Distance::ALL.into_iter().filter(|d| d.is_metric()) {
                let dxx = dense_distance(&x, &x, d, &params);
                prop_assert!(dxx.abs() < 1e-9, "{}: d(x,x)={}", d, dxx);
                let dxy = dense_distance(&x, &y, d, &params);
                let dyx = dense_distance(&y, &x, d, &params);
                prop_assert!((dxy - dyx).abs() < 1e-9, "{}: symmetry", d);
                prop_assert!(dxy >= -1e-12, "{}: positivity", d);
                let dxz = dense_distance(&x, &z, d, &params);
                let dzy = dense_distance(&z, &y, d, &params);
                prop_assert!(dxy <= dxz + dzy + 1e-7, "{}: triangle", d);
            }
        }

        /// dense_pairwise agrees cell-by-cell with dense_distance.
        #[test]
        fn pairwise_matrix_matches_scalar((x, y) in arb_vec_pair()) {
            let params = DistanceParams::default();
            let k = x.len();
            let a = CsrMatrix::from_dense(1, k, &x);
            let mut data = x.clone();
            data.extend_from_slice(&y);
            let b = CsrMatrix::from_dense(2, k, &data);
            let out = dense_pairwise(&a, &b, Distance::Cosine, &params);
            prop_assert!((out.get(0, 0) - dense_distance(&x, &x, Distance::Cosine, &params)).abs() < 1e-9);
            prop_assert!((out.get(0, 1) - dense_distance(&x, &y, Distance::Cosine, &params)).abs() < 1e-9);
        }
    }
}
